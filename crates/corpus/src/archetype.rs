//! Sheet archetypes: twelve realistic table layouts with genuine formula
//! logic (per-row computed columns, summary aggregates, conditional flags,
//! lookups, string builders, date math).
//!
//! Archetypes cover all five formula-type buckets of Fig. 11 and the full
//! complexity spectrum of Fig. 10 — from `SUM(B3:B20)` to nested
//! `IF(IF(...))` grading logic and `VLOOKUP` with absolute references.

use crate::family::Palette;
use crate::vocab::*;
use af_grid::value::date_to_serial;
use af_grid::{BorderFlags, Cell, CellRef, CellStyle, Sheet};
use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::RangeInclusive;

/// The twelve archetypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Archetype {
    SalesReport,
    SurveyTally,
    FinancialStatement,
    Inventory,
    Timesheet,
    GradeBook,
    EnergyUsage,
    NetworkInventory,
    ChipSpec,
    BudgetPlan,
    ProjectTracker,
    LookupSheet,
}

/// Build context: the family-level constants an instance is rendered with.
pub struct BuildCtx<'a> {
    pub palette: &'a Palette,
    pub sheet_name: String,
    /// Number of data rows for this instance.
    pub n_rows: u32,
    pub title: &'a str,
    /// Family seed: layout choices must depend only on this (plus
    /// `n_rows`), never on the instance RNG, so instances share formula
    /// logic.
    pub variant: u64,
}

impl Archetype {
    pub const ALL: [Archetype; 12] = [
        Archetype::SalesReport,
        Archetype::SurveyTally,
        Archetype::FinancialStatement,
        Archetype::Inventory,
        Archetype::Timesheet,
        Archetype::GradeBook,
        Archetype::EnergyUsage,
        Archetype::NetworkInventory,
        Archetype::ChipSpec,
        Archetype::BudgetPlan,
        Archetype::ProjectTracker,
        Archetype::LookupSheet,
    ];

    /// Archetypes whose formulas are predominantly string transformations —
    /// the paper observes these are "more ad-hoc in nature and more
    /// difficult to learn from similar sheets" (Fig. 11).
    pub fn is_string_heavy(self) -> bool {
        matches!(self, Archetype::NetworkInventory | Archetype::ProjectTracker)
    }

    pub fn slug(self) -> &'static str {
        match self {
            Archetype::SalesReport => "sales",
            Archetype::SurveyTally => "survey",
            Archetype::FinancialStatement => "finstmt",
            Archetype::Inventory => "inventory",
            Archetype::Timesheet => "timesheet",
            Archetype::GradeBook => "grades",
            Archetype::EnergyUsage => "energy",
            Archetype::NetworkInventory => "netinv",
            Archetype::ChipSpec => "chipspec",
            Archetype::BudgetPlan => "budget",
            Archetype::ProjectTracker => "projects",
            Archetype::LookupSheet => "lookup",
        }
    }

    pub fn sheet_stem(self) -> &'static str {
        match self {
            Archetype::SalesReport => "SalesByRegion",
            Archetype::SurveyTally => "SurveyResults",
            Archetype::FinancialStatement => "IncomeStmt",
            Archetype::Inventory => "StockCount",
            Archetype::Timesheet => "WeeklyHours",
            Archetype::GradeBook => "ClassRoster",
            Archetype::EnergyUsage => "UsageLog",
            Archetype::NetworkInventory => "DeviceList",
            Archetype::ChipSpec => "PartSpecs",
            Archetype::BudgetPlan => "BudgetLines",
            Archetype::ProjectTracker => "TaskBoard",
            Archetype::LookupSheet => "OrderPricing",
        }
    }

    pub fn title_noun(self) -> &'static str {
        match self {
            Archetype::SalesReport => "Sales Report",
            Archetype::SurveyTally => "Survey Tally",
            Archetype::FinancialStatement => "Income Statement",
            Archetype::Inventory => "Inventory Count",
            Archetype::Timesheet => "Timesheet",
            Archetype::GradeBook => "Grade Book",
            Archetype::EnergyUsage => "Energy Usage",
            Archetype::NetworkInventory => "Network Inventory",
            Archetype::ChipSpec => "Part Specifications",
            Archetype::BudgetPlan => "Budget Plan",
            Archetype::ProjectTracker => "Project Tracker",
            Archetype::LookupSheet => "Order Pricing",
        }
    }

    /// Range of plausible data-row counts.
    pub fn row_range(self) -> RangeInclusive<u32> {
        match self {
            Archetype::FinancialStatement => 10..=10,
            Archetype::EnergyUsage => 12..=12,
            Archetype::SurveyTally => 15..=60,
            Archetype::Timesheet => 6..=25,
            Archetype::GradeBook => 10..=35,
            _ => 8..=45,
        }
    }

    pub fn default_rows(self) -> u32 {
        *self.row_range().start()
    }

    /// Build one instance sheet. Formula cells are placed with their source
    /// text; the caller runs `af_formula::recalculate` to fill values.
    pub fn build(self, ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
        match self {
            Archetype::SalesReport => build_sales(ctx, rng),
            Archetype::SurveyTally => build_survey(ctx, rng),
            Archetype::FinancialStatement => build_finstmt(ctx, rng),
            Archetype::Inventory => build_inventory(ctx, rng),
            Archetype::Timesheet => build_timesheet(ctx, rng),
            Archetype::GradeBook => build_gradebook(ctx, rng),
            Archetype::EnergyUsage => build_energy(ctx, rng),
            Archetype::NetworkInventory => build_netinv(ctx, rng),
            Archetype::ChipSpec => build_chipspec(ctx, rng),
            Archetype::BudgetPlan => build_budget(ctx, rng),
            Archetype::ProjectTracker => build_projects(ctx, rng),
            Archetype::LookupSheet => build_lookup(ctx, rng),
        }
    }
}

// ------------------------------------------------------------ helpers

fn at(row: u32, col: u32) -> CellRef {
    CellRef::new(row, col)
}

/// A1 name of a (0-based) position, e.g. `a1name(2, 1)` = `"B3"`.
fn a1name(row: u32, col: u32) -> String {
    at(row, col).to_string()
}

fn title_cell(text: &str, p: &Palette) -> Cell {
    Cell::styled(
        text,
        CellStyle { bold: true, font_size: 14.0, font_color: p.header_fill, ..Default::default() },
    )
}

fn header_cell(text: &str, p: &Palette) -> Cell {
    Cell::styled(text, CellStyle::header(p.header_fill).with_font_color(p.header_font))
}

fn label_cell(text: &str) -> Cell {
    Cell::new(text)
}

fn total_label(text: &str, p: &Palette) -> Cell {
    Cell::styled(
        text,
        CellStyle {
            bold: true,
            fill: p.total_fill,
            borders: BorderFlags(BorderFlags::TOP),
            ..Default::default()
        },
    )
}

fn formula_cell(src: String, p: &Palette) -> Cell {
    Cell::styled(0.0, CellStyle { fill: p.accent_fill, ..Default::default() }).with_formula(src)
}

/// Plain (un-filled) per-row formula cell.
fn row_formula(src: String) -> Cell {
    Cell::new(0.0).with_formula(src)
}

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.random_range(0..pool.len())]
}

fn money(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    (rng.random_range(lo..hi) * 100.0).round() / 100.0
}

/// Layout constants shared by most archetypes: title at row 0, headers at
/// row 1, data rows [2, 2+n).
const HEADER_ROW: u32 = 1;
const DATA_START: u32 = 2;

fn put_title_and_headers(s: &mut Sheet, ctx: &BuildCtx, headers: &[&str]) {
    s.set(at(0, 0), title_cell(ctx.title, ctx.palette));
    for (c, h) in headers.iter().enumerate() {
        s.set(at(HEADER_ROW, c as u32), header_cell(h, ctx.palette));
    }
}

// ------------------------------------------------------------ builders

/// Region | Units | Unit Price | Revenue(=B*C) …+ totals block.
fn build_sales(ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
    let mut s = Sheet::new(ctx.sheet_name.clone());
    put_title_and_headers(&mut s, ctx, &["Region", "Units", "Unit Price", "Revenue"]);
    let n = ctx.n_rows;
    let end = DATA_START + n - 1;
    for i in 0..n {
        let r = DATA_START + i;
        s.set(at(r, 0), label_cell(pick(rng, REGIONS)));
        s.set(at(r, 1), Cell::new(rng.random_range(5..500) as f64));
        s.set(at(r, 2), Cell::new(money(rng, 3.0, 120.0)));
        // Family-specific revenue logic (plain, rounded, or discounted).
        let revenue = match ctx.variant % 3 {
            0 => format!("{}*{}", a1name(r, 1), a1name(r, 2)),
            1 => format!("ROUND({}*{},2)", a1name(r, 1), a1name(r, 2)),
            _ => format!("{}*{}*0.95", a1name(r, 1), a1name(r, 2)),
        };
        s.set(at(r, 3), row_formula(revenue));
    }
    let t = end + 2;
    s.set(at(t, 0), total_label("Total", ctx.palette));
    s.set(
        at(t, 1),
        formula_cell(format!("SUM({}:{})", a1name(DATA_START, 1), a1name(end, 1)), ctx.palette),
    );
    s.set(
        at(t, 3),
        formula_cell(format!("SUM({}:{})", a1name(DATA_START, 3), a1name(end, 3)), ctx.palette),
    );
    // Family variant decides the second aggregate.
    let avg_fn = if ctx.variant.is_multiple_of(2) { "AVERAGE" } else { "MEDIAN" };
    s.set(at(t + 1, 0), total_label("Typical price", ctx.palette));
    s.set(
        at(t + 1, 2),
        formula_cell(
            format!("{avg_fn}({}:{})", a1name(DATA_START, 2), a1name(end, 2)),
            ctx.palette,
        ),
    );
    s
}

/// The paper's Fig. 1 shape: a column of choices, then a tally block of
/// `COUNTIF(range, label_cell)` rows below the data.
fn build_survey(ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
    let mut s = Sheet::new(ctx.sheet_name.clone());
    put_title_and_headers(&mut s, ctx, &["#", "Respondent", "Choice", "Count"]);
    let n = ctx.n_rows;
    let end = DATA_START + n - 1;
    // Family-fixed set of distinct choices (so tally labels align across
    // instances).
    let k = 3 + (ctx.variant % 3) as usize; // 3..=5 choices
    let mut choices: Vec<&str> = Vec::with_capacity(k);
    let mut idx = ctx.variant as usize;
    while choices.len() < k {
        let cand = SURNAMES[idx % SURNAMES.len()];
        if !choices.contains(&cand) {
            choices.push(cand);
        }
        idx += 7;
    }
    for i in 0..n {
        let r = DATA_START + i;
        s.set(at(r, 0), Cell::new((i + 1) as f64));
        s.set(at(r, 1), label_cell(pick(rng, FIRST_NAMES)));
        s.set(at(r, 2), label_cell(choices[rng.random_range(0..k)]));
    }
    // Tally block: one row per choice, like D41 = COUNTIF(C7:C37, C41).
    let tally_start = end + 2;
    s.set(at(tally_start - 1, 2), total_label("Tally", ctx.palette));
    for (j, choice) in choices.iter().enumerate() {
        let r = tally_start + j as u32;
        s.set(at(r, 2), label_cell(choice));
        s.set(
            at(r, 3),
            formula_cell(
                format!("COUNTIF({}:{},{})", a1name(DATA_START, 2), a1name(end, 2), a1name(r, 2)),
                ctx.palette,
            ),
        );
    }
    s
}

/// Line items × quarters; FY column sums the row; margin rows divide.
fn build_finstmt(ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
    let mut s = Sheet::new(ctx.sheet_name.clone());
    put_title_and_headers(&mut s, ctx, &["Line Item", "Q1", "Q2", "Q3", "Q4", "FY"]);
    let n = ctx.n_rows.min(LINE_ITEMS.len() as u32);
    let end = DATA_START + n - 1;
    for i in 0..n {
        let r = DATA_START + i;
        s.set(at(r, 0), label_cell(LINE_ITEMS[i as usize]));
        for c in 1..=4u32 {
            s.set(at(r, c), Cell::new(money(rng, 50.0, 900.0)));
        }
        let fy = match ctx.variant % 2 {
            0 => format!("SUM({}:{})", a1name(r, 1), a1name(r, 4)),
            _ => format!("{}+{}+{}+{}", a1name(r, 1), a1name(r, 2), a1name(r, 3), a1name(r, 4)),
        };
        s.set(at(r, 5), row_formula(fy));
    }
    let t = end + 2;
    s.set(at(t, 0), total_label("Total", ctx.palette));
    for c in 1..=5u32 {
        s.set(
            at(t, c),
            formula_cell(format!("SUM({}:{})", a1name(DATA_START, c), a1name(end, c)), ctx.palette),
        );
    }
    // Margin row: first line item over total, per quarter.
    s.set(at(t + 1, 0), total_label("Rev share Q1", ctx.palette));
    s.set(
        at(t + 1, 1),
        formula_cell(format!("ROUND({}/{},2)", a1name(DATA_START, 1), a1name(t, 1)), ctx.palette),
    );
    s
}

/// Item | SKU | Qty | Reorder level | Status(=IF) + COUNTIF of reorders.
fn build_inventory(ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
    let mut s = Sheet::new(ctx.sheet_name.clone());
    put_title_and_headers(&mut s, ctx, &["Item", "SKU", "Qty", "Reorder At", "Status"]);
    let n = ctx.n_rows;
    let end = DATA_START + n - 1;
    for i in 0..n {
        let r = DATA_START + i;
        s.set(at(r, 0), label_cell(pick(rng, PRODUCTS)));
        s.set(at(r, 1), Cell::new(format!("SKU-{:05}", rng.random_range(0..100000))));
        s.set(at(r, 2), Cell::new(rng.random_range(0..250) as f64));
        s.set(at(r, 3), Cell::new(rng.random_range(10..60) as f64));
        let low_word = ["REORDER", "LOW", "ORDER NOW"][(ctx.variant % 3) as usize];
        s.set(
            at(r, 4),
            row_formula(format!("IF({}<{},\"{low_word}\",\"OK\")", a1name(r, 2), a1name(r, 3))),
        );
    }
    let low_word = ["REORDER", "LOW", "ORDER NOW"][(ctx.variant % 3) as usize];
    let t = end + 2;
    s.set(at(t, 0), total_label("Units on hand", ctx.palette));
    s.set(
        at(t, 2),
        formula_cell(format!("SUM({}:{})", a1name(DATA_START, 2), a1name(end, 2)), ctx.palette),
    );
    s.set(at(t + 1, 0), total_label("Items to reorder", ctx.palette));
    s.set(
        at(t + 1, 2),
        formula_cell(
            format!("COUNTIF({}:{},\"{low_word}\")", a1name(DATA_START, 4), a1name(end, 4)),
            ctx.palette,
        ),
    );
    s
}

/// Employee | Mon..Fri | Total(=SUM) | Overtime(=IF) + column totals.
fn build_timesheet(ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
    let mut s = Sheet::new(ctx.sheet_name.clone());
    put_title_and_headers(
        &mut s,
        ctx,
        &["Employee", "Mon", "Tue", "Wed", "Thu", "Fri", "Total", "Overtime"],
    );
    let n = ctx.n_rows;
    let end = DATA_START + n - 1;
    for i in 0..n {
        let r = DATA_START + i;
        s.set(at(r, 0), label_cell(&format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, SURNAMES))));
        for c in 1..=5u32 {
            s.set(at(r, c), Cell::new(rng.random_range(4..11) as f64));
        }
        s.set(at(r, 6), row_formula(format!("SUM({}:{})", a1name(r, 1), a1name(r, 5))));
        let ot = 35 + (ctx.variant % 3) * 5; // family-specific OT threshold
        s.set(at(r, 7), row_formula(format!("IF({s6}>{ot},{s6}-{ot},0)", s6 = a1name(r, 6))));
    }
    let t = end + 2;
    s.set(at(t, 0), total_label("Team total", ctx.palette));
    for c in [6u32, 7] {
        s.set(
            at(t, c),
            formula_cell(format!("SUM({}:{})", a1name(DATA_START, c), a1name(end, c)), ctx.palette),
        );
    }
    s
}

/// Student | HW1..3 | Exam | Score(weighted) | Grade (nested IF).
fn build_gradebook(ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
    let mut s = Sheet::new(ctx.sheet_name.clone());
    put_title_and_headers(&mut s, ctx, &["Student", "HW1", "HW2", "HW3", "Exam", "Score", "Grade"]);
    let n = ctx.n_rows;
    let end = DATA_START + n - 1;
    for i in 0..n {
        let r = DATA_START + i;
        s.set(at(r, 0), label_cell(&format!("{} {}", pick(rng, FIRST_NAMES), pick(rng, SURNAMES))));
        for c in 1..=4u32 {
            s.set(at(r, c), Cell::new(rng.random_range(40..101) as f64));
        }
        let (w_hw, w_exam) = match ctx.variant % 3 {
            0 => ("0.15", "0.55"),
            1 => ("0.1", "0.7"),
            _ => ("0.2", "0.4"),
        };
        s.set(
            at(r, 5),
            row_formula(format!(
                "ROUND({w_hw}*{}+{w_hw}*{}+{w_hw}*{}+{w_exam}*{},1)",
                a1name(r, 1),
                a1name(r, 2),
                a1name(r, 3),
                a1name(r, 4)
            )),
        );
        let cut = 88 + (ctx.variant % 3) as i64; // family-specific curve
        s.set(
            at(r, 6),
            row_formula(format!(
                "IF({s0}>={cut},\"A\",IF({s0}>={c2},\"B\",IF({s0}>={c3},\"C\",\"D\")))",
                s0 = a1name(r, 5),
                c2 = cut - 10,
                c3 = cut - 20,
            )),
        );
    }
    let t = end + 2;
    s.set(at(t, 0), total_label("Class average", ctx.palette));
    s.set(
        at(t, 5),
        formula_cell(format!("AVERAGE({}:{})", a1name(DATA_START, 5), a1name(end, 5)), ctx.palette),
    );
    s.set(at(t + 1, 0), total_label("Top score", ctx.palette));
    s.set(
        at(t + 1, 5),
        formula_cell(format!("MAX({}:{})", a1name(DATA_START, 5), a1name(end, 5)), ctx.palette),
    );
    s
}

/// Month | kWh | Cost(=rate*B) | Running(=prev+C). Fixed 12 rows.
fn build_energy(ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
    let mut s = Sheet::new(ctx.sheet_name.clone());
    put_title_and_headers(&mut s, ctx, &["Month", "kWh", "Cost", "YTD Cost"]);
    let rate = 0.09 + (ctx.variant % 7) as f64 * 0.01;
    for i in 0..12u32 {
        let r = DATA_START + i;
        s.set(at(r, 0), label_cell(MONTHS[i as usize]));
        s.set(at(r, 1), Cell::new(rng.random_range(300..2200) as f64));
        let digits = 2 + ctx.variant % 2;
        s.set(at(r, 2), row_formula(format!("ROUND({}*{rate},{digits})", a1name(r, 1))));
        if i == 0 {
            s.set(at(r, 3), row_formula(a1name(r, 2).to_string()));
        } else {
            s.set(at(r, 3), row_formula(format!("{}+{}", a1name(r - 1, 3), a1name(r, 2))));
        }
    }
    let end = DATA_START + 11;
    let t = end + 2;
    s.set(at(t, 0), total_label("Annual", ctx.palette));
    s.set(
        at(t, 1),
        formula_cell(format!("SUM({}:{})", a1name(DATA_START, 1), a1name(end, 1)), ctx.palette),
    );
    s.set(
        at(t, 2),
        formula_cell(format!("SUM({}:{})", a1name(DATA_START, 2), a1name(end, 2)), ctx.palette),
    );
    s.set(at(t + 1, 0), total_label("Peak month kWh", ctx.palette));
    s.set(
        at(t + 1, 1),
        formula_cell(format!("MAX({}:{})", a1name(DATA_START, 1), a1name(end, 1)), ctx.palette),
    );
    s
}

/// Device | Site | Ports | Used | Util(=D/C) | Hostname(=CONCAT) + site counts.
fn build_netinv(ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
    let mut s = Sheet::new(ctx.sheet_name.clone());
    put_title_and_headers(&mut s, ctx, &["Device", "Site", "Ports", "Used", "Util", "Hostname"]);
    let n = ctx.n_rows;
    let end = DATA_START + n - 1;
    let k = 3 + (ctx.variant % 2) as usize;
    let sites: Vec<&str> =
        (0..k).map(|i| SITES[(ctx.variant as usize + i * 5) % SITES.len()]).collect();
    for i in 0..n {
        let r = DATA_START + i;
        s.set(at(r, 0), label_cell(pick(rng, PRODUCTS)));
        s.set(at(r, 1), label_cell(sites[rng.random_range(0..k)]));
        let ports = [8.0, 16.0, 24.0, 48.0][rng.random_range(0..4)];
        s.set(at(r, 2), Cell::new(ports));
        s.set(at(r, 3), Cell::new(rng.random_range(0..=ports as u32) as f64));
        let digits = 1 + ctx.variant % 3;
        s.set(at(r, 4), row_formula(format!("ROUND({}/{},{digits})", a1name(r, 3), a1name(r, 2))));
        let host_len = 3 + ctx.variant % 2;
        s.set(
            at(r, 5),
            row_formula(format!(
                "LOWER(LEFT({},{host_len})&\"-\"&LEFT({},4)&\"-{:02}\")",
                a1name(r, 1),
                a1name(r, 0),
                i + 1,
            )),
        );
    }
    let t = end + 2;
    s.set(at(t - 1, 0), total_label("Devices per site", ctx.palette));
    for (j, site) in sites.iter().enumerate() {
        let r = t + j as u32;
        s.set(at(r, 0), label_cell(site));
        s.set(
            at(r, 1),
            formula_cell(
                format!("COUNTIF({}:{},{})", a1name(DATA_START, 1), a1name(end, 1), a1name(r, 0)),
                ctx.palette,
            ),
        );
    }
    s
}

/// Part | V | mA | Power(=B*C/1000) | Verdict(=IF) + MAX/MIN block.
fn build_chipspec(ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
    let mut s = Sheet::new(ctx.sheet_name.clone());
    put_title_and_headers(&mut s, ctx, &["Part", "Volts", "mA", "Power W", "Verdict"]);
    let n = ctx.n_rows;
    let end = DATA_START + n - 1;
    let limit = 1.0 + (ctx.variant % 5) as f64 * 0.5;
    for i in 0..n {
        let r = DATA_START + i;
        s.set(
            at(r, 0),
            Cell::new(format!(
                "TI-{}{:03}",
                pick(rng, &["LM", "TPS", "OPA", "MSP"]),
                rng.random_range(100..999)
            )),
        );
        s.set(at(r, 1), Cell::new(money(rng, 1.8, 5.5)));
        s.set(at(r, 2), Cell::new(rng.random_range(10..900) as f64));
        let digits = 2 + ctx.variant % 2;
        s.set(
            at(r, 3),
            row_formula(format!("ROUND({}*{}/1000,{digits})", a1name(r, 1), a1name(r, 2))),
        );
        s.set(at(r, 4), row_formula(format!("IF({}<={limit},\"PASS\",\"FAIL\")", a1name(r, 3))));
    }
    let t = end + 2;
    s.set(at(t, 0), total_label("Max power", ctx.palette));
    s.set(
        at(t, 3),
        formula_cell(format!("MAX({}:{})", a1name(DATA_START, 3), a1name(end, 3)), ctx.palette),
    );
    s.set(at(t + 1, 0), total_label("Failures", ctx.palette));
    s.set(
        at(t + 1, 3),
        formula_cell(
            format!("COUNTIF({}:{},\"FAIL\")", a1name(DATA_START, 4), a1name(end, 4)),
            ctx.palette,
        ),
    );
    s
}

/// Category | Budget | Actual | Variance(=C-B) | Used%(=C/B) | Flag(=IF).
fn build_budget(ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
    let mut s = Sheet::new(ctx.sheet_name.clone());
    put_title_and_headers(
        &mut s,
        ctx,
        &["Category", "Budget", "Actual", "Variance", "Used", "Flag"],
    );
    let n = ctx.n_rows.min(CATEGORIES.len() as u32 * 3);
    let end = DATA_START + n - 1;
    for i in 0..n {
        let r = DATA_START + i;
        let cat =
            format!("{} / {}", pick(rng, DEPARTMENTS), CATEGORIES[i as usize % CATEGORIES.len()]);
        s.set(at(r, 0), label_cell(&cat));
        s.set(at(r, 1), Cell::new(money(rng, 1000.0, 50_000.0)));
        s.set(at(r, 2), Cell::new(money(rng, 500.0, 60_000.0)));
        s.set(at(r, 3), row_formula(format!("{}-{}", a1name(r, 2), a1name(r, 1))));
        let digits = 2 + ctx.variant % 2;
        s.set(at(r, 4), row_formula(format!("ROUND({}/{},{digits})", a1name(r, 2), a1name(r, 1))));
        let flag_cut = ["1", "0.9", "1.1"][(ctx.variant % 3) as usize];
        s.set(at(r, 5), row_formula(format!("IF({}>{flag_cut},\"OVER\",\"UNDER\")", a1name(r, 4))));
    }
    let t = end + 2;
    s.set(at(t, 0), total_label("Totals", ctx.palette));
    for c in [1u32, 2, 3] {
        s.set(
            at(t, c),
            formula_cell(format!("SUM({}:{})", a1name(DATA_START, c), a1name(end, c)), ctx.palette),
        );
    }
    s.set(at(t + 1, 0), total_label("Overruns", ctx.palette));
    s.set(
        at(t + 1, 2),
        formula_cell(
            format!("COUNTIF({}:{},\"OVER\")", a1name(DATA_START, 5), a1name(end, 5)),
            ctx.palette,
        ),
    );
    s
}

/// Task | Owner | Start | End | Days(=D-C) | Tag(string) — date+string heavy.
fn build_projects(ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
    let mut s = Sheet::new(ctx.sheet_name.clone());
    put_title_and_headers(&mut s, ctx, &["Task", "Owner", "Start", "End", "Days", "Tag"]);
    let n = ctx.n_rows;
    let end = DATA_START + n - 1;
    for i in 0..n {
        let r = DATA_START + i;
        s.set(at(r, 0), label_cell(pick(rng, TASKS)));
        s.set(at(r, 1), label_cell(pick(rng, FIRST_NAMES)));
        let start = date_to_serial(2023, rng.random_range(1..=12), rng.random_range(1..=28));
        let dur = rng.random_range(3..60) as i64;
        s.set(at(r, 2), Cell::new(af_grid::CellValue::Date(start)));
        s.set(at(r, 3), Cell::new(af_grid::CellValue::Date(start + dur)));
        let days = match ctx.variant % 2 {
            0 => format!("{}-{}", a1name(r, 3), a1name(r, 2)),
            _ => format!("DAYS({},{})", a1name(r, 3), a1name(r, 2)),
        };
        s.set(at(r, 4), row_formula(days));
        let tag_len = 3 + ctx.variant % 3;
        s.set(
            at(r, 5),
            row_formula(format!(
                "UPPER(LEFT({},{tag_len}))&\"-\"&LEFT({},3)&\"-\"&YEAR({})",
                a1name(r, 0),
                a1name(r, 1),
                a1name(r, 2)
            )),
        );
    }
    let t = end + 2;
    s.set(at(t, 0), total_label("Longest task", ctx.palette));
    s.set(
        at(t, 4),
        formula_cell(format!("MAX({}:{})", a1name(DATA_START, 4), a1name(end, 4)), ctx.palette),
    );
    s
}

/// Orders table + a side rate table queried via `VLOOKUP` with `$`-refs.
fn build_lookup(ctx: &BuildCtx, rng: &mut StdRng) -> Sheet {
    let mut s = Sheet::new(ctx.sheet_name.clone());
    put_title_and_headers(&mut s, ctx, &["Order", "Product", "Qty", "Unit Price", "Amount"]);
    // Side rate table in columns G:H (fixed across instances of a family).
    let k = 5 + (ctx.variant % 3) as usize;
    let products: Vec<&str> =
        (0..k).map(|i| PRODUCTS[(ctx.variant as usize + i * 3) % PRODUCTS.len()]).collect();
    s.set(at(HEADER_ROW, 6), header_cell("Product", ctx.palette));
    s.set(at(HEADER_ROW, 7), header_cell("Rate", ctx.palette));
    for (i, prod) in products.iter().enumerate() {
        let r = DATA_START + i as u32;
        s.set(at(r, 6), label_cell(prod));
        s.set(at(r, 7), Cell::new(money(rng, 5.0, 200.0)));
    }
    let rate_range = format!("$G${}:$H${}", DATA_START + 1, DATA_START + k as u32);
    let n = ctx.n_rows;
    let end = DATA_START + n - 1;
    for i in 0..n {
        let r = DATA_START + i;
        s.set(at(r, 0), Cell::new(format!("ORD-{:04}", 1000 + i)));
        s.set(at(r, 1), label_cell(products[rng.random_range(0..k)]));
        s.set(at(r, 2), Cell::new(rng.random_range(1..40) as f64));
        s.set(at(r, 3), row_formula(format!("VLOOKUP({},{rate_range},2,FALSE)", a1name(r, 1))));
        let amount = match ctx.variant % 2 {
            0 => format!("{}*{}", a1name(r, 2), a1name(r, 3)),
            _ => format!("ROUND({}*{},2)", a1name(r, 2), a1name(r, 3)),
        };
        s.set(at(r, 4), row_formula(amount));
    }
    let t = end + 2;
    s.set(at(t, 0), total_label("Grand total", ctx.palette));
    s.set(
        at(t, 4),
        formula_cell(format!("SUM({}:{})", a1name(DATA_START, 4), a1name(end, 4)), ctx.palette),
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::Palette;
    use af_formula::{classify, parse_formula, recalculate, FormulaType};
    use rand::SeedableRng;

    fn build(arch: Archetype, n_rows: u32, variant: u64) -> Sheet {
        let mut rng = StdRng::seed_from_u64(7);
        let palette = Palette::random(&mut rng);
        let ctx = BuildCtx {
            palette: &palette,
            sheet_name: "T".into(),
            n_rows,
            title: "Test title",
            variant,
        };
        let mut s = arch.build(&ctx, &mut rng);
        recalculate(&mut s);
        s
    }

    #[test]
    fn all_archetypes_produce_parseable_formulas() {
        for arch in Archetype::ALL {
            let s = build(arch, 12, 3);
            let mut count = 0;
            for (_at, f) in s.formulas() {
                parse_formula(f).unwrap_or_else(|e| panic!("{arch:?}: bad formula {f}: {e}"));
                count += 1;
            }
            assert!(count >= 3, "{arch:?} produced only {count} formulas");
        }
    }

    #[test]
    fn formulas_evaluate_without_errors() {
        use af_grid::CellValue;
        for arch in Archetype::ALL {
            let s = build(arch, 10, 1);
            for (at, _f) in s.formulas() {
                let v = s.value(at);
                assert!(
                    !matches!(v, CellValue::Error(_)),
                    "{arch:?} formula at {at} evaluated to {v:?}"
                );
            }
        }
    }

    #[test]
    fn survey_matches_paper_shape() {
        let s = build(Archetype::SurveyTally, 31, 0);
        // Find a COUNTIF in the tally block.
        let countifs: Vec<_> = s.formulas().filter(|(_, f)| f.starts_with("COUNTIF")).collect();
        assert!(countifs.len() >= 3);
        // Template should be COUNTIF(_:_,_) exactly like Fig. 1.
        let e = parse_formula(countifs[0].1).unwrap();
        let (t, params) = af_formula::Template::extract(&e);
        assert_eq!(t.signature(), "COUNTIF(_:_,_)");
        assert_eq!(params.len(), 3);
    }

    #[test]
    fn type_coverage_spans_buckets() {
        use std::collections::HashSet;
        let mut seen: HashSet<FormulaType> = HashSet::new();
        for arch in Archetype::ALL {
            let s = build(arch, 12, 2);
            for (_, f) in s.formulas() {
                seen.insert(classify(&parse_formula(f).unwrap()));
            }
        }
        for t in
            [FormulaType::Conditional, FormulaType::Math, FormulaType::String, FormulaType::Other]
        {
            assert!(seen.contains(&t), "missing formula type {t}");
        }
    }

    #[test]
    fn complexity_spans_buckets() {
        let mut long = 0;
        let mut short = 0;
        for arch in Archetype::ALL {
            let s = build(arch, 12, 2);
            for (_, f) in s.formulas() {
                let c = af_formula::complexity(&parse_formula(f).unwrap());
                if c >= 7 {
                    long += 1;
                }
                if c < 3 {
                    short += 1;
                }
            }
        }
        assert!(long > 0, "need complex formulas for Fig. 10");
        assert!(short > 0, "need short formulas for Fig. 10");
    }

    #[test]
    fn string_heavy_flags() {
        assert!(Archetype::NetworkInventory.is_string_heavy());
        assert!(Archetype::ProjectTracker.is_string_heavy());
        assert!(!Archetype::SalesReport.is_string_heavy());
    }

    #[test]
    fn variants_change_family_logic() {
        let a = build(Archetype::SalesReport, 10, 0);
        let b = build(Archetype::SalesReport, 10, 1);
        let fa: Vec<_> = a.formulas().map(|(_, f)| f.to_string()).collect();
        let fb: Vec<_> = b.formulas().map(|(_, f)| f.to_string()).collect();
        assert_ne!(fa, fb, "variant should flip AVERAGE/MEDIAN");
    }
}
