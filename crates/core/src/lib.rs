//! `af-core` — the Auto-Formula system (the paper's primary contribution).
//!
//! Offline (§4.2–4.5): harvest similar-sheet/similar-region training pairs
//! by weak supervision, augment them, and train a two-branch representation
//! model with semi-hard triplet learning — a coarse-grained CNN branch
//! `M_c` for *similar-sheet* search and a fine-grained per-cell branch
//! `M_f` for *similar-region* search, sharing a per-cell dimension-
//! reduction MLP (Fig. 4).
//!
//! Online (§4.1, §4.6, Algorithm 2): given a target sheet and cell,
//! * **S1** retrieve top-K similar sheets from an ANN index of coarse
//!   embeddings;
//! * **S2** find the reference formula whose surrounding region is most
//!   similar to the target cell's region (fine embeddings);
//! * **S3** re-map each parameter cell of the reference formula into the
//!   target sheet by local similar-region search, then instantiate the
//!   formula template.

pub mod artifact;
pub mod config;
pub mod embedder;
pub mod failpoint;
pub mod features;
pub mod index;
pub mod model;
pub mod pipeline;
pub mod training;

/// Storage codec for artifact embedding tables (re-exported from
/// `af-store` so callers choosing [`StoreOptions`] need no extra dep).
pub use af_store::Codec;
pub use artifact::{ArtifactError, ShardLayout, StoreOptions};
pub use config::{AnnBackend, AutoFormulaConfig};
pub use embedder::{SheetEmbedder, SheetEmbedding};
pub use index::{ReferenceIndex, SheetKey, SheetMeta};
pub use model::RepresentationModel;
pub use pipeline::{AutoFormula, PredictOptions, Prediction};
pub use training::{train_model, TrainReport, TrainingOptions};
