//! Repo-invariant lint pass: `cargo xtask lint`.
//!
//! A hand-rolled (std-only, no deps) source walker that enforces the
//! invariants the compiler can't: panic discipline on the serving read
//! path, justification comments on every unsafe block and every atomic
//! ordering choice, and the fail-point site table staying in sync with
//! the code. CI runs this as a required gate; see ARCHITECTURE.md
//! §"Verification" for the rule rationale.
//!
//! Rules (waivable per-site with `// lint: allow(<rule>) — reason`):
//!
//! * `no_panic` — `crates/serve/src` (non-test): no `.unwrap()`,
//!   `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`.
//!   A panic on the serve read path would quarantine a healthy shard
//!   (the catch_unwind supervisor can't tell a bug from corruption), so
//!   the read path must degrade, not assert. Write-path sites carry an
//!   explicit waiver naming why they're exempt.
//! * `safety_comment` — every `unsafe` occurrence (block, impl, fn) in
//!   any crate's `src` needs a `// SAFETY:` comment on the same line or
//!   in the contiguous comment/code block above it.
//! * `ordering_comment` — every atomic access naming an
//!   `Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}` needs an
//!   `// ordering:` justification in the same contiguous block.
//!   `crates/check/src` is exempt: it is the modeling layer itself,
//!   where `Ordering` values are *data* (the ordering being simulated),
//!   not memory-model choices of the checker.
//! * `failpoint_documented` — every `fail_point!("name")` site must
//!   appear in ARCHITECTURE.md's fail-point table (§3.7), so the chaos
//!   surface is always documented.
//! * `obs_site_documented` — every af-obs instrumentation site
//!   (`span!("name")`, `observe!("name")`, `event!("name")`) must
//!   appear in ARCHITECTURE.md's observability site table (§8), so the
//!   telemetry surface is always documented. `crates/obs/src` is
//!   exempt: it defines the macros, and its docs/tests use sample
//!   names.
//!
//! The scanner is line-based: trailing `//` comments are stripped before
//! code matching, doc/comment-only lines are skipped, `#[cfg(test)]`
//! items are tracked by brace depth and exempted, and the "contiguous
//! block" for justification lookup runs upward to the nearest blank line
//! (capped at 16 lines) — so one comment can bless an adjacent run of
//! sites, e.g. a counters struct literal where every field is a Relaxed
//! load.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

// ------------------------------------------------------------ the pass

struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

fn lint() -> ExitCode {
    let root = repo_root();
    let arch = std::fs::read_to_string(root.join("ARCHITECTURE.md")).unwrap_or_default();
    let mut violations = Vec::new();
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    files.sort();
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", file.display());
                return ExitCode::FAILURE;
            }
        };
        lint_file(file, &src, &arch, &mut violations);
    }
    if violations.is_empty() {
        println!("xtask lint: {} files clean", files.len());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        let rel = v.file.strip_prefix(&root).unwrap_or(&v.file);
        eprintln!("{}:{}: [{}] {}", rel.display(), v.line, v.rule, v.message);
    }
    eprintln!("xtask lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}

/// `src/` `.rs` files of every crate under `dir` (recursive).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Only descend into `src` trees (skip `tests/`, `benches/`,
            // `target/`): integration tests are exempt from every rule.
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "src" {
                collect_rs_all(&path, out);
            } else if !name.starts_with('.') && name != "target" {
                collect_rs(&path, out);
            }
        }
    }
}

fn collect_rs_all(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_all(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn repo_root() -> PathBuf {
    // xtask runs via `cargo xtask` from anywhere in the workspace; the
    // manifest dir is <root>/xtask.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(Path::to_path_buf).unwrap_or(manifest)
}

// ------------------------------------------------------- per-file scan

/// One source line, pre-split into its code part (trailing `//` comment
/// stripped, empty for comment-only lines) and raw text (for comment
/// content lookups).
struct Line<'a> {
    raw: &'a str,
    code: &'a str,
}

fn lint_file(file: &Path, src: &str, arch: &str, out: &mut Vec<Violation>) {
    let path_str = file.to_string_lossy().replace('\\', "/");
    let in_serve = path_str.contains("crates/serve/src");
    let in_check = path_str.contains("crates/check/src");
    let in_obs = path_str.contains("crates/obs/src");

    let mut lines: Vec<Line<'_>> = Vec::new();
    let mut in_block_comment = false;
    for raw in src.lines() {
        let code = code_part(raw, &mut in_block_comment);
        lines.push(Line { raw, code });
    }
    let test_mask = test_regions(&lines);

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let code = line.code;
        if code.trim().is_empty() {
            continue;
        }
        let in_test = test_mask[i];

        // R1 no_panic: serving crate, non-test code only.
        if in_serve && !in_test {
            const PANICKY: &[&str] =
                &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];
            for pat in PANICKY {
                if code.contains(pat) && !waived(&lines, i, "no_panic") {
                    out.push(Violation {
                        file: file.to_path_buf(),
                        line: lineno,
                        rule: "no_panic",
                        message: format!(
                            "`{pat}` in serving code — the read path must degrade, not \
                             panic (waive write-path sites with `// lint: allow(no_panic)`)"
                        ),
                    });
                }
            }
        }

        // R2 safety_comment: every unsafe occurrence needs `// SAFETY:`.
        if !in_test && has_word(code, "unsafe") && !code.trim_start().starts_with('#') {
            let justified = line.raw.contains("SAFETY:")
                || block_above_contains(&lines, i, "SAFETY:")
                || waived(&lines, i, "safety_comment");
            if !justified {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: lineno,
                    rule: "safety_comment",
                    message: "`unsafe` without a `// SAFETY:` comment in the same block".into(),
                });
            }
        }

        // R3 ordering_comment: atomic ordering choices need justification.
        if !in_test && !in_check && names_atomic_ordering(code) {
            let justified = comment_of(line.raw).contains("ordering:")
                || block_above_contains(&lines, i, "ordering:")
                || waived(&lines, i, "ordering_comment");
            if !justified {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: lineno,
                    rule: "ordering_comment",
                    message: "atomic access without an `// ordering:` justification".into(),
                });
            }
        }

        // R4 failpoint_documented: site names must be in ARCHITECTURE.md.
        if !in_test {
            if let Some(name) = failpoint_name(code) {
                let documented = arch.contains(&format!("`{name}`"))
                    || waived(&lines, i, "failpoint_documented");
                if !documented {
                    let mut message = String::new();
                    let _ = write!(
                        message,
                        "fail point `{name}` is not in ARCHITECTURE.md's fail-point table"
                    );
                    out.push(Violation {
                        file: file.to_path_buf(),
                        line: lineno,
                        rule: "failpoint_documented",
                        message,
                    });
                }
            }
        }

        // R5 obs_site_documented: instrumentation sites must be in
        // ARCHITECTURE.md's observability site table (§8).
        if !in_test && !in_obs {
            if let Some(name) = obs_site_name(code) {
                let documented =
                    arch.contains(&format!("`{name}`")) || waived(&lines, i, "obs_site_documented");
                if !documented {
                    let mut message = String::new();
                    let _ = write!(
                        message,
                        "obs site `{name}` is not in ARCHITECTURE.md's observability site table"
                    );
                    out.push(Violation {
                        file: file.to_path_buf(),
                        line: lineno,
                        rule: "obs_site_documented",
                        message,
                    });
                }
            }
        }
    }
}

// --------------------------------------------------------- line lexing

/// The code part of a line: block comments and the trailing `//` comment
/// removed, with just enough string-literal tracking that a `//` inside
/// a string doesn't truncate the line. Returns a slice of `raw`.
fn code_part<'a>(raw: &'a str, in_block_comment: &mut bool) -> &'a str {
    let bytes = raw.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                *in_block_comment = false;
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        match bytes[i] {
            b'\\' if in_string => i += 1, // skip the escaped byte
            b'"' => in_string = !in_string,
            b'/' if !in_string && bytes.get(i + 1) == Some(&b'/') => {
                return &raw[..i];
            }
            b'/' if !in_string && bytes.get(i + 1) == Some(&b'*') => {
                // Treat the rest of the line as comment; multi-segment
                // lines (`/* a */ code`) are rare enough to ignore.
                *in_block_comment = true;
                return &raw[..i];
            }
            _ => {}
        }
        i += 1;
    }
    if *in_block_comment {
        ""
    } else {
        raw
    }
}

/// The trailing `//` comment of a line (empty if none).
fn comment_of(raw: &str) -> &str {
    let mut ignore = false;
    let code = code_part(raw, &mut ignore);
    &raw[code.len()..]
}

/// `needle` as a whole word (not a fragment of a longer identifier).
fn has_word(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before = code[..at].chars().next_back();
        let after = code[at + needle.len()..].chars().next();
        let is_ident = |c: Option<char>| c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !is_ident(before) && !is_ident(after) {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Does the code name one of the five atomic memory orderings?
/// (`cmp::Ordering`'s variants are `Less`/`Equal`/`Greater`, so matching
/// the variant names distinguishes the two enums without type info.)
fn names_atomic_ordering(code: &str) -> bool {
    [
        "Ordering::Relaxed",
        "Ordering::Acquire",
        "Ordering::Release",
        "Ordering::AcqRel",
        "Ordering::SeqCst",
    ]
    .iter()
    .any(|p| code.contains(p))
}

/// The string literal of a `fail_point!("...")` invocation, skipping the
/// macro's own definition (`macro_rules!`).
fn failpoint_name(code: &str) -> Option<&str> {
    let at = code.find("fail_point!")?;
    if code.contains("macro_rules!") {
        return None;
    }
    let rest = &code[at..];
    let open = rest.find('"')? + 1;
    let close = open + rest[open..].find('"')?;
    Some(&rest[open..close])
}

/// The site literal of an af-obs instrumentation macro invocation
/// (`span!("name", ...)`, `observe!("name", ...)`, `event!("name", ...)`),
/// skipping macro definitions. The literal is the macro's first argument,
/// so the first `"..."` after the earliest matching macro is the site.
fn obs_site_name(code: &str) -> Option<&str> {
    if code.contains("macro_rules!") {
        return None;
    }
    let at = ["span!(", "observe!(", "event!("]
        .iter()
        .filter_map(|m| code.find(m).map(|i| i + m.len()))
        .min()?;
    let rest = &code[at..];
    let open = rest.find('"')? + 1;
    let close = open + rest[open..].find('"')?;
    Some(&rest[open..close])
}

// ---------------------------------------------------- block-level scans

/// Walk upward through the contiguous block (to the nearest blank line,
/// capped at 16 lines) looking for `needle` anywhere — comments included.
fn block_above_contains(lines: &[Line<'_>], from: usize, needle: &str) -> bool {
    let lo = from.saturating_sub(16);
    for i in (lo..from).rev() {
        let raw = lines[i].raw;
        if raw.trim().is_empty() {
            return false;
        }
        if raw.contains(needle) {
            return true;
        }
    }
    false
}

/// A `// lint: allow(rule)` waiver on the line itself or in the block
/// above it.
fn waived(lines: &[Line<'_>], at: usize, rule: &str) -> bool {
    let marker = format!("lint: allow({rule})");
    lines[at].raw.contains(&marker) || block_above_contains(lines, at, &marker)
}

/// Per-line mask: true where the line belongs to a `#[cfg(test)]` item,
/// tracked by brace depth from the attribute's item.
fn test_regions(lines: &[Line<'_>]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth = 0i64;
    let mut pending_attr = false;
    // Depth at entry of the active test region (regions don't nest in
    // practice — an inner `#[cfg(test)]` is already masked).
    let mut test_entry: Option<i64> = None;
    for (i, line) in lines.iter().enumerate() {
        let code = line.code;
        let trimmed = code.trim();
        if test_entry.is_none()
            && trimmed.starts_with("#[")
            && trimmed.contains("cfg(")
            && has_word(trimmed, "test")
        {
            pending_attr = true;
        }
        let opens = code.bytes().filter(|&b| b == b'{').count() as i64;
        let closes = code.bytes().filter(|&b| b == b'}').count() as i64;
        if let Some(entry) = test_entry {
            mask[i] = true;
            depth += opens - closes;
            if depth <= entry {
                test_entry = None;
            }
            continue;
        }
        if pending_attr {
            mask[i] = true;
            if opens > 0 {
                test_entry = Some(depth);
                depth += opens - closes;
                if depth <= test_entry.unwrap() {
                    // Single-line item: `#[cfg(test)] fn f() {}`.
                    test_entry = None;
                }
                pending_attr = false;
                continue;
            } else if trimmed.ends_with(';') {
                // `#[cfg(test)] use ...;` — single-item attribute.
                pending_attr = false;
            }
        }
        depth += opens - closes;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(src: &str) -> (Vec<String>, Vec<String>) {
        // Returns (code parts, raw lines) for assertion convenience.
        let mut in_block = false;
        let mut codes = Vec::new();
        for raw in src.lines() {
            codes.push(code_part(raw, &mut in_block).to_string());
        }
        (codes, src.lines().map(str::to_string).collect())
    }

    #[test]
    fn code_part_strips_comments_not_strings() {
        let (codes, _) =
            mk("let x = 1; // trailing\nlet y = \"a // b\";\n/* open\nstill\n*/ after");
        assert_eq!(codes[0], "let x = 1; ");
        assert_eq!(codes[1], "let y = \"a // b\";");
        assert_eq!(codes[2], "");
        assert_eq!(codes[3], "");
        // After a mid-line `*/` the whole line counts as code again
        // (the stray `*/` prefix is harmless to every matcher).
        assert_eq!(codes[4], "*/ after");
    }

    #[test]
    fn test_regions_mask_cfg_test_items() {
        let src = "fn a() {\n    x();\n}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn b() {}\n";
        let mut in_block = false;
        let lines: Vec<Line<'_>> =
            src.lines().map(|raw| Line { raw, code: code_part(raw, &mut in_block) }).collect();
        let mask = test_regions(&lines);
        assert_eq!(mask, [false, false, false, true, true, true, true, false]);
    }

    #[test]
    fn failpoint_name_extracts_site_not_macro_def() {
        assert_eq!(
            failpoint_name("    fail_point!(\"serve::compact\", Err);"),
            Some("serve::compact")
        );
        assert_eq!(failpoint_name("macro_rules! fail_point {"), None);
        assert_eq!(failpoint_name("let x = 1;"), None);
    }

    #[test]
    fn obs_site_name_extracts_site_not_macro_def() {
        assert_eq!(
            obs_site_name("    let s1 = af_obs::span!(\"serve::s1_scan\");"),
            Some("serve::s1_scan")
        );
        assert_eq!(
            obs_site_name("af_obs::observe!(\"serve::compact_backlog\", n);"),
            Some("serve::compact_backlog")
        );
        assert_eq!(
            obs_site_name("af_obs::event!(\"serve::quarantine\", \"imposed\", shard);"),
            Some("serve::quarantine")
        );
        assert_eq!(obs_site_name("macro_rules! span {"), None);
        assert_eq!(obs_site_name("let x = 1;"), None);
    }

    #[test]
    fn word_matching_ignores_identifier_fragments() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(!has_word("deny(unsafe_op_in_unsafe_fn)", "unsafe"));
    }
}
