//! Property tests: the quantized codecs' round-trip error against the f32
//! source must stay inside the analytic bounds for arbitrary vectors —
//! f16 within half a ulp (≤ 2⁻¹¹ relative in the normal range), int8
//! within half a quantization level (`(max−min)/510` per vector) — and
//! the asymmetric distance kernels must agree bit-for-bit with
//! dequantize-then-`l2_sq` for arbitrary shapes including remainder lanes.

use af_nn::kernel::{l2_sq, LANES};
use af_store::{Codec, DenseStore, VectorStore};
use proptest::prelude::*;

fn dims_with_remainders() -> impl Strategy<Value = usize> {
    (0usize..4, 0usize..LANES).prop_map(|(chunks, rem)| (chunks * LANES + rem).max(1))
}

fn vec_of(n: usize, seed: u64) -> Vec<f32> {
    // Deterministic pseudo-random fill (proptest's seed drives variety).
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 30) as f32 - 2.0) * 2.0
        })
        .collect()
}

proptest! {
    #[test]
    fn f16_round_trip_error_bound(dim in dims_with_remainders(), seed in 0u64..2000) {
        let v = vec_of(dim, seed);
        let mut s = DenseStore::new(dim, Codec::F16);
        s.push(&v);
        let dq = s.row_owned(0);
        for (a, b) in v.iter().zip(&dq) {
            // Normal-range half-ulp bound; everything val() produces is
            // far above the subnormal threshold or exactly zero.
            prop_assert!((a - b).abs() <= a.abs() * 4.9e-4 + 6.0e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn int8_round_trip_error_bound(dim in dims_with_remainders(), seed in 0u64..2000) {
        let v = vec_of(dim, seed);
        let (lo, hi) = v.iter().fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &x| {
            (l.min(x), h.max(x))
        });
        let mut s = DenseStore::new(dim, Codec::Int8);
        s.push(&v);
        let dq = s.row_owned(0);
        let bound = (hi - lo).max(0.0) / 510.0 + 1e-5;
        for (a, b) in v.iter().zip(&dq) {
            prop_assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn asymmetric_distance_equals_dequant_distance(
        dim in dims_with_remainders(),
        seed in 0u64..500,
    ) {
        let q = vec_of(dim, seed ^ 0xABCD);
        for codec in [Codec::F16, Codec::Int8] {
            let mut s = DenseStore::new(dim, codec);
            for r in 0..3u64 {
                s.push(&vec_of(dim, seed.wrapping_add(r)));
            }
            for i in 0..3 {
                let dq = s.row_owned(i);
                prop_assert_eq!(
                    s.l2_sq_row(&q, i).to_bits(),
                    l2_sq(&q, &dq).to_bits(),
                    "{:?} row {}", codec, i
                );
            }
        }
    }

    #[test]
    fn quantized_distances_track_exact_distances(
        dim in 8usize..64,
        seed in 0u64..500,
    ) {
        // The point of the whole exercise: on realistic vectors the
        // quantized distance is a small perturbation of the exact one.
        let q = vec_of(dim, seed ^ 0x5EED);
        let v = vec_of(dim, seed);
        let exact = l2_sq(&q, &v);
        for (codec, tol) in [(Codec::F16, 1e-2f32), (Codec::Int8, 3e-1f32)] {
            let mut s = DenseStore::new(dim, codec);
            s.push(&v);
            let approx = s.l2_sq_row(&q, 0);
            prop_assert!(
                (approx - exact).abs() <= tol * (1.0 + exact),
                "{:?}: {} vs {}", codec, approx, exact
            );
        }
    }

    #[test]
    fn pq_round_trip_error_stays_inside_the_subspace_spread(
        dim in 2usize..40,
        m in 0usize..6,
        rows in 8usize..40,
        seed in 0u64..300,
    ) {
        // A trained PQ row decodes to per-subspace centroids: each decoded
        // component must stay within the data's per-component spread (a
        // centroid is a mean of training sub-rows or an exact sample, and
        // the f16 rounding adds at most half a ulp). Also: the fused ADC
        // scan matches the table-free definition bit for bit on arbitrary
        // shapes.
        let mut flat = Vec::with_capacity(rows * dim);
        for r in 0..rows as u64 {
            flat.extend(vec_of(dim, seed.wrapping_add(r)));
        }
        let s = af_store::PqStore::trained_from_rows(dim, m, &flat);
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &x in &flat {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let slack = (hi - lo).abs() * 4.9e-4 + 1e-6; // f16 rounding of a mean
        for i in 0..s.rows() {
            for b in s.row_owned(i) {
                prop_assert!(
                    b >= lo - slack && b <= hi + slack,
                    "decoded {} outside [{}, {}]", b, lo, hi
                );
            }
        }
        let q = vec_of(dim, seed ^ 0xF00D);
        let table = s.adc_table(&q).unwrap();
        for i in 0..s.rows() {
            prop_assert_eq!(s.l2_sq_adc(&table, i).to_bits(), s.l2_sq_row(&q, i).to_bits());
        }
    }

    #[test]
    fn wire_round_trip_is_lossless_for_stored_state(
        dim in dims_with_remainders(),
        rows in 0usize..6,
        seed in 0u64..300,
    ) {
        use bytes::BytesMut;
        for codec in Codec::ALL {
            let mut s = DenseStore::new(dim, codec);
            for r in 0..rows as u64 {
                s.push(&vec_of(dim, seed.wrapping_add(r)));
            }
            let mut buf = BytesMut::new();
            af_store::put_store(&mut buf, &s);
            let loaded = af_store::get_store(&mut buf.freeze()).unwrap();
            prop_assert_eq!(loaded.rows(), s.rows());
            for i in 0..s.rows() {
                // The *stored* representation survives exactly — decode of
                // encode loses nothing beyond the original quantization.
                prop_assert_eq!(loaded.row_owned(i), s.row_owned(i));
            }
        }
    }
}
