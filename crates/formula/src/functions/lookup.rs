//! Lookup and reference functions over array operands.

use super::{arity, number_arg, scalar_arg};
use crate::eval::{compare_values, ArrayValue, Operand};
use af_grid::{CellError, CellValue};
use std::cmp::Ordering;

pub(super) fn call(name: &str, args: &[Operand]) -> Result<CellValue, CellError> {
    match name {
        "VLOOKUP" | "HLOOKUP" => {
            arity(args, 3, 4)?;
            let needle = scalar_arg(args, 0)?;
            let table = array_arg(args, 1)?;
            let idx = number_arg(args, 2)? as u32;
            let exact = if args.len() == 4 {
                !super::truthy(&scalar_arg(args, 3)?)?
            } else {
                false // default is approximate match
            };
            let vertical = name == "VLOOKUP";
            let lanes = if vertical { table.rows } else { table.cols };
            let depth = if vertical { table.cols } else { table.rows };
            if idx == 0 || idx > depth {
                return Err(CellError::Ref);
            }
            let key_at = |lane: u32| -> &CellValue {
                if vertical {
                    table.get(lane, 0)
                } else {
                    table.get(0, lane)
                }
            };
            let out_at = |lane: u32| -> CellValue {
                if vertical {
                    table.get(lane, idx - 1).clone()
                } else {
                    table.get(idx - 1, lane).clone()
                }
            };
            if exact {
                for lane in 0..lanes {
                    if compare_values(key_at(lane), &needle) == Ordering::Equal {
                        return Ok(out_at(lane));
                    }
                }
                Err(CellError::Na)
            } else {
                // Approximate: largest key <= needle (keys assumed sorted).
                let mut best: Option<u32> = None;
                for lane in 0..lanes {
                    if compare_values(key_at(lane), &needle) != Ordering::Greater {
                        best = Some(lane);
                    }
                }
                best.map(out_at).ok_or(CellError::Na)
            }
        }
        "INDEX" => {
            arity(args, 2, 3)?;
            let table = array_arg(args, 0)?;
            let row = number_arg(args, 1)? as u32;
            let col = if args.len() == 3 { number_arg(args, 2)? as u32 } else { 1 };
            // One-dimensional arrays accept a single index along their axis.
            let (r, c) = if args.len() == 2 && table.rows == 1 { (1, row) } else { (row, col) };
            if r == 0 || c == 0 || r > table.rows || c > table.cols {
                return Err(CellError::Ref);
            }
            Ok(table.get(r - 1, c - 1).clone())
        }
        "MATCH" => {
            arity(args, 2, 3)?;
            let needle = scalar_arg(args, 0)?;
            let arr = array_arg(args, 1)?;
            let mode = if args.len() == 3 { number_arg(args, 2)? } else { 1.0 };
            let n = arr.data.len();
            if mode == 0.0 {
                for (i, v) in arr.data.iter().enumerate() {
                    if compare_values(v, &needle) == Ordering::Equal {
                        return Ok(CellValue::Number((i + 1) as f64));
                    }
                }
                Err(CellError::Na)
            } else if mode > 0.0 {
                // Largest value <= needle.
                let mut best = None;
                for (i, v) in arr.data.iter().enumerate().take(n) {
                    if compare_values(v, &needle) != Ordering::Greater {
                        best = Some(i + 1);
                    }
                }
                best.map(|i| CellValue::Number(i as f64)).ok_or(CellError::Na)
            } else {
                // Smallest value >= needle (array assumed descending).
                let mut best = None;
                for (i, v) in arr.data.iter().enumerate().take(n) {
                    if compare_values(v, &needle) != Ordering::Less {
                        best = Some(i + 1);
                    }
                }
                best.map(|i| CellValue::Number(i as f64)).ok_or(CellError::Na)
            }
        }
        "CHOOSE" => {
            if args.len() < 2 {
                return Err(CellError::Value);
            }
            let idx = number_arg(args, 0)? as usize;
            if idx == 0 || idx >= args.len() {
                return Err(CellError::Value);
            }
            scalar_arg(args, idx)
        }
        _ => Err(CellError::Name),
    }
}

fn array_arg(args: &[Operand], i: usize) -> Result<ArrayValue, CellError> {
    match args.get(i) {
        Some(Operand::Array(a)) => Ok(a.clone()),
        Some(Operand::Scalar(v)) => Ok(ArrayValue { rows: 1, cols: 1, data: vec![v.clone()] }),
        None => Err(CellError::Value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3×2 table: names in column 1, scores in column 2.
    fn table() -> Operand {
        Operand::Array(ArrayValue {
            rows: 3,
            cols: 2,
            data: vec![
                CellValue::text("ann"),
                CellValue::Number(10.0),
                CellValue::text("bo"),
                CellValue::Number(20.0),
                CellValue::text("cy"),
                CellValue::Number(30.0),
            ],
        })
    }

    fn s(v: CellValue) -> Operand {
        Operand::Scalar(v)
    }

    #[test]
    fn vlookup_exact() {
        let out = call(
            "VLOOKUP",
            &[
                s(CellValue::text("bo")),
                table(),
                s(CellValue::Number(2.0)),
                s(CellValue::Bool(false)),
            ],
        );
        assert_eq!(out, Ok(CellValue::Number(20.0)));
        let miss = call(
            "VLOOKUP",
            &[
                s(CellValue::text("zz")),
                table(),
                s(CellValue::Number(2.0)),
                s(CellValue::Bool(false)),
            ],
        );
        assert_eq!(miss, Err(CellError::Na));
    }

    #[test]
    fn vlookup_approximate() {
        let nums = Operand::Array(ArrayValue {
            rows: 3,
            cols: 2,
            data: vec![
                CellValue::Number(0.0),
                CellValue::text("low"),
                CellValue::Number(50.0),
                CellValue::text("mid"),
                CellValue::Number(90.0),
                CellValue::text("high"),
            ],
        });
        let out = call("VLOOKUP", &[s(CellValue::Number(75.0)), nums, s(CellValue::Number(2.0))]);
        assert_eq!(out, Ok(CellValue::text("mid")));
    }

    #[test]
    fn index_two_dimensional() {
        assert_eq!(
            call("INDEX", &[table(), s(CellValue::Number(3.0)), s(CellValue::Number(2.0))]),
            Ok(CellValue::Number(30.0))
        );
        assert_eq!(
            call("INDEX", &[table(), s(CellValue::Number(4.0)), s(CellValue::Number(1.0))]),
            Err(CellError::Ref)
        );
    }

    #[test]
    fn match_modes() {
        let col = Operand::Array(ArrayValue {
            rows: 4,
            cols: 1,
            data: vec![
                CellValue::Number(10.0),
                CellValue::Number(20.0),
                CellValue::Number(30.0),
                CellValue::Number(40.0),
            ],
        });
        assert_eq!(
            call("MATCH", &[s(CellValue::Number(30.0)), col.clone(), s(CellValue::Number(0.0))]),
            Ok(CellValue::Number(3.0))
        );
        assert_eq!(
            call("MATCH", &[s(CellValue::Number(35.0)), col.clone(), s(CellValue::Number(1.0))]),
            Ok(CellValue::Number(3.0))
        );
        assert_eq!(
            call("MATCH", &[s(CellValue::Number(5.0)), col, s(CellValue::Number(1.0))]),
            Err(CellError::Na)
        );
    }

    #[test]
    fn choose_picks_argument() {
        assert_eq!(
            call(
                "CHOOSE",
                &[s(CellValue::Number(2.0)), s(CellValue::text("a")), s(CellValue::text("b"))]
            ),
            Ok(CellValue::text("b"))
        );
        assert_eq!(
            call("CHOOSE", &[s(CellValue::Number(9.0)), s(CellValue::text("a"))]),
            Err(CellError::Value)
        );
    }

    #[test]
    fn hlookup_transposed() {
        let row_table = Operand::Array(ArrayValue {
            rows: 2,
            cols: 3,
            data: vec![
                CellValue::text("q1"),
                CellValue::text("q2"),
                CellValue::text("q3"),
                CellValue::Number(1.0),
                CellValue::Number(2.0),
                CellValue::Number(3.0),
            ],
        });
        assert_eq!(
            call(
                "HLOOKUP",
                &[
                    s(CellValue::text("q2")),
                    row_table,
                    s(CellValue::Number(2.0)),
                    s(CellValue::Bool(false))
                ]
            ),
            Ok(CellValue::Number(2.0))
        );
    }
}
