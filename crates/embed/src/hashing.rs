//! Feature hashing: map token hashes into a fixed-dimension vector with
//! signed contributions (the "hashing trick").

/// FNV-1a over bytes — stable across platforms and runs.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Hash a slice of chars without allocating a String.
pub fn fnv1a_chars(chars: &[char]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = [0u8; 4];
    for &ch in chars {
        for &b in ch.encode_utf8(&mut buf).as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    }
    h
}

/// Add a hashed feature into `out`: the low bits choose the bucket, bit 63
/// chooses the sign. The ± sign keeps hash collisions unbiased.
#[inline]
pub fn add_hashed(out: &mut [f32], hash: u64, weight: f32) {
    let d = out.len() as u64;
    let bucket = (hash % d) as usize;
    let sign = if hash >> 63 == 0 { 1.0 } else { -1.0 };
    out[bucket] += sign * weight;
}

/// A second independent hash derived from the first (for double hashing).
#[inline]
pub fn rehash(h: u64) -> u64 {
    let mut x = h ^ 0x9e37_79b9_7f4a_7c15;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b"hello"), fnv1a(b"hello"));
        assert_ne!(fnv1a(b"hello"), fnv1a(b"hellp"));
        // Known FNV-1a test vector.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn char_hash_matches_byte_hash() {
        let s = "héllo✓";
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(fnv1a(s.as_bytes()), fnv1a_chars(&chars));
    }

    #[test]
    fn hashed_features_accumulate() {
        let mut out = vec![0.0f32; 8];
        add_hashed(&mut out, 5, 1.0);
        add_hashed(&mut out, 5, 1.0);
        assert_eq!(out[5], 2.0);
        let nonzero = out.iter().filter(|v| **v != 0.0).count();
        assert_eq!(nonzero, 1);
    }

    #[test]
    fn rehash_changes_bucket_distribution() {
        let mut same = 0;
        for i in 0..1000u64 {
            let h = fnv1a(&i.to_le_bytes());
            if h % 64 == rehash(h) % 64 {
                same += 1;
            }
        }
        // Roughly 1/64 of buckets should coincide, not most of them.
        assert!(same < 60, "{same} collisions");
    }
}
