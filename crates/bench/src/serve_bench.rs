//! Serving benchmark: the numbers behind the artifact + `af-serve` layer.
//!
//! Measures, at the current `AF_SCALE`:
//! * **artifact size** — bytes of a full `AutoFormula::save` (config +
//!   featurizer + model + self-contained index);
//! * **cold-start load vs rebuild** — `AutoFormula::load` from bytes
//!   against re-embedding the reference corpus with `build_index` (the
//!   only option before artifacts existed). The ratio is the point of the
//!   persistence layer: a serving process restarts in milliseconds instead
//!   of re-running the embedding model over every reference sheet;
//! * **concurrent query latency** — p50/p99 of `ServeHandle` predictions
//!   under multi-threaded load (readers are lock-free), plus the
//!   micro-batched `predict_batch` throughput.
//!
//! Results are written to `BENCH_serve.json`. The committed file is a
//! small-scale baseline from the fixed benchmark machine; the CI smoke job
//! regenerates tiny-scale numbers per PR.
//!
//! With `--features failpoints` the report additionally carries a
//! `chaos` block: a fault-injecting closed loop (probabilistic scan
//! panics, rank errors, and compaction faults racing concurrent writes)
//! measuring degraded-mode behavior — how many queries degraded, what
//! the tail looked like under faults, and whether recovery restored the
//! healthy tail. Without the feature the block is `null`.

use af_core::pipeline::{AutoFormula, PipelineVariant};
use af_core::{index::IndexOptions, AutoFormulaConfig};
use af_corpus::organization::{OrgSpec, Scale};
use af_embed::{CellFeaturizer, FeatureMask, SbertSim};
use af_grid::CellRef;
// The one shared percentile implementation (af-obs) — runtime histogram
// quantiles and bench reports agree on the same rank convention.
use af_obs::percentile;
use af_serve::ServeHandle;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Training episodes for the embedding model (the bench measures the
/// serving layer, not model quality).
const TRAIN_EPISODES: usize = 48;
/// Cap on distinct query targets.
const MAX_QUERIES: usize = 60;
/// Reader threads for the concurrent probe.
const READER_THREADS: usize = 4;
/// Rounds each reader replays the query list.
const READER_ROUNDS: usize = 3;
/// Worker threads in the mixed read/write probe.
const MIXED_THREADS: usize = 4;
/// Operations each mixed worker issues.
const MIXED_OPS_PER_THREAD: usize = 75;
/// Every N-th operation is an `add_workbook` (a 4% write mix), so the
/// pooled p99 sits in the write tail — the latency an operation actually
/// sees when it lands behind an ingest.
const MIXED_ADD_EVERY: usize = 25;
/// Shard count for the sharded side of the mixed probe (also the shard
/// count the obs probe serves with).
pub(crate) const MIXED_SHARDS: usize = 4;

/// One measured serving configuration.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    pub scale: &'static str,
    pub threads: usize,
    pub n_sheets: usize,
    pub n_regions: usize,
    pub artifact_bytes: usize,
    /// Rebuilding the index from the raw workbooks (embed + index).
    pub rebuild_ms: f64,
    /// `AutoFormula::load` from artifact bytes.
    pub load_ms: f64,
    /// `rebuild_ms / load_ms` — how much faster a cold start got.
    pub load_speedup: f64,
    pub queries: usize,
    pub sequential_p50_ms: f64,
    pub sequential_p99_ms: f64,
    pub concurrent_readers: usize,
    pub concurrent_p50_ms: f64,
    pub concurrent_p99_ms: f64,
    pub concurrent_queries_per_sec: f64,
    /// Micro-batched `predict_batch` throughput (one embed pass per burst).
    pub batch_queries_per_sec: f64,
    /// Sustained add-while-query probe, single index (`n_shards = 1`,
    /// delta segments disabled — every write clones the whole index).
    pub mixed_baseline: MixedLoadReport,
    /// Same probe, sharded with delta segments (`n_shards = MIXED_SHARDS`,
    /// writes clone only the owning shard's delta).
    pub mixed_sharded: MixedLoadReport,
    /// Shard count used for `mixed_sharded`.
    pub mixed_shards: usize,
    /// `mixed_baseline.mixed_p99_ms / mixed_sharded.mixed_p99_ms` — how
    /// much the sharded delta write path improves tail latency under
    /// mixed read/write load.
    pub mixed_p99_speedup: f64,
    /// Degraded-mode probe (`--features failpoints` builds only).
    pub chaos: Option<ChaosReport>,
}

/// Numbers from the fault-injecting closed loop: queries served while
/// probabilistic faults (scan panics, rank errors, compaction failures)
/// race concurrent writes, then again after faults clear and shards
/// recover.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Queries issued under fault injection. Every one returned an
    /// outcome — the loop would have panicked otherwise.
    pub ops: usize,
    /// Outcomes flagged degraded (shard skipped, candidate dropped, or
    /// deadline cut).
    pub degraded: usize,
    /// Outcomes whose per-query deadline expired.
    pub deadline_exceeded: usize,
    /// Shards quarantined when the storm ended (before recovery).
    pub quarantined_at_end: usize,
    /// Compactor supervision incidents during the storm.
    pub compactor_restarts: u64,
    /// Writes that fell back to inline compaction during the storm.
    pub inline_compactions: u64,
    /// Query p99 before any fault was armed.
    pub healthy_p99_ms: f64,
    /// Query p99 while faults were firing (degraded answers included).
    pub faulted_p99_ms: f64,
    /// Query p99 after `clear` + `recover_shard` — the recovery check.
    pub recovered_p99_ms: f64,
}

/// Latencies from one mixed read/write run: `MIXED_THREADS` closed-loop
/// workers each issue `MIXED_OPS_PER_THREAD` operations, every
/// `MIXED_ADD_EVERY`-th an `add_workbook` and the rest predictions.
#[derive(Debug, Clone)]
pub struct MixedLoadReport {
    pub read_p50_ms: f64,
    pub read_p99_ms: f64,
    pub add_p50_ms: f64,
    pub add_p99_ms: f64,
    /// p99 over every operation in the mix (reads and adds pooled) — the
    /// tail latency an operation sees under sustained mixed load.
    pub mixed_p99_ms: f64,
    pub reads: usize,
    pub adds: usize,
}

/// Run the add-while-query probe against one handle configuration.
pub(crate) fn mixed_load(
    handle: &af_serve::ServeHandle,
    org: &af_corpus::OrgCorpus,
    targets: &[(usize, CellRef)],
) -> MixedLoadReport {
    let (read_ms, add_ms) = mixed_load_samples(handle, org, targets);
    mixed_report(read_ms, add_ms)
}

/// The raw per-operation latencies (ms) behind [`mixed_load`]:
/// `(reads, adds)`, unsorted. The obs overhead probe pools these across
/// several runs so its p99 is a deep order statistic instead of the
/// 3rd-worst op of a single 300-op run.
pub(crate) fn mixed_load_samples(
    handle: &af_serve::ServeHandle,
    org: &af_corpus::OrgCorpus,
    targets: &[(usize, CellRef)],
) -> (Vec<f64>, Vec<f64>) {
    let holdout = org.workbooks.len() - 1;
    let mut read_ms: Vec<f64> = Vec::new();
    let mut add_ms: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..MIXED_THREADS)
            .map(|t| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut reads = Vec::new();
                    let mut adds = Vec::new();
                    for op in 0..MIXED_OPS_PER_THREAD {
                        if op % MIXED_ADD_EVERY == MIXED_ADD_EVERY - 1 {
                            let wb = &org.workbooks[(t + op) % org.workbooks.len()];
                            let q = Instant::now();
                            let epoch = handle.add_workbook(wb);
                            std::hint::black_box(epoch);
                            adds.push(q.elapsed().as_secs_f64() * 1e3);
                        } else {
                            let (si, at) = targets[(t + op) % targets.len()];
                            let sheet = &org.workbooks[holdout].sheets[si];
                            let q = Instant::now();
                            let outcome = handle.predict_with(sheet, at, PipelineVariant::Full);
                            std::hint::black_box(&outcome);
                            reads.push(q.elapsed().as_secs_f64() * 1e3);
                        }
                    }
                    (reads, adds)
                })
            })
            .collect();
        for w in workers {
            let (r, a) = w.join().expect("mixed worker");
            read_ms.extend(r);
            add_ms.extend(a);
        }
    });
    (read_ms, add_ms)
}

/// Reduce raw mixed-load latencies to the reported percentiles.
pub(crate) fn mixed_report(mut read_ms: Vec<f64>, mut add_ms: Vec<f64>) -> MixedLoadReport {
    read_ms.sort_by(|a, b| a.total_cmp(b));
    add_ms.sort_by(|a, b| a.total_cmp(b));
    let mut pooled = read_ms.clone();
    pooled.extend_from_slice(&add_ms);
    pooled.sort_by(|a, b| a.total_cmp(b));
    MixedLoadReport {
        read_p50_ms: percentile(&read_ms, 0.5),
        read_p99_ms: percentile(&read_ms, 0.99),
        add_p50_ms: percentile(&add_ms, 0.5),
        add_p99_ms: percentile(&add_ms, 0.99),
        mixed_p99_ms: percentile(&pooled, 0.99),
        reads: read_ms.len(),
        adds: add_ms.len(),
    }
}

/// The fault-injecting closed loop (only built with `failpoints`): serve
/// a sharded handle with small deltas, arm probabilistic faults, run a
/// multi-threaded read loop against concurrent writes, then clear the
/// faults, recover every shard, and re-measure.
#[cfg(feature = "failpoints")]
fn chaos_probe(
    artifact: &bytes::Bytes,
    org: &af_corpus::OrgCorpus,
    targets: &[(usize, CellRef)],
) -> Option<ChaosReport> {
    use af_core::failpoint::{self, FailAction};
    let holdout = org.workbooks.len() - 1;
    let (mut af, index) =
        AutoFormula::load_bytes_artifact(artifact.clone()).expect("artifact loads");
    af.model.cfg.n_shards = MIXED_SHARDS;
    af.model.cfg.delta_max_sheets = 2;
    let handle = ServeHandle::new(af, index);

    let run_queries = |tag: &str| -> Vec<f64> {
        let mut ms = Vec::new();
        for round in 0..2 {
            for &(si, at) in targets {
                let sheet = &org.workbooks[holdout].sheets[si];
                let q = Instant::now();
                let o = handle.predict_with(sheet, at, PipelineVariant::Full);
                std::hint::black_box(&o);
                ms.push(q.elapsed().as_secs_f64() * 1e3);
                std::hint::black_box((tag, round));
            }
        }
        ms.sort_by(|a, b| a.total_cmp(b));
        ms
    };
    let healthy = run_queries("healthy");
    let stats_before = handle.stats();

    // Injected panics print through the panic hook; silence it while the
    // storm runs (the hook is process-global — restore on the way out).
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    failpoint::seed(0xBE4C_4A05);
    failpoint::configure("serve::shard_scan", FailAction::Panic, 0.02);
    failpoint::configure("serve::region_rank", FailAction::Error, 0.05);
    failpoint::configure("serve::compact", FailAction::Error, 0.50);

    let mut faulted: Vec<f64> = Vec::new();
    let mut ops = 0usize;
    let mut degraded = 0usize;
    let mut deadline_hit = 0usize;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..MIXED_THREADS)
            .map(|t| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut ms = Vec::new();
                    let mut deg = 0usize;
                    let mut ddl = 0usize;
                    for op in 0..MIXED_OPS_PER_THREAD {
                        if op % MIXED_ADD_EVERY == MIXED_ADD_EVERY - 1 {
                            let wb = &org.workbooks[(t + op) % org.workbooks.len()];
                            handle.add_workbook(wb);
                        } else {
                            let (si, at) = targets[(t + op) % targets.len()];
                            let sheet = &org.workbooks[holdout].sheets[si];
                            let q = Instant::now();
                            let o = handle.predict_with(sheet, at, PipelineVariant::Full);
                            ms.push(q.elapsed().as_secs_f64() * 1e3);
                            deg += o.degraded as usize;
                            ddl += o.deadline_exceeded as usize;
                        }
                    }
                    (ms, deg, ddl)
                })
            })
            .collect();
        for w in workers {
            let (ms, deg, ddl) = w.join().expect("chaos worker");
            ops += ms.len();
            degraded += deg;
            deadline_hit += ddl;
            faulted.extend(ms);
        }
    });
    faulted.sort_by(|a, b| a.total_cmp(b));
    let quarantined_at_end = handle.quarantined().len();

    failpoint::clear_all();
    std::panic::set_hook(hook);
    for shard in 0..handle.n_shards() {
        handle.recover_shard(shard);
    }
    let recovered = run_queries("recovered");
    let stats_after = handle.stats();

    Some(ChaosReport {
        ops,
        degraded,
        deadline_exceeded: deadline_hit,
        quarantined_at_end,
        compactor_restarts: stats_after.compactor_restarts - stats_before.compactor_restarts,
        inline_compactions: stats_after.inline_compactions - stats_before.inline_compactions,
        healthy_p99_ms: percentile(&healthy, 0.99),
        faulted_p99_ms: percentile(&faulted, 0.99),
        recovered_p99_ms: percentile(&recovered, 0.99),
    })
}

#[cfg(not(feature = "failpoints"))]
fn chaos_probe(
    _artifact: &bytes::Bytes,
    _org: &af_corpus::OrgCorpus,
    _targets: &[(usize, CellRef)],
) -> Option<ChaosReport> {
    None
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Run the serving benchmark at the `AF_SCALE` scale.
pub fn measure() -> ServeBenchReport {
    measure_full().report
}

/// Everything `measure()` produced plus the inputs the obs probe reuses:
/// the saved artifact and the query targets, so the `--features obs`
/// serve bin can run its overhead measurement against the exact same
/// trained system without a second training run.
pub struct ServeBenchRun {
    /// The regular serve bench report.
    pub report: ServeBenchReport,
    /// The saved artifact the probes serve from.
    pub artifact: bytes::Bytes,
    /// The generated reference corpus (holdout workbook included).
    pub org: af_corpus::OrgCorpus,
    /// Query targets into the holdout workbook.
    pub targets: Vec<(usize, CellRef)>,
}

/// Run the serving benchmark and keep the artifact + query set around.
pub fn measure_full() -> ServeBenchRun {
    let scale = Scale::from_env();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    // A briefly-trained system (same regime as the throughput bench).
    let universe = OrgSpec::web_crawl(scale).generate();
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(64)), FeatureMask::FULL);
    let cfg = AutoFormulaConfig { episodes: TRAIN_EPISODES, ..AutoFormulaConfig::default() };
    let (af, _) = AutoFormula::train(&universe.workbooks, featurizer, cfg, Default::default());

    // Reference index over all but the holdout workbook.
    let org = OrgSpec::pge(scale).generate();
    let n_wb = org.workbooks.len();
    let members: Vec<usize> = (0..n_wb.saturating_sub(1)).collect();
    let rebuild_started = Instant::now();
    let index = af.build_index(&org.workbooks, &members, IndexOptions::default());
    let rebuild_ms = rebuild_started.elapsed().as_secs_f64() * 1e3;

    // Artifact round trip: size and cold-start load time (best of 3 to
    // shave allocator noise off a sub-millisecond-to-millisecond number).
    let artifact = af.save(&index);
    let artifact_bytes = artifact.len();
    let mut load_ms = f64::INFINITY;
    let mut loaded = None;
    for _ in 0..3 {
        let bytes = artifact.clone(); // O(1): Bytes is an Arc window
        let t = Instant::now();
        let pair = AutoFormula::load_bytes_artifact(bytes).expect("artifact loads");
        load_ms = load_ms.min(t.elapsed().as_secs_f64() * 1e3);
        loaded = Some(pair);
    }
    let (loaded_af, loaded_index) = loaded.expect("three loads ran");
    let n_sheets = loaded_index.n_sheets();
    let n_regions = loaded_index.n_regions();

    // Serve the loaded artifact.
    let handle = ServeHandle::new(loaded_af, loaded_index);
    let holdout = n_wb - 1;
    let targets: Vec<(usize, CellRef)> = org.workbooks[holdout]
        .sheets
        .iter()
        .enumerate()
        .flat_map(|(si, s)| s.formulas().map(move |(at, _)| (si, at)))
        .take(MAX_QUERIES)
        .collect();

    // Sequential latency.
    let mut seq_ms: Vec<f64> = Vec::with_capacity(targets.len());
    for &(si, at) in &targets {
        let sheet = &org.workbooks[holdout].sheets[si];
        let t = Instant::now();
        let outcome = handle.predict_with(sheet, at, PipelineVariant::Full);
        std::hint::black_box(&outcome);
        seq_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    seq_ms.sort_by(|a, b| a.total_cmp(b));

    // Concurrent latency: READER_THREADS threads replay the query list
    // against the lock-free handle.
    let started = Instant::now();
    let mut all_ms: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READER_THREADS)
            .map(|t| {
                let handle = handle.clone();
                let org = &org;
                let targets = &targets;
                scope.spawn(move || {
                    let mut ms = Vec::with_capacity(targets.len() * READER_ROUNDS);
                    for round in 0..READER_ROUNDS {
                        for qi in 0..targets.len() {
                            // Stagger start points so threads do not march
                            // in lockstep over identical queries.
                            let (si, at) = targets[(qi + t + round) % targets.len()];
                            let sheet = &org.workbooks[org.workbooks.len() - 1].sheets[si];
                            let q = Instant::now();
                            let outcome = handle.predict_with(sheet, at, PipelineVariant::Full);
                            std::hint::black_box(&outcome);
                            ms.push(q.elapsed().as_secs_f64() * 1e3);
                        }
                    }
                    ms
                })
            })
            .collect();
        for h in handles {
            all_ms.extend(h.join().expect("reader thread"));
        }
    });
    let concurrent_seconds = started.elapsed().as_secs_f64();
    let concurrent_queries = all_ms.len();
    all_ms.sort_by(|a, b| a.total_cmp(b));

    // Micro-batched burst: all targets in one predict_batch call.
    let batch_queries: Vec<(&af_grid::Sheet, CellRef)> =
        targets.iter().map(|&(si, at)| (&org.workbooks[holdout].sheets[si], at)).collect();
    let t = Instant::now();
    let batch = handle.predict_batch_with(&batch_queries, PipelineVariant::Full);
    std::hint::black_box(&batch);
    let batch_seconds = t.elapsed().as_secs_f64();

    // Sustained add-while-query: the same artifact served two ways. The
    // baseline is the pre-shard architecture (one index, every write
    // clones all of it); the contender shards the index and absorbs
    // writes into per-shard delta segments.
    let (mut base_af, base_index) =
        AutoFormula::load_bytes_artifact(artifact.clone()).expect("artifact loads");
    base_af.model.cfg.n_shards = 1;
    base_af.model.cfg.delta_max_sheets = 0;
    let baseline_handle = ServeHandle::new(base_af, base_index);
    let mixed_baseline = mixed_load(&baseline_handle, &org, &targets);
    drop(baseline_handle);

    let (mut shard_af, shard_index) =
        AutoFormula::load_bytes_artifact(artifact.clone()).expect("artifact loads");
    shard_af.model.cfg.n_shards = MIXED_SHARDS;
    let sharded_handle = ServeHandle::new(shard_af, shard_index);
    let mixed_sharded = mixed_load(&sharded_handle, &org, &targets);
    drop(sharded_handle);
    let mixed_p99_speedup = mixed_baseline.mixed_p99_ms / mixed_sharded.mixed_p99_ms.max(1e-9);

    // Degraded-mode probe — a no-op `None` unless built with `failpoints`.
    let chaos = chaos_probe(&artifact, &org, &targets);

    let report = ServeBenchReport {
        scale: scale_name(scale),
        threads,
        n_sheets,
        n_regions,
        artifact_bytes,
        rebuild_ms,
        load_ms,
        load_speedup: rebuild_ms / load_ms.max(1e-9),
        queries: targets.len(),
        sequential_p50_ms: percentile(&seq_ms, 0.5),
        sequential_p99_ms: percentile(&seq_ms, 0.99),
        concurrent_readers: READER_THREADS,
        concurrent_p50_ms: percentile(&all_ms, 0.5),
        concurrent_p99_ms: percentile(&all_ms, 0.99),
        concurrent_queries_per_sec: concurrent_queries as f64 / concurrent_seconds.max(1e-9),
        batch_queries_per_sec: batch_queries.len() as f64 / batch_seconds.max(1e-9),
        mixed_baseline,
        mixed_sharded,
        mixed_shards: MIXED_SHARDS,
        mixed_p99_speedup,
        chaos,
    };
    ServeBenchRun { report, artifact, org, targets }
}

fn chaos_json(c: &Option<ChaosReport>) -> String {
    match c {
        None => "null".to_string(),
        Some(c) => format!(
            concat!(
                "{{\n",
                "    \"ops\": {},\n",
                "    \"degraded\": {},\n",
                "    \"deadline_exceeded\": {},\n",
                "    \"quarantined_at_end\": {},\n",
                "    \"compactor_restarts\": {},\n",
                "    \"inline_compactions\": {},\n",
                "    \"healthy_p99_ms\": {:.3},\n",
                "    \"faulted_p99_ms\": {:.3},\n",
                "    \"recovered_p99_ms\": {:.3}\n",
                "  }}"
            ),
            c.ops,
            c.degraded,
            c.deadline_exceeded,
            c.quarantined_at_end,
            c.compactor_restarts,
            c.inline_compactions,
            c.healthy_p99_ms,
            c.faulted_p99_ms,
            c.recovered_p99_ms,
        ),
    }
}

fn mixed_json(r: &MixedLoadReport) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"read_p50_ms\": {:.3},\n",
            "    \"read_p99_ms\": {:.3},\n",
            "    \"add_p50_ms\": {:.3},\n",
            "    \"add_p99_ms\": {:.3},\n",
            "    \"mixed_p99_ms\": {:.3},\n",
            "    \"reads\": {},\n",
            "    \"adds\": {}\n",
            "  }}"
        ),
        r.read_p50_ms, r.read_p99_ms, r.add_p50_ms, r.add_p99_ms, r.mixed_p99_ms, r.reads, r.adds,
    )
}

/// Serialize the report as JSON (hand-rolled; flat schema, no serde in the
/// workspace).
pub fn to_json(r: &ServeBenchReport) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"serve\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"threads\": {},\n",
            "  \"n_sheets\": {},\n",
            "  \"n_regions\": {},\n",
            "  \"artifact_bytes\": {},\n",
            "  \"rebuild_ms\": {:.3},\n",
            "  \"load_ms\": {:.3},\n",
            "  \"load_speedup\": {:.1},\n",
            "  \"queries\": {},\n",
            "  \"sequential_p50_ms\": {:.3},\n",
            "  \"sequential_p99_ms\": {:.3},\n",
            "  \"concurrent_readers\": {},\n",
            "  \"concurrent_p50_ms\": {:.3},\n",
            "  \"concurrent_p99_ms\": {:.3},\n",
            "  \"concurrent_queries_per_sec\": {:.2},\n",
            "  \"batch_queries_per_sec\": {:.2},\n",
            "  \"mixed_threads\": {},\n",
            "  \"mixed_ops_per_thread\": {},\n",
            "  \"mixed_add_every\": {},\n",
            "  \"mixed_shards\": {},\n",
            "  \"mixed_baseline\": {},\n",
            "  \"mixed_sharded\": {},\n",
            "  \"mixed_p99_speedup\": {:.2},\n",
            "  \"chaos\": {}\n",
            "}}\n"
        ),
        r.scale,
        r.threads,
        r.n_sheets,
        r.n_regions,
        r.artifact_bytes,
        r.rebuild_ms,
        r.load_ms,
        r.load_speedup,
        r.queries,
        r.sequential_p50_ms,
        r.sequential_p99_ms,
        r.concurrent_readers,
        r.concurrent_p50_ms,
        r.concurrent_p99_ms,
        r.concurrent_queries_per_sec,
        r.batch_queries_per_sec,
        MIXED_THREADS,
        MIXED_OPS_PER_THREAD,
        MIXED_ADD_EVERY,
        r.mixed_shards,
        mixed_json(&r.mixed_baseline),
        mixed_json(&r.mixed_sharded),
        r.mixed_p99_speedup,
        chaos_json(&r.chaos),
    )
}

/// Write `BENCH_serve.json`.
pub fn write_json(report: &ServeBenchReport, path: &Path) {
    std::fs::write(path, to_json(report)).expect("write BENCH_serve.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parity with the sort-based percentile this file used to define
    /// locally: the shared af-obs implementation must reproduce the old
    /// `round(p·(n-1))` nearest-rank results exactly, so deduplicating
    /// the math changes no committed bench number.
    #[test]
    fn percentile_bounds() {
        let ms = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&ms, 0.0), 1.0);
        assert_eq!(percentile(&ms, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        let old = |sorted_ms: &[f64], p: f64| -> f64 {
            if sorted_ms.is_empty() {
                return 0.0;
            }
            let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
            sorted_ms[idx.min(sorted_ms.len() - 1)]
        };
        for n in 1..=40 {
            let sample: Vec<f64> = (0..n).map(|i| (i * i) as f64 * 0.25).collect();
            for p in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
                assert_eq!(percentile(&sample, p), old(&sample, p), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn json_is_well_formed() {
        let r = ServeBenchReport {
            scale: "tiny",
            threads: 1,
            n_sheets: 10,
            n_regions: 20,
            artifact_bytes: 1234,
            rebuild_ms: 100.0,
            load_ms: 5.0,
            load_speedup: 20.0,
            queries: 8,
            sequential_p50_ms: 1.0,
            sequential_p99_ms: 2.0,
            concurrent_readers: 4,
            concurrent_p50_ms: 1.5,
            concurrent_p99_ms: 3.0,
            concurrent_queries_per_sec: 500.0,
            batch_queries_per_sec: 900.0,
            mixed_baseline: MixedLoadReport {
                read_p50_ms: 1.0,
                read_p99_ms: 4.0,
                add_p50_ms: 30.0,
                add_p99_ms: 60.0,
                mixed_p99_ms: 40.0,
                reads: 100,
                adds: 12,
            },
            mixed_sharded: MixedLoadReport {
                read_p50_ms: 1.0,
                read_p99_ms: 3.0,
                add_p50_ms: 5.0,
                add_p99_ms: 9.0,
                mixed_p99_ms: 8.0,
                reads: 120,
                adds: 12,
            },
            mixed_shards: 4,
            mixed_p99_speedup: 5.0,
            chaos: None,
        };
        let json = to_json(&r);
        assert!(json.contains("\"artifact_bytes\": 1234"));
        assert!(json.contains("\"load_speedup\": 20.0"));
        assert!(json.contains("\"mixed_p99_speedup\": 5.00"));
        assert!(json.contains("\"mixed_shards\": 4"));
        assert!(json.contains("\"chaos\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let with_chaos = ServeBenchReport {
            chaos: Some(ChaosReport {
                ops: 640,
                degraded: 37,
                deadline_exceeded: 4,
                quarantined_at_end: 1,
                compactor_restarts: 6,
                inline_compactions: 2,
                healthy_p99_ms: 2.0,
                faulted_p99_ms: 5.0,
                recovered_p99_ms: 2.1,
            }),
            ..r
        };
        let json = to_json(&with_chaos);
        assert!(json.contains("\"degraded\": 37"));
        assert!(json.contains("\"compactor_restarts\": 6"));
        assert!(json.contains("\"recovered_p99_ms\": 2.100"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
