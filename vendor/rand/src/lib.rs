//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! exact API surface the workspace uses — [`rngs::StdRng`], [`SeedableRng`],
//! and the [`RngExt`] extension trait with `random`, `random_range`, and
//! `random_bool` — backed by xoshiro256++ seeded via SplitMix64.
//!
//! Streams are bit-deterministic for a fixed seed, which is all the
//! workspace requires (corpus generation, weight init, and training are
//! seeded end-to-end).

pub mod rngs;

pub use rngs::StdRng;

/// Core pseudo-random source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// RNGs constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`RngExt::random`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f32()
    }
}

/// Types with uniform sampling over a caller-supplied interval.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_interval<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = hi_w - lo_w + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range {lo}..{hi}");
                let r = rng.next_u64() as i128 % span;
                (lo_w + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                } else {
                    assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                }
                // Scale in f64, then guard the cast: rounding (f64 -> f32 in
                // particular) can land exactly on `hi`, which an exclusive
                // range must never return.
                let v = (lo as f64 + rng.next_f64() * (hi as f64 - lo as f64)) as $t;
                if !inclusive && v >= hi {
                    hi.next_down().max(lo)
                } else {
                    v.min(hi)
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_interval(lo, hi, true, rng)
    }
}

/// The convenience surface the workspace programs against (mirrors the
/// upstream `Rng` trait's `random*` family).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-12..=12);
            assert!((-12..=12).contains(&v));
            let u: usize = rng.random_range(3..60);
            assert!((3..60).contains(&u));
            let f: f64 = rng.random_range(0.0..0.10);
            assert!((0.0..0.10).contains(&f));
        }
    }

    /// An RNG pinned to the top of the unit interval: exercises the
    /// exclusive-bound rounding guard (f64 -> f32 casts round up to `hi`).
    struct MaxRng;

    impl RngCore for MaxRng {
        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    #[test]
    fn float_exclusive_upper_bound_never_returned() {
        let mut rng = MaxRng;
        let v: f32 = rng.random_range(-1.0f32..1.0);
        assert!(v < 1.0, "exclusive range returned its upper bound: {v}");
        let w: f64 = rng.random_range(0.0f64..1.0);
        assert!(w < 1.0);
        let x: f32 = rng.random_range(2.0f32..=3.0);
        assert!(x <= 3.0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn float_empty_exclusive_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: f32 = rng.random_range(1.0f32..1.0);
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }
}
