//! IVF-Flat: k-means coarse quantizer + inverted lists, the classic Faiss
//! index layout.

use crate::kmeans::{kmeans, KMeansResult};
use crate::metric::{l2_sq, Neighbor, TopK};
use crate::VectorIndex;

/// Build parameters for [`IvfFlatIndex`].
#[derive(Debug, Clone, Copy)]
pub struct IvfParams {
    /// Number of inverted lists (clusters). Defaults to `√n` when zero.
    pub n_lists: usize,
    /// Number of lists probed per query.
    pub n_probe: usize,
    pub kmeans_iters: usize,
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        IvfParams { n_lists: 0, n_probe: 8, kmeans_iters: 10, seed: 0x1f2e_3d4c }
    }
}

/// An IVF-Flat index: vectors are bucketed by nearest centroid; queries
/// probe the `n_probe` closest buckets.
pub struct IvfFlatIndex {
    dim: usize,
    n: usize,
    params: IvfParams,
    quantizer: KMeansResult,
    /// `lists[c]` holds `(original_id, vector)` rows, vectors concatenated.
    list_ids: Vec<Vec<usize>>,
    list_data: Vec<Vec<f32>>,
}

impl IvfFlatIndex {
    /// Build from row-major `data` (`n × dim`).
    pub fn build(data: &[f32], dim: usize, mut params: IvfParams) -> IvfFlatIndex {
        assert!(dim > 0);
        assert_eq!(data.len() % dim, 0);
        let n = data.len() / dim;
        assert!(n > 0, "cannot build an empty IVF index");
        if params.n_lists == 0 {
            params.n_lists = (n as f64).sqrt().ceil() as usize;
        }
        params.n_lists = params.n_lists.clamp(1, n);
        let quantizer = kmeans(data, dim, params.n_lists, params.kmeans_iters, params.seed);
        let k = quantizer.k;
        let mut list_ids = vec![Vec::new(); k];
        let mut list_data = vec![Vec::new(); k];
        for i in 0..n {
            let c = quantizer.assignments[i];
            list_ids[c].push(i);
            list_data[c].extend_from_slice(&data[i * dim..(i + 1) * dim]);
        }
        IvfFlatIndex { dim, n, params, quantizer, list_ids, list_data }
    }

    pub fn n_lists(&self) -> usize {
        self.quantizer.k
    }
}

impl VectorIndex for IvfFlatIndex {
    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim);
        if k == 0 {
            return Vec::new();
        }
        // Rank centroids by distance, probe the closest lists.
        let mut cd: Vec<(usize, f32)> =
            (0..self.quantizer.k).map(|c| (c, l2_sq(query, self.quantizer.centroid(c)))).collect();
        cd.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut top = TopK::new(k);
        for &(c, _) in cd.iter().take(self.params.n_probe.max(1)) {
            let ids = &self.list_ids[c];
            let data = &self.list_data[c];
            for (j, &id) in ids.iter().enumerate() {
                let v = &data[j * self.dim..(j + 1) * self.dim];
                top.push(Neighbor::new(id, l2_sq(query, v)));
            }
        }
        top.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;

    fn random_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        (0..n * dim).map(|_| next()).collect()
    }

    #[test]
    fn probing_all_lists_is_exact() {
        let dim = 8;
        let data = random_data(500, dim, 1);
        let ivf = IvfFlatIndex::build(
            &data,
            dim,
            IvfParams { n_lists: 10, n_probe: 10, ..Default::default() },
        );
        let flat = FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()));
        for q in 0..20 {
            let query = &data[q * dim..(q + 1) * dim];
            let a = ivf.search(query, 5);
            let b = flat.search(query, 5);
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn partial_probe_recall_reasonable() {
        let dim = 8;
        let n = 2000;
        let data = random_data(n, dim, 2);
        let ivf = IvfFlatIndex::build(
            &data,
            dim,
            IvfParams { n_lists: 40, n_probe: 8, ..Default::default() },
        );
        let flat = FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()));
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in 0..50 {
            let query = &data[q * dim..(q + 1) * dim];
            let approx: Vec<usize> = ivf.search(query, 10).iter().map(|n| n.id).collect();
            let exact: Vec<usize> = flat.search(query, 10).iter().map(|n| n.id).collect();
            total += exact.len();
            hits += exact.iter().filter(|id| approx.contains(id)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.6, "recall@10 {recall}");
    }

    #[test]
    fn self_query_returns_self() {
        let dim = 4;
        let data = random_data(100, dim, 3);
        let ivf = IvfFlatIndex::build(&data, dim, IvfParams::default());
        for q in [0usize, 17, 50, 99] {
            let query = &data[q * dim..(q + 1) * dim];
            let out = ivf.search(query, 1);
            assert_eq!(out[0].id, q);
            assert!(out[0].dist < 1e-9);
        }
    }

    #[test]
    fn default_list_count_is_sqrt_n() {
        let dim = 4;
        let data = random_data(400, dim, 4);
        let ivf = IvfFlatIndex::build(&data, dim, IvfParams::default());
        assert_eq!(ivf.n_lists(), 20);
    }
}
