//! Thin CLI wrapper: regenerates fig15 (see DESIGN.md's per-experiment
//! index). `AF_SCALE={tiny,small,full}` scales the synthetic corpora.

fn main() {
    af_bench::report::run_experiment(
        "fig15",
        "Fig. 15: pipeline-stage ablation (S1/S2/S3 variants)",
        af_bench::experiments::fig15,
    );
}
