//! Shared numeric kernels — the single implementation of dot / squared-L2 /
//! axpy / sum / row-major matmul used across the workspace. `af-nn` layers
//! and `af-ann` indexes both build on these (`af_ann::metric` re-exports
//! [`l2_sq`], so there is exactly one distance kernel to test and tune).
//!
//! All reduction kernels are written as 8-wide unrolled loops: a plain
//! `acc += a[i] * b[i]` loop cannot be autovectorized under IEEE-754
//! semantics because it pins the summation order, while eight independent
//! accumulators give LLVM a legal SIMD schedule. The lane count and the
//! final reduction tree are fixed at compile time, so results are
//! bit-deterministic run-to-run (they differ from a strictly sequential
//! sum only by the usual f32 rounding, within ~1e-4 relative — see the
//! property tests in `tests/kernel_properties.rs`).

/// Unroll width of the reduction kernels.
pub const LANES: usize = 8;

#[inline]
fn reduce_lanes(l: [f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for k in 0..LANES {
            lanes[k] += xa[k] * xb[k];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    reduce_lanes(lanes) + tail
}

/// Squared L2 distance between two equal-length vectors. On unit vectors
/// this equals `2 − 2·cosθ`, so ranking by it matches cosine ranking.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for k in 0..LANES {
            let d = xa[k] - xb[k];
            lanes[k] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    reduce_lanes(lanes) + tail
}

/// Horizontal sum of a slice.
#[inline]
pub fn sum(a: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    for xa in &mut ca {
        for k in 0..LANES {
            lanes[k] += xa[k];
        }
    }
    let mut tail = 0.0f32;
    for x in ca.remainder() {
        tail += x;
    }
    reduce_lanes(lanes) + tail
}

/// `y[i] += alpha · x[i]` — elementwise, no reduction, so the 8-wide body
/// is pure bookkeeping that keeps the remainder handling uniform.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cx = x.chunks_exact(LANES);
    let mut cy = y.chunks_exact_mut(LANES);
    for (xa, ya) in (&mut cx).zip(&mut cy) {
        for k in 0..LANES {
            ya[k] += alpha * xa[k];
        }
    }
    for (xv, yv) in cx.remainder().iter().zip(cy.into_remainder()) {
        *yv += alpha * xv;
    }
}

/// Flattened-plane span of the shifted-plane kernels: one contiguous
/// `len`-element run covering every valid `(i, j)` of an `h×w` plane
/// shifted by `(r, s)`, plus the row ranges needed to enumerate the
/// row-boundary cells the flattened shift wraps across.
struct PlaneSpan {
    dst0: usize,
    src0: usize,
    len: usize,
    i_lo: usize,
    i_hi: usize,
}

fn plane_span(h: usize, w: usize, r: isize, s: isize) -> Option<PlaneSpan> {
    let i_lo = (-r).max(0) as usize;
    let i_hi = ((h as isize) - r).min(h as isize).max(0) as usize;
    if i_lo >= i_hi {
        return None;
    }
    let j_lo = (-s).max(0) as usize;
    let j_hi = ((w as isize) - s).min(w as isize).max(0) as usize;
    if j_lo >= j_hi {
        return None;
    }
    let n_rows = i_hi - i_lo;
    let len = (n_rows - 1) * w + (j_hi - j_lo);
    let dst0 = i_lo * w + j_lo;
    let src0 = ((i_lo as isize + r) * w as isize + j_lo as isize + s) as usize;
    Some(PlaneSpan { dst0, src0, len, i_lo, i_hi })
}

/// Visit the `(dst, src)` index pairs the flattened span wrongly couples
/// across row boundaries (the cells that should read zero padding).
#[inline]
fn for_each_wrapped(
    span: &PlaneSpan,
    w: usize,
    r: isize,
    s: isize,
    mut f: impl FnMut(usize, usize),
) {
    let delta = r * w as isize + s;
    if s > 0 {
        let su = s as usize;
        for i in span.i_lo..span.i_hi - 1 {
            for j in (w - su)..w {
                let d = i * w + j;
                f(d, (d as isize + delta) as usize);
            }
        }
    } else if s < 0 {
        let su = (-s) as usize;
        for i in span.i_lo + 1..span.i_hi {
            for j in 0..su {
                let d = i * w + j;
                f(d, (d as isize + delta) as usize);
            }
        }
    }
}

/// `out[i, j] += alpha · x[i + r, j + s]` over `h×w` planes with zero
/// padding outside — the inner operation of a stride-1 "same" convolution
/// tap. Executed as **one** long [`axpy`] over the flattened plane; the
/// row-boundary cells the flattened shift would contaminate are saved in
/// `scratch` beforehand and restored after, so the result is exactly the
/// per-row computation at a fraction of the call overhead (decisive for
/// narrow planes, e.g. the 40×8 sheet windows).
#[allow(clippy::too_many_arguments)]
pub fn shifted_plane_axpy(
    alpha: f32,
    x: &[f32],
    out: &mut [f32],
    h: usize,
    w: usize,
    r: isize,
    s: isize,
    scratch: &mut Vec<f32>,
) {
    debug_assert_eq!(x.len(), h * w);
    debug_assert_eq!(out.len(), h * w);
    let Some(span) = plane_span(h, w, r, s) else { return };
    scratch.clear();
    for_each_wrapped(&span, w, r, s, |d, _| scratch.push(out[d]));
    axpy(alpha, &x[span.src0..span.src0 + span.len], &mut out[span.dst0..span.dst0 + span.len]);
    let mut at = 0usize;
    for_each_wrapped(&span, w, r, s, |d, _| {
        out[d] = scratch[at];
        at += 1;
    });
}

/// `out[i, j] = x[i + r, j + s]` over `h×w` planes with zero padding
/// outside — the im2col building block: one row of a tap-major column
/// matrix is the input plane shifted by the tap offset. `out` is fully
/// overwritten (zeros outside the valid span and at wrapped row-boundary
/// cells), via one long `copy_from_slice` over the flattened plane.
pub fn shifted_plane_copy(x: &[f32], out: &mut [f32], h: usize, w: usize, r: isize, s: isize) {
    debug_assert_eq!(x.len(), h * w);
    debug_assert_eq!(out.len(), h * w);
    let Some(span) = plane_span(h, w, r, s) else {
        out.fill(0.0);
        return;
    };
    // Zero only the cells the span copy does not overwrite.
    out[..span.dst0].fill(0.0);
    out[span.dst0..span.dst0 + span.len].copy_from_slice(&x[span.src0..span.src0 + span.len]);
    out[span.dst0 + span.len..].fill(0.0);
    for_each_wrapped(&span, w, r, s, |d, _| out[d] = 0.0);
}

/// `out[b, o] = bias[o] + Σ_i x[b, i] · w[o, i]` — the dense-layer kernel.
/// `w` is `[out_dim, in_dim]` row-major; the inner product streams both
/// operands contiguously through [`dot`]. Handles `batch == 0` and
/// `in_dim == 0` (output rows are then just the bias).
pub fn matmul_xwt(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    batch: usize,
    in_dim: usize,
    out_dim: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(x.len(), batch * in_dim);
    debug_assert_eq!(w.len(), out_dim * in_dim);
    debug_assert_eq!(bias.len(), out_dim);
    debug_assert_eq!(out.len(), batch * out_dim);
    for b in 0..batch {
        let xr = &x[b * in_dim..(b + 1) * in_dim];
        let or = &mut out[b * out_dim..(b + 1) * out_dim];
        for (o, ov) in or.iter_mut().enumerate() {
            *ov = bias[o] + dot(xr, &w[o * in_dim..(o + 1) * in_dim]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..n).map(f).collect()
    }

    #[test]
    fn dot_matches_naive_all_remainders() {
        for n in 0..40 {
            let a = seq(n, |i| i as f32 * 0.25 - 3.0);
            let b = seq(n, |i| (n - i) as f32 * 0.5);
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() <= 1e-3 * (1.0 + naive.abs()), "n={n}");
        }
    }

    #[test]
    fn l2_matches_naive_all_remainders() {
        for n in 0..40 {
            let a = seq(n, |i| i as f32 * 0.5);
            let b = seq(n, |i| (n as f32) - i as f32 * 0.25);
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!((l2_sq(&a, &b) - naive).abs() <= 1e-3 * (1.0 + naive.abs()), "n={n}");
        }
    }

    #[test]
    fn sum_and_axpy() {
        let a = seq(19, |i| i as f32);
        assert_eq!(sum(&a), (0..19).sum::<i32>() as f32);
        let x = seq(11, |i| i as f32);
        let mut y = seq(11, |i| 100.0 + i as f32);
        axpy(2.0, &x, &mut y);
        for (i, v) in y.iter().enumerate() {
            assert_eq!(*v, 100.0 + i as f32 + 2.0 * i as f32);
        }
    }

    #[test]
    fn matmul_degenerate_shapes() {
        // batch = 0: nothing written.
        let mut out: Vec<f32> = Vec::new();
        matmul_xwt(&[], &[1.0, 2.0], &[0.5], 0, 2, 1, &mut out);
        // in_dim = 0: rows are the bias.
        let mut out = [0.0f32; 4];
        matmul_xwt(&[], &[], &[7.0, 9.0], 2, 0, 2, &mut out);
        assert_eq!(out, [7.0, 9.0, 7.0, 9.0]);
    }

    #[test]
    fn matmul_matches_reference() {
        let (batch, ni, no) = (3, 13, 5);
        let x = seq(batch * ni, |i| (i as f32 * 0.37).sin());
        let w = seq(no * ni, |i| (i as f32 * 0.11).cos());
        let bias = seq(no, |i| i as f32 * 0.5);
        let mut out = vec![0.0; batch * no];
        matmul_xwt(&x, &w, &bias, batch, ni, no, &mut out);
        for b in 0..batch {
            for o in 0..no {
                let naive: f32 = (0..ni).map(|i| x[b * ni + i] * w[o * ni + i]).sum();
                let got = out[b * no + o];
                assert!((got - (bias[o] + naive)).abs() < 1e-4, "b={b} o={o}");
            }
        }
    }

    /// Naive per-element shifted accumulate: the reference semantics.
    fn naive_shift_axpy(
        alpha: f32,
        x: &[f32],
        out: &mut [f32],
        h: usize,
        w: usize,
        r: isize,
        s: isize,
    ) {
        for i in 0..h as isize {
            for j in 0..w as isize {
                let (ii, jj) = (i + r, j + s);
                if ii >= 0 && ii < h as isize && jj >= 0 && jj < w as isize {
                    out[(i * w as isize + j) as usize] +=
                        alpha * x[(ii * w as isize + jj) as usize];
                }
            }
        }
    }

    #[test]
    fn shifted_plane_axpy_matches_naive_exactly() {
        let (h, w) = (5, 4);
        let x: Vec<f32> = (0..h * w).map(|i| (i as f32 * 0.31).sin()).collect();
        let mut scratch = Vec::new();
        for r in -3..=3i64 {
            for s in -3..=3i64 {
                let base: Vec<f32> = (0..h * w).map(|i| 100.0 + i as f32).collect();
                let mut got = base.clone();
                let mut want = base.clone();
                shifted_plane_axpy(0.7, &x, &mut got, h, w, r as isize, s as isize, &mut scratch);
                naive_shift_axpy(0.7, &x, &mut want, h, w, r as isize, s as isize);
                // Save/restore makes the fused version *bit*-exact.
                assert_eq!(got, want, "r={r} s={s}");
            }
        }
    }

    #[test]
    fn shifted_plane_copy_matches_naive() {
        let (h, w) = (4, 5);
        let x: Vec<f32> = (1..=h * w).map(|i| i as f32).collect();
        for r in -2..=2i64 {
            for s in -2..=2i64 {
                let (r, s) = (r as isize, s as isize);
                let mut got = vec![9.9f32; h * w];
                shifted_plane_copy(&x, &mut got, h, w, r, s);
                let mut want = vec![0.0f32; h * w];
                naive_shift_axpy(1.0, &x, &mut want, h, w, r, s);
                assert_eq!(got, want, "r={r} s={s}");
            }
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let a = seq(1000, |i| (i as f32 * 0.013).sin());
        let b = seq(1000, |i| (i as f32 * 0.029).cos());
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
        assert_eq!(l2_sq(&a, &b).to_bits(), l2_sq(&a, &b).to_bits());
    }
}
