//! Chaos suite: drive the serving layer through injected faults (panics,
//! typed errors, latency) and assert the degradation contract:
//!
//! * every query returns a [`ServeOutcome`] or a typed error — a panic
//!   never propagates to the caller;
//! * a shard that panics is quarantined and stays quarantined until an
//!   explicit `recover_shard`;
//! * snapshots stay coherent (no torn shard states) and epochs monotone
//!   under faults racing concurrent writes;
//! * a wedged compactor is restarted with backoff and the write path falls
//!   back to inline compaction instead of unbounded delta growth;
//! * artifact saves are atomic — a fault mid-write leaves the previous
//!   artifact loadable.
//!
//! Requires `--features failpoints`; without it this file compiles empty.
#![cfg(feature = "failpoints")]

use af_core::config::AutoFormulaConfig;
use af_core::failpoint::{self, FailAction};
use af_core::index::IndexOptions;
use af_core::model::RepresentationModel;
use af_core::pipeline::{AutoFormula, PipelineVariant, PredictOptions};
use af_corpus::organization::{OrgSpec, Scale};
use af_embed::{CellFeaturizer, FeatureMask, SbertSim};
use af_grid::{CellRef, Sheet};
use af_serve::{ServeHandle, ServeOutcome};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The failpoint registry is process-global and the test harness runs
/// tests on threads; every test takes this lock for its whole body so
/// armed sites never leak into a neighbor.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A poisoned lock just means a previous chaos test failed; the guard
    // below cleared its failpoints on unwind, so continuing is safe.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

/// Clears every failpoint and restores the panic hook when dropped — even
/// when the test itself panics.
struct ChaosGuard {
    hook: Option<PanicHook>,
}

impl ChaosGuard {
    /// Silence the panic hook for tests that inject panics on purpose
    /// (otherwise every injected fault prints a backtrace).
    fn quiet() -> ChaosGuard {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        ChaosGuard { hook: Some(hook) }
    }

    fn loud() -> ChaosGuard {
        ChaosGuard { hook: None }
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        failpoint::clear_all();
        if let Some(hook) = self.hook.take() {
            std::panic::set_hook(hook);
        }
    }
}

fn system_with(cfg: AutoFormulaConfig) -> AutoFormula {
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
    AutoFormula::from_model(RepresentationModel::new(featurizer.dim(), cfg), featurizer)
}

fn handle_over(cfg: AutoFormulaConfig, n_workbooks: usize) -> (ServeHandle, af_corpus::OrgCorpus) {
    let corpus = OrgSpec::pge(Scale::Tiny).generate();
    let af = system_with(cfg);
    let members: Vec<usize> = (0..n_workbooks).collect();
    let index = af.build_index(&corpus.workbooks, &members, IndexOptions::default());
    (ServeHandle::new(af, index), corpus)
}

fn query_targets(corpus: &af_corpus::OrgCorpus, wb: usize) -> Vec<(&Sheet, CellRef)> {
    corpus.workbooks[wb]
        .sheets
        .iter()
        .flat_map(|s| s.formulas().map(move |(at, _)| (s, at)))
        .collect()
}

fn assert_bitwise_eq(a: &ServeOutcome, b: &ServeOutcome) {
    match (&a.prediction, &b.prediction) {
        (Some(x), Some(y)) => {
            assert_eq!(x.formula, y.formula);
            assert_eq!(x.s2_distance.to_bits(), y.s2_distance.to_bits());
            assert_eq!(x.reference_sheet_idx, y.reference_sheet_idx);
        }
        (None, None) => {}
        (x, y) => panic!("{x:?} vs {y:?}"),
    }
}

#[test]
fn scan_panics_quarantine_shards_and_recovery_restores_service() {
    let _l = chaos_lock();
    let _g = ChaosGuard::quiet();
    let cfg = AutoFormulaConfig { n_shards: 3, ..AutoFormulaConfig::test_tiny() };
    let (handle, corpus) = handle_over(cfg, 4);
    let queries: Vec<_> = query_targets(&corpus, 0).into_iter().take(4).collect();
    let baseline: Vec<ServeOutcome> =
        queries.iter().map(|&(s, at)| handle.predict_with(s, at, PipelineVariant::Full)).collect();
    assert!(baseline.iter().all(|o| !o.degraded));

    // Every segment scan panics: the query must still *return* — all three
    // shards quarantined, no prediction, no propagated panic.
    failpoint::arm("serve::shard_scan", FailAction::Panic);
    let o = handle.predict_with(queries[0].0, queries[0].1, PipelineVariant::Full);
    assert!(o.degraded && o.prediction.is_none());
    assert_eq!(o.shards_skipped, 3);
    assert_eq!(handle.quarantined().len(), 3);
    assert_eq!(handle.stats().quarantined_shards, 3);

    // Disarming the fault does NOT lift quarantine — it is sticky until an
    // explicit recovery.
    failpoint::clear("serve::shard_scan");
    let still = handle.predict_with(queries[0].0, queries[0].1, PipelineVariant::Full);
    assert!(still.degraded && still.prediction.is_none());
    assert_eq!(handle.quarantined().len(), 3);

    for shard in 0..3 {
        handle.recover_shard(shard);
    }
    for (&(sheet, at), before) in queries.iter().zip(&baseline) {
        let after = handle.predict_with(sheet, at, PipelineVariant::Full);
        assert!(!after.degraded, "recovered server must serve full fidelity");
        assert_bitwise_eq(&after, before);
    }
}

#[test]
fn injected_scan_errors_skip_without_quarantine() {
    let _l = chaos_lock();
    let _g = ChaosGuard::loud();
    let cfg = AutoFormulaConfig { n_shards: 2, ..AutoFormulaConfig::test_tiny() };
    let (handle, corpus) = handle_over(cfg, 3);
    let (sheet, at) = query_targets(&corpus, 0)[0];

    // A typed error is transient: the shard is skipped for this query only
    // and is NOT quarantined.
    failpoint::arm("serve::shard_scan", FailAction::Error);
    let o = handle.predict_with(sheet, at, PipelineVariant::Full);
    assert!(o.degraded && o.prediction.is_none());
    assert_eq!(o.shards_skipped, 2);
    assert!(handle.quarantined().is_empty(), "errors must not quarantine");
    failpoint::clear("serve::shard_scan");
    assert!(!handle.predict_with(sheet, at, PipelineVariant::Full).degraded);

    // Same for per-candidate S2 errors: candidates drop, the query lives.
    failpoint::arm("serve::region_rank", FailAction::Error);
    let o = handle.predict_with(sheet, at, PipelineVariant::Full);
    assert!(o.degraded && o.candidates_dropped > 0);
    assert!(handle.quarantined().is_empty());
    failpoint::clear("serve::region_rank");
}

#[test]
fn injected_latency_trips_deadlines_without_degrading_results_otherwise() {
    let _l = chaos_lock();
    let _g = ChaosGuard::loud();
    let cfg = AutoFormulaConfig { n_shards: 2, ..AutoFormulaConfig::test_tiny() };
    let (handle, corpus) = handle_over(cfg, 3);
    let (sheet, at) = query_targets(&corpus, 0)[0];

    // 40 ms per segment scan against a 10 ms budget: S1 gets through the
    // first segment and the deadline check before the next one trips.
    failpoint::arm("serve::shard_scan", FailAction::Sleep(Duration::from_millis(40)));
    let opts = PredictOptions::with_variant(PipelineVariant::Full).deadline_in_ms(10);
    let o = handle.predict_opts(sheet, at, opts);
    assert!(o.deadline_exceeded && o.degraded, "latency must trip the deadline");
    assert!(handle.quarantined().is_empty(), "slowness is not a quarantine offense");

    // Without a deadline the same latency just makes the full answer slow.
    let slow = handle.predict_with(sheet, at, PipelineVariant::Full);
    assert!(!slow.degraded);
    failpoint::clear("serve::shard_scan");
    let fast = handle.predict_with(sheet, at, PipelineVariant::Full);
    assert_bitwise_eq(&slow, &fast);
}

#[test]
fn wedged_compactor_restarts_and_backpressure_bounds_deltas() {
    let _l = chaos_lock();
    let _g = ChaosGuard::loud();
    let cfg = AutoFormulaConfig {
        n_shards: 2,
        delta_max_sheets: 1,
        backpressure_factor: 3,
        ..AutoFormulaConfig::test_tiny()
    };
    let (handle, corpus) = handle_over(cfg, 2);

    // Wedge the compactor: every attempt fails with a typed error.
    failpoint::arm("serve::compact", FailAction::Error);
    for wb in 2..6 {
        handle.add_workbook(&corpus.workbooks[wb]);
    }
    // Writes kept landing; deltas stayed bounded by the backpressure
    // threshold (1 × 3) instead of growing with every add.
    let snap = handle.snapshot();
    assert_eq!(handle.epoch(), 4);
    assert!(
        snap.n_delta_sheets() <= 3 * 2,
        "deltas must stay under the per-shard backpressure threshold, saw {}",
        snap.n_delta_sheets()
    );
    // The supervisor counted at least one failed attempt (the compactor
    // may still be inside its first backoff, so don't demand more).
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.stats().compactor_restarts == 0 {
        assert!(Instant::now() < deadline, "supervisor never recorded the wedge");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Un-wedge: the supervised loop's retry (or the next signal) drains
    // the backlog without any new writes.
    failpoint::clear("serve::compact");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = handle.snapshot();
        if snap.n_delta_sheets() == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "compactor never drained after un-wedging");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Served content is intact after the whole ordeal.
    let queries = query_targets(&corpus, 0);
    assert!(!queries.is_empty());
    for &(sheet, at) in queries.iter().take(4) {
        assert!(!handle.predict_with(sheet, at, PipelineVariant::Full).degraded);
    }
}

#[test]
fn publish_panic_aborts_the_write_without_tearing_state() {
    let _l = chaos_lock();
    let _g = ChaosGuard::quiet();
    let cfg = AutoFormulaConfig { n_shards: 2, ..AutoFormulaConfig::test_tiny() };
    let (handle, corpus) = handle_over(cfg, 2);
    let sheets_before = handle.n_sheets();
    let epoch_before = handle.epoch();

    failpoint::arm("serve::delta_publish", FailAction::Panic);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle.add_workbook(&corpus.workbooks[2])
    }));
    assert!(r.is_err(), "the injected publish panic surfaces to the writer");
    failpoint::clear("serve::delta_publish");

    // The failed write published nothing and poisoned nothing: state is
    // unchanged, and both reads and writes still work.
    assert_eq!(handle.epoch(), epoch_before);
    assert_eq!(handle.n_sheets(), sheets_before);
    let (sheet, at) = query_targets(&corpus, 0)[0];
    assert!(!handle.predict_with(sheet, at, PipelineVariant::Full).degraded);
    handle.add_workbook(&corpus.workbooks[2]);
    assert!(handle.n_sheets() > sheets_before);
}

#[test]
fn interrupted_artifact_save_leaves_the_previous_artifact_loadable() {
    let _l = chaos_lock();
    let _g = ChaosGuard::loud();
    let cfg = AutoFormulaConfig { n_shards: 2, ..AutoFormulaConfig::test_tiny() };
    let (handle, corpus) = handle_over(cfg, 2);
    let mut path = std::env::temp_dir();
    path.push(format!("af_chaos_atomic_{}.afar", std::process::id()));

    handle.to_artifact_path(&path).expect("initial save");
    let n_before = ServeHandle::from_artifact_path(&path).expect("loads").n_sheets();

    // Kill the next save halfway: the write to the temp file errors after
    // the first half of the bytes.
    handle.add_workbook(&corpus.workbooks[2]);
    failpoint::arm("core::artifact_save", FailAction::Error);
    let r = handle.to_artifact_path(&path);
    assert!(r.is_err(), "interrupted save must report a typed error");
    failpoint::clear("core::artifact_save");

    // The artifact at `path` is still the previous, complete one.
    let reloaded = ServeHandle::from_artifact_path(&path).expect("old artifact intact");
    assert_eq!(reloaded.n_sheets(), n_before);
    // And no temp litter in the directory.
    let dir = path.parent().unwrap();
    let stem = path.file_name().unwrap().to_string_lossy().into_owned();
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(!name.contains(&format!(".{stem}.tmp")), "temp file left behind: {name}");
    }

    // A healthy retry overwrites atomically and lands the new state.
    handle.to_artifact_path(&path).expect("retry save");
    assert!(ServeHandle::from_artifact_path(&path).expect("loads").n_sheets() > n_before);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn artifact_load_faults_surface_as_typed_errors() {
    let _l = chaos_lock();
    let _g = ChaosGuard::loud();
    let cfg = AutoFormulaConfig { n_shards: 2, ..AutoFormulaConfig::test_tiny() };
    let (handle, _) = handle_over(cfg, 2);
    let mut path = std::env::temp_dir();
    path.push(format!("af_chaos_load_{}.afar", std::process::id()));
    handle.to_artifact_path(&path).expect("save");

    failpoint::arm("core::artifact_load", FailAction::Error);
    assert!(ServeHandle::from_artifact_path(&path).is_err(), "typed error, not a panic");
    failpoint::clear("core::artifact_load");
    assert!(ServeHandle::from_artifact_path(&path).is_ok());
    std::fs::remove_file(&path).unwrap();
}

/// With `--features "failpoints obs"`, faults must leave a structured
/// trace: a panicking scan's quarantine emits a `serve::quarantine`
/// event naming the tripped shard.
#[cfg(feature = "obs")]
#[test]
fn quarantine_events_name_the_tripped_shards() {
    let _l = chaos_lock();
    let _g = ChaosGuard::quiet();
    let cfg = AutoFormulaConfig { n_shards: 3, ..AutoFormulaConfig::test_tiny() };
    let (handle, corpus) = handle_over(cfg, 4);
    let (sheet, at) = query_targets(&corpus, 0)[0];

    let mark = af_obs::event_watermark();
    failpoint::arm("serve::shard_scan", FailAction::Panic);
    let o = handle.predict_with(sheet, at, PipelineVariant::Full);
    failpoint::clear("serve::shard_scan");
    assert!(o.degraded);

    let mut tripped: Vec<usize> = af_obs::events_since(mark)
        .into_iter()
        .filter(|e| e.site == "serve::quarantine")
        .map(|e| {
            assert_eq!(e.detail, "imposed");
            e.value as usize
        })
        .collect();
    tripped.sort_unstable();
    let mut quarantined: Vec<usize> = handle.quarantined().iter().map(|q| q.shard).collect();
    quarantined.sort_unstable();
    assert_eq!(tripped, quarantined, "one event per quarantined shard, naming it");
    assert_eq!(tripped.len(), 3);

    // Repeated degraded queries against already-quarantined shards must
    // NOT re-emit: the event marks the transition, not the state.
    let mark = af_obs::event_watermark();
    let _ = handle.predict_with(sheet, at, PipelineVariant::Full);
    assert!(af_obs::events_since(mark).iter().all(|e| e.site != "serve::quarantine"));
}

/// A deadline-exceeded query emits a `serve::deadline` event whose
/// detail names the stage that tripped.
#[cfg(feature = "obs")]
#[test]
fn deadline_trips_emit_an_event_naming_the_stage() {
    let _l = chaos_lock();
    let _g = ChaosGuard::loud();
    let cfg = AutoFormulaConfig { n_shards: 2, ..AutoFormulaConfig::test_tiny() };
    let (handle, corpus) = handle_over(cfg, 3);
    let (sheet, at) = query_targets(&corpus, 0)[0];

    // Same recipe as the latency test above: 40 ms per segment scan
    // against a 10 ms budget trips the S1 deadline check.
    let mark = af_obs::event_watermark();
    failpoint::arm("serve::shard_scan", FailAction::Sleep(Duration::from_millis(40)));
    let opts = PredictOptions::with_variant(PipelineVariant::Full).deadline_in_ms(10);
    let o = handle.predict_opts(sheet, at, opts);
    failpoint::clear("serve::shard_scan");
    assert!(o.deadline_exceeded);

    let trips: Vec<_> =
        af_obs::events_since(mark).into_iter().filter(|e| e.site == "serve::deadline").collect();
    assert!(!trips.is_empty(), "a deadline-exceeded query must leave a trace");
    assert_eq!(trips[0].detail, "s1_scan", "the event names the stage that tripped");

    // A comfortably-met deadline emits nothing.
    let mark = af_obs::event_watermark();
    let o = handle.predict_opts(
        sheet,
        at,
        PredictOptions::with_variant(PipelineVariant::Full).deadline_in_ms(60_000),
    );
    assert!(!o.deadline_exceeded);
    assert!(af_obs::events_since(mark).iter().all(|e| e.site != "serve::deadline"));
}

#[test]
fn randomized_faults_under_concurrent_load_never_break_the_contract() {
    let _l = chaos_lock();
    let _g = ChaosGuard::quiet();
    let cfg =
        AutoFormulaConfig { n_shards: 3, delta_max_sheets: 2, ..AutoFormulaConfig::test_tiny() };
    let (handle, corpus) = handle_over(cfg, 2);
    let queries: Vec<(usize, usize, CellRef)> = corpus.workbooks[0]
        .sheets
        .iter()
        .enumerate()
        .flat_map(|(si, s)| s.formulas().map(move |(at, _)| (0usize, si, at)))
        .collect();
    assert!(!queries.is_empty());
    let baseline: Vec<ServeOutcome> = queries
        .iter()
        .map(|&(wb, si, at)| {
            handle.predict_with(&corpus.workbooks[wb].sheets[si], at, PipelineVariant::Full)
        })
        .collect();

    // A reproducible storm: occasional scan panics, rank errors, and
    // compaction faults, all while a writer publishes new epochs.
    failpoint::seed(0xDEAD_BEEF);
    failpoint::configure("serve::shard_scan", FailAction::Panic, 0.05);
    failpoint::configure("serve::region_rank", FailAction::Error, 0.10);
    failpoint::configure("serve::compact", FailAction::Error, 0.25);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for t in 0..3 {
            let handle = handle.clone();
            let corpus = &corpus;
            let queries = &queries;
            let baseline = &baseline;
            let stop = &stop;
            scope.spawn(move || {
                let mut served = 0usize;
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = handle.snapshot();
                    assert!(snap.epoch >= last_epoch, "epoch went backwards");
                    last_epoch = snap.epoch;
                    let (wb, si, at) = queries[(served + t) % queries.len()];
                    let sheet = &corpus.workbooks[wb].sheets[si];
                    // The contract: the call RETURNS — a ServeOutcome,
                    // never an unwind (a panic here would fail the test).
                    let o = snap.predict_outcome(
                        sheet,
                        at,
                        PredictOptions::with_variant(PipelineVariant::Full),
                    );
                    // And a non-degraded outcome on the original epoch is
                    // the full-fidelity answer, faults notwithstanding.
                    if !o.degraded && snap.epoch == 0 && served < queries.len() {
                        assert_bitwise_eq(&o, &baseline[(served + t) % queries.len()]);
                    }
                    served += 1;
                }
                assert!(served > 0);
            });
        }
        let writer = handle.clone();
        let corpus_ref = &corpus;
        let stop_ref = &stop;
        scope.spawn(move || {
            for round in 0..4 {
                writer.add_workbook(&corpus_ref.workbooks[2 + (round % 3)]);
            }
            stop_ref.store(true, Ordering::Relaxed);
        });
    });

    failpoint::clear_all();
    assert_eq!(handle.epoch(), 4, "every write landed despite the storm");
    // Quarantines only ever accumulated; recover whatever tripped and
    // verify full service resumes.
    let n_shards = handle.n_shards();
    for shard in 0..n_shards {
        handle.recover_shard(shard);
    }
    for &(wb, si, at) in queries.iter().take(4) {
        let o = handle.predict_with(&corpus.workbooks[wb].sheets[si], at, PipelineVariant::Full);
        assert!(!o.degraded);
    }
}
