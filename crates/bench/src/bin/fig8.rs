//! Thin CLI wrapper: regenerates fig8 (see DESIGN.md's per-experiment
//! index). `AF_SCALE={tiny,small,full}` scales the synthetic corpora.

fn main() {
    af_bench::report::run_experiment(
        "fig8",
        "Fig. 8: online prediction latency vs reference-sheet count, plus offline preprocessing cost",
        af_bench::experiments::fig8,
    );
}
