//! Cross-crate integration: generate corpora, train, index, predict,
//! evaluate — the full paper pipeline at test scale.

use auto_formula::core::index::IndexOptions;
use auto_formula::core::pipeline::{AutoFormula, PipelineVariant};
use auto_formula::core::{AutoFormulaConfig, TrainingOptions};
use auto_formula::corpus::organization::{OrgSpec, Scale};
use auto_formula::corpus::split::{split, SplitKind};
use auto_formula::corpus::testcase::{masked_sheet, sample_test_cases};
use auto_formula::embed::{CellFeaturizer, FeatureMask, SbertSim};
use std::sync::Arc;

fn tiny_system(universe: &auto_formula::corpus::OrgCorpus) -> AutoFormula {
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
    let cfg = AutoFormulaConfig { episodes: 40, ..AutoFormulaConfig::test_tiny() };
    let (af, report) =
        AutoFormula::train(&universe.workbooks, featurizer, cfg, TrainingOptions::default());
    assert!(report.coarse_pairs > 0 && report.fine_pairs > 0);
    af
}

#[test]
fn train_index_predict_evaluate() {
    let universe = OrgSpec::web_crawl(Scale::Tiny).generate();
    let org = OrgSpec::pge(Scale::Tiny).generate();
    let af = tiny_system(&universe);
    let sp = split(&org, SplitKind::Timestamp, 0.1, 1);
    let index = af.build_index(&org.workbooks, &sp.reference, IndexOptions::default());
    assert!(index.n_sheets() > 0);
    assert!(index.n_regions() > 0);

    let cases = sample_test_cases(&org, &sp, 5, 2);
    assert!(!cases.is_empty());
    let mut n_pred = 0;
    let mut n_hit = 0;
    for tc in cases.iter().take(40) {
        let sheet = &org.workbooks[tc.workbook].sheets[tc.sheet];
        let masked = masked_sheet(sheet, tc.target);
        if let Some(p) = af.predict_with(&index, &masked, tc.target, PipelineVariant::Full) {
            n_pred += 1;
            let gt = auto_formula::formula::parse_formula(&tc.ground_truth).unwrap().to_string();
            if p.formula == gt {
                n_hit += 1;
            }
            // Predictions always parse.
            assert!(auto_formula::formula::parse_formula(&p.formula).is_ok());
        }
    }
    assert!(n_pred > 0, "pipeline should make predictions");
    assert!(n_hit * 4 >= n_pred, "at least 25% exact on PGE-sim ({n_hit}/{n_pred})");
}

#[test]
fn determinism_across_runs() {
    // Same seeds → identical corpora, training, and predictions.
    let run = || {
        let universe = OrgSpec::web_crawl(Scale::Tiny).generate();
        let org = OrgSpec::ti(Scale::Tiny).generate();
        let af = tiny_system(&universe);
        let sp = split(&org, SplitKind::Timestamp, 0.1, 1);
        let index = af.build_index(&org.workbooks, &sp.reference, IndexOptions::default());
        let cases = sample_test_cases(&org, &sp, 3, 2);
        cases
            .iter()
            .take(10)
            .map(|tc| {
                let sheet = &org.workbooks[tc.workbook].sheets[tc.sheet];
                let masked = masked_sheet(sheet, tc.target);
                af.predict_with(&index, &masked, tc.target, PipelineVariant::Full)
                    .map(|p| p.formula)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn pipeline_variants_all_run() {
    let universe = OrgSpec::web_crawl(Scale::Tiny).generate();
    let org = OrgSpec::pge(Scale::Tiny).generate();
    let af = tiny_system(&universe);
    let sp = split(&org, SplitKind::Random, 0.1, 5);
    let index = af.build_index(
        &org.workbooks,
        &sp.reference,
        IndexOptions { fine_sheet_signatures: true, coarse_regions: true },
    );
    let cases = sample_test_cases(&org, &sp, 2, 3);
    let tc = &cases[0];
    let sheet = &org.workbooks[tc.workbook].sheets[tc.sheet];
    let masked = masked_sheet(sheet, tc.target);
    for variant in [PipelineVariant::Full, PipelineVariant::CoarseOnly, PipelineVariant::FineOnly] {
        // Must not panic; may or may not predict.
        let _ = af.predict_with(&index, &masked, tc.target, variant);
    }
}

#[test]
fn artifact_load_reproduces_in_memory_predictions_on_every_backend() {
    // The acceptance bar for the serving artifact: `AutoFormula::save` →
    // `AutoFormula::load` → `predict` must be *bit-identical* to the
    // in-memory pipeline — same formulas, same S2 distances to the bit,
    // same provenance — on every ANN backend (flat vectors, HNSW graph,
    // IVF lists + centroids all round-trip through the artifact).
    use auto_formula::core::AnnBackend;
    let universe = OrgSpec::web_crawl(Scale::Tiny).generate();
    let org = OrgSpec::pge(Scale::Tiny).generate();
    let mut af = tiny_system(&universe);
    let sp = split(&org, SplitKind::Random, 0.1, 7);
    let cases = sample_test_cases(&org, &sp, 3, 6);
    assert!(!cases.is_empty());
    for backend in [
        AnnBackend::Flat,
        AnnBackend::Hnsw(auto_formula::ann::HnswParams::default()),
        AnnBackend::Ivf(auto_formula::ann::IvfParams { n_lists: 4, ..Default::default() }),
    ] {
        af.model.cfg.ann_backend = backend;
        let index = af.build_index(&org.workbooks, &sp.reference, IndexOptions::default());
        let artifact = af.save(&index);
        let (loaded, loaded_index) = auto_formula::core::pipeline::AutoFormula::load(&artifact)
            .unwrap_or_else(|e| panic!("{backend:?}: artifact must load: {e}"));
        let mut predictions = 0usize;
        for tc in cases.iter().take(15) {
            let sheet = &org.workbooks[tc.workbook].sheets[tc.sheet];
            let masked = masked_sheet(sheet, tc.target);
            let a = af.predict_with(&index, &masked, tc.target, PipelineVariant::Full);
            let b = loaded.predict_with(&loaded_index, &masked, tc.target, PipelineVariant::Full);
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.formula, y.formula, "{backend:?}");
                    assert_eq!(
                        x.s2_distance.to_bits(),
                        y.s2_distance.to_bits(),
                        "{backend:?}: distances must match to the bit"
                    );
                    assert_eq!(x.reference_sheet, y.reference_sheet, "{backend:?}");
                    assert_eq!(x.reference_cell, y.reference_cell, "{backend:?}");
                    assert_eq!(x.template_signature, y.template_signature, "{backend:?}");
                    predictions += 1;
                }
                (None, None) => {}
                (x, y) => panic!("{backend:?}: prediction mismatch {x:?} vs {y:?}"),
            }
        }
        assert!(predictions > 0, "{backend:?}: comparison needs actual predictions");
    }
}

#[test]
fn compact_and_mmap_artifacts_stay_bit_identical_on_every_backend() {
    // The v2 storage levers must not bend the acceptance bar: the compact
    // fine layout (per-sheet cell caches, windows re-gathered at load)
    // and the mmap load path both reproduce in-memory predictions bit for
    // bit under the exact codec, on every ANN backend.
    use auto_formula::core::{AnnBackend, Codec, StoreOptions};
    let universe = OrgSpec::web_crawl(Scale::Tiny).generate();
    let org = OrgSpec::pge(Scale::Tiny).generate();
    let mut af = tiny_system(&universe);
    let sp = split(&org, SplitKind::Random, 0.1, 7);
    let cases = sample_test_cases(&org, &sp, 3, 6);
    assert!(!cases.is_empty());
    for backend in [
        AnnBackend::Flat,
        AnnBackend::Hnsw(auto_formula::ann::HnswParams::default()),
        AnnBackend::Ivf(auto_formula::ann::IvfParams { n_lists: 4, ..Default::default() }),
    ] {
        af.model.cfg.ann_backend = backend;
        let index = af.build_index(&org.workbooks, &sp.reference, IndexOptions::default());
        let fat = af.save(&index);
        let compact = af
            .save_with(&index, StoreOptions { codec: Codec::F32, compact_fine: true })
            .expect("compact save");
        assert!(compact.len() < fat.len(), "{backend:?}: compact must shrink");
        let mut path = std::env::temp_dir();
        path.push(format!("af_e2e_{}_{}.afar", std::process::id(), backend.label()));
        std::fs::write(&path, &compact).unwrap();
        let (loaded, loaded_index) = auto_formula::core::pipeline::AutoFormula::load_mmap(&path)
            .unwrap_or_else(|e| panic!("{backend:?}: compact artifact must mmap-load: {e}"));
        let mut predictions = 0usize;
        for tc in cases.iter().take(10) {
            let sheet = &org.workbooks[tc.workbook].sheets[tc.sheet];
            let masked = masked_sheet(sheet, tc.target);
            let a = af.predict_with(&index, &masked, tc.target, PipelineVariant::Full);
            let b = loaded.predict_with(&loaded_index, &masked, tc.target, PipelineVariant::Full);
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.formula, y.formula, "{backend:?}");
                    assert_eq!(x.s2_distance.to_bits(), y.s2_distance.to_bits(), "{backend:?}");
                    predictions += 1;
                }
                (None, None) => {}
                (x, y) => panic!("{backend:?}: prediction mismatch {x:?} vs {y:?}"),
            }
        }
        assert!(predictions > 0, "{backend:?}");
        drop(loaded_index); // release the mapping before unlinking
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn served_artifact_answers_like_the_library_pipeline() {
    // Facade-level smoke of the full serving story: save → ServeHandle →
    // lock-free predict + incremental add_workbook, no workbook borrows.
    let universe = OrgSpec::web_crawl(Scale::Tiny).generate();
    let org = OrgSpec::pge(Scale::Tiny).generate();
    let af = tiny_system(&universe);
    let members: Vec<usize> = (0..org.workbooks.len() - 1).collect();
    let index = af.build_index(&org.workbooks, &members, IndexOptions::default());
    let handle = auto_formula::serve::ServeHandle::from_artifact(&af.save(&index)).unwrap();
    assert_eq!(handle.n_sheets(), index.n_sheets());

    let sheet = &org.workbooks[0].sheets[0];
    let (target, _) = sheet.formulas().next().expect("a formula cell");
    let direct = af.predict_with(&index, sheet, target, PipelineVariant::Full);
    let served = handle.predict_with(sheet, target, PipelineVariant::Full);
    assert!(!served.degraded, "healthy server must answer at full fidelity");
    assert_eq!(direct.map(|p| p.formula), served.prediction.map(|p| p.formula));

    // Growth: the last workbook joins the served index epoch-by-epoch.
    let epoch = handle.add_workbook(&org.workbooks[org.workbooks.len() - 1]);
    assert_eq!(epoch, 1);
    assert!(handle.n_sheets() > index.n_sheets());
}

#[test]
fn model_snapshot_round_trips_through_pipeline() {
    let universe = OrgSpec::web_crawl(Scale::Tiny).generate();
    let org = OrgSpec::pge(Scale::Tiny).generate();
    let af = tiny_system(&universe);
    let snapshot = af.model.to_bytes();

    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
    let cfg = af.model.cfg;
    let mut model = auto_formula::core::RepresentationModel::new(featurizer.dim(), cfg);
    model.load_bytes(snapshot).unwrap();
    let af2 = AutoFormula::from_model(model, featurizer);

    let sp = split(&org, SplitKind::Random, 0.1, 9);
    let index1 = af.build_index(&org.workbooks, &sp.reference, IndexOptions::default());
    let index2 = af2.build_index(&org.workbooks, &sp.reference, IndexOptions::default());
    let cases = sample_test_cases(&org, &sp, 2, 4);
    for tc in cases.iter().take(5) {
        let sheet = &org.workbooks[tc.workbook].sheets[tc.sheet];
        let masked = masked_sheet(sheet, tc.target);
        let a =
            af.predict_with(&index1, &masked, tc.target, PipelineVariant::Full).map(|p| p.formula);
        let b =
            af2.predict_with(&index2, &masked, tc.target, PipelineVariant::Full).map(|p| p.formula);
        assert_eq!(a, b, "snapshot must reproduce predictions");
    }
}
