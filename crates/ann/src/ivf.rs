//! IVF-Flat: k-means coarse quantizer + inverted lists, the classic Faiss
//! index layout.

use crate::codec::{self, CodecError};
use crate::kmeans::{kmeans, KMeansResult};
use crate::metric::{l2_sq, Neighbor, TopK};
use crate::VectorIndex;
use af_store::{Codec, DenseStore, VectorStore};
use bytes::{BufMut, Bytes, BytesMut};

/// Build parameters for [`IvfFlatIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfParams {
    /// Number of inverted lists (clusters). Defaults to `√n` when zero.
    pub n_lists: usize,
    /// Number of lists probed per query.
    pub n_probe: usize,
    /// Lloyd iterations when training the coarse quantizer.
    pub kmeans_iters: usize,
    /// Seed for k-means++ initialization (builds are deterministic).
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        IvfParams { n_lists: 0, n_probe: 8, kmeans_iters: 10, seed: 0x1f2e_3d4c }
    }
}

/// An IVF-Flat index: vectors are bucketed by nearest centroid; queries
/// probe the `n_probe` closest buckets.
///
/// List vectors live in per-list [`af_store::DenseStore`]s (centroids stay
/// f32 — there are √n of them, they are not worth compressing): `f32` by
/// default, or a quantized codec after loading a compressed artifact, in
/// which case probed lists are scanned with the asymmetric kernels.
#[derive(Clone)]
pub struct IvfFlatIndex {
    dim: usize,
    n: usize,
    params: IvfParams,
    /// Storage codec for list vectors (new lists inherit it).
    codec: Codec,
    quantizer: KMeansResult,
    /// `lists[c]` holds `(original_id, vector)` rows, vectors in a store.
    list_ids: Vec<Vec<usize>>,
    list_data: Vec<DenseStore>,
    /// False for an index born empty and grown purely by `add`: such an
    /// index retrains its quantizer at geometric size milestones (see
    /// [`VectorIndex::add`]) instead of staying pinned to the single
    /// lazily-seeded list forever. `build` on a real corpus sets this.
    trained: bool,
}

/// Corpus size at which a cold-start (lazily-seeded) index first retrains
/// its quantizer; it retrains again at every doubling, so the amortized
/// cost per insert stays constant and the list structure tracks growth.
const COLD_START_RETRAIN_MIN: usize = 32;

impl IvfFlatIndex {
    /// Build from row-major `data` (`n × dim`). An empty `data` yields a
    /// valid empty index (searches return nothing; the quantizer is seeded
    /// lazily by the first [`VectorIndex::add`]) so a cold-start corpus
    /// cannot change crash behavior across backends.
    pub fn build(data: &[f32], dim: usize, params: IvfParams) -> IvfFlatIndex {
        IvfFlatIndex::build_with_codec(data, dim, Codec::F32, params)
    }

    /// [`IvfFlatIndex::build`] with list vectors stored in `codec` (the
    /// k-means quantizer always trains on the exact input).
    pub fn build_with_codec(
        data: &[f32],
        dim: usize,
        codec: Codec,
        mut params: IvfParams,
    ) -> IvfFlatIndex {
        assert!(dim > 0);
        assert_eq!(data.len() % dim, 0);
        let n = data.len() / dim;
        if n == 0 {
            let quantizer = KMeansResult {
                k: 0,
                dim,
                centroids: Vec::new(),
                assignments: Vec::new(),
                inertia: 0.0,
            };
            return IvfFlatIndex {
                dim,
                n: 0,
                params,
                codec,
                quantizer,
                list_ids: Vec::new(),
                list_data: Vec::new(),
                trained: false,
            };
        }
        if params.n_lists == 0 {
            params.n_lists = (n as f64).sqrt().ceil() as usize;
        }
        params.n_lists = params.n_lists.clamp(1, n);
        let quantizer = kmeans(data, dim, params.n_lists, params.kmeans_iters, params.seed);
        let k = quantizer.k;
        let mut list_ids = vec![Vec::new(); k];
        let mut list_data: Vec<DenseStore> = (0..k).map(|_| DenseStore::new(dim, codec)).collect();
        for i in 0..n {
            let c = quantizer.assignments[i];
            list_ids[c].push(i);
            list_data[c].push(&data[i * dim..(i + 1) * dim]);
        }
        IvfFlatIndex { dim, n, params, codec, quantizer, list_ids, list_data, trained: true }
    }

    /// Re-encode every list into `codec` (identity is a cheap clone).
    pub fn to_codec(&self, codec: Codec) -> IvfFlatIndex {
        let mut out = self.clone();
        out.codec = codec;
        out.list_data = self.list_data.iter().map(|s| s.to_codec(codec)).collect();
        out
    }

    /// Number of inverted lists the quantizer currently maintains.
    pub fn n_lists(&self) -> usize {
        self.quantizer.k
    }

    /// Re-run k-means over every stored vector (in id order, so the result
    /// is deterministic regardless of the current list layout) and rebuild
    /// the inverted lists. `n_lists` follows the build rule: the configured
    /// value, or `√n` when zero, clamped to `1..=n`.
    fn retrain_quantizer(&mut self) {
        let mut rows: Vec<(usize, Vec<f32>)> = Vec::with_capacity(self.n);
        for (ids, data) in self.list_ids.iter().zip(&self.list_data) {
            for (j, &id) in ids.iter().enumerate() {
                rows.push((id, data.row_owned(j)));
            }
        }
        rows.sort_unstable_by_key(|(id, _)| *id);
        let mut flat = Vec::with_capacity(self.n * self.dim);
        for (_, v) in &rows {
            flat.extend_from_slice(v);
        }
        let mut k = self.params.n_lists;
        if k == 0 {
            k = (self.n as f64).sqrt().ceil() as usize;
        }
        k = k.clamp(1, self.n);
        let quantizer = kmeans(&flat, self.dim, k, self.params.kmeans_iters, self.params.seed);
        let k = quantizer.k;
        let mut list_ids = vec![Vec::new(); k];
        let mut list_data: Vec<DenseStore> =
            (0..k).map(|_| DenseStore::new(self.dim, self.codec)).collect();
        for (i, (id, _)) in rows.iter().enumerate() {
            let c = quantizer.assignments[i];
            list_ids[c].push(*id);
            list_data[c].push(&flat[i * self.dim..(i + 1) * self.dim]);
        }
        self.quantizer = quantizer;
        self.list_ids = list_ids;
        self.list_data = list_data;
    }

    /// Rebuild from bytes written by [`VectorIndex::encode_with`]. Per-
    /// point assignments are reconstructed from the inverted lists (the
    /// lists are the ground truth; the assignment table is redundant on
    /// the wire). `v2` selects the store-backed list payload; the legacy
    /// layout reads raw f32 blocks.
    pub(crate) fn decode_state(data: &mut Bytes, v2: bool) -> Result<IvfFlatIndex, CodecError> {
        let dim = codec::get_u32(data)? as usize;
        if dim == 0 {
            return Err(CodecError::Invalid("ivf dimension must be positive"));
        }
        let n = codec::get_u64(data)? as usize;
        let params = IvfParams {
            n_lists: codec::get_u64(data)? as usize,
            n_probe: codec::get_u64(data)? as usize,
            kmeans_iters: codec::get_u64(data)? as usize,
            seed: codec::get_u64(data)?,
        };
        let trained = match codec::get_u8(data)? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Invalid("ivf trained flag must be 0 or 1")),
        };
        let stored_codec = if v2 {
            let tag = codec::get_u8(data)?;
            Codec::from_tag(tag).ok_or(CodecError::Invalid("unknown ivf storage codec tag"))?
        } else {
            Codec::F32
        };
        let inertia = codec::get_u64(data).map(f64::from_bits)? as f32;
        let k = codec::get_count(data, dim.checked_mul(4).ok_or(CodecError::Truncated)?)?;
        if k == 0 && n > 0 {
            return Err(CodecError::Invalid("non-empty ivf without centroids"));
        }
        let centroids = codec::get_f32s_exact(data, k * dim)?;
        let mut list_ids: Vec<Vec<usize>> = Vec::with_capacity(k);
        let mut list_data: Vec<DenseStore> = Vec::with_capacity(k);
        let mut assignments = vec![usize::MAX; n];
        for c in 0..k {
            let ids = codec::get_u64s(data)?;
            let vecs = if v2 {
                let store = af_store::get_store(data)?;
                if store.dim() != dim {
                    return Err(CodecError::Invalid("ivf list dimension disagrees"));
                }
                if store.rows() != ids.len() {
                    return Err(CodecError::Invalid("ivf list row count disagrees with ids"));
                }
                store
            } else {
                let raw = codec::get_f32s_exact(
                    data,
                    ids.len().checked_mul(dim).ok_or(CodecError::Truncated)?,
                )?;
                DenseStore::from_f32_rows(dim, raw)
            };
            for &id in &ids {
                if id >= n {
                    return Err(CodecError::Invalid("ivf list id out of range"));
                }
                if assignments[id] != usize::MAX {
                    return Err(CodecError::Invalid("ivf id assigned to two lists"));
                }
                assignments[id] = c;
            }
            list_ids.push(ids);
            list_data.push(vecs);
        }
        if assignments.contains(&usize::MAX) {
            return Err(CodecError::Invalid("ivf lists do not cover every id"));
        }
        let quantizer = KMeansResult { k, dim, centroids, assignments, inertia };
        Ok(IvfFlatIndex {
            dim,
            n,
            params,
            codec: stored_codec,
            quantizer,
            list_ids,
            list_data,
            trained,
        })
    }
}

impl VectorIndex for IvfFlatIndex {
    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    /// Insert to the nearest inverted list (Faiss-style incremental add:
    /// a quantizer trained by `build` stays frozen, new vectors join the
    /// list of their closest centroid). An index born empty starts from a
    /// single lazily-seeded list and retrains its quantizer at every
    /// corpus doubling past `COLD_START_RETRAIN_MIN` (32), so the configured
    /// `n_lists`/`n_probe` behavior materializes as the corpus grows
    /// instead of degenerating into one exhaustive list forever.
    fn add(&mut self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        if self.quantizer.k == 0 {
            self.quantizer.k = 1;
            self.quantizer.centroids = v.to_vec();
            self.list_ids.push(Vec::new());
            self.list_data.push(DenseStore::new(self.dim, self.codec));
        }
        let id = self.n;
        let c = self.quantizer.nearest(v);
        self.list_ids[c].push(id);
        self.list_data[c].push(v);
        self.n += 1;
        if !self.trained && self.n >= COLD_START_RETRAIN_MIN && self.n.is_power_of_two() {
            self.retrain_quantizer();
        }
        id
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim);
        if k == 0 {
            return Vec::new();
        }
        // Rank centroids by distance, probe the closest lists.
        let mut cd: Vec<(usize, f32)> =
            (0..self.quantizer.k).map(|c| (c, l2_sq(query, self.quantizer.centroid(c)))).collect();
        cd.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut top = TopK::new(k);
        for &(c, _) in cd.iter().take(self.params.n_probe.max(1)) {
            let ids = &self.list_ids[c];
            let data = &self.list_data[c];
            match data {
                // Trained PQ list: build the per-query ADC table once and
                // gather raw code bytes — no dequantization, bit-identical
                // to `l2_sq_row` (the PQ distance *is* the ADC sum). The
                // table costs ~256 row scans and a trained list holds at
                // least that many rows, so it amortizes within the list.
                DenseStore::Pq(p) if p.is_trained() => {
                    let t = p.adc_table(query).expect("trained PQ list has a codebook");
                    for (j, &id) in ids.iter().enumerate() {
                        top.push(Neighbor::new(id, p.l2_sq_adc(&t, j)));
                    }
                }
                _ => {
                    for (j, &id) in ids.iter().enumerate() {
                        top.push(Neighbor::new(id, data.l2_sq_row(query, j)));
                    }
                }
            }
        }
        top.into_sorted()
    }

    fn codec(&self) -> Codec {
        self.codec
    }

    /// Locate `id` by scanning the inverted lists — the assignment table
    /// only covers build/retrain-time vectors, so the lists are the ground
    /// truth. O(n) worst case, fine for the control plane (splitting,
    /// merging, compaction), wrong for a hot loop.
    fn vector_owned(&self, id: usize) -> Vec<f32> {
        assert!(id < self.n, "vector id out of range");
        for (ids, data) in self.list_ids.iter().zip(&self.list_data) {
            if let Some(pos) = ids.iter().position(|&x| x == id) {
                return data.row_owned(pos);
            }
        }
        unreachable!("every id in 0..len lives in exactly one inverted list")
    }

    fn encode_with(&self, buf: &mut BytesMut, codec: Codec) {
        buf.put_u8(codec::TAG_IVF2);
        buf.put_u32(self.dim as u32);
        buf.put_u64(self.n as u64);
        buf.put_u64(self.params.n_lists as u64);
        buf.put_u64(self.params.n_probe as u64);
        buf.put_u64(self.params.kmeans_iters as u64);
        buf.put_u64(self.params.seed);
        buf.put_u8(self.trained as u8);
        // The storage codec, explicitly: an empty index has no list
        // stores to carry it, and it must survive the round trip so
        // post-load `add`s quantize as configured.
        buf.put_u8(codec.tag());
        buf.put_u64((self.quantizer.inertia as f64).to_bits());
        buf.put_u64(self.quantizer.k as u64);
        codec::put_f32s(buf, &self.quantizer.centroids);
        for (ids, data) in self.list_ids.iter().zip(&self.list_data) {
            codec::put_u64s(buf, ids.iter().map(|&id| id as u64));
            af_store::put_store_as(buf, data, codec);
        }
    }

    fn clone_box(&self) -> Box<dyn VectorIndex> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::test_util::lcg_vectors as random_data;

    #[test]
    fn probing_all_lists_is_exact() {
        let dim = 8;
        let data = random_data(500, dim, 1);
        let ivf = IvfFlatIndex::build(
            &data,
            dim,
            IvfParams { n_lists: 10, n_probe: 10, ..Default::default() },
        );
        let flat = FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()));
        for q in 0..20 {
            let query = &data[q * dim..(q + 1) * dim];
            let a = ivf.search(query, 5);
            let b = flat.search(query, 5);
            assert_eq!(
                a.iter().map(|n| n.id).collect::<Vec<_>>(),
                b.iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn partial_probe_recall_reasonable() {
        let dim = 8;
        let n = 2000;
        let data = random_data(n, dim, 2);
        let ivf = IvfFlatIndex::build(
            &data,
            dim,
            IvfParams { n_lists: 40, n_probe: 8, ..Default::default() },
        );
        let flat = FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()));
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in 0..50 {
            let query = &data[q * dim..(q + 1) * dim];
            let approx: Vec<usize> = ivf.search(query, 10).iter().map(|n| n.id).collect();
            let exact: Vec<usize> = flat.search(query, 10).iter().map(|n| n.id).collect();
            total += exact.len();
            hits += exact.iter().filter(|id| approx.contains(id)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.6, "recall@10 {recall}");
    }

    #[test]
    fn self_query_returns_self() {
        let dim = 4;
        let data = random_data(100, dim, 3);
        let ivf = IvfFlatIndex::build(&data, dim, IvfParams::default());
        for q in [0usize, 17, 50, 99] {
            let query = &data[q * dim..(q + 1) * dim];
            let out = ivf.search(query, 1);
            assert_eq!(out[0].id, q);
            assert!(out[0].dist < 1e-9);
        }
    }

    #[test]
    fn empty_build_is_valid_not_a_panic() {
        // Regression: `build` used to assert `n > 0`, so a cold-start org
        // with no reference workbooks crashed on IVF but not Flat/HNSW.
        let ivf = IvfFlatIndex::build(&[], 8, IvfParams::default());
        assert!(ivf.is_empty());
        assert_eq!(ivf.dim(), 8);
        assert_eq!(ivf.n_lists(), 0);
        assert!(ivf.search(&[0.0; 8], 5).is_empty());
        assert!(ivf.search_within(&[0.0; 8], 5, 1.0).is_empty());
    }

    #[test]
    fn add_seeds_empty_index_then_grows() {
        let dim = 4;
        let mut ivf = IvfFlatIndex::build(&[], dim, IvfParams::default());
        let data = random_data(50, dim, 7);
        for (i, v) in data.chunks(dim).enumerate() {
            assert_eq!(ivf.add(v), i);
        }
        assert_eq!(ivf.len(), 50);
        // The cold-start retrain at n = 32 replaced the single seeded list
        // with √32 ≈ 6 clusters; n_probe = 8 still covers them all, so
        // searches stay exact against the flat ground truth.
        assert!(ivf.n_lists() > 1, "retrain must spread the seeded list");
        let flat = FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()));
        for q in [0usize, 13, 49] {
            let query = &data[q * dim..(q + 1) * dim];
            assert_eq!(
                ivf.search(query, 3).iter().map(|n| n.id).collect::<Vec<_>>(),
                flat.search(query, 3).iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn cold_start_retrain_honors_configured_n_lists() {
        // Regression: an index born empty used to stay pinned to the one
        // lazily-seeded list forever, so the configured `n_lists` silently
        // never materialized and every query scanned the whole corpus.
        let dim = 4;
        let params = IvfParams { n_lists: 10, n_probe: 10, ..Default::default() };
        let mut ivf = IvfFlatIndex::build(&[], dim, params);
        let data = random_data(200, dim, 21);
        for v in data.chunks(dim) {
            ivf.add(v);
        }
        // Last retrain at n = 128 applied the configured list count.
        assert_eq!(ivf.n_lists(), 10);
        // And the re-bucketed index still searches correctly (full probe).
        let flat = FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()));
        for q in [0usize, 77, 199] {
            let query = &data[q * dim..(q + 1) * dim];
            assert_eq!(
                ivf.search(query, 5).iter().map(|n| n.id).collect::<Vec<_>>(),
                flat.search(query, 5).iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn incremental_add_assigns_nearest_list() {
        let dim = 8;
        let data = random_data(300, dim, 11);
        let mut ivf = IvfFlatIndex::build(
            &data,
            dim,
            IvfParams { n_lists: 12, n_probe: 12, ..Default::default() },
        );
        let extra = random_data(60, dim, 12);
        for (i, v) in extra.chunks(dim).enumerate() {
            assert_eq!(ivf.add(v), 300 + i);
        }
        assert_eq!(ivf.len(), 360);
        // Full-probe searches over the grown index are exact.
        let mut all = data.clone();
        all.extend_from_slice(&extra);
        let flat = FlatIndex::from_vectors(dim, all.chunks(dim).map(|c| c.to_vec()));
        for q in [5usize, 299, 310, 359] {
            let query = &all[q * dim..(q + 1) * dim];
            assert_eq!(
                ivf.search(query, 5).iter().map(|n| n.id).collect::<Vec<_>>(),
                flat.search(query, 5).iter().map(|n| n.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn pq_lists_scan_fused_and_match_the_generic_path() {
        // Big enough that several lists cross the PQ training threshold
        // (256 rows): those lists take the fused ADC branch, the rest scan
        // pending raw rows exactly. Either way the search must be
        // bit-identical to a manual generic scan over the same lists.
        let dim = 16;
        let n = 1500;
        let data = random_data(n, dim, 31);
        let ivf = IvfFlatIndex::build(
            &data,
            dim,
            IvfParams { n_lists: 4, n_probe: 4, ..Default::default() },
        );
        let pq = ivf.to_codec(Codec::Pq { m: 0 });
        assert!(
            pq.list_data.iter().any(|s| matches!(
                s,
                DenseStore::Pq(p) if p.is_trained()
            )),
            "at least one list must train for the fused branch to run"
        );
        for q in [0usize, 500, 1499] {
            let query = &data[q * dim..(q + 1) * dim];
            let fused = pq.search(query, 10);
            // Generic reference: same lists, the trait-level row distance.
            let mut top = crate::metric::TopK::new(10);
            for (ids, store) in pq.list_ids.iter().zip(&pq.list_data) {
                for (j, &id) in ids.iter().enumerate() {
                    top.push(Neighbor::new(id, store.l2_sq_row(query, j)));
                }
            }
            let generic = top.into_sorted();
            assert_eq!(fused.len(), generic.len());
            for (a, b) in fused.iter().zip(&generic) {
                assert_eq!(a.id, b.id, "query {q}");
                assert_eq!(a.dist.to_bits(), b.dist.to_bits(), "query {q}");
            }
        }
    }

    #[test]
    fn default_list_count_is_sqrt_n() {
        let dim = 4;
        let data = random_data(400, dim, 4);
        let ivf = IvfFlatIndex::build(&data, dim, IvfParams::default());
        assert_eq!(ivf.n_lists(), 20);
    }
}
