//! Offline training (Algorithm 1): weak supervision → augmentation →
//! semi-hard triplet learning over both branches.
//!
//! **Data-parallel execution.** Each triplet step cuts its batch into
//! fixed-size *gradient shards* (`PAIRS_PER_SHARD` = 3 pairs each). Every
//! shard owns a replica model: workers featurize and forward their shards
//! independently, the main thread mines semi-hard negatives over the full
//! batch and computes the embedding gradient, workers run the backward
//! passes, and the per-shard parameter gradients are reduced into the main
//! model **in fixed shard order**. Because the shard decomposition depends
//! only on the batch (never on the worker count), training is
//! bit-identical for any [`TrainingOptions::workers`] setting — see the
//! `parallel_determinism` integration test.

use crate::config::AutoFormulaConfig;
use crate::features::{raw_window_into, WindowOrigin};
use crate::model::RepresentationModel;
use af_corpus::augment::{augment_region, augment_sheet};
use af_corpus::weak_supervision::{region_pairs, sheet_pairs, NameModel, RegionPair, SheetId};
use af_embed::CellFeaturizer;
use af_grid::{CellRef, Sheet, Workbook};
use af_nn::optim::{Adam, Optimizer};
use af_nn::tensor::l2_sq;
use af_nn::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// Pairs per gradient shard. Part of the arithmetic contract: changing it
/// changes the (deterministic) gradient summation order, so it is a fixed
/// constant rather than a knob.
const PAIRS_PER_SHARD: usize = 3;

/// Weak-supervision and sampling knobs.
#[derive(Debug, Clone, Copy)]
pub struct TrainingOptions {
    /// Hypothesis-test significance (paper: 0.05).
    pub alpha: f64,
    /// Cap on sheet pairs drawn from one name-sequence group.
    pub max_pairs_per_group: usize,
    /// Cap on coarse (sheet-level) training pairs.
    pub max_coarse_pairs: usize,
    /// Cap on fine (region-level) training pairs.
    pub max_region_pairs: usize,
    /// Probability of training a fine triple against the *shifted-region*
    /// hard negative (when available) instead of an in-batch negative.
    pub shifted_negative_rate: f64,
    /// Fraction of region pairs that get augmented (§4.3: 20%).
    pub region_augment_rate: f64,
    /// Worker threads for the data-parallel triplet steps: 0 = one per
    /// available core, N = exactly N. Any value produces bit-identical
    /// models (the gradient reduction order is fixed by the shard layout,
    /// not the thread schedule).
    pub workers: usize,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        TrainingOptions {
            alpha: 0.05,
            max_pairs_per_group: 6,
            max_coarse_pairs: 240,
            max_region_pairs: 480,
            shifted_negative_rate: 0.6,
            region_augment_rate: 0.2,
            workers: 0,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    pub coarse_pairs: usize,
    pub fine_pairs: usize,
    pub episodes: usize,
    pub first_coarse_loss: f32,
    pub final_coarse_loss: f32,
    pub first_fine_loss: f32,
    pub final_fine_loss: f32,
    pub seconds: f64,
}

struct CoarseDesc {
    a: SheetId,
    b: SheetId,
    /// Weak-supervision group: pairs in the same group are presumed
    /// similar, so they must never serve as each other's negatives.
    group: u64,
    aug_seed: Option<u64>,
}

struct FineDesc {
    a: (SheetId, CellRef),
    b: (SheetId, CellRef),
    /// Region identity: (weak-supervision group, anchor location). Regions
    /// sharing both are the same formula slot across instances (true
    /// positives); same group at a *different* location is a legitimate
    /// hard negative.
    identity: u64,
    shifted_neg: Option<(SheetId, CellRef)>,
    aug_seed: Option<u64>,
}

/// What one batch row featurizes: a whole-sheet window (coarse) or a
/// region window centered on a cell (fine), optionally augmented with a
/// per-descriptor seed (deterministic regardless of which worker runs it).
#[derive(Clone, Copy)]
enum RowSpec {
    Sheet(SheetId, Option<u64>),
    Region(SheetId, CellRef, Option<u64>),
}

/// One training pair's rows in the step's (shard-blocked) embedding
/// matrix, plus its identity for negative mining.
#[derive(Clone, Copy)]
struct PairRows {
    anchor: usize,
    positive: usize,
    shifted: Option<usize>,
    identity: u64,
}

/// Which branch a step trains.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Branch {
    Coarse,
    Fine,
}

/// Read-only context shared by all shard workers.
struct StepCtx<'a> {
    workbooks: &'a [Workbook],
    featurizer: &'a CellFeaturizer,
    cfg: AutoFormulaConfig,
    row_dim: usize,
}

impl StepCtx<'_> {
    fn sheet_of(&self, id: SheetId) -> &Sheet {
        &self.workbooks[id.workbook].sheets[id.sheet]
    }

    /// Featurize one batch row in place.
    fn featurize_into(&self, spec: RowSpec, out: &mut [f32]) {
        let f = self.featurizer;
        let w = self.cfg.window;
        match spec {
            RowSpec::Sheet(id, None) => {
                raw_window_into(f, self.sheet_of(id), w, WindowOrigin::TopLeft, out);
            }
            RowSpec::Sheet(id, Some(seed)) => {
                let mut arng = StdRng::seed_from_u64(seed);
                let p = arng.random_range(0.0..0.10);
                let s = augment_sheet(self.sheet_of(id), p, &mut arng);
                raw_window_into(f, &s, w, WindowOrigin::TopLeft, out);
            }
            RowSpec::Region(id, cell, None) => {
                raw_window_into(f, self.sheet_of(id), w, WindowOrigin::Centered(cell), out);
            }
            RowSpec::Region(id, cell, Some(seed)) => {
                let mut arng = StdRng::seed_from_u64(seed);
                let p = arng.random_range(0.0..0.10);
                let reach = w.rows / 2;
                let (s, c) = augment_region(self.sheet_of(id), cell, p, reach, &mut arng);
                raw_window_into(f, &s, w, WindowOrigin::Centered(c), out);
            }
        }
    }
}

/// One gradient shard: a replica model plus the buffers that circulate
/// through it. Everything is reused across steps (no steady-state
/// allocation).
struct ShardSlot {
    model: RepresentationModel,
    row_specs: Vec<RowSpec>,
    /// Global row offset of this shard's block in the step embedding.
    row_off: usize,
    /// Batch input buffer (recycled from the previous backward's output).
    input: Tensor,
    /// Forward output; after mining it carries the gradient block back in.
    emb: Tensor,
    flat_grads: Vec<f32>,
}

impl ShardSlot {
    fn new(model: RepresentationModel) -> ShardSlot {
        ShardSlot {
            model,
            row_specs: Vec::new(),
            row_off: 0,
            input: Tensor::default(),
            emb: Tensor::default(),
            flat_grads: Vec::new(),
        }
    }

    /// Phase A: sync weights, featurize this shard's rows, forward.
    fn forward(&mut self, branch: Branch, ctx: &StepCtx<'_>, weights: &[f32]) {
        self.model.import_weights_from(weights);
        let mut input = std::mem::take(&mut self.input);
        input.reset_for_overwrite(&[self.row_specs.len(), ctx.row_dim]);
        for (r, spec) in self.row_specs.iter().enumerate() {
            ctx.featurize_into(*spec, input.row_mut(r));
        }
        self.emb = match branch {
            Branch::Coarse => self.model.coarse_forward(input),
            Branch::Fine => self.model.fine_forward(input),
        };
    }

    /// Phase B: load this shard's gradient block, backprop, export grads.
    fn backward(&mut self, branch: Branch, grad_all: &Tensor, dim: usize) {
        let mut g = std::mem::take(&mut self.emb);
        let lo = self.row_off * dim;
        let hi = lo + g.data.len();
        g.data.copy_from_slice(&grad_all.data[lo..hi]);
        self.model.zero_grad();
        let gx = match branch {
            Branch::Coarse => self.model.coarse_backward(g),
            Branch::Fine => self.model.fine_backward(g),
        };
        self.input = gx; // recycle as the next step's batch buffer
        self.model.export_grads_into(&mut self.flat_grads);
    }
}

/// Reused step-level buffers.
struct TrainScratch {
    weights: Vec<f32>,
    emb_all: Tensor,
    grad_all: Tensor,
    pairs: Vec<PairRows>,
    idxs: Vec<usize>,
    shifted_flags: Vec<bool>,
}

impl TrainScratch {
    fn new() -> TrainScratch {
        TrainScratch {
            weights: Vec::new(),
            emb_all: Tensor::default(),
            grad_all: Tensor::default(),
            pairs: Vec::new(),
            idxs: Vec::new(),
            shifted_flags: Vec::new(),
        }
    }
}

/// Run `f` over every shard, on up to `workers` scoped threads. The shard
/// decomposition is fixed before this call, so the thread count only
/// affects scheduling, never arithmetic.
fn for_each_shard(shards: &mut [ShardSlot], workers: usize, f: impl Fn(&mut ShardSlot) + Sync) {
    if workers <= 1 || shards.len() <= 1 {
        for s in shards.iter_mut() {
            f(s);
        }
        return;
    }
    let per = shards.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for chunk in shards.chunks_mut(per) {
            let f = &f;
            scope.spawn(move || {
                for s in chunk.iter_mut() {
                    f(s);
                }
            });
        }
    });
}

/// One data-parallel triplet step over `shards[..]` (already loaded with
/// row specs). Returns the batch loss; gradients end up accumulated in
/// `main_model`, ready for the optimizer.
#[allow(clippy::too_many_arguments)]
fn run_step(
    branch: Branch,
    main_model: &mut RepresentationModel,
    shards: &mut [ShardSlot],
    margin: f32,
    workers: usize,
    ctx: &StepCtx<'_>,
    scratch: &mut TrainScratch,
) -> f32 {
    let TrainScratch { weights, emb_all, grad_all, pairs, .. } = scratch;
    main_model.export_weights_into(weights);
    let w: &[f32] = weights;
    for_each_shard(shards, workers, |s| s.forward(branch, ctx, w));

    // Gather shard embedding blocks into the step-global matrix.
    let dim = shards[0].emb.features();
    let total_rows: usize = shards.iter().map(|s| s.emb.batch()).sum();
    emb_all.reset_for_overwrite(&[total_rows, dim]);
    for s in shards.iter() {
        let lo = s.row_off * dim;
        emb_all.data[lo..lo + s.emb.len()].copy_from_slice(&s.emb.data);
    }

    let loss = triplet_grad_into(emb_all, pairs, margin, grad_all);

    let g: &Tensor = grad_all;
    for_each_shard(shards, workers, |s| s.backward(branch, g, dim));

    // Deterministic reduction: fixed shard order, independent of workers.
    for s in shards.iter_mut() {
        main_model.accumulate_grads_from(&s.flat_grads);
    }
    loss
}

/// Train both representation models on a workbook universe (the paper's
/// 160K-crawl stand-in).
pub fn train_model(
    workbooks: &[Workbook],
    featurizer: &CellFeaturizer,
    cfg: AutoFormulaConfig,
    opts: TrainingOptions,
) -> (RepresentationModel, TrainReport) {
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7ea1);

    // ---- Weak supervision (§4.2) ----
    let name_model = NameModel::build(workbooks);
    let pairs = sheet_pairs(workbooks, &name_model, opts.alpha, opts.max_pairs_per_group, cfg.seed);
    let (region_pos, region_neg) =
        region_pairs(workbooks, &pairs, opts.max_region_pairs * 2, cfg.seed ^ 1);

    // Attach each positive region's shifted hard negative (same anchor).
    let neg_by_anchor: HashMap<(SheetId, CellRef), (SheetId, CellRef)> =
        region_neg.iter().map(|rp| (rp.a, rp.b)).collect();

    let mut coarse_descs: Vec<CoarseDesc> = pairs
        .positives
        .iter()
        .zip(&pairs.groups)
        .take(opts.max_coarse_pairs)
        .map(|(&(a, b), &g)| CoarseDesc {
            a,
            b,
            group: g as u64,
            aug_seed: cfg.coarse_augmentation.then(|| rng.random::<u64>()),
        })
        .collect();
    // Ensure both orders appear (anchors from both sides).
    if coarse_descs.len() < opts.max_coarse_pairs {
        let extra: Vec<CoarseDesc> = pairs
            .positives
            .iter()
            .zip(&pairs.groups)
            .take(opts.max_coarse_pairs - coarse_descs.len())
            .map(|(&(a, b), &g)| CoarseDesc {
                a: b,
                b: a,
                group: g as u64,
                aug_seed: cfg.coarse_augmentation.then(|| rng.random::<u64>()),
            })
            .collect();
        coarse_descs.extend(extra);
    }

    let fine_descs: Vec<FineDesc> = region_pos
        .iter()
        .take(opts.max_region_pairs)
        .map(|rp: &RegionPair| FineDesc {
            a: rp.a,
            b: rp.b,
            identity: region_identity(rp.group, rp.a.1),
            shifted_neg: neg_by_anchor.get(&rp.a).copied(),
            aug_seed: (cfg.fine_augmentation && rng.random_bool(opts.region_augment_rate))
                .then(|| rng.random::<u64>()),
        })
        .collect();

    let mut model = RepresentationModel::new(featurizer.dim(), cfg);
    let mut report = TrainReport {
        coarse_pairs: coarse_descs.len(),
        fine_pairs: fine_descs.len(),
        episodes: 0,
        first_coarse_loss: 0.0,
        final_coarse_loss: 0.0,
        first_fine_loss: 0.0,
        final_fine_loss: 0.0,
        seconds: 0.0,
    };
    if coarse_descs.is_empty() || fine_descs.is_empty() {
        // Degenerate corpus (all singletons): return the initialized model.
        report.seconds = started.elapsed().as_secs_f64();
        return (model, report);
    }

    let mut adam_reduce = Adam::new(cfg.lr);
    let mut adam_coarse = Adam::new(cfg.lr);
    let mut adam_fine = Adam::new(cfg.lr);

    let workers = if opts.workers == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        opts.workers
    };
    let ctx = StepCtx { workbooks, featurizer, cfg, row_dim: cfg.n_cells() * featurizer.dim() };
    let n_shards_max = cfg.batch_size.div_ceil(PAIRS_PER_SHARD).max(1);
    let mut shard_pool: Vec<ShardSlot> = (0..n_shards_max)
        .map(|_| ShardSlot::new(RepresentationModel::new(featurizer.dim(), cfg)))
        .collect();
    let mut scratch = TrainScratch::new();

    // ---- Episodes (Algorithm 1) ----
    for ep in 0..cfg.episodes {
        // ---------------- coarse step ----------------
        let bsz = cfg.batch_size.min(coarse_descs.len());
        scratch.idxs.clear();
        scratch.idxs.extend((0..bsz).map(|_| rng.random_range(0..coarse_descs.len())));
        scratch.idxs.dedup();
        scratch.pairs.clear();
        let mut used = 0usize;
        let mut row_off = 0usize;
        for chunk in scratch.idxs.chunks(PAIRS_PER_SHARD) {
            let shard = &mut shard_pool[used];
            shard.row_specs.clear();
            shard.row_off = row_off;
            let len = chunk.len();
            for &di in chunk {
                shard.row_specs.push(RowSpec::Sheet(coarse_descs[di].a, None));
            }
            for &di in chunk {
                let d = &coarse_descs[di];
                shard.row_specs.push(RowSpec::Sheet(d.b, d.aug_seed));
            }
            for (t, &di) in chunk.iter().enumerate() {
                scratch.pairs.push(PairRows {
                    anchor: row_off + t,
                    positive: row_off + len + t,
                    shifted: None,
                    identity: coarse_descs[di].group,
                });
            }
            row_off += 2 * len;
            used += 1;
        }
        let step_c = af_obs::span!("train::step");
        let loss_c = run_step(
            Branch::Coarse,
            &mut model,
            &mut shard_pool[..used],
            cfg.margin,
            workers,
            &ctx,
            &mut scratch,
        );
        step_c.end();
        adam_coarse.step(&mut model.coarse_head);
        adam_reduce.step(&mut model.reduce);

        // ---------------- fine step ----------------
        let bsz = cfg.batch_size.min(fine_descs.len());
        scratch.idxs.clear();
        scratch.idxs.extend((0..bsz).map(|_| rng.random_range(0..fine_descs.len())));
        scratch.idxs.dedup();
        // Shifted-negative decisions, in pair order (fixed RNG sequence).
        scratch.shifted_flags.clear();
        for &di in &scratch.idxs {
            let take =
                fine_descs[di].shifted_neg.is_some() && rng.random_bool(opts.shifted_negative_rate);
            scratch.shifted_flags.push(take);
        }
        scratch.pairs.clear();
        let mut used = 0usize;
        let mut row_off = 0usize;
        let mut pair_at = 0usize;
        for chunk in scratch.idxs.chunks(PAIRS_PER_SHARD) {
            let shard = &mut shard_pool[used];
            shard.row_specs.clear();
            shard.row_off = row_off;
            let len = chunk.len();
            for &di in chunk {
                let d = &fine_descs[di];
                shard.row_specs.push(RowSpec::Region(d.a.0, d.a.1, None));
            }
            for &di in chunk {
                let d = &fine_descs[di];
                shard.row_specs.push(RowSpec::Region(d.b.0, d.b.1, d.aug_seed));
            }
            let mut n_shift = 0usize;
            for (t, &di) in chunk.iter().enumerate() {
                let d = &fine_descs[di];
                let shifted = if scratch.shifted_flags[pair_at + t] {
                    let neg = d.shifted_neg.expect("flag set only when present");
                    shard.row_specs.push(RowSpec::Region(neg.0, neg.1, None));
                    let row = row_off + 2 * len + n_shift;
                    n_shift += 1;
                    Some(row)
                } else {
                    None
                };
                scratch.pairs.push(PairRows {
                    anchor: row_off + t,
                    positive: row_off + len + t,
                    shifted,
                    identity: d.identity,
                });
            }
            pair_at += len;
            row_off += 2 * len + n_shift;
            used += 1;
        }
        let step_f = af_obs::span!("train::step");
        let loss_f = run_step(
            Branch::Fine,
            &mut model,
            &mut shard_pool[..used],
            cfg.margin,
            workers,
            &ctx,
            &mut scratch,
        );
        step_f.end();
        adam_fine.step(&mut model.fine_head);
        adam_reduce.step(&mut model.reduce);

        if ep == 0 {
            report.first_coarse_loss = loss_c;
            report.first_fine_loss = loss_f;
        }
        report.final_coarse_loss = loss_c;
        report.final_fine_loss = loss_f;
        report.episodes = ep + 1;
    }
    report.seconds = started.elapsed().as_secs_f64();
    (model, report)
}

/// Stable identity for a region class: (group, anchor location).
fn region_identity(group: usize, loc: CellRef) -> u64 {
    (group as u64) << 32 ^ ((loc.row as u64) << 16) ^ loc.col as u64
}

/// Triplet loss and embedding gradient over one step. Pair `i` may carry
/// an explicit negative row (`pairs[i].shifted`); otherwise a semi-hard
/// negative is mined among the positives of the other pairs *with a
/// different identity* (same-identity rows are presumed-similar and never
/// valid negatives). The gradient (scaled by `1/n_pairs`) is written into
/// `grad`; the mean positive-triplet loss is returned.
fn triplet_grad_into(emb: &Tensor, pairs: &[PairRows], margin: f32, grad: &mut Tensor) -> f32 {
    let dim = emb.features();
    grad.reset_zeroed(&emb.shape);
    let mut total_loss = 0.0f32;
    let mut active = 0usize;
    for (i, pr) in pairs.iter().enumerate() {
        let a = emb.row(pr.anchor);
        let p = emb.row(pr.positive);
        // Pick the negative row.
        let neg_row = match pr.shifted {
            Some(r) => r,
            None => {
                // Semi-hard among other pairs' positives, skipping rows
                // that share this pair's identity.
                let dp = l2_sq(a, p);
                let mut best: Option<(usize, f32)> = None;
                let mut hardest: Option<(usize, f32)> = None;
                for (j, qr) in pairs.iter().enumerate() {
                    if j == i || qr.identity == pr.identity {
                        continue;
                    }
                    let dn = l2_sq(a, emb.row(qr.positive));
                    let loss = dp - dn + margin;
                    if loss > 0.0 && loss < margin && best.is_none_or(|(_, l)| loss > l) {
                        best = Some((qr.positive, loss));
                    }
                    if hardest.is_none_or(|(_, d)| dn < d) {
                        hardest = Some((qr.positive, dn));
                    }
                }
                match best.or(hardest) {
                    Some((r, _)) => r,
                    // No cross-identity candidate in this batch: skip the
                    // pair rather than poison training.
                    None => continue,
                }
            }
        };
        let n = emb.row(neg_row);
        let loss = l2_sq(a, p) - l2_sq(a, n) + margin;
        if loss <= 0.0 {
            continue;
        }
        total_loss += loss;
        active += 1;
        for k in 0..dim {
            let (av, pv, nv) = (a[k], p[k], n[k]);
            grad.data[pr.anchor * dim + k] += 2.0 * (nv - pv);
            grad.data[pr.positive * dim + k] += 2.0 * (pv - av);
            grad.data[neg_row * dim + k] += 2.0 * (av - nv);
        }
    }
    let b = pairs.len();
    let scale = 1.0 / b.max(1) as f32;
    for g in grad.data.iter_mut() {
        *g *= scale;
    }
    if active == 0 {
        0.0
    } else {
        total_loss / b as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_corpus::organization::{OrgSpec, Scale};
    use af_embed::{FeatureMask, SbertSim};
    use std::sync::Arc;

    fn quick_cfg() -> AutoFormulaConfig {
        AutoFormulaConfig { episodes: 25, ..AutoFormulaConfig::test_tiny() }
    }

    #[test]
    fn training_reduces_triplet_loss() {
        let corpus = OrgSpec::web_crawl(Scale::Tiny).generate();
        let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
        let (model, report) =
            train_model(&corpus.workbooks, &featurizer, quick_cfg(), TrainingOptions::default());
        assert!(report.coarse_pairs > 0, "need coarse pairs");
        assert!(report.fine_pairs > 0, "need fine pairs");
        assert_eq!(report.episodes, 25);
        assert!(model.param_count() > 0);
        // Loss should not blow up; usually it shrinks. Accept a loose bound
        // (single seeds can be noisy on tiny configs).
        assert!(
            report.final_coarse_loss <= report.first_coarse_loss * 1.5 + 0.05,
            "coarse loss exploded: {} -> {}",
            report.first_coarse_loss,
            report.final_coarse_loss
        );
        assert!(report.final_fine_loss.is_finite());
    }

    #[test]
    fn trained_model_separates_similar_sheets() {
        use crate::embedder::SheetEmbedder;
        let corpus = OrgSpec::pge(Scale::Tiny).generate();
        let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
        let cfg = quick_cfg();
        let (model, _) =
            train_model(&corpus.workbooks, &featurizer, cfg, TrainingOptions::default());
        let embedder = SheetEmbedder::new(&model, &featurizer);
        // Find a same-family pair and a cross-family pair.
        let mut same = None;
        let mut cross = None;
        'outer: for i in 0..corpus.workbooks.len() {
            for j in i + 1..corpus.workbooks.len() {
                if corpus.same_family(i, j) && same.is_none() {
                    same = Some((i, j));
                }
                if !corpus.same_family(i, j)
                    && cross.is_none()
                    && corpus.provenance[i].archetype != corpus.provenance[j].archetype
                {
                    cross = Some((i, j));
                }
                if same.is_some() && cross.is_some() {
                    break 'outer;
                }
            }
        }
        let (si, sj) = same.expect("same-family pair exists");
        let (ci, cj) = cross.expect("cross pair exists");
        let e = |w: usize| embedder.embed_sheet(&corpus.workbooks[w].sheets[0], false).coarse;
        let d_same = l2_sq(&e(si), &e(sj));
        let d_cross = l2_sq(&e(ci), &e(cj));
        assert!(d_same < d_cross, "same-family sheets should embed closer ({d_same} vs {d_cross})");
    }

    #[test]
    fn degenerate_corpus_returns_untrained_model() {
        // All singletons: weak supervision finds nothing.
        let spec = OrgSpec { n_families: 0, n_singletons: 6, ..OrgSpec::cisco(Scale::Tiny) };
        let corpus = spec.generate();
        let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
        let (_, report) =
            train_model(&corpus.workbooks, &featurizer, quick_cfg(), TrainingOptions::default());
        assert_eq!(report.episodes, 0);
    }
}
