//! Dense row-major vector tables behind the [`VectorStore`] trait: one
//! codec-agnostic interface over three physical layouts.
//!
//! * [`F32Store`] — exact storage, today's aligned little-endian blocks.
//!   Owned or a **zero-copy view** into the buffer it was decoded from
//!   (an artifact `Bytes`, possibly an mmap), so adopting a table from
//!   disk costs no copy and no RAM beyond the mapped pages.
//! * [`F16Store`] — IEEE binary16, 2× smaller. Relative error ≤ 2⁻¹¹ in
//!   the normal range; distances are computed asymmetrically (f32 query
//!   vs f16 row) without materializing the row.
//! * [`Int8Store`] — per-vector affine scalar quantization
//!   (`offset + scale · code`, 256 levels spanning each vector's own
//!   min..max), 4× smaller (+8 bytes/vector). The classic SQ8 layout of
//!   large-scale ANN serving.
//!
//! [`DenseStore`] is the closed enum over the three, with a binary codec
//! ([`put_store`]/[`get_store`]) whose bulk payloads are little-endian and
//! 4-byte aligned via explicit pad runs — on little-endian hardware every
//! codec adopts its decoded block zero-copy. Decoding is hardened: all
//! counts are bounded by the remaining buffer and int8 scale/offset values
//! must be finite, so corrupt input yields [`StoreError`], never a panic
//! or a poisoned distance.

use crate::f16::f32_to_f16;
use crate::kernel;
use bytes::{Buf, Bytes};
use std::fmt;

/// Physical layout of a vector table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Exact 4-byte floats (bit-identity guaranteed; the default).
    #[default]
    F32,
    /// IEEE binary16 — 2× smaller, ≤ 2⁻¹¹ relative error.
    F16,
    /// Per-vector affine int8 — 4× smaller, error ≤ (max−min)/510.
    Int8,
    /// Product quantization — `m` sub-quantizers of 256 k-means-trained
    /// centroids, one code byte per subspace (~32× smaller at the default
    /// sub-row width of 8, plus a per-table codebook). `m = 0` means
    /// auto-resolve from the dimension ([`crate::pq::resolve_m`]); callers
    /// that know the semantic cell width pass `m = dim / cell_dim` so
    /// subspace boundaries coincide with cell boundaries.
    Pq {
        /// Requested subspace count (`0` = auto).
        m: u16,
    },
}

impl Codec {
    /// Stable lower-case label (bench reports, JSON).
    pub fn label(&self) -> &'static str {
        match self {
            Codec::F32 => "f32",
            Codec::F16 => "f16",
            Codec::Int8 => "int8",
            Codec::Pq { .. } => "pq",
        }
    }

    /// Wire tag byte.
    pub fn tag(&self) -> u8 {
        match self {
            Codec::F32 => 1,
            Codec::F16 => 2,
            Codec::Int8 => 3,
            Codec::Pq { .. } => 4,
        }
    }

    /// Inverse of [`Codec::tag`]; `None` for unknown wire tags. The PQ
    /// tag maps to `m = 0` (auto) — the store payload carries the real
    /// subspace count.
    pub fn from_tag(tag: u8) -> Option<Codec> {
        match tag {
            1 => Some(Codec::F32),
            2 => Some(Codec::F16),
            3 => Some(Codec::Int8),
            4 => Some(Codec::Pq { m: 0 }),
            _ => None,
        }
    }

    /// All codecs, for sweeps (PQ in its auto-`m` form).
    pub const ALL: [Codec; 4] = [Codec::F32, Codec::F16, Codec::Int8, Codec::Pq { m: 0 }];
}

/// Why a store failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The buffer ended before the structure did.
    Truncated(&'static str),
    /// Unknown codec tag byte.
    BadCodec(u8),
    /// A structural invariant does not hold (zero dimension, non-finite
    /// scale/offset, pad run out of range, …).
    Invalid(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated(what) => write!(f, "vector store truncated reading {what}"),
            StoreError::BadCodec(t) => write!(f, "unknown vector-store codec tag {t}"),
            StoreError::Invalid(what) => write!(f, "invalid vector store: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Codec-agnostic interface over a dense row-major vector table.
///
/// The two operations the serving path needs are `push` (quantize and
/// append one f32 vector) and [`VectorStore::l2_sq_row`] — the asymmetric
/// distance between an f32 query and a stored row, computed without
/// dequantizing the row into memory.
pub trait VectorStore: Send + Sync {
    /// Vector dimensionality (fixed at construction).
    fn dim(&self) -> usize;
    /// Number of stored vectors.
    fn rows(&self) -> usize;
    /// The codec this store encodes rows with.
    fn codec(&self) -> Codec;
    /// Quantize (if needed) and append one vector.
    fn push(&mut self, v: &[f32]);
    /// Dequantize row `i` into `out` (`out.len() == dim`).
    fn row_into(&self, i: usize, out: &mut [f32]);
    /// Asymmetric squared-L2 distance between `query` and row `i`. For
    /// the scalar codecs this equals dequantizing the row and calling
    /// `af_nn::kernel::l2_sq` — bit for bit (same lanes, same reduction
    /// tree), so quantization is the *only* error source. For PQ it is
    /// instead *defined* as the ADC sum over subspaces (see
    /// [`crate::pq`]); the fused table-gather scan is bit-identical to
    /// that definition, so fusion is never an error source either.
    fn l2_sq_row(&self, query: &[f32], i: usize) -> f32;
    /// Bytes this store occupies on the wire (and, for views, on disk).
    fn encoded_vector_bytes(&self) -> usize;

    /// `rows() == 0`.
    fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Dequantize row `i` into a fresh vector.
    fn row_owned(&self, i: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.dim()];
        self.row_into(i, &mut out);
        out
    }
}

// ------------------------------------------------------------------- f32

/// Exact f32 rows; owned, or a verified zero-copy view (little-endian
/// target, 4-byte-aligned buffer of exactly `rows · dim · 4` bytes).
#[derive(Debug, Clone)]
pub struct F32Store {
    dim: usize,
    rows: usize,
    data: F32Data,
}

#[derive(Debug, Clone)]
enum F32Data {
    Owned(Vec<f32>),
    View(Bytes),
}

impl F32Store {
    /// An empty exact-f32 store of `dim`-d vectors.
    pub fn new(dim: usize) -> F32Store {
        assert!(dim > 0);
        F32Store { dim, rows: 0, data: F32Data::Owned(Vec::new()) }
    }

    /// Adopt `rows · dim` little-endian `f32`s: zero-copy when the target
    /// is little-endian and the buffer lands 4-byte aligned, otherwise an
    /// owned decode. `bytes.len()` must equal `rows · dim · 4`.
    pub fn from_le_bytes(dim: usize, rows: usize, bytes: Bytes) -> F32Store {
        assert!(dim > 0);
        assert_eq!(bytes.len(), rows * dim * 4, "byte length mismatch");
        let data = if cfg!(target_endian = "little") && (bytes.as_ptr() as usize).is_multiple_of(4)
        {
            F32Data::View(bytes)
        } else {
            F32Data::Owned(decode_le_f32s(&bytes))
        };
        F32Store { dim, rows, data }
    }

    /// Wrap an owned `rows · dim` flat buffer (no copy, no conversion).
    pub fn from_rows(dim: usize, data: Vec<f32>) -> F32Store {
        assert!(dim > 0);
        assert_eq!(data.len() % dim, 0);
        let rows = data.len() / dim;
        F32Store { dim, rows, data: F32Data::Owned(data) }
    }

    /// The whole table as one contiguous `&[f32]`.
    pub fn as_slice(&self) -> &[f32] {
        match &self.data {
            F32Data::Owned(data) => data,
            F32Data::View(bytes) => {
                // SAFETY: `from_le_bytes` only constructs a `View` on a
                // little-endian target with a 4-byte-aligned buffer of
                // exactly `rows · dim · 4` bytes, and the underlying
                // `Bytes` storage is immutable and pinned while this
                // store lives.
                unsafe {
                    std::slice::from_raw_parts(bytes.as_ptr() as *const f32, self.rows * self.dim)
                }
            }
        }
    }

    /// Row `i` as a borrowed slice (exact — no dequantization needed).
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {i} out of {}", self.rows);
        &self.as_slice()[i * self.dim..(i + 1) * self.dim]
    }

    fn make_owned(&mut self) {
        if let F32Data::View(bytes) = &self.data {
            self.data = F32Data::Owned(decode_le_f32s(bytes));
        }
    }

    /// Append the raw little-endian byte image of the whole table to `out`
    /// (the wire format [`F32Store::from_le_bytes`] adopts).
    pub fn extend_le_bytes(&self, out: &mut Vec<u8>) {
        match &self.data {
            F32Data::View(bytes) => out.extend_from_slice(bytes),
            F32Data::Owned(data) => {
                out.reserve(data.len() * 4);
                for v in data {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }

    /// [`F32Store::extend_le_bytes`] straight into a sink — one copy, no
    /// intermediate buffer (tables are the bulk of an artifact, so the
    /// save path must not triple-buffer them). On little-endian targets
    /// the owned table's bytes are its wire image already.
    fn put_le_bytes<S: crate::StoreSink>(&self, buf: &mut S) {
        match &self.data {
            F32Data::View(bytes) => buf.write_bytes(bytes),
            F32Data::Owned(data) => {
                if cfg!(target_endian = "little") {
                    // SAFETY: any initialized &[f32] is valid to view as
                    // bytes (alignment 1, no invalid bit patterns in u8).
                    let raw = unsafe {
                        std::slice::from_raw_parts(data.as_ptr() as *const u8, data.len() * 4)
                    };
                    buf.write_bytes(raw);
                } else {
                    for v in data {
                        buf.write_bytes(&v.to_le_bytes());
                    }
                }
            }
        }
    }
}

fn decode_le_f32s(bytes: &[u8]) -> Vec<f32> {
    let mut out = vec![0f32; bytes.len() / 4];
    for (o, chunk) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *o = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    out
}

impl VectorStore for F32Store {
    fn dim(&self) -> usize {
        self.dim
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn codec(&self) -> Codec {
        Codec::F32
    }

    fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        self.make_owned();
        let F32Data::Owned(data) = &mut self.data else { unreachable!("just converted") };
        data.extend_from_slice(v);
        self.rows += 1;
    }

    fn row_into(&self, i: usize, out: &mut [f32]) {
        out.copy_from_slice(self.row(i));
    }

    fn l2_sq_row(&self, query: &[f32], i: usize) -> f32 {
        af_nn::kernel::l2_sq(query, self.row(i))
    }

    fn encoded_vector_bytes(&self) -> usize {
        self.rows * self.dim * 4
    }
}

// ------------------------------------------------------------------- f16

/// Binary16 rows; owned, or a verified zero-copy view (little-endian
/// target, 2-byte-aligned buffer of exactly `rows · dim · 2` bytes).
#[derive(Debug, Clone)]
pub struct F16Store {
    dim: usize,
    rows: usize,
    data: F16Data,
}

#[derive(Debug, Clone)]
enum F16Data {
    Owned(Vec<u16>),
    View(Bytes),
}

impl F16Store {
    /// An empty half-precision store of `dim`-d vectors.
    pub fn new(dim: usize) -> F16Store {
        assert!(dim > 0);
        F16Store { dim, rows: 0, data: F16Data::Owned(Vec::new()) }
    }

    /// Adopt `rows · dim` little-endian `u16` bit patterns (zero-copy when
    /// aligned on a little-endian target).
    pub fn from_le_bytes(dim: usize, rows: usize, bytes: Bytes) -> F16Store {
        assert!(dim > 0);
        assert_eq!(bytes.len(), rows * dim * 2, "byte length mismatch");
        let data = if cfg!(target_endian = "little") && (bytes.as_ptr() as usize).is_multiple_of(2)
        {
            F16Data::View(bytes)
        } else {
            F16Data::Owned(decode_le_u16s(&bytes))
        };
        F16Store { dim, rows, data }
    }

    fn as_slice(&self) -> &[u16] {
        match &self.data {
            F16Data::Owned(data) => data,
            F16Data::View(bytes) => {
                // SAFETY: `from_le_bytes` only constructs a `View` on a
                // little-endian target with a 2-byte-aligned buffer of
                // exactly `rows · dim · 2` bytes; the `Bytes` storage is
                // immutable and pinned while this store lives.
                unsafe {
                    std::slice::from_raw_parts(bytes.as_ptr() as *const u16, self.rows * self.dim)
                }
            }
        }
    }

    /// Row `i` as raw IEEE 754 half-precision bit patterns.
    pub fn row_u16(&self, i: usize) -> &[u16] {
        assert!(i < self.rows, "row {i} out of {}", self.rows);
        &self.as_slice()[i * self.dim..(i + 1) * self.dim]
    }

    /// Write the raw little-endian wire image straight into the sink (see
    /// [`F32Store::put_le_bytes`]).
    fn put_le_bytes<S: crate::StoreSink>(&self, buf: &mut S) {
        match &self.data {
            F16Data::View(bytes) => buf.write_bytes(bytes),
            F16Data::Owned(data) => {
                if cfg!(target_endian = "little") {
                    // SAFETY: initialized &[u16] viewed as bytes.
                    let raw = unsafe {
                        std::slice::from_raw_parts(data.as_ptr() as *const u8, data.len() * 2)
                    };
                    buf.write_bytes(raw);
                } else {
                    for v in data {
                        buf.write_bytes(&v.to_le_bytes());
                    }
                }
            }
        }
    }
}

fn decode_le_u16s(bytes: &[u8]) -> Vec<u16> {
    let mut out = vec![0u16; bytes.len() / 2];
    for (o, chunk) in out.iter_mut().zip(bytes.chunks_exact(2)) {
        *o = u16::from_le_bytes(chunk.try_into().expect("2-byte chunk"));
    }
    out
}

impl VectorStore for F16Store {
    fn dim(&self) -> usize {
        self.dim
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn codec(&self) -> Codec {
        Codec::F16
    }

    fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        if let F16Data::View(bytes) = &self.data {
            self.data = F16Data::Owned(decode_le_u16s(bytes));
        }
        let F16Data::Owned(data) = &mut self.data else { unreachable!("just converted") };
        data.extend(v.iter().map(|&x| f32_to_f16(x)));
        self.rows += 1;
    }

    fn row_into(&self, i: usize, out: &mut [f32]) {
        kernel::dequant_f16_into(self.row_u16(i), out);
    }

    fn l2_sq_row(&self, query: &[f32], i: usize) -> f32 {
        kernel::l2_sq_f16(query, self.row_u16(i))
    }

    fn encoded_vector_bytes(&self) -> usize {
        self.rows * self.dim * 2
    }
}

// ------------------------------------------------------------------ int8

/// Per-vector affine int8: row `i` element `j` decodes to
/// `offsets[i] + scales[i] · codes[i·dim + j]`. Codes are owned or a
/// zero-copy view; the per-row scale/offset pairs (8 bytes a row — noise
/// next to the codes) are always owned.
#[derive(Debug, Clone)]
pub struct Int8Store {
    dim: usize,
    scales: Vec<f32>,
    offsets: Vec<f32>,
    codes: CodeData,
}

#[derive(Debug, Clone)]
enum CodeData {
    Owned(Vec<u8>),
    View(Bytes),
}

impl Int8Store {
    /// An empty int8 store of `dim`-d vectors.
    pub fn new(dim: usize) -> Int8Store {
        assert!(dim > 0);
        Int8Store {
            dim,
            scales: Vec::new(),
            offsets: Vec::new(),
            codes: CodeData::Owned(Vec::new()),
        }
    }

    fn codes(&self) -> &[u8] {
        match &self.codes {
            CodeData::Owned(data) => data,
            CodeData::View(bytes) => bytes,
        }
    }

    /// Row `i` as `(codes, scale, offset)` — element `j` decodes to
    /// `offset + scale · codes[j]`.
    pub fn row_codes(&self, i: usize) -> (&[u8], f32, f32) {
        assert!(i < self.rows(), "row {i} out of {}", self.rows());
        (&self.codes()[i * self.dim..(i + 1) * self.dim], self.scales[i], self.offsets[i])
    }
}

impl VectorStore for Int8Store {
    fn dim(&self) -> usize {
        self.dim
    }

    fn rows(&self) -> usize {
        self.scales.len()
    }

    fn codec(&self) -> Codec {
        Codec::Int8
    }

    fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        if let CodeData::View(bytes) = &self.codes {
            self.codes = CodeData::Owned(bytes.to_vec());
        }
        let CodeData::Owned(codes) = &mut self.codes else { unreachable!("just converted") };
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &x in v {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        // Degenerate rows collapse to scale 0 with a finite offset (every
        // element decodes to exactly `offset`): constant rows, rows
        // containing non-finite values the kernels must never re-emit,
        // and rows whose range `hi − lo` overflows f32 — for those no
        // finite affine f32 code exists (decoding the top code computes
        // `offset + scale·255 ≈ hi`, so a "finite" scale would still
        // overflow on dequantization and poison every distance with
        // Inf/NaN, producing an artifact the decoder rejects).
        let range = hi - lo;
        let (scale, offset) = if lo.is_finite() && range.is_finite() && range > 0.0 {
            (range / 255.0, lo)
        } else {
            (0.0, if lo.is_finite() { lo } else { 0.0 })
        };
        if scale > 0.0 {
            codes.extend(v.iter().map(|&x| {
                // x − offset ≤ hi − lo may overflow to Inf for huge-range
                // rows; clamp maps it to the top code.
                let c = ((x - offset) / scale).round();
                c.clamp(0.0, 255.0) as u8
            }));
        } else {
            codes.extend(std::iter::repeat_n(0u8, self.dim));
        }
        self.scales.push(scale);
        self.offsets.push(offset);
    }

    fn row_into(&self, i: usize, out: &mut [f32]) {
        let (codes, scale, offset) = self.row_codes(i);
        kernel::dequant_u8_into(codes, scale, offset, out);
    }

    fn l2_sq_row(&self, query: &[f32], i: usize) -> f32 {
        let (codes, scale, offset) = self.row_codes(i);
        kernel::l2_sq_u8(query, codes, scale, offset)
    }

    fn encoded_vector_bytes(&self) -> usize {
        self.rows() * (self.dim + 8)
    }
}

// -------------------------------------------------------------- the enum

/// The closed set of dense stores — enum dispatch for the scan hot paths
/// (a match, not a vtable, per distance), [`VectorStore`] for generic
/// code.
#[derive(Debug, Clone)]
pub enum DenseStore {
    /// Exact 32-bit floats (the default).
    F32(F32Store),
    /// IEEE 754 half precision, 2× smaller.
    F16(F16Store),
    /// Per-vector affine int8, 4× smaller.
    Int8(Int8Store),
    /// Product-quantized codes + per-table codebooks, ~32× smaller.
    Pq(crate::pq::PqStore),
}

impl DenseStore {
    /// An empty store of the given codec.
    pub fn new(dim: usize, codec: Codec) -> DenseStore {
        match codec {
            Codec::F32 => DenseStore::F32(F32Store::new(dim)),
            Codec::F16 => DenseStore::F16(F16Store::new(dim)),
            Codec::Int8 => DenseStore::Int8(Int8Store::new(dim)),
            Codec::Pq { m } => DenseStore::Pq(crate::pq::PqStore::new(dim, m as usize)),
        }
    }

    /// Wrap an existing f32 table without copying.
    pub fn from_f32_rows(dim: usize, data: Vec<f32>) -> DenseStore {
        DenseStore::F32(F32Store::from_rows(dim, data))
    }

    fn inner(&self) -> &dyn VectorStore {
        match self {
            DenseStore::F32(s) => s,
            DenseStore::F16(s) => s,
            DenseStore::Int8(s) => s,
            DenseStore::Pq(s) => s,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn VectorStore {
        match self {
            DenseStore::F32(s) => s,
            DenseStore::F16(s) => s,
            DenseStore::Int8(s) => s,
            DenseStore::Pq(s) => s,
        }
    }

    /// The contiguous f32 table — `Some` only for the exact codec.
    pub fn as_f32_slice(&self) -> Option<&[f32]> {
        match self {
            DenseStore::F32(s) => Some(s.as_slice()),
            _ => None,
        }
    }

    /// Row `i` as a borrowed f32 slice — exact codec only (quantized rows
    /// have no f32 image in memory; use [`VectorStore::row_into`]).
    pub fn row_f32(&self, i: usize) -> Option<&[f32]> {
        match self {
            DenseStore::F32(s) => Some(s.row(i)),
            _ => None,
        }
    }

    /// Re-encode every row into `codec` (identity codecs clone — O(1) for
    /// views). Quantized → exact round trips dequantize, so converting
    /// away from f32 and back is lossy exactly once. Converting to PQ is
    /// a bulk conversion: codebooks train on the *whole* table (not the
    /// first rows pushed), then every row encodes in parallel — see
    /// [`crate::pq::PqStore::encode_all`].
    pub fn to_codec(&self, codec: Codec) -> DenseStore {
        if let Codec::Pq { m } = codec {
            let m = crate::pq::resolve_m(self.dim(), m as usize);
            if self.codec() == (Codec::Pq { m: m as u16 }) {
                return self.clone();
            }
            return DenseStore::Pq(crate::pq::PqStore::encode_all(self, m));
        }
        if codec == self.codec() {
            return self.clone();
        }
        let mut out = DenseStore::new(self.dim(), codec);
        let mut scratch = vec![0.0f32; self.dim()];
        for i in 0..self.rows() {
            self.row_into(i, &mut scratch);
            out.push(&scratch);
        }
        out
    }
}

impl VectorStore for DenseStore {
    fn dim(&self) -> usize {
        self.inner().dim()
    }

    fn rows(&self) -> usize {
        self.inner().rows()
    }

    fn codec(&self) -> Codec {
        self.inner().codec()
    }

    fn push(&mut self, v: &[f32]) {
        self.inner_mut().push(v);
    }

    fn row_into(&self, i: usize, out: &mut [f32]) {
        self.inner().row_into(i, out);
    }

    #[inline]
    fn l2_sq_row(&self, query: &[f32], i: usize) -> f32 {
        match self {
            DenseStore::F32(s) => s.l2_sq_row(query, i),
            DenseStore::F16(s) => s.l2_sq_row(query, i),
            DenseStore::Int8(s) => s.l2_sq_row(query, i),
            DenseStore::Pq(s) => s.l2_sq_row(query, i),
        }
    }

    fn encoded_vector_bytes(&self) -> usize {
        self.inner().encoded_vector_bytes()
    }
}

// ------------------------------------------------------------------ wire

/// Append a pad run that 4-byte-aligns the position after it: one length
/// byte, then that many zeros. Alignment is buffer-local — callers keep
/// every enclosing section 4-byte aligned, so a local offset that is
/// 0 mod 4 is 0 mod 4 in the final artifact (and in a page-aligned mmap).
pub(crate) fn put_pad<S: crate::StoreSink>(buf: &mut S) {
    let pad = (4 - (buf.written() + 1) % 4) % 4;
    buf.write_u8(pad as u8);
    for _ in 0..pad {
        buf.write_u8(0);
    }
}

pub(crate) fn get_pad(data: &mut Bytes, what: &'static str) -> Result<(), StoreError> {
    let pad = data.try_get_u8().ok_or(StoreError::Truncated(what))? as usize;
    if pad > 3 {
        return Err(StoreError::Invalid("pad run out of range"));
    }
    if data.remaining() < pad {
        return Err(StoreError::Truncated(what));
    }
    data.split_to(pad);
    Ok(())
}

/// Split a bulk payload of exactly `need` bytes off `data`, bounded.
pub(crate) fn take_block(
    data: &mut Bytes,
    need: usize,
    what: &'static str,
) -> Result<Bytes, StoreError> {
    if data.remaining() < need {
        return Err(StoreError::Truncated(what));
    }
    Ok(data.split_to(need))
}

/// Append `store` (codec tag + header + aligned payload) to the sink —
/// one copy per table, no intermediate buffers. The sink may be an
/// in-memory [`bytes::BytesMut`] or a streaming file writer; pad runs align on
/// [`crate::StoreSink::written`], so both produce identical bytes when
/// they start at the same alignment.
pub fn put_store<S: crate::StoreSink>(buf: &mut S, store: &DenseStore) {
    buf.write_u8(store.codec().tag());
    buf.write_u32(store.dim() as u32);
    buf.write_u64(store.rows() as u64);
    put_pad(buf);
    match store {
        DenseStore::F32(s) => s.put_le_bytes(buf),
        DenseStore::F16(s) => s.put_le_bytes(buf),
        DenseStore::Int8(s) => {
            for &v in &s.scales {
                buf.write_bytes(&v.to_le_bytes());
            }
            for &v in &s.offsets {
                buf.write_bytes(&v.to_le_bytes());
            }
            buf.write_bytes(s.codes());
        }
        DenseStore::Pq(s) => crate::pq::put_pq(buf, s),
    }
}

/// [`put_store`] with the payload re-encoded into `codec` — the identity
/// case writes the store directly, without the deep clone
/// [`DenseStore::to_codec`] would make of an owned table.
pub fn put_store_as<S: crate::StoreSink>(buf: &mut S, store: &DenseStore, codec: Codec) {
    if codec == store.codec() {
        put_store(buf, store);
    } else {
        put_store(buf, &store.to_codec(codec));
    }
}

/// Decode one store from the front of `data` (the cursor advances past
/// it). Bulk blocks are adopted zero-copy where alignment allows.
pub fn get_store(data: &mut Bytes) -> Result<DenseStore, StoreError> {
    const W: &str = "vector store";
    let tag = data.try_get_u8().ok_or(StoreError::Truncated(W))?;
    let codec = Codec::from_tag(tag).ok_or(StoreError::BadCodec(tag))?;
    let dim = data.try_get_u32().ok_or(StoreError::Truncated(W))? as usize;
    let rows = data.try_get_u64().ok_or(StoreError::Truncated(W))? as usize;
    if dim == 0 {
        return Err(StoreError::Invalid("store dimension must be positive"));
    }
    let elems = rows.checked_mul(dim).ok_or(StoreError::Truncated(W))?;
    get_pad(data, W)?;
    match codec {
        Codec::F32 => {
            let need = elems.checked_mul(4).ok_or(StoreError::Truncated(W))?;
            Ok(DenseStore::F32(F32Store::from_le_bytes(dim, rows, take_block(data, need, W)?)))
        }
        Codec::F16 => {
            let need = elems.checked_mul(2).ok_or(StoreError::Truncated(W))?;
            Ok(DenseStore::F16(F16Store::from_le_bytes(dim, rows, take_block(data, need, W)?)))
        }
        Codec::Int8 => {
            let need = rows.checked_mul(4).ok_or(StoreError::Truncated(W))?;
            let scales = decode_le_f32s(&take_block(data, need, "int8 scales")?);
            let offsets = decode_le_f32s(&take_block(data, need, "int8 offsets")?);
            // A corrupted scale/offset would leak NaN/Inf into every
            // distance this row ever participates in — reject at the
            // boundary, like TopK rejects non-finite distances. The last
            // check mirrors the encoder's invariant: even a *finite*
            // scale is poison if dequantizing the top code overflows
            // (a bit-flipped exponent can produce one).
            if scales.iter().any(|s| !s.is_finite() || *s < 0.0) {
                return Err(StoreError::Invalid("int8 scale not finite and non-negative"));
            }
            if offsets.iter().any(|o| !o.is_finite()) {
                return Err(StoreError::Invalid("int8 offset not finite"));
            }
            if scales.iter().zip(&offsets).any(|(s, o)| !(o + s * 255.0).is_finite()) {
                return Err(StoreError::Invalid("int8 dequantization range overflows"));
            }
            let codes = take_block(data, elems, "int8 codes")?;
            let codes =
                if codes.is_empty() { CodeData::Owned(Vec::new()) } else { CodeData::View(codes) };
            Ok(DenseStore::Int8(Int8Store { dim, scales, offsets, codes }))
        }
        Codec::Pq { .. } => Ok(DenseStore::Pq(crate::pq::get_pq(data, dim, rows)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn rows(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| (0..dim).map(|j| ((i * dim + j) as f32 * 0.37).sin()).collect()).collect()
    }

    fn filled(codec: Codec, n: usize, dim: usize) -> DenseStore {
        let mut s = DenseStore::new(dim, codec);
        for r in rows(n, dim) {
            s.push(&r);
        }
        s
    }

    #[test]
    fn f32_store_is_exact() {
        let data = rows(7, 13);
        let s = filled(Codec::F32, 7, 13);
        for (i, r) in data.iter().enumerate() {
            assert_eq!(s.row_f32(i).unwrap(), &r[..]);
            assert_eq!(s.row_owned(i), *r);
        }
        assert!(s.as_f32_slice().is_some());
    }

    #[test]
    fn quantized_rows_stay_close() {
        for codec in [Codec::F16, Codec::Int8] {
            let data = rows(9, 24);
            let s = filled(codec, 9, 24);
            assert!(s.row_f32(0).is_none());
            for (i, r) in data.iter().enumerate() {
                let dq = s.row_owned(i);
                for (a, b) in r.iter().zip(&dq) {
                    assert!((a - b).abs() < 5e-3, "{codec:?}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn int8_error_bound_is_half_a_level() {
        let v: Vec<f32> = (0..32).map(|i| (i as f32 * 0.71).cos() * 3.0).collect();
        let (lo, hi) =
            v.iter().fold((f32::INFINITY, f32::NEG_INFINITY), |(l, h), &x| (l.min(x), h.max(x)));
        let mut s = Int8Store::new(32);
        s.push(&v);
        let dq = s.row_owned(0);
        let bound = (hi - lo) / 510.0 + 1e-6;
        for (a, b) in v.iter().zip(&dq) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn int8_fat_rows_lose_precision_that_per_cell_rows_keep() {
        // Why the fat fine layout agrees with f32 on only ~98% of
        // predictions while the compact layout agrees on 100%: int8 is
        // *per-row* affine over the row's min..max. A fat row is a whole
        // fine window — many concatenated per-cell vectors of very
        // different magnitudes — so one coarse step serves them all, and
        // the small-magnitude cells drown in quantization noise. The
        // compact layout quantizes each cell vector as its own row and
        // keeps a per-cell step. This pins the mechanism: the identical
        // payload quantized both ways, with the fat error on the quiet
        // block orders of magnitude above the per-cell error.
        let cell = 8;
        let loud: Vec<f32> = (0..cell).map(|j| (j as f32 * 0.9).sin()).collect(); // ~±1
        let quiet: Vec<f32> = (0..cell).map(|j| (j as f32 * 0.7).cos() * 1e-3).collect(); // ~±1e-3
        let window: Vec<f32> = loud.iter().chain(&quiet).copied().collect();

        let mut fat = Int8Store::new(2 * cell);
        fat.push(&window);
        let mut compact = Int8Store::new(cell);
        compact.push(&loud);
        compact.push(&quiet);

        let fat_dq = fat.row_owned(0);
        let quiet_dq = compact.row_owned(1);
        let max_err = |a: &[f32], b: &[f32]| {
            a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max)
        };
        let fat_quiet_err = max_err(&quiet, &fat_dq[cell..]);
        let compact_quiet_err = max_err(&quiet, &quiet_dq);
        // Per-cell quantization keeps the quiet block within its own
        // half-level bound; the fat row's step is set by the loud block
        // and is ~1000× too coarse for the quiet one.
        assert!(compact_quiet_err <= 2e-3 / 510.0 + 1e-7, "compact err {compact_quiet_err}");
        assert!(
            fat_quiet_err > 100.0 * compact_quiet_err.max(1e-9),
            "fat err {fat_quiet_err} vs compact err {compact_quiet_err}"
        );
    }

    #[test]
    fn int8_huge_range_rows_stay_finite_and_round_trip() {
        // Regression: `(hi − lo) / 255` overflowed to +Inf when a row
        // spanned more than f32::MAX — every distance came back NaN and
        // the decoder rejected the store's own serialized output. Such a
        // row has no finite affine f32 code (even a finite scale would
        // overflow re-multiplying by 255), so it collapses to the
        // degenerate constant encoding: lossy for a pathological row,
        // finite and decodable always.
        let mut s = Int8Store::new(2);
        s.push(&[3.0e38, -3.0e38]);
        let (_, scale, offset) = s.row_codes(0);
        assert_eq!(scale, 0.0, "over-range row must collapse to the constant encoding");
        assert!(offset.is_finite());
        let dq = s.row_owned(0);
        assert!(dq.iter().all(|x| x.is_finite()), "{dq:?}");
        assert!(!s.l2_sq_row(&[0.0, 0.0], 0).is_nan(), "a poisoned scale would yield NaN");
        // A row spanning *up to* f32::MAX still quantizes affinely, and
        // its extremes dequantize to finite values near the originals.
        s.push(&[1.6e38, -1.6e38]);
        let (_, scale2, _) = s.row_codes(1);
        assert!(scale2 > 0.0);
        let dq2 = s.row_owned(1);
        assert!(dq2.iter().all(|x| x.is_finite()));
        assert!((dq2[0] - 1.6e38).abs() <= 3.2e38 / 255.0 * 1.01);
        let mut buf = BytesMut::new();
        put_store(&mut buf, &DenseStore::Int8(s));
        assert!(get_store(&mut buf.freeze()).is_ok(), "own output must decode");
    }

    #[test]
    fn int8_degenerate_rows() {
        let mut s = Int8Store::new(4);
        s.push(&[2.5; 4]); // constant row → scale 0, offset 2.5
        assert_eq!(s.row_owned(0), vec![2.5; 4]);
        s.push(&[f32::NAN, 1.0, f32::INFINITY, -1.0]); // poisoned row
        let dq = s.row_owned(1);
        assert!(dq.iter().all(|x| x.is_finite()), "non-finite must never be re-emitted");
    }

    #[test]
    fn wire_round_trip_every_codec() {
        for codec in Codec::ALL {
            let s = filled(codec, 11, 17);
            let mut buf = BytesMut::new();
            put_store(&mut buf, &s);
            let mut data = buf.freeze();
            let loaded = get_store(&mut data).expect("round trip");
            assert_eq!(data.remaining(), 0, "decode must consume exactly what encode wrote");
            // Compare against the *store's* codec: `Pq { m: 0 }` resolves
            // its auto subspace count on construction.
            assert_eq!(loaded.codec(), s.codec());
            assert_eq!(loaded.codec().tag(), codec.tag());
            assert_eq!(loaded.rows(), 11);
            assert_eq!(loaded.dim(), 17);
            let q: Vec<f32> = (0..17).map(|j| (j as f32 * 0.13).cos()).collect();
            for i in 0..11 {
                assert_eq!(loaded.row_owned(i), s.row_owned(i), "{codec:?} row {i}");
                assert_eq!(
                    loaded.l2_sq_row(&q, i).to_bits(),
                    s.l2_sq_row(&q, i).to_bits(),
                    "{codec:?} row {i}"
                );
            }
        }
    }

    #[test]
    fn empty_stores_round_trip_and_grow() {
        for codec in Codec::ALL {
            let s = DenseStore::new(5, codec);
            let mut buf = BytesMut::new();
            put_store(&mut buf, &s);
            let mut loaded = get_store(&mut buf.freeze()).unwrap();
            assert_eq!(loaded.rows(), 0);
            loaded.push(&[1.0, 2.0, 3.0, 4.0, 5.0]);
            assert_eq!(loaded.rows(), 1);
        }
    }

    #[test]
    fn truncation_at_every_offset_errors_never_panics() {
        for codec in Codec::ALL {
            let s = filled(codec, 6, 9);
            let mut buf = BytesMut::new();
            put_store(&mut buf, &s);
            let bytes = buf.freeze();
            for cut in 0..bytes.len() {
                let mut head = bytes.slice(0..cut);
                assert!(get_store(&mut head).is_err(), "{codec:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn bad_codec_tag_and_bad_scale_rejected() {
        let mut buf = BytesMut::new();
        put_store(&mut buf, &filled(Codec::Int8, 3, 4));
        let good = buf.freeze().to_vec();
        let mut bad_tag = good.clone();
        bad_tag[0] = 99;
        assert_eq!(get_store(&mut Bytes::from(bad_tag)).err(), Some(StoreError::BadCodec(99)));
        // The scales block starts right after tag+dim+rows+pad; poison the
        // first scale with a NaN bit pattern.
        let pad = good[13] as usize;
        let scales_at = 14 + pad;
        let mut bad_scale = good.clone();
        bad_scale[scales_at..scales_at + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        assert!(matches!(
            get_store(&mut Bytes::from(bad_scale)).err(),
            Some(StoreError::Invalid(_))
        ));
        // And a negative scale.
        let mut neg_scale = good.clone();
        neg_scale[scales_at..scales_at + 4].copy_from_slice(&(-1.0f32).to_le_bytes());
        assert!(matches!(
            get_store(&mut Bytes::from(neg_scale)).err(),
            Some(StoreError::Invalid(_))
        ));
        // Regression: a *finite* but huge scale (one exponent bit-flip
        // away) passes the finiteness checks, but dequantizing its top
        // code overflows to Inf — it must be rejected at the boundary
        // too, like the encoder's own invariant promises.
        let mut huge_scale = good;
        huge_scale[scales_at..scales_at + 4].copy_from_slice(&3.0e37f32.to_le_bytes());
        assert!(matches!(
            get_store(&mut Bytes::from(huge_scale)).err(),
            Some(StoreError::Invalid(_))
        ));
    }

    #[test]
    fn to_codec_conversions() {
        let s = filled(Codec::F32, 8, 12);
        for codec in Codec::ALL {
            let c = s.to_codec(codec);
            // Tags match exactly; `Pq { m: 0 }` resolves its auto subspace
            // count during conversion, so compare tags rather than values.
            assert_eq!(c.codec().tag(), codec.tag());
            assert_eq!(c.rows(), s.rows());
            for i in 0..s.rows() {
                let (a, b) = (s.row_owned(i), c.row_owned(i));
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 5e-3);
                }
            }
        }
        // f32 → f32 is exact; quantized identity conversion is a clone.
        let back = s.to_codec(Codec::F32);
        assert_eq!(back.row_owned(3), s.row_owned(3));
        let q = s.to_codec(Codec::Int8);
        assert_eq!(q.to_codec(Codec::Int8).row_owned(0), q.row_owned(0));
    }

    #[test]
    fn zero_copy_adoption_when_aligned() {
        // put_store pads so the payload is 4-aligned relative to the
        // buffer start; a freshly-frozen buffer starts at an allocation
        // (≥ 8-byte aligned), so the view path must engage.
        let s = filled(Codec::F32, 4, 8);
        let mut buf = BytesMut::new();
        put_store(&mut buf, &s);
        let loaded = get_store(&mut buf.freeze()).unwrap();
        let DenseStore::F32(f) = &loaded else { panic!("f32") };
        assert!(matches!(f.data, F32Data::View(_)), "aligned decode must adopt zero-copy");
    }

    #[test]
    fn size_ratios_match_the_codecs() {
        let s32 = filled(Codec::F32, 100, 64);
        let s16 = s32.to_codec(Codec::F16);
        let s8 = s32.to_codec(Codec::Int8);
        assert_eq!(s16.encoded_vector_bytes() * 2, s32.encoded_vector_bytes());
        // int8: dim + 8 bytes per row vs dim·4.
        assert_eq!(s8.encoded_vector_bytes(), 100 * (64 + 8));
    }
}
