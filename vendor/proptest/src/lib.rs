//! Vendored, dependency-free property-testing harness exposing the subset of
//! the `proptest` API this workspace uses: the [`proptest!`] macro (with
//! `#![proptest_config(..)]`, `pat in strategy` and `name: Type` argument
//! forms), `prop_assert*`, range / tuple / `prop_map` / collection / simple
//! regex-string strategies, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-case seed (reproducible across runs by construction) and failures are
//! **not shrunk** — the failing case index and seed are printed instead so a
//! failure can be replayed.

pub mod arbitrary;
pub mod collection;
pub mod config;
pub mod strategy;

pub mod string {
    pub use crate::strategy::regex_sample;
}

use rand::rngs::StdRng;
use rand::SeedableRng;

/// RNG for one test case: a deterministic function of (run seed, case index).
pub fn test_rng(seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Everything a test file needs from one glob import, mirroring upstream's
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Upstream's prelude exposes strategy constructors under `prop::`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($params:tt)*) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_args! { ($cfg) [] $body, $($params)* }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_args {
    ( ($cfg:expr) [$($acc:tt)*] $body:block, ) => {
        $crate::__proptest_run! { ($cfg) [$($acc)*] $body }
    };
    ( ($cfg:expr) [$($acc:tt)*] $body:block ) => {
        $crate::__proptest_run! { ($cfg) [$($acc)*] $body }
    };
    ( ($cfg:expr) [$($acc:tt)*] $body:block, $pat:pat in $strat:expr, $($rest:tt)* ) => {
        $crate::__proptest_args! { ($cfg) [$($acc)* [{$pat} {$strat}]] $body, $($rest)* }
    };
    ( ($cfg:expr) [$($acc:tt)*] $body:block, $pat:pat in $strat:expr ) => {
        $crate::__proptest_args! { ($cfg) [$($acc)* [{$pat} {$strat}]] $body, }
    };
    ( ($cfg:expr) [$($acc:tt)*] $body:block, $arg:ident: $ty:ty, $($rest:tt)* ) => {
        $crate::__proptest_args! {
            ($cfg) [$($acc)* [{$arg} {$crate::arbitrary::any::<$ty>()}]] $body, $($rest)*
        }
    };
    ( ($cfg:expr) [$($acc:tt)*] $body:block, $arg:ident: $ty:ty ) => {
        $crate::__proptest_args! {
            ($cfg) [$($acc)* [{$arg} {$crate::arbitrary::any::<$ty>()}]] $body,
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    ( ($cfg:expr) [$([{$pat:pat} {$strat:expr}])*] $body:block ) => {{
        let __config: $crate::config::ProptestConfig = $cfg;
        for __case in 0..__config.cases {
            let mut __rng = $crate::test_rng(__config.seed, __case);
            $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
            let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                || $body
            ));
            if let ::std::result::Result::Err(payload) = __outcome {
                eprintln!(
                    "proptest: failing case {}/{} (seed {:#x})",
                    __case, __config.cases, __config.seed,
                );
                ::std::panic::resume_unwind(payload);
            }
        }
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond, "property failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..100, 0u32..100).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..60, y in -12i64..=12, f in 0.0f64..1.0) {
            prop_assert!((3..60).contains(&x));
            prop_assert!((-12..=12).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn mixed_arg_forms(x in 0u32..10, flag: bool, _other: u8) {
            prop_assert!(x < 10 || flag, "unreachable: {x}");
        }

        #[test]
        fn prop_map_and_tuples(pair in arb_pair()) {
            prop_assert!(pair.0 <= pair.1);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(-1e3f64..1e3, 1..30)) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            prop_assert!(v.iter().all(|x| (-1e3..1e3).contains(x)));
        }

        #[test]
        fn regex_strings(s in "[a-zA-Z0-9 ]{0,20}", name in "[A-Z]{3,8}") {
            prop_assert!(s.chars().count() <= 20);
            prop_assert!((3..=8).contains(&name.chars().count()));
            prop_assert!(name.chars().all(|c| c.is_ascii_uppercase()), "bad name {name:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng(1, 7);
        let mut b = crate::test_rng(1, 7);
        let s: String = crate::strategy::Strategy::generate(&"[a-z]{8}", &mut a);
        let t: String = crate::strategy::Strategy::generate(&"[a-z]{8}", &mut b);
        assert_eq!(s, t);
    }
}
