//! `SbertSim` — the Sentence-BERT stand-in.
//!
//! The paper embeds cell text with a pre-trained Sentence-BERT so that
//! semantically similar strings ("USA" / "Canada", "Total" / "Sum of…")
//! land near each other. Running a transformer is out of scope (and out of
//! band for this reproduction — see DESIGN.md); what the pipeline needs is
//! (a) a string-similarity-respecting dense embedding and (b) SBERT's cost
//! profile: higher dimensionality and more per-string work than GloVe.
//!
//! `SbertSim` hashes lowercased words plus char-2/3/4-grams into `d`
//! buckets with signed double-hashing and L2-normalizes. Shared substrings
//! ⇒ shared buckets ⇒ high cosine similarity.

use crate::hashing::{add_hashed, fnv1a, fnv1a_chars, rehash};
use crate::tokenize::{char_ngrams, words};
use crate::TextEmbedder;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Character n-gram + word feature-hashing embedder (Sentence-BERT
/// stand-in). Construction is free; embedding cost scales with string
/// length. Thread-safe with an internal bounded memo cache.
pub struct SbertSim {
    dim: usize,
    cache: Mutex<HashMap<String, Arc<Vec<f32>>>>,
}

const NGRAM_SIZES: [usize; 3] = [2, 3, 4];
const CACHE_CAP: usize = 200_000;

impl SbertSim {
    pub fn new(dim: usize) -> SbertSim {
        assert!(dim >= 8);
        SbertSim { dim, cache: Mutex::new(HashMap::new()) }
    }

    fn compute(&self, text: &str, out: &mut [f32]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        if text.is_empty() {
            return;
        }
        // Word-level features carry the most semantic weight.
        for w in words(text) {
            let h = fnv1a(w.as_bytes());
            add_hashed(out, h, 1.0);
            add_hashed(out, rehash(h), 1.0);
        }
        // Character n-grams give robustness to morphology/typos and make
        // this embedder deliberately heavier than GloveSim.
        char_ngrams(text, &NGRAM_SIZES, |gram| {
            let h = fnv1a_chars(gram);
            add_hashed(out, h, 0.35);
            add_hashed(out, rehash(h), 0.35);
        });
        l2_normalize(out);
    }
}

impl TextEmbedder for SbertSim {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, text: &str, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.dim);
        if let Some(hit) = self.cache.lock().get(text) {
            out.copy_from_slice(hit);
            return;
        }
        self.compute(text, out);
        let mut cache = self.cache.lock();
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(text.to_string(), Arc::new(out.to_vec()));
    }

    fn name(&self) -> &'static str {
        "sbert-sim"
    }

    /// Stateless beyond `dim`: hashing is deterministic, so rebuilding
    /// from the dimension alone reproduces identical vectors.
    fn export_state(&self) -> Vec<u8> {
        Vec::new()
    }
}

fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine(e: &SbertSim, a: &str, b: &str) -> f32 {
        let mut va = vec![0.0; e.dim()];
        let mut vb = vec![0.0; e.dim()];
        e.embed(a, &mut va);
        e.embed(b, &mut vb);
        va.iter().zip(&vb).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn similar_strings_are_closer_than_dissimilar() {
        let e = SbertSim::new(128);
        let near = cosine(&e, "Total Revenue", "Total Revenues");
        let far = cosine(&e, "Total Revenue", "Brown");
        assert!(near > 0.7, "near {near}");
        assert!(near > far + 0.3, "near {near} vs far {far}");
    }

    #[test]
    fn shared_word_forms_are_close() {
        let e = SbertSim::new(128);
        assert!(cosine(&e, "Q1 2023", "Q2 2023") > 0.5);
        assert!(cosine(&e, "workshop", "workshops") > 0.45);
        assert!(cosine(&e, "workshop", "workshops") > cosine(&e, "workshop", "revenue"));
    }

    #[test]
    fn outputs_unit_norm_or_zero() {
        let e = SbertSim::new(64);
        let mut v = vec![0.0; 64];
        e.embed("hello world", &mut v);
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
        e.embed("", &mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn deterministic_and_cached() {
        let e = SbertSim::new(64);
        let mut a = vec![0.0; 64];
        let mut b = vec![0.0; 64];
        e.embed("PGE energy usage", &mut a);
        e.embed("PGE energy usage", &mut b); // cache hit path
        assert_eq!(a, b);
    }

    #[test]
    fn different_numbers_still_share_shape() {
        let e = SbertSim::new(128);
        // Same digit-count numbers share n-grams only by accident; they
        // should still be far closer to each other than to words.
        let nn = cosine(&e, "2023-01-05", "2023-02-07");
        let nw = cosine(&e, "2023-01-05", "Brown");
        assert!(nn > nw);
    }
}
