//! Distance computation and neighbor records.
//!
//! The distance kernel itself lives in `af_nn::kernel` (one unrolled,
//! property-tested implementation shared by the training stack and the
//! indexes); this module re-exports it so `af_ann::metric::l2_sq` keeps
//! working and call sites cannot drift apart again.

/// Squared Euclidean distance (8-wide unrolled; see `af_nn::kernel`). On
/// unit vectors this equals `2 − 2·cosθ`, so ranking by it matches ranking
/// by cosine similarity.
pub use af_nn::kernel::{dot, l2_sq};

/// A search hit: vector id plus squared-L2 distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    pub id: usize,
    pub dist: f32,
}

impl Neighbor {
    pub fn new(id: usize, dist: f32) -> Neighbor {
        Neighbor { id, dist }
    }
}

/// Maintain the `k` smallest neighbors seen so far (a bounded max-heap
/// encoded as a sorted insertion buffer — for the small `k` used here this
/// beats a real heap).
#[derive(Debug)]
pub struct TopK {
    k: usize,
    items: Vec<Neighbor>,
}

impl TopK {
    pub fn new(k: usize) -> TopK {
        TopK { k, items: Vec::with_capacity(k + 1) }
    }

    /// Current worst (largest) accepted distance, or `f32::INFINITY` while
    /// not yet full.
    pub fn worst(&self) -> f32 {
        if self.items.len() < self.k {
            f32::INFINITY
        } else {
            self.items.last().map(|n| n.dist).unwrap_or(f32::INFINITY)
        }
    }

    /// Insert a candidate. Non-finite distances (NaN from a corrupted
    /// embedding, ±∞ from overflow) are rejected at the boundary: a NaN
    /// would slip past the `>=` cutoff below and then poison
    /// `partition_point`'s ordering for every later push.
    pub fn push(&mut self, n: Neighbor) {
        if self.k == 0 || !n.dist.is_finite() || n.dist >= self.worst() {
            return;
        }
        let pos = self.items.partition_point(|x| x.dist <= n.dist);
        self.items.insert(pos, n);
        self.items.truncate(self.k);
    }

    pub fn into_sorted(self) -> Vec<Neighbor> {
        self.items
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((l2_sq(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn topk_keeps_k_smallest_sorted() {
        let mut t = TopK::new(3);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 3.0), (3, 0.5), (4, 4.0)] {
            t.push(Neighbor::new(id, d));
        }
        let out = t.into_sorted();
        let ids: Vec<usize> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 1, 2]);
        assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn topk_zero_capacity() {
        let mut t = TopK::new(0);
        t.push(Neighbor::new(0, 1.0));
        assert!(t.is_empty());
    }

    #[test]
    fn non_finite_distances_rejected() {
        // Regression: a NaN passed the `>=` cutoff (NaN comparisons are
        // false), landed at an arbitrary `partition_point` position, and
        // corrupted the sort order of every subsequent push.
        let mut t = TopK::new(3);
        t.push(Neighbor::new(0, 2.0));
        t.push(Neighbor::new(1, f32::NAN));
        t.push(Neighbor::new(2, 1.0));
        t.push(Neighbor::new(3, f32::INFINITY));
        t.push(Neighbor::new(4, 3.0));
        t.push(Neighbor::new(5, 0.5));
        let out = t.into_sorted();
        let ids: Vec<usize> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![5, 2, 0]);
        assert!(out.iter().all(|n| n.dist.is_finite()));
        assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn nan_never_becomes_the_worst_cutoff() {
        // A NaN accepted while the buffer is not yet full would also make
        // `worst()` NaN, silently rejecting all later (valid) candidates.
        let mut t = TopK::new(2);
        t.push(Neighbor::new(0, f32::NAN));
        assert!(t.is_empty());
        t.push(Neighbor::new(1, 1.0));
        t.push(Neighbor::new(2, 2.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.worst(), 2.0);
    }

    #[test]
    fn worst_tracks_threshold() {
        let mut t = TopK::new(2);
        assert_eq!(t.worst(), f32::INFINITY);
        t.push(Neighbor::new(0, 2.0));
        assert_eq!(t.worst(), f32::INFINITY, "not yet full");
        t.push(Neighbor::new(1, 1.0));
        assert_eq!(t.worst(), 2.0);
        t.push(Neighbor::new(2, 0.5));
        assert_eq!(t.worst(), 1.0);
    }
}
