//! Asymmetric distance and dequantization kernels: an **f32 query** against
//! a **quantized table row**, fused — the row is never materialized as f32.
//!
//! These follow the shape of `af_nn::kernel` exactly (the same `LANES`-wide
//! independent accumulators and the same fixed reduction tree), so a fused
//! asymmetric distance is **bit-identical** to dequantizing the row and
//! calling [`af_nn::kernel::l2_sq`] — asserted in the tests below. That
//! equivalence is what lets the exactness tests reason about quantized
//! scans: the only error source is the codec, never the kernel.

use crate::f16::f16_to_f32;
use af_nn::kernel::LANES;

#[inline]
fn reduce_lanes(l: [f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Squared L2 distance between an f32 query and an f16 row.
#[inline]
pub fn l2_sq_f16(query: &[f32], row: &[u16]) -> f32 {
    debug_assert_eq!(query.len(), row.len());
    let mut lanes = [0.0f32; LANES];
    let mut cq = query.chunks_exact(LANES);
    let mut cr = row.chunks_exact(LANES);
    for (xq, xr) in (&mut cq).zip(&mut cr) {
        for k in 0..LANES {
            let d = xq[k] - f16_to_f32(xr[k]);
            lanes[k] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (q, r) in cq.remainder().iter().zip(cr.remainder()) {
        let d = q - f16_to_f32(*r);
        tail += d * d;
    }
    reduce_lanes(lanes) + tail
}

/// Squared L2 distance between an f32 query and an int8 row stored as
/// `offset + scale · code` (per-vector affine scalar quantization).
#[inline]
pub fn l2_sq_u8(query: &[f32], codes: &[u8], scale: f32, offset: f32) -> f32 {
    debug_assert_eq!(query.len(), codes.len());
    let mut lanes = [0.0f32; LANES];
    let mut cq = query.chunks_exact(LANES);
    let mut cc = codes.chunks_exact(LANES);
    for (xq, xc) in (&mut cq).zip(&mut cc) {
        for k in 0..LANES {
            let d = xq[k] - (offset + scale * xc[k] as f32);
            lanes[k] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (q, c) in cq.remainder().iter().zip(cc.remainder()) {
        let d = q - (offset + scale * *c as f32);
        tail += d * d;
    }
    reduce_lanes(lanes) + tail
}

/// Dequantize an f16 row into `out`.
#[inline]
pub fn dequant_f16_into(row: &[u16], out: &mut [f32]) {
    debug_assert_eq!(row.len(), out.len());
    for (o, &h) in out.iter_mut().zip(row) {
        *o = f16_to_f32(h);
    }
}

/// Dequantize an int8 row (`offset + scale · code`) into `out`.
#[inline]
pub fn dequant_u8_into(codes: &[u8], scale: f32, offset: f32, out: &mut [f32]) {
    debug_assert_eq!(codes.len(), out.len());
    for (o, &c) in out.iter_mut().zip(codes) {
        *o = offset + scale * c as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::f16::f32_to_f16;
    use af_nn::kernel::l2_sq;

    fn query(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin()).collect()
    }

    #[test]
    fn f16_distance_is_bit_identical_to_dequant_plus_l2() {
        for n in [0, 1, 7, 8, 9, 16, 31, 240] {
            let q = query(n);
            let row: Vec<u16> = (0..n).map(|i| f32_to_f16((i as f32 * 0.11).cos())).collect();
            let mut dq = vec![0.0f32; n];
            dequant_f16_into(&row, &mut dq);
            assert_eq!(l2_sq_f16(&q, &row).to_bits(), l2_sq(&q, &dq).to_bits(), "n={n}");
        }
    }

    #[test]
    fn u8_distance_is_bit_identical_to_dequant_plus_l2() {
        for n in [0, 1, 7, 8, 9, 16, 31, 240] {
            let q = query(n);
            let codes: Vec<u8> = (0..n).map(|i| (i * 37 % 256) as u8).collect();
            let (scale, offset) = (0.0123f32, -0.83f32);
            let mut dq = vec![0.0f32; n];
            dequant_u8_into(&codes, scale, offset, &mut dq);
            assert_eq!(
                l2_sq_u8(&q, &codes, scale, offset).to_bits(),
                l2_sq(&q, &dq).to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn zero_scale_row_is_constant() {
        let q = query(9);
        let codes = vec![200u8; 9];
        let d = l2_sq_u8(&q, &codes, 0.0, 0.25);
        let naive: f32 = q.iter().map(|v| (v - 0.25) * (v - 0.25)).sum();
        assert!((d - naive).abs() < 1e-5);
    }
}
