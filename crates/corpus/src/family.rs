//! Template families: the unit of "similar-sheets".
//!
//! A family fixes an archetype, a style palette, a sheet-name style, and
//! the layout choices; each *instance* redraws data values, jitters the
//! palette, and (for variable-shape families) redraws the number of data
//! rows — reproducing the paper's observation that similar-sheets "often
//! represent different subsets of data … financial statements for different
//! time periods, or sales reports for different geo locations".

use crate::archetype::{Archetype, BuildCtx};
use crate::namegen::{family_sheet_names, instance_title};
use af_grid::{Color, Sheet, Workbook};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A family-level color scheme; instances jitter it slightly so
/// similar-sheets are "similar in style and color" without being identical
/// cell-by-cell (Fig. 1).
#[derive(Debug, Clone)]
pub struct Palette {
    pub header_fill: Color,
    pub header_font: Color,
    pub accent_fill: Color,
    pub total_fill: Color,
}

impl Palette {
    /// Draw a base palette from a family RNG.
    pub fn random(rng: &mut StdRng) -> Palette {
        let hues: [(u8, u8, u8); 8] = [
            (31, 78, 121),
            (84, 130, 53),
            (122, 46, 139),
            (191, 80, 22),
            (32, 105, 105),
            (140, 30, 45),
            (60, 60, 100),
            (100, 90, 20),
        ];
        let (r, g, b) = hues[rng.random_range(0..hues.len())];
        let header_fill = Color::new(r, g, b);
        let lighten = |c: Color, amt: u8| {
            Color::new(c.r.saturating_add(amt), c.g.saturating_add(amt), c.b.saturating_add(amt))
        };
        Palette {
            header_fill,
            header_font: Color::WHITE,
            accent_fill: lighten(header_fill, 110),
            total_fill: lighten(header_fill, 70),
        }
    }

    /// Per-instance jitter: each channel moves by at most ±12.
    pub fn jittered(&self, rng: &mut StdRng) -> Palette {
        let mut j = |c: Color| {
            c.jitter(
                12,
                [
                    rng.random_range(-12..=12),
                    rng.random_range(-12..=12),
                    rng.random_range(-12..=12),
                ],
            )
        };
        Palette {
            header_fill: j(self.header_fill),
            header_font: self.header_font,
            accent_fill: j(self.accent_fill),
            total_fill: j(self.total_fill),
        }
    }
}

/// How a family names its sheets — the lever behind weak-supervision
/// recall (§4.2, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameStyle {
    /// Distinctive low-frequency sheet names shared across instances
    /// (Fig. 3a): the hypothesis test catches these.
    Distinct,
    /// Generic names like "Sheet1" (Fig. 3b): similar content, but the
    /// hypothesis test cannot confidently pair them.
    Generic,
}

/// A template family.
#[derive(Debug, Clone)]
pub struct Family {
    pub id: usize,
    pub archetype: Archetype,
    pub palette: Palette,
    pub name_style: NameStyle,
    /// `Some(n)` for fixed-shape families (all instances share `n` data
    /// rows); `None` for variable-shape (each instance redraws).
    pub fixed_rows: Option<u32>,
    /// Distinctive sheet names for this family (used when
    /// `name_style == Distinct`; always used to *seed* aux sheet content).
    pub sheet_names: Vec<String>,
    pub seed: u64,
}

impl Family {
    /// Create a family deterministically from a seed.
    pub fn new(id: usize, archetype: Archetype, name_style: NameStyle, seed: u64) -> Family {
        let mut rng = StdRng::seed_from_u64(seed);
        let palette = Palette::random(&mut rng);
        let fixed = match archetype {
            // Period-structured archetypes have a natural fixed shape.
            Archetype::FinancialStatement | Archetype::EnergyUsage => {
                Some(archetype.default_rows())
            }
            _ => {
                if rng.random_bool(0.4) {
                    Some(rng.random_range(archetype.row_range()))
                } else {
                    None
                }
            }
        };
        let sheet_names = family_sheet_names(&mut rng, archetype);
        Family { id, archetype, palette, name_style, fixed_rows: fixed, sheet_names, seed }
    }

    /// Number of data rows for instance `idx`.
    fn rows_for_instance(&self, rng: &mut StdRng) -> u32 {
        match self.fixed_rows {
            Some(n) => n,
            None => rng.random_range(self.archetype.row_range()),
        }
    }

    /// Generate instance `idx` of this family.
    pub fn instantiate(&self, idx: usize, timestamp: i64) -> Workbook {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (idx as u64).wrapping_mul(0x9e37_79b9));
        let n_rows = self.rows_for_instance(&mut rng);
        let palette = self.palette.jittered(&mut rng);
        let title = instance_title(&mut rng, self.archetype, idx);

        let main_name = match self.name_style {
            NameStyle::Distinct => self.sheet_names[0].clone(),
            NameStyle::Generic => "Sheet1".to_string(),
        };
        let ctx = BuildCtx {
            palette: &palette,
            sheet_name: main_name,
            n_rows,
            title: &title,
            variant: self.seed,
        };
        let mut main = self.archetype.build(&ctx, &mut rng);
        af_formula::recalculate(&mut main);

        let mut wb = Workbook::new(format!("{}-{:04}.xlsx", self.archetype.slug(), idx))
            .with_timestamp(timestamp);
        wb.push_sheet(main);
        // Auxiliary sheets share names across instances of the family.
        // Generic-named families stay single-sheet ("Sheet1" one-offs, the
        // Fig. 3b/3c case): a lone default name is never enough evidence
        // for the hypothesis test, which is exactly the recall gap weak
        // supervision is supposed to have.
        if self.name_style == NameStyle::Distinct {
            for aux_name in self.sheet_names.iter().skip(1) {
                wb.push_sheet(aux_note_sheet(aux_name, &palette, &mut rng));
            }
        }
        wb
    }
}

/// Small free-text auxiliary sheet ("Instructions"-style tab).
fn aux_note_sheet(name: &str, palette: &Palette, rng: &mut StdRng) -> Sheet {
    use af_grid::{Cell, CellStyle};
    let mut s = Sheet::new(name);
    let lines = [
        "Fill in the highlighted cells only.",
        "Contact the owner before editing.",
        "Figures are preliminary until sign-off.",
        "Do not modify formulas below the table.",
        "Updated weekly by the reporting team.",
    ];
    s.set_a1(
        "A1",
        Cell::styled(
            name,
            CellStyle::header(palette.header_fill).with_font_color(palette.header_font),
        ),
    );
    let n = rng.random_range(2..=4usize);
    for i in 0..n {
        let line = lines[rng.random_range(0..lines.len())];
        s.set_a1(&format!("A{}", i + 3), Cell::new(line));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_share_layout_logic() {
        let fam = Family::new(0, Archetype::SalesReport, NameStyle::Distinct, 42);
        let a = fam.instantiate(0, 100);
        let b = fam.instantiate(1, 200);
        assert_eq!(a.sheet_names(), b.sheet_names(), "same family, same sheet names");
        // Both have formulas.
        assert!(a.formula_count() > 0);
        assert!(b.formula_count() > 0);
    }

    #[test]
    fn fixed_shape_instances_have_identical_formula_locations() {
        // FinancialStatement is always fixed-shape.
        let fam = Family::new(1, Archetype::FinancialStatement, NameStyle::Distinct, 7);
        assert!(fam.fixed_rows.is_some());
        let a = fam.instantiate(0, 0);
        let b = fam.instantiate(5, 0);
        let mut fa: Vec<_> = a.sheets[0].formulas().map(|(at, f)| (at, f.to_string())).collect();
        let mut fb: Vec<_> = b.sheets[0].formulas().map(|(at, f)| (at, f.to_string())).collect();
        fa.sort();
        fb.sort();
        assert_eq!(fa, fb, "fixed-shape instances share formula text and location");
    }

    #[test]
    fn instances_differ_in_data() {
        let fam = Family::new(2, Archetype::SalesReport, NameStyle::Distinct, 11);
        let a = fam.instantiate(0, 0);
        let b = fam.instantiate(1, 0);
        let grid_a: Vec<String> =
            a.sheets[0].iter().map(|(at, c)| format!("{at}={}", c.value.display())).collect();
        let grid_b: Vec<String> =
            b.sheets[0].iter().map(|(at, c)| format!("{at}={}", c.value.display())).collect();
        assert_ne!(grid_a, grid_b);
    }

    #[test]
    fn generic_style_uses_sheet1() {
        let fam = Family::new(3, Archetype::Inventory, NameStyle::Generic, 13);
        let wb = fam.instantiate(0, 0);
        assert_eq!(wb.sheets[0].name(), "Sheet1");
    }

    #[test]
    fn deterministic_instantiation() {
        let fam = Family::new(4, Archetype::GradeBook, NameStyle::Distinct, 99);
        let a = fam.instantiate(3, 0);
        let b = fam.instantiate(3, 0);
        let cells = |wb: &Workbook| -> Vec<String> {
            let mut v: Vec<String> =
                wb.sheets[0].iter().map(|(at, c)| format!("{at}:{}", c.value.display())).collect();
            v.sort();
            v
        };
        assert_eq!(cells(&a), cells(&b));
    }

    #[test]
    fn palette_jitter_stays_close() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Palette::random(&mut rng);
        let j = p.jittered(&mut rng);
        let close = |a: Color, b: Color| {
            (a.r as i16 - b.r as i16).abs() <= 12
                && (a.g as i16 - b.g as i16).abs() <= 12
                && (a.b as i16 - b.b as i16).abs() <= 12
        };
        assert!(close(p.header_fill, j.header_fill));
        assert!(close(p.accent_fill, j.accent_fill));
    }
}
