//! Thin CLI wrapper: regenerates table4 (see DESIGN.md's per-experiment
//! index). `AF_SCALE={tiny,small,full}` scales the synthetic corpora.

fn main() {
    af_bench::report::run_experiment(
        "table4",
        "Table 4: the 24 GPT prompt variants plus their union",
        af_bench::experiments::table4,
    );
}
