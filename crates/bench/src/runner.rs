//! Evaluation loops: run a predictor over an organization's test cases and
//! record per-case outcomes (confidence, correctness, latency, and the
//! metadata needed by the sensitivity figures).

use crate::metrics::{quality, Quality};
use af_baselines::{Baseline, PredictionContext};
use af_core::index::ReferenceIndex;
use af_core::pipeline::{AutoFormula, PipelineVariant};
use af_corpus::organization::OrgCorpus;
use af_corpus::split::Split;
use af_corpus::testcase::{masked_sheet, sample_test_cases, TestCase};
use af_formula::{classify, complexity, parse_formula, FormulaType};
use std::time::Instant;

/// Per-case outcome of an Auto-Formula run.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// S2 distance (confidence; lower = stronger). `None`: no candidate at
    /// all (no prediction regardless of θ).
    pub dist: Option<f32>,
    pub correct: bool,
    /// Rows of the target sheet (Fig. 9 buckets).
    pub sheet_rows: u32,
    /// Ground-truth AST node count (Fig. 10 buckets).
    pub complexity: usize,
    /// Ground-truth formula type (Fig. 11 buckets).
    pub ftype: FormulaType,
    pub latency_ms: f64,
}

/// Sample the standard test cases for an org (≤10 per sheet, §5.1).
pub fn org_cases(corpus: &OrgCorpus, split: &Split, seed: u64) -> Vec<TestCase> {
    let mut cases = sample_test_cases(corpus, split, 10, seed);
    // Cap per org so full runs stay laptop-sized; deterministic order.
    let cap: usize = std::env::var("AF_MAX_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(400);
    cases.truncate(cap);
    cases
}

/// Run Auto-Formula over the cases (unthresholded; θ is applied later).
pub fn evaluate_autoformula(
    af: &AutoFormula,
    corpus: &OrgCorpus,
    index: &ReferenceIndex,
    cases: &[TestCase],
    variant: PipelineVariant,
) -> Vec<CaseResult> {
    let mut out = Vec::with_capacity(cases.len());
    for tc in cases {
        let sheet = &corpus.workbooks[tc.workbook].sheets[tc.sheet];
        let masked = masked_sheet(sheet, tc.target);
        let gt_expr = parse_formula(&tc.ground_truth).ok();
        let gt_canonical = gt_expr.as_ref().map(|e| e.to_string());
        let started = Instant::now();
        let pred = af.predict_with(index, &masked, tc.target, variant);
        let latency_ms = started.elapsed().as_secs_f64() * 1000.0;
        let (dist, correct) = match (&pred, &gt_canonical) {
            (Some(p), Some(gt)) => (Some(p.s2_distance), &p.formula == gt),
            (Some(p), None) => (Some(p.s2_distance), false),
            (None, _) => (None, false),
        };
        out.push(CaseResult {
            dist,
            correct,
            sheet_rows: sheet.dims().0,
            complexity: gt_expr.as_ref().map(complexity).unwrap_or(0),
            ftype: gt_expr.as_ref().map(classify).unwrap_or(FormulaType::Other),
            latency_ms,
        });
    }
    out
}

/// Quality of Auto-Formula results at threshold θ.
pub fn af_quality(results: &[CaseResult], theta: f32) -> Quality {
    let n = results.len();
    let n_pred = results.iter().filter(|r| r.dist.is_some_and(|d| d <= theta)).count();
    let n_hit = results.iter().filter(|r| r.correct && r.dist.is_some_and(|d| d <= theta)).count();
    quality(n, n_pred, n_hit)
}

/// The PR-curve inputs (distance, correct) of results with candidates.
pub fn af_curve_points(results: &[CaseResult]) -> Vec<(f32, bool)> {
    results.iter().filter_map(|r| r.dist.map(|d| (d, r.correct))).collect()
}

/// Per-case outcome of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineCase {
    pub predicted: bool,
    pub correct: bool,
    pub complexity: usize,
    pub ftype: FormulaType,
    pub latency_ms: f64,
}

/// Run a [`Baseline`] over the cases.
pub fn evaluate_baseline(
    baseline: &dyn Baseline,
    corpus: &OrgCorpus,
    split: &Split,
    cases: &[TestCase],
) -> Vec<BaselineCase> {
    let mut out = Vec::with_capacity(cases.len());
    for tc in cases {
        let sheet = &corpus.workbooks[tc.workbook].sheets[tc.sheet];
        let masked = masked_sheet(sheet, tc.target);
        let gt_expr = parse_formula(&tc.ground_truth).ok();
        let gt_canonical = gt_expr.as_ref().map(|e| e.to_string());
        let ctx = PredictionContext {
            workbooks: &corpus.workbooks,
            reference: &split.reference,
            target_workbook: tc.workbook,
            target_sheet: tc.sheet,
            masked: &masked,
            target: tc.target,
        };
        let started = Instant::now();
        let pred = baseline.predict(&ctx);
        let latency_ms = started.elapsed().as_secs_f64() * 1000.0;
        let correct = match (&pred, &gt_canonical) {
            (Some(p), Some(gt)) => &p.formula == gt,
            _ => false,
        };
        out.push(BaselineCase {
            predicted: pred.is_some(),
            correct,
            complexity: gt_expr.as_ref().map(complexity).unwrap_or(0),
            ftype: gt_expr.as_ref().map(classify).unwrap_or(FormulaType::Other),
            latency_ms,
        });
    }
    out
}

/// Quality of a baseline run.
pub fn baseline_quality(results: &[BaselineCase]) -> Quality {
    quality(
        results.len(),
        results.iter().filter(|r| r.predicted).count(),
        results.iter().filter(|r| r.correct).count(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_formula::FormulaType;

    fn r(dist: Option<f32>, correct: bool) -> CaseResult {
        CaseResult {
            dist,
            correct,
            sheet_rows: 10,
            complexity: 2,
            ftype: FormulaType::Math,
            latency_ms: 1.0,
        }
    }

    #[test]
    fn af_quality_applies_theta() {
        let results =
            vec![r(Some(0.1), true), r(Some(0.5), true), r(Some(0.2), false), r(None, false)];
        let q = af_quality(&results, 0.3);
        assert_eq!(q.n, 4);
        assert_eq!(q.n_pred, 2, "0.5 is above θ");
        assert_eq!(q.n_hit, 1);
    }

    #[test]
    fn curve_points_skip_no_candidates() {
        let results = vec![r(Some(0.1), true), r(None, false)];
        assert_eq!(af_curve_points(&results).len(), 1);
    }
}
