//! Assembly of the full per-cell feature vector `γ(C) = γ_c(C) ⊕ γ_s(C)`
//! plus a validity flag for out-of-window cells (Fig. 5).

use crate::content::{syntactic_features, SYNTACTIC_DIM};
use crate::style_feat::{style_features, STYLE_DIM};
use crate::DynEmbedder;
use af_grid::{Cell, CellValue};

/// Feature-group switches for the ablation study of Fig. 13. Disabled
/// groups are zeroed (dimensionality stays constant so model shapes don't
/// change between ablation arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureMask {
    pub content: bool,
    pub style: bool,
}

impl Default for FeatureMask {
    fn default() -> Self {
        FeatureMask { content: true, style: true }
    }
}

impl FeatureMask {
    pub const FULL: FeatureMask = FeatureMask { content: true, style: true };
    pub const NO_CONTENT: FeatureMask = FeatureMask { content: false, style: true };
    pub const NO_STYLE: FeatureMask = FeatureMask { content: true, style: false };
}

/// Turns cells into dense feature vectors:
/// `[semantic (embedder.dim) | syntactic (16) | style (16) | valid (1)]`.
pub struct CellFeaturizer {
    embedder: DynEmbedder,
    mask: FeatureMask,
    /// Precomputed blank-cell features (hot paths borrow instead of
    /// re-deriving them per window slot).
    empty: Vec<f32>,
}

impl CellFeaturizer {
    pub fn new(embedder: DynEmbedder, mask: FeatureMask) -> CellFeaturizer {
        let mut f = CellFeaturizer { embedder, mask, empty: Vec::new() };
        let mut empty = vec![0.0; f.dim()];
        f.cell(&Cell::default(), &mut empty);
        f.empty = empty;
        f
    }

    /// Total feature dimensionality.
    pub fn dim(&self) -> usize {
        self.embedder.dim() + SYNTACTIC_DIM + STYLE_DIM + 1
    }

    pub fn embedder(&self) -> &DynEmbedder {
        &self.embedder
    }

    pub fn mask(&self) -> FeatureMask {
        self.mask
    }

    /// Featurize a stored cell into `out` (length `dim()`).
    pub fn cell(&self, cell: &Cell, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.dim());
        out.iter_mut().for_each(|v| *v = 0.0);
        let sem = self.embedder.dim();
        if self.mask.content {
            match &cell.value {
                CellValue::Text(s) => self.embedder.embed(s, &mut out[..sem]),
                CellValue::Empty => {}
                other => self.embedder.embed(&other.display(), &mut out[..sem]),
            }
            syntactic_features(&cell.value, &mut out[sem..sem + SYNTACTIC_DIM]);
        }
        if self.mask.style {
            style_features(
                &cell.style,
                &mut out[sem + SYNTACTIC_DIM..sem + SYNTACTIC_DIM + STYLE_DIM],
            );
        }
        out[self.dim() - 1] = 1.0; // valid, in-bounds
    }

    /// Featurize a batch of cells into a contiguous `[n, dim]` buffer —
    /// the single entry point batch consumers (sheet embedding, training
    /// batch assembly) funnel through before the dense kernels.
    pub fn cells_into<'a>(&self, cells: impl IntoIterator<Item = &'a Cell>, out: &mut [f32]) {
        let fd = self.dim();
        let mut used = 0usize;
        for (i, cell) in cells.into_iter().enumerate() {
            self.cell(cell, &mut out[i * fd..(i + 1) * fd]);
            used = i + 1;
        }
        debug_assert_eq!(out.len(), used * fd, "buffer length must match cell count");
    }

    /// The constant vector for an in-bounds blank cell.
    pub fn empty_cell(&self) -> Vec<f32> {
        self.empty.clone()
    }

    /// Borrowed view of [`CellFeaturizer::empty_cell`] (no allocation).
    pub fn empty_cell_ref(&self) -> &[f32] {
        &self.empty
    }

    /// The constant vector for an out-of-bounds (invalid) window slot:
    /// all-zero including the validity flag, so the models can tell
    /// "off-sheet" from "blank cell on sheet".
    pub fn invalid_cell(&self) -> Vec<f32> {
        vec![0.0; self.dim()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbert_sim::SbertSim;
    use af_grid::{CellStyle, Color};
    use std::sync::Arc;

    fn featurizer(mask: FeatureMask) -> CellFeaturizer {
        CellFeaturizer::new(Arc::new(SbertSim::new(32)), mask)
    }

    #[test]
    fn dims_add_up() {
        let f = featurizer(FeatureMask::FULL);
        assert_eq!(f.dim(), 32 + SYNTACTIC_DIM + STYLE_DIM + 1);
    }

    #[test]
    fn empty_vs_invalid_distinguished() {
        let f = featurizer(FeatureMask::FULL);
        let empty = f.empty_cell();
        let invalid = f.invalid_cell();
        assert_ne!(empty, invalid);
        assert_eq!(empty[f.dim() - 1], 1.0);
        assert_eq!(invalid[f.dim() - 1], 0.0);
    }

    #[test]
    fn text_cells_engage_semantic_block() {
        let f = featurizer(FeatureMask::FULL);
        let mut a = vec![0.0; f.dim()];
        let mut b = vec![0.0; f.dim()];
        f.cell(&Cell::new("Total"), &mut a);
        f.cell(&Cell::new("Brown"), &mut b);
        assert_ne!(&a[..32], &b[..32]);
    }

    #[test]
    fn no_content_mask_zeroes_content() {
        let f = featurizer(FeatureMask::NO_CONTENT);
        let mut a = vec![0.0; f.dim()];
        f.cell(&Cell::new("Total"), &mut a);
        assert!(a[..32 + SYNTACTIC_DIM].iter().all(|&v| v == 0.0));
        // Style block still present (default style has white fill = 1.0).
        assert_eq!(a[32 + SYNTACTIC_DIM], 1.0);
    }

    #[test]
    fn no_style_mask_zeroes_style() {
        let f = featurizer(FeatureMask::NO_STYLE);
        let mut a = vec![0.0; f.dim()];
        let style = CellStyle::header(Color::new(200, 30, 30));
        f.cell(&Cell::styled("Header", style), &mut a);
        let style_block = &a[32 + SYNTACTIC_DIM..32 + SYNTACTIC_DIM + STYLE_DIM];
        assert!(style_block.iter().all(|&v| v == 0.0));
        assert!(a[..32].iter().any(|&v| v != 0.0), "content survives");
    }

    #[test]
    fn numbers_embed_their_display_string() {
        let f = featurizer(FeatureMask::FULL);
        let mut a = vec![0.0; f.dim()];
        f.cell(&Cell::new(1234.0), &mut a);
        assert!(a[..32].iter().any(|&v| v != 0.0));
    }
}
