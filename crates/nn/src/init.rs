//! Deterministic weight initialization.

use rand::rngs::StdRng;
use rand::RngExt;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize, n: usize) -> Vec<f32> {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    (0..n).map(|_| rng.random_range(-a..a)).collect()
}

/// He/Kaiming uniform initialization for ReLU networks:
/// `U(-a, a)` with `a = sqrt(6 / fan_in)`.
pub fn he_uniform(rng: &mut StdRng, fan_in: usize, n: usize) -> Vec<f32> {
    let a = (6.0 / fan_in as f32).sqrt();
    (0..n).map(|_| rng.random_range(-a..a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(xavier_uniform(&mut a, 8, 4, 32), xavier_uniform(&mut b, 8, 4, 32));
    }

    #[test]
    fn values_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let bound = (6.0f32 / 12.0).sqrt();
        for v in xavier_uniform(&mut rng, 8, 4, 1000) {
            assert!(v.abs() <= bound);
        }
        let bound = (6.0f32 / 8.0).sqrt();
        for v in he_uniform(&mut rng, 8, 1000) {
            assert!(v.abs() <= bound);
        }
    }

    #[test]
    fn mean_roughly_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = xavier_uniform(&mut rng, 100, 100, 10_000);
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
    }
}
