//! Seeded Lloyd's k-means with k-means++ initialization (the coarse
//! quantizer behind [`crate::IvfFlatIndex`]).

use crate::metric::l2_sq;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Clustering output: centroids (row-major `k × dim`) and per-point
/// assignments.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Number of clusters.
    pub k: usize,
    /// Vector dimensionality.
    pub dim: usize,
    /// Centroid matrix, row-major `k × dim`.
    pub centroids: Vec<f32>,
    /// Cluster index of each training point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f32,
}

impl KMeansResult {
    /// Centroid `c` as a borrowed row.
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Index of the nearest centroid to `v`.
    pub fn nearest(&self, v: &[f32]) -> usize {
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for c in 0..self.k {
            let d = l2_sq(v, self.centroid(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }
}

/// Run k-means over `n` points of dimension `dim` stored row-major in
/// `data`. `k` is clamped to `n`. Deterministic for a fixed seed.
pub fn kmeans(data: &[f32], dim: usize, k: usize, max_iters: usize, seed: u64) -> KMeansResult {
    assert!(dim > 0);
    assert_eq!(data.len() % dim, 0);
    let n = data.len() / dim;
    assert!(n > 0, "cannot cluster an empty dataset");
    let k = k.clamp(1, n);
    let point = |i: usize| &data[i * dim..(i + 1) * dim];
    let mut rng = StdRng::seed_from_u64(seed);

    // --- k-means++ seeding ---
    let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
    let first = rng.random_range(0..n);
    centroids.extend_from_slice(point(first));
    let mut d2: Vec<f32> = (0..n).map(|i| l2_sq(point(i), &centroids[0..dim])).collect();
    while centroids.len() < k * dim {
        let total: f32 = d2.iter().sum();
        let pick = if total <= f32::EPSILON {
            rng.random_range(0..n)
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        let start = centroids.len();
        centroids.extend_from_slice(point(pick));
        let new_c = centroids[start..start + dim].to_vec();
        for (i, best) in d2.iter_mut().enumerate() {
            let d = l2_sq(point(i), &new_c);
            if d < *best {
                *best = d;
            }
        }
    }

    // --- Lloyd iterations ---
    let mut assignments = vec![0usize; n];
    let mut inertia = f32::INFINITY;
    for _ in 0..max_iters {
        // Assign.
        let mut new_inertia = 0.0f32;
        let mut changed = false;
        for (i, assignment) in assignments.iter_mut().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = l2_sq(point(i), &centroids[c * dim..(c + 1) * dim]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if *assignment != best {
                *assignment = best;
                changed = true;
            }
            new_inertia += best_d;
        }
        inertia = new_inertia;
        if !changed {
            break;
        }
        // Update.
        let mut sums = vec![0.0f32; k * dim];
        let mut counts = vec![0usize; k];
        for (i, &c) in assignments.iter().enumerate() {
            counts[c] += 1;
            let p = point(i);
            for d in 0..dim {
                sums[c * dim + d] += p[d];
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with a random point.
                let i = rng.random_range(0..n);
                centroids[c * dim..(c + 1) * dim].copy_from_slice(point(i));
            } else {
                let inv = 1.0 / counts[c] as f32;
                for d in 0..dim {
                    centroids[c * dim + d] = sums[c * dim + d] * inv;
                }
            }
        }
    }
    KMeansResult { k, dim, centroids, assignments, inertia }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2-D.
    fn blobs() -> Vec<f32> {
        let mut data = Vec::new();
        let centers = [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)];
        let mut state = 3u64;
        let mut jitter = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        for &(cx, cy) in &centers {
            for _ in 0..30 {
                data.push(cx + jitter() * 0.5);
                data.push(cy + jitter() * 0.5);
            }
        }
        data
    }

    #[test]
    fn separates_blobs() {
        let data = blobs();
        let r = kmeans(&data, 2, 3, 20, 42);
        // All points of one blob share an assignment.
        for blob in 0..3 {
            let first = r.assignments[blob * 30];
            for i in 0..30 {
                assert_eq!(r.assignments[blob * 30 + i], first, "blob {blob} split");
            }
        }
        assert!(r.inertia < 60.0, "inertia {}", r.inertia);
    }

    #[test]
    fn deterministic() {
        let data = blobs();
        let a = kmeans(&data, 2, 3, 20, 7);
        let b = kmeans(&data, 2, 3, 20, 7);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_clamped_to_n() {
        let data = vec![0.0, 0.0, 1.0, 1.0];
        let r = kmeans(&data, 2, 10, 5, 1);
        assert_eq!(r.k, 2);
    }

    #[test]
    fn nearest_matches_assignment() {
        let data = blobs();
        let r = kmeans(&data, 2, 3, 20, 42);
        for i in 0..data.len() / 2 {
            let p = &data[i * 2..i * 2 + 2];
            assert_eq!(r.nearest(p), r.assignments[i]);
        }
    }

    #[test]
    fn identical_points_are_fine() {
        let data = vec![1.0f32; 20]; // 10 identical 2-D points
        let r = kmeans(&data, 2, 3, 10, 9);
        assert!(r.inertia < 1e-6);
    }
}
