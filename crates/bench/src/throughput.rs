//! Throughput measurement: the perf-trajectory baseline every PR records.
//!
//! Measures three hot paths end to end at the current `AF_SCALE`:
//! * **train steps/sec** — contrastive training episodes (one coarse + one
//!   fine triplet step each) over the web-crawl universe;
//! * **sheets embedded/sec** — [`SheetEmbedder::embed_sheet`] over a test
//!   organization's sheets;
//! * **queries/sec** (plus p50 latency) — full S1→S3 `predict` calls
//!   against a built reference index.
//!
//! Results are written to `BENCH_throughput.json`. The file keeps a
//! `before` block (the committed pre-optimization baseline) and an `after`
//! block (the latest run on this machine), so regressions against the
//! recorded trajectory are visible in every run.

use af_core::embedder::SheetEmbedder;
use af_core::index::IndexOptions;
use af_core::pipeline::AutoFormula;
use af_core::training::{train_model, TrainingOptions};
use af_core::AutoFormulaConfig;
use af_corpus::organization::{OrgSpec, Scale};
use af_embed::{CellFeaturizer, FeatureMask, SbertSim};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Episodes measured by the training probe (a rate is reported, so this
/// only needs to be large enough to amortize setup noise).
const TRAIN_EPISODES: usize = 48;
/// Rounds over the organization's sheets for the embedding probe.
const EMBED_ROUNDS: usize = 3;
/// Cap on predict targets for the query probe.
const MAX_QUERIES: usize = 40;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    pub scale: &'static str,
    pub threads: usize,
    pub train_steps_per_sec: f64,
    pub train_seconds: f64,
    pub train_episodes: usize,
    pub sheets_embedded_per_sec: f64,
    pub sheets_embedded: usize,
    pub queries_per_sec: f64,
    pub predict_p50_ms: f64,
    pub queries: usize,
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Run all three probes at the `AF_SCALE` scale.
pub fn measure() -> ThroughputReport {
    let scale = Scale::from_env();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    // ---- training probe ----
    let universe = OrgSpec::web_crawl(scale).generate();
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(64)), FeatureMask::FULL);
    let cfg = AutoFormulaConfig { episodes: TRAIN_EPISODES, ..AutoFormulaConfig::default() };
    let (model, train_report) =
        train_model(&universe.workbooks, &featurizer, cfg, TrainingOptions::default());
    // Each episode is one coarse and one fine triplet step.
    let train_steps = 2 * train_report.episodes;
    let train_steps_per_sec = train_steps as f64 / train_report.seconds.max(1e-9);

    // ---- embedding probe ----
    let org = OrgSpec::pge(scale).generate();
    let embedder = SheetEmbedder::new(&model, &featurizer);
    let mut sheets_embedded = 0usize;
    let embed_started = Instant::now();
    for _ in 0..EMBED_ROUNDS {
        for wb in &org.workbooks {
            for sheet in &wb.sheets {
                let emb = embedder.embed_sheet(sheet, false);
                std::hint::black_box(&emb);
                sheets_embedded += 1;
            }
        }
    }
    let embed_seconds = embed_started.elapsed().as_secs_f64();

    // ---- query probe ----
    let af = AutoFormula::from_model(model, featurizer);
    // Reference index over all but the last workbook; query the holdout.
    let n_wb = org.workbooks.len();
    let members: Vec<usize> = (0..n_wb.saturating_sub(1)).collect();
    let index = af.build_index(&org.workbooks, &members, IndexOptions::default());
    let holdout = n_wb - 1;
    let targets: Vec<(usize, af_grid::CellRef)> = org.workbooks[holdout]
        .sheets
        .iter()
        .enumerate()
        .flat_map(|(si, s)| s.formulas().map(move |(at, _)| (si, at)))
        .take(MAX_QUERIES)
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(targets.len());
    let query_started = Instant::now();
    for &(si, at) in &targets {
        let sheet = &org.workbooks[holdout].sheets[si];
        let q = Instant::now();
        let pred = af.predict_with(&index, sheet, at, af_core::pipeline::PipelineVariant::Full);
        std::hint::black_box(&pred);
        latencies_ms.push(q.elapsed().as_secs_f64() * 1e3);
    }
    let query_seconds = query_started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    // Shared nearest-rank percentile (af-obs); for p50 the rounded rank
    // `round(0.5·(n-1))` equals the old `n/2` index at every n.
    let p50 = af_obs::percentile(&latencies_ms, 0.5);

    ThroughputReport {
        scale: scale_name(scale),
        threads,
        train_steps_per_sec,
        train_seconds: train_report.seconds,
        train_episodes: train_report.episodes,
        sheets_embedded_per_sec: sheets_embedded as f64 / embed_seconds.max(1e-9),
        sheets_embedded,
        queries_per_sec: targets.len() as f64 / query_seconds.max(1e-9),
        predict_p50_ms: p50,
        queries: targets.len(),
    }
}

/// Serialize one report as a JSON object (hand-rolled: the workspace has no
/// serde and the schema is flat). The scale is recorded *inside* each block
/// so before/after are never silently compared across corpus sizes.
pub fn to_json_object(r: &ThroughputReport) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"scale\": \"{}\",\n",
            "    \"threads\": {},\n",
            "    \"train_steps_per_sec\": {:.2},\n",
            "    \"train_seconds\": {:.3},\n",
            "    \"train_episodes\": {},\n",
            "    \"sheets_embedded_per_sec\": {:.2},\n",
            "    \"sheets_embedded\": {},\n",
            "    \"queries_per_sec\": {:.2},\n",
            "    \"predict_p50_ms\": {:.3},\n",
            "    \"queries\": {}\n",
            "  }}"
        ),
        r.scale,
        r.threads,
        r.train_steps_per_sec,
        r.train_seconds,
        r.train_episodes,
        r.sheets_embedded_per_sec,
        r.sheets_embedded,
        r.queries_per_sec,
        r.predict_p50_ms,
        r.queries,
    )
}

/// Extract the JSON object bound to `key` in `json` (brace matching; no
/// string escapes occur in this schema).
fn extract_object(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let open = json[start..].find('{')? + start;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Write `BENCH_throughput.json`. The first run at a given `AF_SCALE`
/// records the `before` block; later runs at the *same scale* keep that
/// `before` and update `after`. A run at a different scale starts a fresh
/// baseline instead — before/after from different corpus sizes must never
/// be compared.
pub fn write_json(report: &ThroughputReport, path: &Path) {
    let current = to_json_object(report);
    let before = std::fs::read_to_string(path)
        .ok()
        .and_then(|existing| extract_object(&existing, "before"))
        // Only reuse a baseline measured at the same scale.
        .filter(|b| b.contains(&format!("\"scale\": \"{}\"", report.scale)));
    let body = match before {
        Some(b) => format!(
            "{{\n  \"experiment\": \"throughput\",\n  \"before\": {b},\n  \"after\": {current}\n}}\n",
        ),
        None => format!("{{\n  \"experiment\": \"throughput\",\n  \"before\": {current}\n}}\n"),
    };
    std::fs::write(path, body).expect("write BENCH_throughput.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(v: f64) -> ThroughputReport {
        dummy_at("tiny", v)
    }

    fn dummy_at(scale: &'static str, v: f64) -> ThroughputReport {
        ThroughputReport {
            scale,
            threads: 1,
            train_steps_per_sec: v,
            train_seconds: 1.0,
            train_episodes: 4,
            sheets_embedded_per_sec: v,
            sheets_embedded: 10,
            queries_per_sec: v,
            predict_p50_ms: 1.5,
            queries: 5,
        }
    }

    #[test]
    fn json_round_trip_keeps_before_block() {
        let dir = std::env::temp_dir().join("af_bench_throughput_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_throughput.json");
        let _ = std::fs::remove_file(&path);
        write_json(&dummy(10.0), &path);
        let first = std::fs::read_to_string(&path).unwrap();
        assert!(first.contains("\"before\""));
        assert!(!first.contains("\"after\""));
        write_json(&dummy(30.0), &path);
        let second = std::fs::read_to_string(&path).unwrap();
        assert!(second.contains("\"before\""));
        assert!(second.contains("\"after\""));
        // The before block keeps the original measurement.
        let before = extract_object(&second, "before").unwrap();
        assert!(before.contains("10.00"));
        let after = extract_object(&second, "after").unwrap();
        assert!(after.contains("30.00"));
        // A run at a different scale must NOT inherit the baseline:
        // cross-scale before/after comparisons are meaningless.
        write_json(&dummy_at("small", 99.0), &path);
        let third = std::fs::read_to_string(&path).unwrap();
        let before = extract_object(&third, "before").unwrap();
        assert!(before.contains("99.00") && before.contains("\"scale\": \"small\""));
        assert!(extract_object(&third, "after").is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn extract_object_handles_nesting() {
        let json = r#"{"a": {"x": {"y": 1}}, "b": {"z": 2}}"#;
        assert_eq!(extract_object(json, "b").unwrap(), r#"{"z": 2}"#);
        assert_eq!(extract_object(json, "a").unwrap(), r#"{"x": {"y": 1}}"#);
        assert!(extract_object(json, "c").is_none());
    }
}
