//! Run configuration for [`crate::proptest!`] blocks.

/// Mirrors the fields of upstream's `ProptestConfig` that this workspace
/// uses. `seed` has no upstream analogue: cases here are derived
/// deterministically from it, so every run (local or CI) exercises the same
/// inputs and failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed for the deterministic per-case RNG streams.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, seed: 0xA5F0_5EED }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}
