//! Test-case sampling (§5.1): from each test workbook, sample at most 10
//! formulas "to avoid over-representation, as some spreadsheets can have
//! large (thousands) of formulas".

use crate::organization::OrgCorpus;
use crate::split::Split;
use af_grid::{CellRef, Sheet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One formula-prediction task: predict the formula at `target` on the
/// given sheet, whose ground truth is recorded (and must be masked before
/// prediction — see [`masked_sheet`]).
#[derive(Debug, Clone)]
pub struct TestCase {
    pub workbook: usize,
    pub sheet: usize,
    pub target: CellRef,
    /// Ground-truth formula source (without `=`).
    pub ground_truth: String,
}

/// Sample test cases from the test side of a split.
pub fn sample_test_cases(
    corpus: &OrgCorpus,
    split: &Split,
    max_per_sheet: usize,
    seed: u64,
) -> Vec<TestCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for &wi in &split.test {
        for (si, sheet) in corpus.workbooks[wi].sheets.iter().enumerate() {
            let mut formulas: Vec<(CellRef, String)> =
                sheet.formulas().map(|(at, f)| (at, f.to_string())).collect();
            formulas.sort_by_key(|(at, _)| *at);
            // Deterministic subsample.
            for i in (1..formulas.len()).rev() {
                let j = rng.random_range(0..=i);
                formulas.swap(i, j);
            }
            formulas.truncate(max_per_sheet);
            for (target, ground_truth) in formulas {
                out.push(TestCase { workbook: wi, sheet: si, target, ground_truth });
            }
        }
    }
    out
}

/// The target sheet as the user would see it *before* authoring the target
/// formula: the target cell is blanked (value and formula removed, style
/// kept — the cell may be pre-styled by the template).
pub fn masked_sheet(sheet: &Sheet, target: CellRef) -> Sheet {
    let mut s = sheet.clone();
    if let Some(cell) = s.get_mut(target) {
        cell.formula = None;
        cell.value = af_grid::CellValue::Empty;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::{OrgSpec, Scale};
    use crate::split::{split, SplitKind};

    #[test]
    fn sampling_respects_cap_and_split() {
        let corpus = OrgSpec::pge(Scale::Tiny).generate();
        let sp = split(&corpus, SplitKind::Timestamp, 0.1, 0);
        let cases = sample_test_cases(&corpus, &sp, 10, 1);
        assert!(!cases.is_empty());
        for tc in &cases {
            assert!(sp.test.contains(&tc.workbook), "cases come from test workbooks");
            let sheet = &corpus.workbooks[tc.workbook].sheets[tc.sheet];
            assert_eq!(
                sheet.get(tc.target).and_then(|c| c.formula.as_deref()),
                Some(tc.ground_truth.as_str())
            );
        }
        // Cap: no sheet contributes more than 10.
        use std::collections::HashMap;
        let mut per_sheet: HashMap<(usize, usize), usize> = HashMap::new();
        for tc in &cases {
            *per_sheet.entry((tc.workbook, tc.sheet)).or_insert(0) += 1;
        }
        assert!(per_sheet.values().all(|&c| c <= 10));
    }

    #[test]
    fn masking_clears_only_the_target() {
        let corpus = OrgSpec::ti(Scale::Tiny).generate();
        let sp = split(&corpus, SplitKind::Random, 0.1, 2);
        let cases = sample_test_cases(&corpus, &sp, 5, 3);
        let tc = &cases[0];
        let sheet = &corpus.workbooks[tc.workbook].sheets[tc.sheet];
        let masked = masked_sheet(sheet, tc.target);
        assert!(masked.get(tc.target).map(|c| c.formula.is_none()).unwrap_or(true));
        assert_eq!(masked.formula_count(), sheet.formula_count() - 1);
    }

    #[test]
    fn sampling_is_deterministic() {
        let corpus = OrgSpec::cisco(Scale::Tiny).generate();
        let sp = split(&corpus, SplitKind::Timestamp, 0.1, 0);
        let a = sample_test_cases(&corpus, &sp, 10, 9);
        let b = sample_test_cases(&corpus, &sp, 10, 9);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.target == y.target && x.workbook == y.workbook));
    }
}
