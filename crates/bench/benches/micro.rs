//! Criterion micro-benchmarks for the performance-critical kernels behind
//! the paper's latency claims (Fig. 8): formula parsing, window
//! featurization, ANN queries, Mondrian's hand-crafted matching, and the
//! full online prediction path.

use af_ann::{FlatIndex, HnswIndex, HnswParams, VectorIndex};
use af_baselines::mondrian::{detect_regions, sheet_distance};
use af_core::features::{raw_window, WindowOrigin};
use af_core::index::IndexOptions;
use af_core::pipeline::{AutoFormula, PipelineVariant};
use af_core::{AutoFormulaConfig, TrainingOptions};
use af_corpus::organization::{OrgSpec, Scale};
use af_corpus::split::{split, SplitKind};
use af_corpus::testcase::{masked_sheet, sample_test_cases};
use af_embed::{CellFeaturizer, FeatureMask, SbertSim};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_parse(c: &mut Criterion) {
    let formulas = [
        "COUNTIF(C7:C37,C41)",
        "IF(SUM(A1:A9)>100,\"big\",LEFT(B1,3)&\"-\"&RIGHT(B2,2))",
        "VLOOKUP(A2,$D$1:$E$9,2,FALSE)*ROUND(B2/C2,2)",
    ];
    c.bench_function("formula_parse", |b| {
        b.iter(|| {
            for f in &formulas {
                black_box(af_formula::parse(black_box(f)).unwrap());
            }
        })
    });
}

fn bench_featurize(c: &mut Criterion) {
    let corpus = OrgSpec::pge(Scale::Tiny).generate();
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(64)), FeatureMask::FULL);
    let sheet = &corpus.workbooks[0].sheets[0];
    let window = af_grid::ViewWindow::new(40, 8);
    c.bench_function("window_featurize_40x8", |b| {
        b.iter(|| {
            black_box(raw_window(&featurizer, black_box(sheet), window, WindowOrigin::TopLeft))
        })
    });
}

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    };
    (0..n * dim).map(|_| next()).collect()
}

fn bench_ann(c: &mut Criterion) {
    let dim = 64;
    let n = 10_000;
    let data = random_vectors(n, dim, 7);
    let flat = FlatIndex::from_vectors(dim, data.chunks(dim).map(|v| v.to_vec()));
    let hnsw = HnswIndex::build(&data, dim, HnswParams::default());
    let query = random_vectors(1, dim, 9);
    c.bench_function("ann_flat_10k_top5", |b| {
        b.iter(|| black_box(flat.search(black_box(&query), 5)))
    });
    c.bench_function("ann_hnsw_10k_top5", |b| {
        b.iter(|| black_box(hnsw.search(black_box(&query), 5)))
    });
}

fn bench_mondrian(c: &mut Criterion) {
    let corpus = OrgSpec::pge(Scale::Tiny).generate();
    let a = detect_regions(&corpus.workbooks[0].sheets[0]);
    let b2 = detect_regions(&corpus.workbooks[1].sheets[0]);
    c.bench_function("mondrian_sheet_distance", |b| {
        b.iter(|| black_box(sheet_distance(black_box(&a), black_box(&b2))))
    });
}

fn bench_predict(c: &mut Criterion) {
    // A tiny trained system: the end-to-end S1→S2→S3 latency kernel.
    let corpus = OrgSpec::pge(Scale::Tiny).generate();
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
    let cfg = AutoFormulaConfig { episodes: 30, ..AutoFormulaConfig::test_tiny() };
    let (af, _) =
        AutoFormula::train(&corpus.workbooks, featurizer, cfg, TrainingOptions::default());
    let sp = split(&corpus, SplitKind::Random, 0.1, 1);
    let index = af.build_index(&corpus.workbooks, &sp.reference, IndexOptions::default());
    let cases = sample_test_cases(&corpus, &sp, 3, 2);
    let tc = &cases[0];
    let sheet = &corpus.workbooks[tc.workbook].sheets[tc.sheet];
    let masked = masked_sheet(sheet, tc.target);
    c.bench_function("autoformula_predict_e2e", |b| {
        b.iter(|| {
            black_box(af.predict_with(&index, black_box(&masked), tc.target, PipelineVariant::Full))
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parse, bench_featurize, bench_ann, bench_mondrian, bench_predict
}
criterion_main!(benches);
