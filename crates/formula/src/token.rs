//! Lexer for spreadsheet formulas.
//!
//! Cell references look like identifiers (`C41`), so the lexer emits a
//! single `Ident` token class for words (which may contain `$` markers); the
//! parser decides whether an identifier is a function name (followed by
//! `(`), a cell reference, or a boolean literal.

use std::fmt;

/// A lexical token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Number(f64),
    /// A double-quoted string literal (quotes stripped, `""` unescaped).
    Str(String),
    /// A word: function name, cell reference (possibly with `$`), or
    /// boolean literal.
    Ident(String),
    LParen,
    RParen,
    Comma,
    Colon,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    Ampersand,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Colon => f.write_str(":"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Caret => f.write_str("^"),
            TokenKind::Ampersand => f.write_str("&"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::Ne => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
        }
    }
}

/// Lexing failure: an unexpected character or unterminated string.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a formula body (no leading `=`).
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::with_capacity(src.len() / 2 + 1);
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let pos = i;
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'(' => {
                i += 1;
                TokenKind::LParen
            }
            b')' => {
                i += 1;
                TokenKind::RParen
            }
            b',' | b';' => {
                // Some locales use `;` as the argument separator.
                i += 1;
                TokenKind::Comma
            }
            b':' => {
                i += 1;
                TokenKind::Colon
            }
            b'+' => {
                i += 1;
                TokenKind::Plus
            }
            b'-' => {
                i += 1;
                TokenKind::Minus
            }
            b'*' => {
                i += 1;
                TokenKind::Star
            }
            b'/' => {
                i += 1;
                TokenKind::Slash
            }
            b'^' => {
                i += 1;
                TokenKind::Caret
            }
            b'&' => {
                i += 1;
                TokenKind::Ampersand
            }
            b'%' => {
                i += 1;
                TokenKind::Percent
            }
            b'=' => {
                i += 1;
                TokenKind::Eq
            }
            b'<' => {
                i += 1;
                match bytes.get(i) {
                    Some(b'=') => {
                        i += 1;
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        i += 1;
                        TokenKind::Ne
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                i += 1;
                if bytes.get(i) == Some(&b'=') {
                    i += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(b'"') if bytes.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            // Multi-byte UTF-8: copy the full scalar.
                            let ch_len = utf8_len(c);
                            s.push_str(&src[i..i + ch_len]);
                            i += ch_len;
                        }
                        None => {
                            return Err(LexError {
                                pos,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                TokenKind::Str(s)
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Exponent part (1E5, 2.5e-3).
                if i < bytes.len() && (bytes[i] | 0x20) == b'e' {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let n: f64 = text.parse().map_err(|_| LexError {
                    pos,
                    message: format!("bad number literal {text:?}"),
                })?;
                TokenKind::Number(n)
            }
            b'$' | b'_' => {
                i += 1;
                let start = pos;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'$'
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                TokenKind::Ident(src[start..i].to_string())
            }
            c if c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'$'
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                TokenKind::Ident(src[start..i].to_string())
            }
            other => {
                return Err(LexError {
                    pos,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        };
        tokens.push(Token { kind, pos });
    }
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn paper_formula_tokens() {
        let k = kinds("COUNTIF(C7:C37,C41)");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("COUNTIF".into()),
                TokenKind::LParen,
                TokenKind::Ident("C7".into()),
                TokenKind::Colon,
                TokenKind::Ident("C37".into()),
                TokenKind::Comma,
                TokenKind::Ident("C41".into()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("1"), vec![TokenKind::Number(1.0)]);
        assert_eq!(kinds("3.25"), vec![TokenKind::Number(3.25)]);
        assert_eq!(kinds("2.5e-3"), vec![TokenKind::Number(0.0025)]);
        assert_eq!(kinds("1E5"), vec![TokenKind::Number(100000.0)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5)]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("\"hi\""), vec![TokenKind::Str("hi".into())]);
        assert_eq!(kinds("\"a\"\"b\""), vec![TokenKind::Str("a\"b".into())]);
        assert!(tokenize("\"open").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("A1<>B2"),
            vec![TokenKind::Ident("A1".into()), TokenKind::Ne, TokenKind::Ident("B2".into())]
        );
        assert_eq!(kinds("<=")[0], TokenKind::Le);
        assert_eq!(kinds(">=")[0], TokenKind::Ge);
    }

    #[test]
    fn absolute_refs_lex_as_single_ident() {
        assert_eq!(kinds("$C$41"), vec![TokenKind::Ident("$C$41".into())]);
    }

    #[test]
    fn semicolon_is_argument_separator() {
        assert_eq!(kinds(";"), vec![TokenKind::Comma]);
    }

    #[test]
    fn whitespace_skipped() {
        assert_eq!(kinds(" 1 + 2 ").len(), 3);
    }

    #[test]
    fn unexpected_char_errors() {
        let err = tokenize("1 # 2").unwrap_err();
        assert_eq!(err.pos, 2);
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("\"héllo✓\""), vec![TokenKind::Str("héllo✓".into())]);
    }
}
