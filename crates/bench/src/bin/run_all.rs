//! Thin CLI wrapper: regenerates run_all (see DESIGN.md's per-experiment
//! index). `AF_SCALE={tiny,small,full}` scales the synthetic corpora.

fn main() {
    af_bench::report::run_experiment(
        "run_all",
        "every table and figure of section 5, in paper order",
        af_bench::experiments::run_all,
    );
}
