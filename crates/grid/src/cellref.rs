//! Cell and range references in A1 notation.
//!
//! `CellRef` is a plain zero-based (row, col) coordinate; `A1Ref` adds the
//! `$` absolute markers that appear inside formulas; `RangeRef` is a
//! normalized rectangular range such as `C7:C37`.

use std::fmt;
use std::str::FromStr;

/// A zero-based cell coordinate. `C41` in a spreadsheet UI is
/// `CellRef { row: 40, col: 2 }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellRef {
    pub row: u32,
    pub col: u32,
}

impl CellRef {
    pub const fn new(row: u32, col: u32) -> Self {
        CellRef { row, col }
    }

    /// Offset by a signed delta, returning `None` when the result would fall
    /// off the top/left edge of the sheet.
    pub fn offset(&self, drow: i64, dcol: i64) -> Option<CellRef> {
        let row = self.row as i64 + drow;
        let col = self.col as i64 + dcol;
        if row < 0 || col < 0 || row > u32::MAX as i64 || col > u32::MAX as i64 {
            None
        } else {
            Some(CellRef::new(row as u32, col as u32))
        }
    }

    /// Render the column index in spreadsheet letters (0 → `A`, 25 → `Z`,
    /// 26 → `AA`).
    pub fn col_letters(col: u32) -> String {
        let mut n = col as u64 + 1;
        let mut out = Vec::new();
        while n > 0 {
            let rem = ((n - 1) % 26) as u8;
            out.push(b'A' + rem);
            n = (n - 1) / 26;
        }
        out.reverse();
        String::from_utf8(out).expect("ASCII letters")
    }

    /// Parse spreadsheet column letters (`A` → 0, `AA` → 26). Returns `None`
    /// for empty or non-alphabetic input.
    pub fn parse_col_letters(s: &str) -> Option<u32> {
        if s.is_empty() {
            return None;
        }
        let mut n: u64 = 0;
        for ch in s.chars() {
            let ch = ch.to_ascii_uppercase();
            if !ch.is_ascii_uppercase() {
                return None;
            }
            n = n * 26 + (ch as u64 - 'A' as u64 + 1);
            if n > u32::MAX as u64 {
                return None;
            }
        }
        Some((n - 1) as u32)
    }
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", CellRef::col_letters(self.col), self.row + 1)
    }
}

impl FromStr for CellRef {
    type Err = RefParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let a1: A1Ref = s.parse()?;
        Ok(a1.cell)
    }
}

/// Error returned when an A1 reference cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefParseError {
    pub input: String,
}

impl fmt::Display for RefParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid A1 reference: {:?}", self.input)
    }
}

impl std::error::Error for RefParseError {}

/// A cell reference as written inside a formula, with `$` absolute markers.
/// `$C$41` pins both axes; plain `C41` is fully relative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct A1Ref {
    pub cell: CellRef,
    pub abs_col: bool,
    pub abs_row: bool,
}

impl A1Ref {
    pub const fn relative(cell: CellRef) -> Self {
        A1Ref { cell, abs_col: false, abs_row: false }
    }

    pub const fn absolute(cell: CellRef) -> Self {
        A1Ref { cell, abs_col: true, abs_row: true }
    }
}

impl fmt::Display for A1Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.abs_col {
            f.write_str("$")?;
        }
        f.write_str(&CellRef::col_letters(self.cell.col))?;
        if self.abs_row {
            f.write_str("$")?;
        }
        write!(f, "{}", self.cell.row + 1)
    }
}

impl FromStr for A1Ref {
    type Err = RefParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || RefParseError { input: s.to_string() };
        let bytes = s.as_bytes();
        let mut i = 0;
        let abs_col = bytes.first() == Some(&b'$');
        if abs_col {
            i += 1;
        }
        let col_start = i;
        while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
            i += 1;
        }
        if i == col_start {
            return Err(err());
        }
        let col = CellRef::parse_col_letters(&s[col_start..i]).ok_or_else(err)?;
        let abs_row = bytes.get(i) == Some(&b'$');
        if abs_row {
            i += 1;
        }
        let row_start = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        if i == row_start || i != bytes.len() {
            return Err(err());
        }
        let row: u32 = s[row_start..i].parse().map_err(|_| err())?;
        if row == 0 {
            return Err(err());
        }
        Ok(A1Ref { cell: CellRef::new(row - 1, col), abs_col, abs_row })
    }
}

/// A normalized rectangular range (`start` is the top-left corner, `end` the
/// bottom-right, both inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RangeRef {
    pub start: CellRef,
    pub end: CellRef,
}

impl RangeRef {
    /// Build a range from two corners in any order; the result is normalized.
    pub fn new(a: CellRef, b: CellRef) -> Self {
        RangeRef {
            start: CellRef::new(a.row.min(b.row), a.col.min(b.col)),
            end: CellRef::new(a.row.max(b.row), a.col.max(b.col)),
        }
    }

    pub fn single(cell: CellRef) -> Self {
        RangeRef { start: cell, end: cell }
    }

    pub fn rows(&self) -> u32 {
        self.end.row - self.start.row + 1
    }

    pub fn cols(&self) -> u32 {
        self.end.col - self.start.col + 1
    }

    pub fn len(&self) -> u64 {
        self.rows() as u64 * self.cols() as u64
    }

    pub fn is_empty(&self) -> bool {
        false // a normalized range always covers at least one cell
    }

    pub fn contains(&self, cell: CellRef) -> bool {
        cell.row >= self.start.row
            && cell.row <= self.end.row
            && cell.col >= self.start.col
            && cell.col <= self.end.col
    }

    /// Iterate all cells in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = CellRef> + '_ {
        let (r0, r1) = (self.start.row, self.end.row);
        let (c0, c1) = (self.start.col, self.end.col);
        (r0..=r1).flat_map(move |r| (c0..=c1).map(move |c| CellRef::new(r, c)))
    }
}

impl fmt::Display for RangeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "{}", self.start)
        } else {
            write!(f, "{}:{}", self.start, self.end)
        }
    }
}

impl FromStr for RangeRef {
    type Err = RefParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once(':') {
            Some((a, b)) => {
                let a: A1Ref = a.parse()?;
                let b: A1Ref = b.parse()?;
                Ok(RangeRef::new(a.cell, b.cell))
            }
            None => {
                let a: A1Ref = s.parse()?;
                Ok(RangeRef::single(a.cell))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_letters_round_trip() {
        for col in [0u32, 1, 25, 26, 27, 51, 52, 701, 702, 703, 16383] {
            let s = CellRef::col_letters(col);
            assert_eq!(CellRef::parse_col_letters(&s), Some(col), "col {col} -> {s}");
        }
        assert_eq!(CellRef::col_letters(0), "A");
        assert_eq!(CellRef::col_letters(25), "Z");
        assert_eq!(CellRef::col_letters(26), "AA");
        assert_eq!(CellRef::col_letters(701), "ZZ");
        assert_eq!(CellRef::col_letters(702), "AAA");
    }

    #[test]
    fn paper_example_refs() {
        let d41: CellRef = "D41".parse().unwrap();
        assert_eq!(d41, CellRef::new(40, 3));
        let c7: CellRef = "C7".parse().unwrap();
        assert_eq!(c7, CellRef::new(6, 2));
        assert_eq!(d41.to_string(), "D41");
    }

    #[test]
    fn absolute_markers() {
        let r: A1Ref = "$C$41".parse().unwrap();
        assert!(r.abs_col && r.abs_row);
        assert_eq!(r.to_string(), "$C$41");
        let r: A1Ref = "C$41".parse().unwrap();
        assert!(!r.abs_col && r.abs_row);
        assert_eq!(r.to_string(), "C$41");
        let r: A1Ref = "$C41".parse().unwrap();
        assert!(r.abs_col && !r.abs_row);
    }

    #[test]
    fn bad_refs_rejected() {
        for bad in ["", "41", "C", "C0", "C-1", "1C", "C41X", "$", "C$"] {
            assert!(bad.parse::<A1Ref>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn range_normalizes_and_contains() {
        let r: RangeRef = "C37:C7".parse().unwrap();
        assert_eq!(r.start, CellRef::new(6, 2));
        assert_eq!(r.end, CellRef::new(36, 2));
        assert_eq!(r.to_string(), "C7:C37");
        assert_eq!(r.len(), 31);
        assert!(r.contains("C20".parse().unwrap()));
        assert!(!r.contains("D20".parse().unwrap()));
    }

    #[test]
    fn range_cells_row_major() {
        let r: RangeRef = "A1:B2".parse().unwrap();
        let cells: Vec<String> = r.cells().map(|c| c.to_string()).collect();
        assert_eq!(cells, ["A1", "B1", "A2", "B2"]);
    }

    #[test]
    fn offset_clamps_at_origin() {
        let c = CellRef::new(0, 0);
        assert_eq!(c.offset(-1, 0), None);
        assert_eq!(c.offset(0, -1), None);
        assert_eq!(c.offset(3, 2), Some(CellRef::new(3, 2)));
    }

    #[test]
    fn lowercase_accepted() {
        let r: CellRef = "c41".parse().unwrap();
        assert_eq!(r, CellRef::new(40, 2));
    }
}
