//! One function per table/figure of §5. Each prints the same rows/series
//! the paper reports (absolute numbers differ — synthetic corpora and
//! simulated substrates — but the qualitative shape must hold; see
//! EXPERIMENTS.md for the paper-vs-measured record).

use crate::metrics::{pr_curve, quality};
use crate::report::{f2, f3, print_table};
use crate::runner::{
    af_curve_points, af_quality, baseline_quality, evaluate_autoformula, evaluate_baseline,
    org_cases, BaselineCase, CaseResult,
};
use crate::scenario::{EmbedderKind, Scenario, SystemSpec};
use af_baselines::gpt::{GptSim, PromptConfig};
use af_baselines::{
    Baseline, MondrianBaseline, PredictionContext, SpreadsheetCoderSim, WeakSupBaseline,
};
use af_core::index::IndexOptions;
use af_core::pipeline::{AutoFormula, PipelineVariant};
use af_corpus::organization::{OrgSpec, Scale};
use af_corpus::split::{split, Split, SplitKind};
use af_corpus::testcase::{masked_sheet, TestCase};
use af_corpus::weak_supervision::{label_precision, sheet_pairs, NameModel};
use af_embed::FeatureMask;
use std::time::{Duration, Instant};

/// Operating threshold θ* used by the single-number tables (the PR curves
/// sweep it). Overridable via `AF_THETA`.
pub fn operating_theta() -> f32 {
    std::env::var("AF_THETA").ok().and_then(|v| v.parse().ok()).unwrap_or(0.7)
}

fn mondrian_budget() -> Duration {
    let secs =
        std::env::var("AF_MONDRIAN_BUDGET").ok().and_then(|v| v.parse().ok()).unwrap_or(90u64);
    Duration::from_secs(secs)
}

/// Evaluate the full Auto-Formula system over every org under one split.
pub struct OrgEval {
    pub org: String,
    pub split: Split,
    pub cases: Vec<TestCase>,
    pub results: Vec<CaseResult>,
}

pub fn eval_orgs(
    scenario: &Scenario,
    af: &AutoFormula,
    kind: SplitKind,
    variant: PipelineVariant,
    index_opts: IndexOptions,
) -> Vec<OrgEval> {
    scenario
        .orgs
        .iter()
        .map(|corpus| {
            let sp = split(corpus, kind, 0.1, 0xA0);
            let cases = org_cases(corpus, &sp, 0x51);
            let index = af.build_index(&corpus.workbooks, &sp.reference, index_opts);
            let results = evaluate_autoformula(af, corpus, &index, &cases, variant);
            OrgEval { org: corpus.name.clone(), split: sp, cases, results }
        })
        .collect()
}

// ------------------------------------------------------------- Table 1

/// Table 1: statistics of test data.
pub fn table1() {
    let scenario = Scenario::standard();
    let mut rows = Vec::new();
    let mut tot = [0usize; 5];
    let mut cols: Vec<Vec<String>> = Vec::new();
    for corpus in &scenario.orgs {
        let st = corpus.stats();
        let sp_r = split(corpus, SplitKind::Random, 0.1, 0xA0);
        let sp_t = split(corpus, SplitKind::Timestamp, 0.1, 0xA0);
        let tf_r = org_cases(corpus, &sp_r, 0x51).len();
        let tf_t = org_cases(corpus, &sp_t, 0x51).len();
        tot[0] += st.workbooks;
        tot[1] += st.sheets;
        tot[2] += st.formulas;
        tot[3] += tf_r;
        tot[4] += tf_t;
        cols.push(vec![
            corpus.name.clone(),
            st.workbooks.to_string(),
            st.sheets.to_string(),
            st.formulas.to_string(),
            tf_r.to_string(),
            tf_t.to_string(),
        ]);
    }
    rows.push(vec![
        "All".to_string(),
        tot[0].to_string(),
        tot[1].to_string(),
        tot[2].to_string(),
        tot[3].to_string(),
        tot[4].to_string(),
    ]);
    rows.extend(cols);
    print_table(
        "Table 1: statistics of test data",
        &["corpus", "#workbooks", "#sheets", "#formulas", "#test (random)", "#test (timestamp)"],
        &rows,
    );
    // §3.1's similar-sheet prevalence check (40–90%).
    let rates: Vec<String> = scenario
        .orgs
        .iter()
        .map(|c| format!("{}: {:.0}%", c.name, 100.0 * c.similar_sheet_rate()))
        .collect();
    println!("similar-sheet prevalence (§3.1 reports 40–90%): {}", rates.join(", "));
}

// --------------------------------------------------------- Tables 2 & 3

fn quality_comparison(kind: SplitKind, title: &str) {
    let scenario = Scenario::standard();
    let af = scenario.system(SystemSpec::full(EmbedderKind::Sbert), scenario.default_cfg());
    let theta = operating_theta();
    let evals = eval_orgs(&scenario, &af, kind, PipelineVariant::Full, IndexOptions::default());

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut avg = [[0.0f64; 3]; 3];
    let mut mondrian_timeouts = 0;
    for ev in &evals {
        let corpus = scenario.orgs.iter().find(|o| o.name == ev.org).expect("org exists");
        let q_af = af_quality(&ev.results, theta);

        let mondrian =
            MondrianBaseline::build(&corpus.workbooks, &ev.split.reference, mondrian_budget());
        let q_m = match &mondrian {
            Ok(m) => {
                let r = evaluate_baseline(m, corpus, &ev.split, &ev.cases);
                Some(baseline_quality(&r))
            }
            Err(_) => {
                mondrian_timeouts += 1;
                None
            }
        };
        let ws = WeakSupBaseline::build(&corpus.workbooks, 0.05);
        let r_ws = evaluate_baseline(&ws, corpus, &ev.split, &ev.cases);
        let q_ws = baseline_quality(&r_ws);

        for (i, q) in [Some(q_af), q_m, Some(q_ws)].iter().enumerate() {
            if let Some(q) = q {
                avg[i][0] += q.recall;
                avg[i][1] += q.precision;
                avg[i][2] += q.f1;
            }
        }
        let fmt = |q: Option<crate::metrics::Quality>| -> Vec<String> {
            match q {
                Some(q) => vec![f2(q.recall), f2(q.precision), f2(q.f1)],
                None => vec!["[Time Out]".into(), "".into(), "".into()],
            }
        };
        let mut row = vec![ev.org.clone()];
        row.extend(fmt(Some(q_af)));
        row.extend(fmt(q_m));
        row.extend(fmt(Some(q_ws)));
        rows.push(row);
    }
    let n = evals.len() as f64;
    let mut avg_row = vec!["Overall Avg".to_string()];
    for (i, a) in avg.iter().enumerate() {
        // Mondrian average over the orgs it finished (paper leaves the
        // timed-out corpora out of its row too).
        let denom = if i == 1 { n - mondrian_timeouts as f64 } else { n };
        for v in a {
            avg_row.push(if denom > 0.0 { f2(v / denom) } else { "-".into() });
        }
    }
    let mut all_rows = vec![avg_row];
    all_rows.extend(rows);
    print_table(
        title,
        &[
            "corpus",
            "AF R",
            "AF P",
            "AF F1",
            "Mondrian R",
            "Mondrian P",
            "Mondrian F1",
            "WeakSup R",
            "WeakSup P",
            "WeakSup F1",
        ],
        &all_rows,
    );
    println!("(operating θ = {theta}; Mondrian budget = {:?})", mondrian_budget());
}

/// Table 2: quality comparison, timestamp split.
pub fn table2() {
    quality_comparison(SplitKind::Timestamp, "Table 2: quality (timestamp split)");
}

/// Table 3: quality comparison, random split.
pub fn table3() {
    quality_comparison(SplitKind::Random, "Table 3: quality (random split)");
}

// ---------------------------------------------------- Tables 4 & 5 (GPT)

/// The 180-case sample shared by Tables 4 and 5 (§5.2 "Comparison with
/// SpreadsheetCoder" / "Comparison with GPT").
fn sampled_180(scenario: &Scenario) -> Vec<(usize, Split, Vec<TestCase>)> {
    let mut out = Vec::new();
    for (oi, corpus) in scenario.orgs.iter().enumerate() {
        let sp = split(corpus, SplitKind::Timestamp, 0.1, 0xA0);
        let mut cases = org_cases(corpus, &sp, 0x51);
        cases.truncate(45); // 45 × 4 orgs = 180
        out.push((oi, sp, cases));
    }
    out
}

/// Table 4: the 24 GPT prompt variants + union.
pub fn table4() {
    let scenario = Scenario::standard();
    let sample = sampled_180(&scenario);
    let variants = PromptConfig::all();
    let mut per_variant = vec![(0usize, 0usize, 0usize); variants.len()]; // (n, pred, hit)
    let mut union_hits = 0usize;
    let mut union_n = 0usize;

    for (oi, sp, cases) in &sample {
        let corpus = &scenario.orgs[*oi];
        let gpt = GptSim::build(&corpus.workbooks, &sp.reference);
        for tc in cases {
            union_n += 1;
            let sheet = &corpus.workbooks[tc.workbook].sheets[tc.sheet];
            let masked = masked_sheet(sheet, tc.target);
            let gt = af_formula::parse_formula(&tc.ground_truth)
                .map(|e| e.to_string())
                .unwrap_or_default();
            let ctx = PredictionContext {
                workbooks: &corpus.workbooks,
                reference: &sp.reference,
                target_workbook: tc.workbook,
                target_sheet: tc.sheet,
                masked: &masked,
                target: tc.target,
            };
            let mut any = false;
            for (vi, (_, pred)) in gpt.predict_all(&ctx).into_iter().enumerate() {
                per_variant[vi].0 += 1;
                if let Some(p) = pred {
                    per_variant[vi].1 += 1;
                    if p.formula == gt {
                        per_variant[vi].2 += 1;
                        any = true;
                    }
                }
            }
            if any {
                union_hits += 1;
            }
        }
    }
    let mut rows = Vec::new();
    for (vi, cfg) in variants.iter().enumerate() {
        let (n, pred, hit) = per_variant[vi];
        let q = quality(n, pred, hit);
        rows.push(vec![cfg.label(), f3(q.recall), f3(q.precision), f3(q.f1)]);
    }
    let qu = quality(union_n, union_n, union_hits);
    rows.push(vec!["GPT-union (best-of-24)".into(), f3(qu.recall), f3(qu.precision), f3(qu.f1)]);
    print_table(
        "Table 4: GPT prompt-engineering variants (180-case sample)",
        &["variant", "R", "P", "F1"],
        &rows,
    );
}

/// Table 5: Auto-Formula vs SpreadsheetCoder vs GPT-union on 180 cases.
pub fn table5() {
    let scenario = Scenario::standard();
    let af = scenario.system(SystemSpec::full(EmbedderKind::Sbert), scenario.default_cfg());
    let theta = operating_theta();
    let sample = sampled_180(&scenario);

    let mut af_counts = (0usize, 0usize, 0usize);
    let mut ssc_counts = (0usize, 0usize, 0usize);
    let mut union_counts = (0usize, 0usize);
    for (oi, sp, cases) in &sample {
        let corpus = &scenario.orgs[*oi];
        let index = af.build_index(&corpus.workbooks, &sp.reference, IndexOptions::default());
        let rs = evaluate_autoformula(&af, corpus, &index, cases, PipelineVariant::Full);
        let q = af_quality(&rs, theta);
        af_counts.0 += q.n;
        af_counts.1 += q.n_pred;
        af_counts.2 += q.n_hit;

        let ssc: Vec<BaselineCase> = evaluate_baseline(&SpreadsheetCoderSim, corpus, sp, cases);
        ssc_counts.0 += ssc.len();
        ssc_counts.1 += ssc.iter().filter(|r| r.predicted).count();
        ssc_counts.2 += ssc.iter().filter(|r| r.correct).count();

        let gpt = GptSim::build(&corpus.workbooks, &sp.reference);
        for tc in cases {
            union_counts.0 += 1;
            let sheet = &corpus.workbooks[tc.workbook].sheets[tc.sheet];
            let masked = masked_sheet(sheet, tc.target);
            let gt = af_formula::parse_formula(&tc.ground_truth)
                .map(|e| e.to_string())
                .unwrap_or_default();
            let ctx = PredictionContext {
                workbooks: &corpus.workbooks,
                reference: &sp.reference,
                target_workbook: tc.workbook,
                target_sheet: tc.sheet,
                masked: &masked,
                target: tc.target,
            };
            if gpt
                .predict_all(&ctx)
                .into_iter()
                .any(|(_, p)| p.map(|x| x.formula == gt).unwrap_or(false))
            {
                union_counts.1 += 1;
            }
        }
    }
    let q_af = quality(af_counts.0, af_counts.1, af_counts.2);
    let q_ssc = quality(ssc_counts.0, ssc_counts.1, ssc_counts.2);
    let q_gpt = quality(union_counts.0, union_counts.0, union_counts.1);
    print_table(
        "Table 5: comparison on the 180-case sample",
        &["method", "R", "P", "F1"],
        &[
            vec!["Auto-Formula".into(), f3(q_af.recall), f3(q_af.precision), f3(q_af.f1)],
            vec!["SpreadsheetCoder".into(), f3(q_ssc.recall), f3(q_ssc.precision), f3(q_ssc.f1)],
            vec![
                "GPT-union (best-of-24)".into(),
                f3(q_gpt.recall),
                f3(q_gpt.precision),
                f3(q_gpt.f1),
            ],
        ],
    );
}

// --------------------------------------------------------------- Fig. 7

/// Fig. 7: PR curves per corpus (AF sweep; Mondrian/WeakSup points).
pub fn fig7() {
    let scenario = Scenario::standard();
    let af = scenario.system(SystemSpec::full(EmbedderKind::Sbert), scenario.default_cfg());
    let evals = eval_orgs(
        &scenario,
        &af,
        SplitKind::Timestamp,
        PipelineVariant::Full,
        IndexOptions::default(),
    );
    for ev in &evals {
        let corpus = scenario.orgs.iter().find(|o| o.name == ev.org).expect("org");
        println!("\n== Fig. 7 [{}]: PR curve (Auto-Formula) ==", ev.org);
        println!("  theta\trecall\tprecision");
        for p in pr_curve(&af_curve_points(&ev.results), ev.results.len()) {
            println!("  {:.3}\t{:.3}\t{:.3}", p.theta, p.recall, p.precision);
        }
        let ws = WeakSupBaseline::build(&corpus.workbooks, 0.05);
        let q_ws = baseline_quality(&evaluate_baseline(&ws, corpus, &ev.split, &ev.cases));
        println!("  WeakSup point: R={:.3} P={:.3}", q_ws.recall, q_ws.precision);
        match MondrianBaseline::build(&corpus.workbooks, &ev.split.reference, mondrian_budget()) {
            Ok(m) => {
                let q = baseline_quality(&evaluate_baseline(&m, corpus, &ev.split, &ev.cases));
                println!("  Mondrian point: R={:.3} P={:.3}", q.recall, q.precision);
            }
            Err(_) => println!("  Mondrian point: [Time Out]"),
        }
    }
}

// --------------------------------------------------------------- Fig. 8

/// Fig. 8: online prediction latency vs number of reference sheets, plus
/// offline per-sheet preprocessing costs.
pub fn fig8() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = match scale {
        Scale::Full => vec![10, 100, 1000, 10_000],
        _ => vec![10, 100, 1000],
    };
    // A large pool org to subsample reference sets from.
    let pool_spec = OrgSpec {
        name: "Pool",
        n_families: 160,
        instances_min: 4,
        instances_max: 8,
        n_singletons: 200,
        generic_name_rate: 0.4,
        string_singleton_bias: 0.4,
        seed: 0xF168,
    };
    let pool = pool_spec.generate();
    let scenario = Scenario::standard();
    println!("pool: {} workbooks, {} sheets", pool.workbooks.len(), pool.stats().sheets);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for kind in [EmbedderKind::Sbert, EmbedderKind::Glove] {
        let af = scenario.system(SystemSpec::full(kind), scenario.default_cfg());
        for &size in &sizes {
            // Reference members until ~size sheets.
            let mut members = Vec::new();
            let mut sheets = 0usize;
            for (wi, wb) in pool.workbooks.iter().enumerate() {
                if sheets >= size {
                    break;
                }
                members.push(wi);
                sheets += wb.n_sheets();
            }
            if sheets < size {
                println!("(pool exhausted at {sheets} sheets for requested {size})");
            }
            let t0 = Instant::now();
            let index = af.build_index(&pool.workbooks, &members, IndexOptions::default());
            let build_s = t0.elapsed().as_secs_f64();
            // Online latency over 15 probe predictions.
            let probes = 15.min(pool.workbooks.len());
            let t0 = Instant::now();
            let mut made = 0usize;
            for wi in 0..probes {
                let sheet = &pool.workbooks[wi].sheets[0];
                if let Some((target, _)) = sheet.formulas().next() {
                    let masked = masked_sheet(sheet, target);
                    let _ = af.predict_with(&index, &masked, target, PipelineVariant::Full);
                    made += 1;
                }
            }
            let avg_ms = t0.elapsed().as_secs_f64() * 1000.0 / made.max(1) as f64;
            rows.push(vec![
                format!("Auto-Formula ({})", kind.label()),
                index.n_sheets().to_string(),
                format!("{avg_ms:.1}"),
                format!("{:.2}", build_s),
                format!("{:.1}", build_s * 1000.0 / index.n_sheets().max(1) as f64),
            ]);
        }
    }
    // Mondrian scaling (expect blowup / timeout at the larger sizes).
    for &size in &sizes {
        let mut members = Vec::new();
        let mut sheets = 0usize;
        for (wi, wb) in pool.workbooks.iter().enumerate() {
            if sheets >= size {
                break;
            }
            members.push(wi);
            sheets += wb.n_sheets();
        }
        let t0 = Instant::now();
        match MondrianBaseline::build(&pool.workbooks, &members, mondrian_budget()) {
            Ok(m) => {
                let build_s = t0.elapsed().as_secs_f64();
                let probes = 10.min(pool.workbooks.len());
                let t0 = Instant::now();
                let mut made = 0usize;
                for wi in 0..probes {
                    let sheet = &pool.workbooks[wi].sheets[0];
                    if let Some((target, _)) = sheet.formulas().next() {
                        let masked = masked_sheet(sheet, target);
                        let ctx = PredictionContext {
                            workbooks: &pool.workbooks,
                            reference: &members,
                            target_workbook: wi,
                            target_sheet: 0,
                            masked: &masked,
                            target,
                        };
                        let _ = m.predict(&ctx);
                        made += 1;
                    }
                }
                let avg_ms = t0.elapsed().as_secs_f64() * 1000.0 / made.max(1) as f64;
                rows.push(vec![
                    "Mondrian".into(),
                    m.n_sheets().to_string(),
                    format!("{avg_ms:.1}"),
                    format!("{build_s:.2}"),
                    format!("{:.1}", build_s * 1000.0 / m.n_sheets().max(1) as f64),
                ]);
            }
            Err(_) => {
                rows.push(vec![
                    "Mondrian".into(),
                    sheets.to_string(),
                    "[Time Out]".into(),
                    format!(">{}", mondrian_budget().as_secs()),
                    "-".into(),
                ]);
            }
        }
    }
    print_table(
        "Fig. 8: latency vs number of reference sheets",
        &["method", "#sheets", "predict ms", "offline build s", "offline ms/sheet"],
        &rows,
    );
}

// ------------------------------------------------------------ Figs. 9–11

/// Fig. 9: sensitivity to target-sheet size (row buckets). Bucket bounds
/// are scaled to the generated corpora (window = 40 rows; the paper's
/// effect — sheets much smaller than the window lose precision — shows up
/// below ~20 rows here).
pub fn fig9() {
    let scenario = Scenario::standard();
    let af = scenario.system(SystemSpec::full(EmbedderKind::Sbert), scenario.default_cfg());
    let theta = operating_theta();
    let evals = eval_orgs(
        &scenario,
        &af,
        SplitKind::Timestamp,
        PipelineVariant::Full,
        IndexOptions::default(),
    );
    let all: Vec<&CaseResult> = evals.iter().flat_map(|e| e.results.iter()).collect();
    let buckets: [(&str, u32, u32); 5] = [
        ("r<15", 0, 15),
        ("15<=r<25", 15, 25),
        ("25<=r<40", 25, 40),
        ("40<=r<55", 40, 55),
        ("55<=r", 55, u32::MAX),
    ];
    let mut rows = Vec::new();
    for (label, lo, hi) in buckets {
        let subset: Vec<CaseResult> = all
            .iter()
            .filter(|r| r.sheet_rows >= lo && r.sheet_rows < hi)
            .map(|r| (*r).clone())
            .collect();
        let q = af_quality(&subset, theta);
        rows.push(vec![label.to_string(), q.n.to_string(), f2(q.recall), f2(q.precision)]);
    }
    print_table(
        "Fig. 9: sensitivity to target-sheet rows",
        &["bucket", "#cases", "recall", "precision"],
        &rows,
    );
}

/// Shared machinery for Figs. 10–11: AF vs SpreadsheetCoder bucketed by a
/// case property.
fn bucketed_comparison(
    title: &str,
    bucket_of_af: impl Fn(&CaseResult) -> String,
    bucket_of_b: impl Fn(&BaselineCase) -> String,
    bucket_order: &[&str],
) {
    let scenario = Scenario::standard();
    let af = scenario.system(SystemSpec::full(EmbedderKind::Sbert), scenario.default_cfg());
    let theta = operating_theta();
    let evals = eval_orgs(
        &scenario,
        &af,
        SplitKind::Timestamp,
        PipelineVariant::Full,
        IndexOptions::default(),
    );
    let mut rows = Vec::new();
    // Collect AF + SSC results per org.
    let mut af_all: Vec<CaseResult> = Vec::new();
    let mut ssc_all: Vec<BaselineCase> = Vec::new();
    for ev in &evals {
        let corpus = scenario.orgs.iter().find(|o| o.name == ev.org).expect("org");
        af_all.extend(ev.results.iter().cloned());
        ssc_all.extend(evaluate_baseline(&SpreadsheetCoderSim, corpus, &ev.split, &ev.cases));
    }
    for bucket in bucket_order {
        let afs: Vec<CaseResult> =
            af_all.iter().filter(|r| bucket_of_af(r) == *bucket).cloned().collect();
        let sscs: Vec<BaselineCase> =
            ssc_all.iter().filter(|r| bucket_of_b(r) == *bucket).cloned().collect();
        let qa = af_quality(&afs, theta);
        let qs = baseline_quality(&sscs);
        rows.push(vec![
            bucket.to_string(),
            qa.n.to_string(),
            f2(qa.recall),
            f2(qa.precision),
            f2(qa.f1),
            f2(qs.recall),
            f2(qs.precision),
            f2(qs.f1),
        ]);
    }
    print_table(
        title,
        &["bucket", "#cases", "AF R", "AF P", "AF F1", "SSC R", "SSC P", "SSC F1"],
        &rows,
    );
}

/// Fig. 10: sensitivity to formula complexity (AST node count).
pub fn fig10() {
    bucketed_comparison(
        "Fig. 10: quality by formula length (AST nodes)",
        |r| af_formula::analysis::length_bucket(r.complexity).to_string(),
        |r| af_formula::analysis::length_bucket(r.complexity).to_string(),
        &af_formula::analysis::LENGTH_BUCKETS,
    );
}

/// Fig. 11: sensitivity to formula type.
pub fn fig11() {
    let order: Vec<String> = af_formula::FormulaType::ALL.iter().map(|t| t.to_string()).collect();
    let order_refs: Vec<&str> = order.iter().map(|s| s.as_str()).collect();
    bucketed_comparison(
        "Fig. 11: quality by formula type",
        |r| r.ftype.to_string(),
        |r| r.ftype.to_string(),
        &order_refs,
    );
}

// ------------------------------------------------------------ Figs. 12–15

fn pr_per_org(
    label: &str,
    scenario: &Scenario,
    af: &AutoFormula,
    variant: PipelineVariant,
    opts: IndexOptions,
) {
    let evals = eval_orgs(scenario, af, SplitKind::Timestamp, variant, opts);
    for ev in &evals {
        println!("\n-- {label} [{}] --", ev.org);
        println!("  theta\trecall\tprecision");
        for p in pr_curve(&af_curve_points(&ev.results), ev.results.len()) {
            println!("  {:.3}\t{:.3}\t{:.3}", p.theta, p.recall, p.precision);
        }
        let q = af_quality(&ev.results, operating_theta());
        println!("  @theta*: R={:.3} P={:.3} F1={:.3}", q.recall, q.precision, q.f1);
    }
}

/// Fig. 12: GloVe vs Sentence-BERT embeddings.
pub fn fig12() {
    let scenario = Scenario::standard();
    for kind in [EmbedderKind::Glove, EmbedderKind::Sbert] {
        let af = scenario.system(SystemSpec::full(kind), scenario.default_cfg());
        pr_per_org(
            &format!("Fig. 12 {}", kind.label()),
            &scenario,
            &af,
            PipelineVariant::Full,
            IndexOptions::default(),
        );
    }
}

/// Fig. 13: ablation — no content / no style features.
pub fn fig13() {
    let scenario = Scenario::standard();
    let arms = [
        ("Auto-Formula (full)", FeatureMask::FULL),
        ("No Content Feature", FeatureMask::NO_CONTENT),
        ("No Style Feature", FeatureMask::NO_STYLE),
    ];
    for (label, mask) in arms {
        let spec = SystemSpec { mask, ..SystemSpec::full(EmbedderKind::Sbert) };
        let af = scenario.system(spec, scenario.default_cfg());
        pr_per_org(
            &format!("Fig. 13 {label}"),
            &scenario,
            &af,
            PipelineVariant::Full,
            IndexOptions::default(),
        );
    }
}

/// Fig. 14: ablation — coarse-only / fine-only vs full pipeline.
pub fn fig14() {
    let scenario = Scenario::standard();
    let af = scenario.system(SystemSpec::full(EmbedderKind::Sbert), scenario.default_cfg());
    let opts = IndexOptions { fine_sheet_signatures: true, coarse_regions: true };
    for (label, variant) in [
        ("Auto-Formula (full)", PipelineVariant::Full),
        ("Coarse-grained-only", PipelineVariant::CoarseOnly),
        ("Fine-grained-only", PipelineVariant::FineOnly),
    ] {
        pr_per_org(&format!("Fig. 14 {label}"), &scenario, &af, variant, opts);
    }
}

/// Fig. 15: ablation — data augmentation.
pub fn fig15() {
    let scenario = Scenario::standard();
    let arms = [
        ("Full-DA (Auto-Formula)", true, true),
        ("Coarse-grained-DA-only", true, false),
        ("No-DA", false, false),
    ];
    for (label, cda, fda) in arms {
        let spec =
            SystemSpec { coarse_da: cda, fine_da: fda, ..SystemSpec::full(EmbedderKind::Sbert) };
        let af = scenario.system(spec, scenario.default_cfg());
        pr_per_org(
            &format!("Fig. 15 {label}"),
            &scenario,
            &af,
            PipelineVariant::Full,
            IndexOptions::default(),
        );
    }
}

// ---------------------------------------------------- §4.2 verification

/// Weak-supervision label quality against ground-truth provenance (§4.2
/// claims precision > 0.95 with limited recall).
pub fn weaksup_quality() {
    let scenario = Scenario::standard();
    let mut rows = Vec::new();
    for corpus in std::iter::once(&scenario.universe).chain(scenario.orgs.iter()) {
        let model = NameModel::build(&corpus.workbooks);
        let pairs = sheet_pairs(&corpus.workbooks, &model, 0.05, 6, 0x77);
        let precision = label_precision(&pairs.positives, |a, b| corpus.same_family(a, b));
        let neg_precision = label_precision(&pairs.negatives, |a, b| !corpus.same_family(a, b));
        // Pair recall: same-family workbook pairs caught.
        let n = corpus.workbooks.len();
        let mut total = 0usize;
        for i in 0..n {
            for j in i + 1..n {
                if corpus.same_family(i, j) {
                    total += 1;
                }
            }
        }
        let caught: std::collections::HashSet<(usize, usize)> = pairs
            .positives
            .iter()
            .map(|(a, b)| (a.workbook.min(b.workbook), a.workbook.max(b.workbook)))
            .collect();
        let recall = if total == 0 { 0.0 } else { caught.len() as f64 / total as f64 };
        rows.push(vec![
            corpus.name.clone(),
            pairs.positives.len().to_string(),
            f2(precision),
            f2(neg_precision),
            f2(recall.min(1.0)),
        ]);
    }
    print_table(
        "Weak supervision label quality (§4.2: precision > 0.95, low recall)",
        &["corpus", "#pos pairs", "pos precision", "neg precision", "pair recall"],
        &rows,
    );
}

/// Regenerate everything in order.
pub fn run_all() {
    let t0 = Instant::now();
    table1();
    weaksup_quality();
    table2();
    table3();
    table4();
    table5();
    fig7();
    fig8();
    fig9();
    fig10();
    fig11();
    fig12();
    fig13();
    fig14();
    fig15();
    println!("\n[run_all completed in {:.1}s]", t0.elapsed().as_secs_f64());
}
