//! Domain scenario: quarterly sales reports per region (the paper's intro
//! motivation — "sales reports for different geo locations").
//!
//! Builds a sales-report sheet *by hand* through the public grid API, plus
//! a small reference corpus of similar reports, then asks Auto-Formula to
//! fill the Revenue column and the Total row — inspecting the three
//! pipeline stages along the way.
//!
//! Run with: `cargo run --release --example sales_reports`

use auto_formula::core::index::IndexOptions;
use auto_formula::core::pipeline::{AutoFormula, PipelineVariant};
use auto_formula::core::{AutoFormulaConfig, TrainingOptions};
use auto_formula::corpus::organization::{OrgSpec, Scale};
use auto_formula::embed::{CellFeaturizer, FeatureMask, SbertSim};
use auto_formula::formula::recalculate;
use auto_formula::grid::{Cell, CellRef, CellStyle, Color, Sheet, Workbook};
use std::sync::Arc;

/// Build one quarterly sales report with real formulas.
fn sales_sheet(name: &str, regions: &[(&str, f64, f64)], with_formulas: bool) -> Sheet {
    let mut s = Sheet::new(name);
    let header = CellStyle::header(Color::new(31, 78, 121)).with_font_color(Color::WHITE);
    s.set_a1("A1", Cell::styled("Regional Sales Report", CellStyle::default().with_bold(true)));
    for (c, h) in ["Region", "Units", "Unit Price", "Revenue"].iter().enumerate() {
        s.set(CellRef::new(1, c as u32), Cell::styled(*h, header.clone()));
    }
    for (i, (region, units, price)) in regions.iter().enumerate() {
        let r = 2 + i as u32;
        s.set(CellRef::new(r, 0), Cell::new(*region));
        s.set(CellRef::new(r, 1), Cell::new(*units));
        s.set(CellRef::new(r, 2), Cell::new(*price));
        if with_formulas {
            s.set(
                CellRef::new(r, 3),
                Cell::new(0.0).with_formula(format!("B{}*C{}", r + 1, r + 1)),
            );
        }
    }
    let t = 3 + regions.len() as u32;
    s.set(CellRef::new(t, 0), Cell::styled("Total", CellStyle::default().with_bold(true)));
    if with_formulas {
        s.set(
            CellRef::new(t, 3),
            Cell::new(0.0).with_formula(format!("SUM(D3:D{})", 2 + regions.len())),
        );
    }
    recalculate(&mut s);
    s
}

fn main() {
    // Reference corpus: last year's reports (complete, with formulas) plus
    // unrelated organizational spreadsheets as distractors.
    let mut workbooks = Vec::new();
    for (q, rows) in [
        ("Q1", vec![("North", 120.0, 9.5), ("South", 80.0, 11.0), ("East", 95.0, 10.0)]),
        (
            "Q2",
            vec![
                ("North", 140.0, 9.5),
                ("South", 70.0, 11.5),
                ("East", 101.0, 9.75),
                ("West", 66.0, 12.0),
            ],
        ),
        ("Q3", vec![("North", 133.0, 9.0), ("South", 88.0, 11.0)]),
    ] {
        let mut wb = Workbook::new(format!("sales-{q}.xlsx"));
        wb.push_sheet(sales_sheet(&format!("Sales {q}"), &rows, true));
        workbooks.push(wb);
    }
    let distractors = OrgSpec::web_crawl(Scale::Tiny).generate();
    let universe = distractors.workbooks.clone();
    let n_own = workbooks.len();
    workbooks.extend(universe.iter().cloned());

    // Train on the universe (not on our little org — the model is
    // universal, §4.6), then index the org's reference reports.
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(64)), FeatureMask::FULL);
    let cfg = AutoFormulaConfig { episodes: 60, ..AutoFormulaConfig::default() };
    let (af, _) = AutoFormula::train(&universe, featurizer, cfg, TrainingOptions::default());
    let members: Vec<usize> = (0..workbooks.len()).collect();
    let index = af.build_index(&workbooks, &members, IndexOptions::default());

    // The new Q4 report: the user has entered data but no formulas yet.
    let q4 = sales_sheet(
        "Sales Q4",
        &[("North", 150.0, 9.5), ("South", 90.0, 11.0), ("East", 99.0, 10.5), ("West", 71.0, 12.5)],
        false,
    );
    println!("Q4 report needs formulas in D3:D6 (revenue) and D8 (total).\n");
    for target in ["D3", "D4", "D5", "D6", "D8"] {
        let at: CellRef = target.parse().unwrap();
        match af.predict_with(&index, &q4, at, PipelineVariant::Full) {
            Some(p) => {
                let src = index.keys[0]; // for display only
                let _ = src;
                println!(
                    "{target}: ={}   (adapted from {} {} on reference sheet #{}, template {})",
                    p.formula,
                    p.reference_cell,
                    p.template_signature,
                    p.reference_sheet.workbook,
                    p.template_signature,
                );
            }
            None => println!("{target}: no suggestion"),
        }
    }
    println!("\n(references were sheets 0..{n_own} — last year's quarterly reports)");
}
