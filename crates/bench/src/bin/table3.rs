//! Regenerates table3 (see DESIGN.md's per-experiment index).
fn main() {
    af_bench::experiments::table3();
}
