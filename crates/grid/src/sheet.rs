//! A single sheet: a sparse two-dimensional grid of cells.

use crate::cell::Cell;
use crate::cellref::{CellRef, RangeRef};
use crate::fxhash::FxHashMap;
use crate::value::CellValue;

/// A sheet (one tab of a workbook). Storage is sparse — real spreadsheets
/// are mostly empty cells — and the used extent is tracked incrementally so
/// `n_rows`/`n_cols` are O(1) in the common append-only construction path.
#[derive(Debug, Clone, Default)]
pub struct Sheet {
    name: String,
    cells: FxHashMap<CellRef, Cell>,
    /// One past the last used row/col; `None` means it must be recomputed
    /// (after a removal).
    extent: Option<(u32, u32)>,
}

impl Sheet {
    pub fn new(name: impl Into<String>) -> Self {
        Sheet { name: name.into(), cells: FxHashMap::default(), extent: Some((0, 0)) }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of used rows (max used row index + 1).
    pub fn n_rows(&mut self) -> u32 {
        self.ensure_extent().0
    }

    /// Number of used columns (max used col index + 1).
    pub fn n_cols(&mut self) -> u32 {
        self.ensure_extent().1
    }

    /// Extent without requiring `&mut self`; recomputes on demand.
    pub fn dims(&self) -> (u32, u32) {
        match self.extent {
            Some(e) => e,
            None => Self::compute_extent(&self.cells),
        }
    }

    fn ensure_extent(&mut self) -> (u32, u32) {
        if self.extent.is_none() {
            self.extent = Some(Self::compute_extent(&self.cells));
        }
        self.extent.expect("just set")
    }

    fn compute_extent(cells: &FxHashMap<CellRef, Cell>) -> (u32, u32) {
        let mut rows = 0;
        let mut cols = 0;
        for r in cells.keys() {
            rows = rows.max(r.row + 1);
            cols = cols.max(r.col + 1);
        }
        (rows, cols)
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Store a cell. Blank cells are dropped (and remove any previous cell at
    /// that position) to keep the map sparse.
    pub fn set(&mut self, at: CellRef, cell: Cell) {
        if cell.is_blank() {
            if self.cells.remove(&at).is_some() {
                self.extent = None;
            }
            return;
        }
        if let Some((rows, cols)) = self.extent {
            self.extent = Some((rows.max(at.row + 1), cols.max(at.col + 1)));
        }
        self.cells.insert(at, cell);
    }

    /// Convenience: set only a value at `at`, keeping default style.
    pub fn set_value(&mut self, at: CellRef, value: impl Into<CellValue>) {
        self.set(at, Cell::new(value));
    }

    /// Convenience addressed by A1 text; panics on bad references (intended
    /// for tests and examples).
    pub fn set_a1(&mut self, a1: &str, cell: Cell) {
        let at: CellRef = a1.parse().expect("valid A1 reference");
        self.set(at, cell);
    }

    pub fn get(&self, at: CellRef) -> Option<&Cell> {
        self.cells.get(&at)
    }

    pub fn get_mut(&mut self, at: CellRef) -> Option<&mut Cell> {
        self.cells.get_mut(&at)
    }

    /// The value at `at` (Empty for unused cells).
    pub fn value(&self, at: CellRef) -> CellValue {
        self.cells.get(&at).map(|c| c.value.clone()).unwrap_or(CellValue::Empty)
    }

    pub fn remove(&mut self, at: CellRef) -> Option<Cell> {
        let removed = self.cells.remove(&at);
        if removed.is_some() {
            self.extent = None;
        }
        removed
    }

    pub fn iter(&self) -> impl Iterator<Item = (CellRef, &Cell)> + '_ {
        self.cells.iter().map(|(r, c)| (*r, c))
    }

    /// All cells that contain formulas, with their locations.
    pub fn formulas(&self) -> impl Iterator<Item = (CellRef, &str)> + '_ {
        self.cells.iter().filter_map(|(r, c)| c.formula.as_deref().map(|f| (*r, f)))
    }

    pub fn formula_count(&self) -> usize {
        self.cells.values().filter(|c| c.formula.is_some()).count()
    }

    /// The tight bounding range of all used cells, if any.
    pub fn used_range(&self) -> Option<RangeRef> {
        let mut it = self.cells.keys();
        let first = *it.next()?;
        let mut min = first;
        let mut max = first;
        for r in it {
            min.row = min.row.min(r.row);
            min.col = min.col.min(r.col);
            max.row = max.row.max(r.row);
            max.col = max.col.max(r.col);
        }
        Some(RangeRef::new(min, max))
    }

    /// Remove row `row`, shifting later rows up by one. Formula *strings* are
    /// not rewritten — this operation exists for training-data augmentation
    /// (§4.3), which only consumes cell features, never re-evaluates
    /// formulas.
    pub fn remove_row(&mut self, row: u32) {
        self.edit_axis(row, |r| r.row, |r, v| r.row = v);
    }

    /// Remove column `col`, shifting later columns left by one.
    pub fn remove_col(&mut self, col: u32) {
        self.edit_axis(col, |r| r.col, |r, v| r.col = v);
    }

    fn edit_axis(
        &mut self,
        idx: u32,
        get: impl Fn(&CellRef) -> u32,
        set: impl Fn(&mut CellRef, u32),
    ) {
        let old = std::mem::take(&mut self.cells);
        let mut cells = FxHashMap::default();
        cells.reserve(old.len());
        for (mut r, c) in old {
            let v = get(&r);
            if v == idx {
                continue; // the removed line
            }
            if v > idx {
                set(&mut r, v - 1);
            }
            cells.insert(r, c);
        }
        self.cells = cells;
        self.extent = None;
    }

    /// Insert an empty row before `row`, shifting later rows down.
    pub fn insert_row(&mut self, row: u32) {
        let old = std::mem::take(&mut self.cells);
        let mut cells = FxHashMap::default();
        cells.reserve(old.len());
        for (mut r, c) in old {
            if r.row >= row {
                r.row += 1;
            }
            cells.insert(r, c);
        }
        self.cells = cells;
        self.extent = None;
    }

    /// Insert an empty column before `col`, shifting later columns right.
    pub fn insert_col(&mut self, col: u32) {
        let old = std::mem::take(&mut self.cells);
        let mut cells = FxHashMap::default();
        cells.reserve(old.len());
        for (mut r, c) in old {
            if r.col >= col {
                r.col += 1;
            }
            cells.insert(r, c);
        }
        self.cells = cells;
        self.extent = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::CellValue;

    fn sample() -> Sheet {
        let mut s = Sheet::new("Data");
        s.set_a1("A1", Cell::new("Name"));
        s.set_a1("B1", Cell::new("Score"));
        s.set_a1("A2", Cell::new("Ann"));
        s.set_a1("B2", Cell::new(10.0));
        s.set_a1("A3", Cell::new("Bo"));
        s.set_a1("B3", Cell::new(20.0));
        s.set_a1("B4", Cell::new(30.0).with_formula("SUM(B2:B3)"));
        s
    }

    #[test]
    fn extent_tracks_inserts() {
        let mut s = sample();
        assert_eq!(s.n_rows(), 4);
        assert_eq!(s.n_cols(), 2);
        s.set_a1("D10", Cell::new(1.0));
        assert_eq!(s.n_rows(), 10);
        assert_eq!(s.n_cols(), 4);
    }

    #[test]
    fn extent_recomputes_after_remove() {
        let mut s = sample();
        s.set_a1("Z99", Cell::new(1.0));
        assert_eq!(s.n_rows(), 99);
        s.remove("Z99".parse().unwrap());
        assert_eq!(s.n_rows(), 4);
        assert_eq!(s.n_cols(), 2);
    }

    #[test]
    fn blank_cells_not_stored() {
        let mut s = Sheet::new("x");
        s.set_a1("A1", Cell::default());
        assert!(s.is_empty());
        s.set_a1("A1", Cell::new(5.0));
        s.set_a1("A1", Cell::default()); // overwrite with blank removes
        assert!(s.is_empty());
    }

    #[test]
    fn formulas_iterator() {
        let s = sample();
        let fs: Vec<_> = s.formulas().collect();
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].0.to_string(), "B4");
        assert_eq!(fs[0].1, "SUM(B2:B3)");
        assert_eq!(s.formula_count(), 1);
    }

    #[test]
    fn remove_row_shifts_up() {
        let mut s = sample();
        s.remove_row(1); // removes "Ann" row (row index 1 = row 2)
        assert_eq!(s.value("A2".parse().unwrap()).display(), "Bo");
        assert_eq!(s.value("B3".parse().unwrap()).display(), "30");
        assert_eq!(s.n_rows(), 3);
    }

    #[test]
    fn remove_col_shifts_left() {
        let mut s = sample();
        s.remove_col(0);
        assert_eq!(s.value("A1".parse().unwrap()).display(), "Score");
        assert_eq!(s.n_cols(), 1);
    }

    #[test]
    fn insert_row_shifts_down() {
        let mut s = sample();
        s.insert_row(1);
        assert_eq!(s.value("A2".parse().unwrap()), CellValue::Empty);
        assert_eq!(s.value("A3".parse().unwrap()).display(), "Ann");
        assert_eq!(s.n_rows(), 5);
    }

    #[test]
    fn insert_col_shifts_right() {
        let mut s = sample();
        s.insert_col(1);
        assert_eq!(s.value("B1".parse().unwrap()), CellValue::Empty);
        assert_eq!(s.value("C1".parse().unwrap()).display(), "Score");
    }

    #[test]
    fn used_range_bounds() {
        let s = sample();
        assert_eq!(s.used_range().unwrap().to_string(), "A1:B4");
        assert!(Sheet::new("empty").used_range().is_none());
    }
}
