//! String manipulation functions.

use super::{arity, number_arg, scalar_arg, text_arg};
use crate::eval::Operand;
use af_grid::{CellError, CellValue};

pub(super) fn call(name: &str, args: &[Operand]) -> Result<CellValue, CellError> {
    match name {
        "CONCATENATE" | "CONCAT" => {
            let mut out = String::new();
            for a in args {
                for v in a.values() {
                    if let CellValue::Error(e) = v {
                        return Err(*e);
                    }
                    out.push_str(&v.display());
                }
            }
            Ok(CellValue::Text(out))
        }
        "LEFT" | "RIGHT" => {
            arity(args, 1, 2)?;
            let s = text_arg(args, 0)?;
            let n = if args.len() == 2 { number_arg(args, 1)? } else { 1.0 };
            if n < 0.0 {
                return Err(CellError::Value);
            }
            let n = n as usize;
            let chars: Vec<char> = s.chars().collect();
            let out: String = if name == "LEFT" {
                chars.iter().take(n).collect()
            } else {
                chars.iter().skip(chars.len().saturating_sub(n)).collect()
            };
            Ok(CellValue::Text(out))
        }
        "MID" => {
            arity(args, 3, 3)?;
            let s = text_arg(args, 0)?;
            let start = number_arg(args, 1)?;
            let len = number_arg(args, 2)?;
            if start < 1.0 || len < 0.0 {
                return Err(CellError::Value);
            }
            let out: String = s.chars().skip(start as usize - 1).take(len as usize).collect();
            Ok(CellValue::Text(out))
        }
        "LEN" => {
            arity(args, 1, 1)?;
            Ok(CellValue::Number(text_arg(args, 0)?.chars().count() as f64))
        }
        "UPPER" => {
            arity(args, 1, 1)?;
            Ok(CellValue::Text(text_arg(args, 0)?.to_uppercase()))
        }
        "LOWER" => {
            arity(args, 1, 1)?;
            Ok(CellValue::Text(text_arg(args, 0)?.to_lowercase()))
        }
        "TRIM" => {
            arity(args, 1, 1)?;
            // Excel TRIM also collapses interior runs of spaces.
            let s = text_arg(args, 0)?;
            let out = s.split_whitespace().collect::<Vec<_>>().join(" ");
            Ok(CellValue::Text(out))
        }
        "SUBSTITUTE" => {
            arity(args, 3, 4)?;
            let s = text_arg(args, 0)?;
            let from = text_arg(args, 1)?;
            let to = text_arg(args, 2)?;
            if from.is_empty() {
                return Ok(CellValue::Text(s));
            }
            if args.len() == 4 {
                let nth = number_arg(args, 3)?;
                if nth < 1.0 {
                    return Err(CellError::Value);
                }
                let nth = nth as usize;
                let mut out = String::with_capacity(s.len());
                let mut rest = s.as_str();
                let mut count = 0usize;
                while let Some(idx) = rest.find(&from) {
                    count += 1;
                    out.push_str(&rest[..idx]);
                    if count == nth {
                        out.push_str(&to);
                    } else {
                        out.push_str(&from);
                    }
                    rest = &rest[idx + from.len()..];
                }
                out.push_str(rest);
                Ok(CellValue::Text(out))
            } else {
                Ok(CellValue::Text(s.replace(&from, &to)))
            }
        }
        "REPT" => {
            arity(args, 2, 2)?;
            let s = text_arg(args, 0)?;
            let n = number_arg(args, 1)?;
            if !(0.0..=32767.0).contains(&n) {
                return Err(CellError::Value);
            }
            Ok(CellValue::Text(s.repeat(n as usize)))
        }
        "EXACT" => {
            arity(args, 2, 2)?;
            Ok(CellValue::Bool(text_arg(args, 0)? == text_arg(args, 1)?))
        }
        "FIND" => {
            arity(args, 2, 3)?;
            let needle = text_arg(args, 0)?;
            let hay = text_arg(args, 1)?;
            let start = if args.len() == 3 { number_arg(args, 2)? } else { 1.0 };
            if start < 1.0 {
                return Err(CellError::Value);
            }
            let chars: Vec<char> = hay.chars().collect();
            let skip = start as usize - 1;
            if skip > chars.len() {
                return Err(CellError::Value);
            }
            let suffix: String = chars[skip..].iter().collect();
            match suffix.find(&needle) {
                Some(byte_idx) => {
                    let char_idx = suffix[..byte_idx].chars().count();
                    Ok(CellValue::Number((skip + char_idx + 1) as f64))
                }
                None => Err(CellError::Value),
            }
        }
        "VALUE" => {
            arity(args, 1, 1)?;
            let v = scalar_arg(args, 0)?;
            v.as_number().map(CellValue::Number).ok_or(CellError::Value)
        }
        "TEXT" => {
            // Minimal TEXT: the format argument is accepted but only `0`,
            // `0.00`-style numeric formats are honoured; everything else
            // falls back to the display string.
            arity(args, 1, 2)?;
            let v = scalar_arg(args, 0)?;
            if args.len() == 2 {
                let fmt = text_arg(args, 1)?;
                if let (Some(n), Some(decimals)) = (v.as_number(), numeric_format_decimals(&fmt)) {
                    return Ok(CellValue::Text(format!("{n:.decimals$}")));
                }
            }
            Ok(CellValue::Text(v.display()))
        }
        _ => Err(CellError::Name),
    }
}

/// Parse `0`, `0.0`, `0.00`, … returning the number of decimals.
fn numeric_format_decimals(fmt: &str) -> Option<usize> {
    let fmt = fmt.trim();
    if fmt == "0" {
        return Some(0);
    }
    let rest = fmt.strip_prefix("0.")?;
    if !rest.is_empty() && rest.bytes().all(|b| b == b'0') {
        Some(rest.len())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> Operand {
        Operand::Scalar(CellValue::text(v))
    }

    fn n(v: f64) -> Operand {
        Operand::Scalar(CellValue::Number(v))
    }

    #[test]
    fn concat_mixed_types() {
        assert_eq!(call("CONCATENATE", &[s("FY"), n(23.0)]), Ok(CellValue::text("FY23")));
    }

    #[test]
    fn left_right_mid() {
        assert_eq!(call("LEFT", &[s("Quarter"), n(1.0)]), Ok(CellValue::text("Q")));
        assert_eq!(call("RIGHT", &[s("FY2023"), n(2.0)]), Ok(CellValue::text("23")));
        assert_eq!(call("MID", &[s("abcdef"), n(2.0), n(3.0)]), Ok(CellValue::text("bcd")));
        assert_eq!(call("LEFT", &[s("ab")]), Ok(CellValue::text("a")), "default count 1");
        assert_eq!(call("RIGHT", &[s("ab"), n(99.0)]), Ok(CellValue::text("ab")));
    }

    #[test]
    fn len_counts_chars_not_bytes() {
        assert_eq!(call("LEN", &[s("héllo")]), Ok(CellValue::Number(5.0)));
    }

    #[test]
    fn case_and_trim() {
        assert_eq!(call("UPPER", &[s("mix")]), Ok(CellValue::text("MIX")));
        assert_eq!(call("LOWER", &[s("MIX")]), Ok(CellValue::text("mix")));
        assert_eq!(call("TRIM", &[s("  a   b  ")]), Ok(CellValue::text("a b")));
    }

    #[test]
    fn substitute_all_and_nth() {
        assert_eq!(call("SUBSTITUTE", &[s("a-b-c"), s("-"), s("+")]), Ok(CellValue::text("a+b+c")));
        assert_eq!(
            call("SUBSTITUTE", &[s("a-b-c"), s("-"), s("+"), n(2.0)]),
            Ok(CellValue::text("a-b+c"))
        );
    }

    #[test]
    fn find_is_case_sensitive_one_based() {
        assert_eq!(call("FIND", &[s("b"), s("abc")]), Ok(CellValue::Number(2.0)));
        assert_eq!(call("FIND", &[s("B"), s("abc")]), Err(CellError::Value));
        assert_eq!(call("FIND", &[s("b"), s("abcb"), n(3.0)]), Ok(CellValue::Number(4.0)));
    }

    #[test]
    fn value_and_text() {
        assert_eq!(call("VALUE", &[s("42.5")]), Ok(CellValue::Number(42.5)));
        assert_eq!(call("VALUE", &[s("abc")]), Err(CellError::Value));
        assert_eq!(call("TEXT", &[n(4.14159), s("0.00")]), Ok(CellValue::text("4.14")));
        assert_eq!(call("TEXT", &[n(3.0), s("0")]), Ok(CellValue::text("3")));
    }

    #[test]
    fn exact_and_rept() {
        assert_eq!(call("EXACT", &[s("ab"), s("ab")]), Ok(CellValue::Bool(true)));
        assert_eq!(call("EXACT", &[s("ab"), s("AB")]), Ok(CellValue::Bool(false)));
        assert_eq!(call("REPT", &[s("ab"), n(3.0)]), Ok(CellValue::text("ababab")));
    }
}
