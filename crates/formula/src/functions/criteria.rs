//! Criteria matching for `COUNTIF` / `SUMIF` / `AVERAGEIF`.
//!
//! A criteria value is either a direct value (equality match) or a string
//! with a comparison prefix such as `">=10"` or `"<>done"`. Text equality is
//! case-insensitive and supports the `*` and `?` wildcards.

use crate::eval::compare_values;
use af_grid::CellValue;
use std::cmp::Ordering;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A parsed criteria, ready to match candidate values.
#[derive(Debug, Clone)]
pub struct Criteria {
    op: CmpOp,
    rhs: CellValue,
}

impl Criteria {
    /// Parse the criteria argument of a conditional aggregate.
    pub fn parse(v: &CellValue) -> Criteria {
        if let CellValue::Text(s) = v {
            let (op, rest) = if let Some(r) = s.strip_prefix(">=") {
                (CmpOp::Ge, r)
            } else if let Some(r) = s.strip_prefix("<=") {
                (CmpOp::Le, r)
            } else if let Some(r) = s.strip_prefix("<>") {
                (CmpOp::Ne, r)
            } else if let Some(r) = s.strip_prefix('>') {
                (CmpOp::Gt, r)
            } else if let Some(r) = s.strip_prefix('<') {
                (CmpOp::Lt, r)
            } else if let Some(r) = s.strip_prefix('=') {
                (CmpOp::Eq, r)
            } else {
                (CmpOp::Eq, s.as_str())
            };
            // The comparison target re-parses: numeric text compares as a
            // number.
            let rhs = match rest.trim().parse::<f64>() {
                Ok(n) if !rest.trim().is_empty() => CellValue::Number(n),
                _ => CellValue::Text(rest.to_string()),
            };
            Criteria { op, rhs }
        } else {
            Criteria { op: CmpOp::Eq, rhs: v.clone() }
        }
    }

    /// Does `candidate` satisfy the criteria?
    pub fn matches(&self, candidate: &CellValue) -> bool {
        // Wildcard path: equality/inequality against a text pattern.
        if let (CmpOp::Eq | CmpOp::Ne, CellValue::Text(pat)) = (self.op, &self.rhs) {
            if pat.contains('*') || pat.contains('?') {
                let hit = match candidate {
                    CellValue::Text(s) => wildcard_match(pat, s),
                    _ => false,
                };
                return if self.op == CmpOp::Eq { hit } else { !hit };
            }
        }
        // Empty cells never satisfy comparison criteria (Excel skips them),
        // except explicit equality with empty.
        if candidate.is_empty() {
            return self.op == CmpOp::Eq && self.rhs.is_empty();
        }
        // Numeric criteria only match numeric candidates (Excel: COUNTIF
        // over text cells with ">10" counts nothing).
        if matches!(self.rhs, CellValue::Number(_))
            && !matches!(candidate, CellValue::Number(_) | CellValue::Date(_))
        {
            return false;
        }
        if matches!(self.rhs, CellValue::Text(_)) && !matches!(candidate, CellValue::Text(_)) {
            return self.op == CmpOp::Ne;
        }
        let ord = compare_values(candidate, &self.rhs);
        match self.op {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Case-insensitive glob match with `*` (any run) and `?` (any one char).
fn wildcard_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    let t: Vec<char> = text.to_lowercase().chars().collect();
    // Classic two-pointer glob algorithm with backtracking on `*`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            mark = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(s: &str) -> CellValue {
        CellValue::text(s)
    }

    #[test]
    fn equality_with_value() {
        let c = Criteria::parse(&text("Brown"));
        assert!(c.matches(&text("Brown")));
        assert!(c.matches(&text("brown")), "case-insensitive");
        assert!(!c.matches(&text("Green")));
        assert!(!c.matches(&CellValue::Number(3.0)));
    }

    #[test]
    fn numeric_comparisons() {
        let c = Criteria::parse(&text(">=10"));
        assert!(c.matches(&CellValue::Number(10.0)));
        assert!(c.matches(&CellValue::Number(11.0)));
        assert!(!c.matches(&CellValue::Number(9.0)));
        assert!(!c.matches(&text("12")), "text never satisfies numeric criteria");
        assert!(!c.matches(&CellValue::Empty));
    }

    #[test]
    fn direct_number_criteria() {
        let c = Criteria::parse(&CellValue::Number(5.0));
        assert!(c.matches(&CellValue::Number(5.0)));
        assert!(!c.matches(&CellValue::Number(4.0)));
    }

    #[test]
    fn not_equal() {
        let c = Criteria::parse(&text("<>done"));
        assert!(c.matches(&text("pending")));
        assert!(!c.matches(&text("Done")));
        assert!(c.matches(&CellValue::Number(1.0)), "non-text is <> a text rhs");
    }

    #[test]
    fn wildcards() {
        let c = Criteria::parse(&text("B*n"));
        assert!(c.matches(&text("Brown")));
        assert!(c.matches(&text("Bean")));
        assert!(!c.matches(&text("Browny")));
        let c = Criteria::parse(&text("?at"));
        assert!(c.matches(&text("cat")));
        assert!(!c.matches(&text("flat")));
    }

    #[test]
    fn wildcard_edge_cases() {
        assert!(wildcard_match("*", "anything"));
        assert!(wildcard_match("*", ""));
        assert!(!wildcard_match("?", ""));
        assert!(wildcard_match("a*b*c", "aXXbYYc"));
        assert!(!wildcard_match("a*b*c", "aXXbYY"));
    }
}
