//! Thin CLI wrapper: regenerates table2 (see DESIGN.md's per-experiment
//! index). `AF_SCALE={tiny,small,full}` scales the synthetic corpora.

fn main() {
    af_bench::report::run_experiment(
        "table2",
        "Table 2: quality comparison of all systems, timestamp split",
        af_bench::experiments::table2,
    );
}
