//! IEEE 754 binary16 ↔ binary32 conversion, implemented on bit level (the
//! toolchain's `f16` is unstable and no half-float crate is vendored).
//!
//! `f32_to_f16` rounds to nearest, ties to even — the same rounding every
//! hardware F16C/NEON converter uses — and preserves infinities, NaNs
//! (quieted, payload truncated), signed zeros, and subnormals. For inputs
//! in the normal binary16 range the round trip error is bounded by half a
//! ulp: `|x − f16(x)| ≤ 2⁻¹¹·|x|` — plenty below the noise floor of the
//! embeddings this workspace stores, whose components live in [−1, 1].

/// Convert one `f32` to its nearest `f16` bit pattern (round to nearest,
/// ties to even).
#[inline]
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN: keep the class; quiet NaNs so a payload is never lost
        // into an Inf encoding.
        return if mant == 0 { sign | 0x7C00 } else { sign | 0x7E00 };
    }
    // Unbiased exponent, rebased to f16's bias of 15.
    let unbiased = exp - 127;
    if unbiased >= 16 {
        // Too large for binary16 → ±Inf.
        return sign | 0x7C00;
    }
    if unbiased >= -14 {
        // Normal range: 10 explicit mantissa bits, round the 13 dropped.
        let mant16 = mant >> 13;
        let rest = mant & 0x1FFF;
        let half = 0x1000;
        let mut out = ((unbiased + 15) as u32) << 10 | mant16;
        if rest > half || (rest == half && (mant16 & 1) == 1) {
            out += 1; // may carry into the exponent — that is correct
        }
        return sign | out as u16;
    }
    if unbiased >= -25 {
        // Subnormal range: implicit leading 1 becomes explicit, shifted.
        let full = mant | 0x0080_0000;
        let shift = (-14 - unbiased) as u32 + 13;
        let mant16 = full >> shift;
        let rest = full & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut out = mant16;
        if rest > half || (rest == half && (mant16 & 1) == 1) {
            out += 1;
        }
        return sign | out as u16;
    }
    // Underflows to ±0.
    sign
}

/// Convert one `f16` bit pattern to the exactly-representable `f32`.
#[inline]
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign, // ±0
        (0, m) => {
            // Subnormal (value `m·2⁻²⁴`): normalize into f32, which has
            // plenty of exponent range — `1.rest · 2^(p−24)` with `p` the
            // position of `m`'s leading bit.
            let p = 31 - m.leading_zeros();
            sign | ((103 + p) << 23) | ((m << (23 - p)) & 0x007F_FFFF)
        }
        (0x1F, 0) => sign | 0x7F80_0000,             // ±Inf
        (0x1F, m) => sign | 0x7FC0_0000 | (m << 13), // NaN (quieted)
        (e, m) => sign | ((e + 112) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.099975586] {
            let h = f32_to_f16(v);
            assert_eq!(f16_to_f32(h), v, "{v} must be exactly representable");
        }
    }

    #[test]
    fn specials() {
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // Overflow saturates to Inf, underflow to signed zero.
        assert_eq!(f16_to_f32(f32_to_f16(1e10)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(-1e10)), f32::NEG_INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(1e-10)), 0.0);
        assert_eq!(f16_to_f32(f32_to_f16(-1e-10)).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn every_f16_survives_the_full_loop() {
        // f16 → f32 → f16 must be the identity for every finite pattern
        // (f32 has strictly more precision and range).
        for h in 0..=u16::MAX {
            let exp = (h >> 10) & 0x1F;
            let mant = h & 0x03FF;
            if exp == 0x1F && mant != 0 {
                // NaNs: class preserved, payload may be quieted.
                assert!(f16_to_f32(h).is_nan());
                continue;
            }
            assert_eq!(f32_to_f16(f16_to_f32(h)), h, "pattern {h:#06x}");
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 sits exactly between 1.0 and the next f16 (1 + 2^-10):
        // ties-to-even picks 1.0 (even mantissa).
        let tie = 1.0 + 2f32.powi(-11);
        assert_eq!(f16_to_f32(f32_to_f16(tie)), 1.0);
        // Just above the tie rounds up.
        let above = 1.0 + 2f32.powi(-11) + 2f32.powi(-20);
        assert_eq!(f16_to_f32(f32_to_f16(above)), 1.0 + 2f32.powi(-10));
    }

    #[test]
    fn normal_range_relative_error_bound() {
        let mut x = 6.1e-5f32; // just above the subnormal threshold
        while x < 6.0e4 {
            for v in [x, -x] {
                let r = f16_to_f32(f32_to_f16(v));
                assert!((r - v).abs() <= v.abs() * 4.9e-4, "{v} → {r}");
            }
            x *= 1.618;
        }
    }

    #[test]
    fn subnormals_round_trip_within_an_ulp() {
        let ulp = 2f32.powi(-24); // smallest positive f16 subnormal
        let mut x = ulp;
        while x < 6.2e-5 {
            let r = f16_to_f32(f32_to_f16(x));
            assert!((r - x).abs() <= ulp * 0.5 + f32::EPSILON, "{x} → {r}");
            x += ulp * 0.37;
        }
    }
}
