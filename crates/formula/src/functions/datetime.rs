//! Date functions over serial day numbers (no wall clock — everything is
//! deterministic).

use super::{arity, number_arg, scalar_arg};
use crate::eval::Operand;
use af_grid::value::{date_to_serial, serial_to_date};
use af_grid::{CellError, CellValue};

pub(super) fn call(name: &str, args: &[Operand]) -> Result<CellValue, CellError> {
    match name {
        "DATE" => {
            arity(args, 3, 3)?;
            let y = number_arg(args, 0)? as i64;
            let m = number_arg(args, 1)?;
            let d = number_arg(args, 2)?;
            if !(1.0..=12.0).contains(&m) || !(1.0..=31.0).contains(&d) {
                return Err(CellError::Num);
            }
            Ok(CellValue::Date(date_to_serial(y, m as u32, d as u32)))
        }
        "YEAR" | "MONTH" | "DAY" | "WEEKDAY" => {
            arity(args, 1, 1)?;
            let serial = date_serial_arg(args, 0)?;
            let (y, m, d) = serial_to_date(serial);
            let out = match name {
                "YEAR" => y as f64,
                "MONTH" => m as f64,
                "DAY" => d as f64,
                _ => {
                    // 1900-01-01 (serial 1) was a Monday; Excel WEEKDAY's
                    // default mode returns 1 = Sunday … 7 = Saturday.
                    let dow = (serial % 7 + 7) % 7; // 0 = Sunday for serial 0
                    (dow + 1) as f64
                }
            };
            Ok(CellValue::Number(out))
        }
        "DAYS" => {
            arity(args, 2, 2)?;
            let end = date_serial_arg(args, 0)?;
            let start = date_serial_arg(args, 1)?;
            Ok(CellValue::Number((end - start) as f64))
        }
        _ => Err(CellError::Name),
    }
}

fn date_serial_arg(args: &[Operand], i: usize) -> Result<i64, CellError> {
    match scalar_arg(args, i)? {
        CellValue::Date(d) => Ok(d),
        CellValue::Number(n) => Ok(n as i64),
        CellValue::Error(e) => Err(e),
        _ => Err(CellError::Value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: f64) -> Operand {
        Operand::Scalar(CellValue::Number(v))
    }

    #[test]
    fn date_construction_and_fields() {
        let d = call("DATE", &[n(2023.0), n(6.0), n(15.0)]).unwrap();
        let serial = match d {
            CellValue::Date(s) => s,
            _ => panic!("expected date"),
        };
        let arg = [Operand::Scalar(CellValue::Date(serial))];
        assert_eq!(call("YEAR", &arg), Ok(CellValue::Number(2023.0)));
        assert_eq!(call("MONTH", &arg), Ok(CellValue::Number(6.0)));
        assert_eq!(call("DAY", &arg), Ok(CellValue::Number(15.0)));
    }

    #[test]
    fn invalid_dates_rejected() {
        assert_eq!(call("DATE", &[n(2023.0), n(13.0), n(1.0)]), Err(CellError::Num));
        assert_eq!(call("DATE", &[n(2023.0), n(0.0), n(1.0)]), Err(CellError::Num));
    }

    #[test]
    fn days_difference() {
        let a = date_to_serial(2023, 3, 1);
        let b = date_to_serial(2023, 2, 1);
        let out = call(
            "DAYS",
            &[Operand::Scalar(CellValue::Date(a)), Operand::Scalar(CellValue::Date(b))],
        );
        assert_eq!(out, Ok(CellValue::Number(28.0)));
    }

    #[test]
    fn weekday_anchors() {
        // 1900-01-01 was a Monday → WEEKDAY = 2 in the 1=Sunday convention.
        let arg = [Operand::Scalar(CellValue::Date(date_to_serial(1900, 1, 1)))];
        assert_eq!(call("WEEKDAY", &arg), Ok(CellValue::Number(2.0)));
        // Seven days later is the same weekday.
        let arg = [Operand::Scalar(CellValue::Date(date_to_serial(1900, 1, 8)))];
        assert_eq!(call("WEEKDAY", &arg), Ok(CellValue::Number(2.0)));
    }
}
