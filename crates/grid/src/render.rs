//! Plain-text rendering of sheet regions — the debugging view used by the
//! examples and by humans inspecting generated corpora.

use crate::cellref::{CellRef, RangeRef};
use crate::sheet::Sheet;

/// Render a rectangular region as a fixed-width text grid with row/column
/// headings. Formula cells are shown as `=FORMULA`; other cells show their
/// display value. Content is truncated to `max_width` characters per cell.
pub fn render_region(sheet: &Sheet, range: RangeRef, max_width: usize) -> String {
    let max_width = max_width.max(3);
    let rows = range.start.row..=range.end.row;
    let cols = range.start.col..=range.end.col;

    // Compute column widths.
    let mut widths: Vec<usize> = cols.clone().map(|c| CellRef::col_letters(c).len()).collect();
    let text_of = |at: CellRef| -> String {
        match sheet.get(at) {
            Some(cell) => match &cell.formula {
                Some(f) => truncate(&format!("={f}"), max_width),
                None => truncate(&cell.value.display(), max_width),
            },
            None => String::new(),
        }
    };
    for r in rows.clone() {
        for (ci, c) in cols.clone().enumerate() {
            widths[ci] = widths[ci].max(text_of(CellRef::new(r, c)).len());
        }
    }

    let row_head_w = format!("{}", range.end.row + 1).len();
    let mut out = String::new();
    // Header row.
    out.push_str(&" ".repeat(row_head_w + 1));
    for (ci, c) in cols.clone().enumerate() {
        out.push_str(&format!("{:^w$} ", CellRef::col_letters(c), w = widths[ci]));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:>w$} ", r + 1, w = row_head_w));
        for (ci, c) in cols.clone().enumerate() {
            out.push_str(&format!("{:<w$} ", text_of(CellRef::new(r, c)), w = widths[ci]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// Render the sheet's whole used range (empty string for an empty sheet).
pub fn render_sheet(sheet: &Sheet, max_width: usize) -> String {
    match sheet.used_range() {
        Some(range) => render_region(sheet, range, max_width),
        None => String::new(),
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let mut out: String = s.chars().take(max.saturating_sub(1)).collect();
        out.push('…');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;

    fn sheet() -> Sheet {
        let mut s = Sheet::new("t");
        s.set_a1("A1", Cell::new("Region"));
        s.set_a1("B1", Cell::new("Units"));
        s.set_a1("A2", Cell::new("North"));
        s.set_a1("B2", Cell::new(120.0));
        s.set_a1("B3", Cell::new(120.0).with_formula("SUM(B2:B2)"));
        s
    }

    #[test]
    fn renders_headers_values_and_formulas() {
        let out = render_sheet(&sheet(), 20);
        assert!(out.contains("A"), "{out}");
        assert!(out.contains("Region"));
        assert!(out.contains("120"));
        assert!(out.contains("=SUM(B2:B2)"));
        assert_eq!(out.lines().count(), 4, "header + 3 rows:\n{out}");
    }

    #[test]
    fn truncation_marks_long_values() {
        let mut s = sheet();
        s.set_a1("C1", Cell::new("a very long header indeed"));
        let out = render_sheet(&s, 8);
        assert!(out.contains('…'), "{out}");
        assert!(!out.contains("a very long header indeed"));
    }

    #[test]
    fn empty_sheet_renders_empty() {
        assert_eq!(render_sheet(&Sheet::new("x"), 10), "");
    }

    #[test]
    fn region_render_respects_bounds() {
        let out = render_region(&sheet(), "A1:A2".parse().unwrap(), 12);
        assert!(out.contains("Region"));
        assert!(!out.contains("Units"), "column B excluded:\n{out}");
    }
}
