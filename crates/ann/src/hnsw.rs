//! HNSW — Hierarchical Navigable Small World graphs (Malkov & Yashunin),
//! the graph-based ANN index used for the coarse-grained sheet index.

use crate::codec::{self, CodecError};
use crate::metric::{Neighbor, TopK};
use crate::VectorIndex;
use af_store::{Codec, DenseStore, VectorStore};
use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BinaryHeap;

/// HNSW construction/search parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswParams {
    /// Max neighbors per node on upper layers (layer 0 allows `2·m`).
    pub m: usize,
    /// Candidate-list width during construction.
    pub ef_construction: usize,
    /// Candidate-list width during search.
    pub ef_search: usize,
    /// Seed of the level-assignment RNG (construction is deterministic).
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams { m: 16, ef_construction: 100, ef_search: 64, seed: 0xa5a5 }
    }
}

/// A candidate ordered by ascending distance inside a `BinaryHeap` (which is
/// a max-heap, hence the reversed comparison).
#[derive(PartialEq)]
struct MinCand(f32, usize);

impl Eq for MinCand {}

impl PartialOrd for MinCand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinCand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.total_cmp(&self.0)
    }
}

/// An HNSW graph index over vectors inserted one at a time. Vectors live
/// in an [`af_store::DenseStore`]: `f32` by default (bit-identical to the
/// pre-store implementation), or a quantized codec after loading a
/// compressed artifact — graph traversal then compares the f32 query
/// against quantized rows with the asymmetric kernels.
#[derive(Clone)]
pub struct HnswIndex {
    params: HnswParams,
    store: DenseStore,
    /// `links[layer][node]` — adjacency lists; nodes absent from a layer
    /// have empty lists.
    links: Vec<Vec<Vec<u32>>>,
    /// Top layer of each node.
    node_layer: Vec<u8>,
    entry: Option<usize>,
    rng: StdRng,
    level_norm: f64,
}

impl HnswIndex {
    /// An empty graph over `dim`-dimensional `f32` vectors.
    pub fn new(dim: usize, params: HnswParams) -> HnswIndex {
        HnswIndex::with_codec(dim, Codec::F32, params)
    }

    /// An empty graph storing vectors in `codec` (incoming vectors are
    /// quantized on [`VectorIndex::add`]).
    pub fn with_codec(dim: usize, codec: Codec, params: HnswParams) -> HnswIndex {
        assert!(dim > 0 && params.m >= 2);
        HnswIndex {
            params,
            store: DenseStore::new(dim, codec),
            links: vec![Vec::new()],
            node_layer: Vec::new(),
            entry: None,
            rng: StdRng::seed_from_u64(params.seed),
            level_norm: 1.0 / (params.m as f64).ln(),
        }
    }

    /// Build from a batch of vectors.
    pub fn build(data: &[f32], dim: usize, params: HnswParams) -> HnswIndex {
        let mut idx = HnswIndex::new(dim, params);
        for v in data.chunks(dim) {
            idx.add(v);
        }
        idx
    }

    /// Squared L2 distance between an f32 query and stored node `id`
    /// (asymmetric on quantized codecs).
    #[inline]
    fn dist(&self, query: &[f32], id: usize) -> f32 {
        self.store.l2_sq_row(query, id)
    }

    fn random_level(&mut self) -> usize {
        let u: f64 = self.rng.random_range(f64::EPSILON..1.0);
        ((-u.ln() * self.level_norm) as usize).min(12)
    }

    fn max_degree(&self, layer: usize) -> usize {
        if layer == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    /// Greedy descent on `layer` from `start` to the locally-closest node.
    fn greedy_closest(&self, query: &[f32], start: usize, layer: usize) -> usize {
        let mut cur = start;
        let mut cur_d = self.dist(query, cur);
        loop {
            let mut improved = false;
            for &nb in &self.links[layer][cur] {
                let d = self.dist(query, nb as usize);
                if d < cur_d {
                    cur = nb as usize;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search on one layer: returns up to `ef` closest found,
    /// ascending.
    fn search_layer(&self, query: &[f32], entry: usize, ef: usize, layer: usize) -> Vec<Neighbor> {
        let mut visited = vec![false; self.len()];
        visited[entry] = true;
        let d0 = self.dist(query, entry);
        let mut frontier = BinaryHeap::new();
        frontier.push(MinCand(d0, entry));
        let mut best = TopK::new(ef);
        best.push(Neighbor::new(entry, d0));
        while let Some(MinCand(d, node)) = frontier.pop() {
            if d > best.worst() {
                break;
            }
            for &nb in &self.links[layer][node] {
                let nb = nb as usize;
                if visited[nb] {
                    continue;
                }
                visited[nb] = true;
                let nd = self.dist(query, nb);
                if nd < best.worst() {
                    best.push(Neighbor::new(nb, nd));
                    frontier.push(MinCand(nd, nb));
                }
            }
        }
        best.into_sorted()
    }

    /// Simple neighbor selection: keep the `max` closest candidates.
    fn select_neighbors(mut cands: Vec<Neighbor>, max: usize) -> Vec<u32> {
        cands.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        cands.truncate(max);
        cands.into_iter().map(|n| n.id as u32).collect()
    }

    fn node_at_layer(&self, node: usize, layer: usize) -> bool {
        (self.node_layer[node] as usize) >= layer
    }

    /// Rebuild from the legacy (v1, f32-only) wire layout. The RNG is
    /// not stored: it is reseeded from `params.seed` and fast-forwarded by
    /// one draw per node (exactly what construction consumed), so `add`
    /// after a load assigns the same levels as `add` on the original.
    pub(crate) fn decode_state_v1(data: &mut Bytes) -> Result<HnswIndex, CodecError> {
        let dim = codec::get_u32(data)? as usize;
        let m = codec::get_u64(data)? as usize;
        let ef_construction = codec::get_u64(data)? as usize;
        let ef_search = codec::get_u64(data)? as usize;
        let seed = codec::get_u64(data)?;
        if dim == 0 || m < 2 {
            return Err(CodecError::Invalid("hnsw dim must be positive and m >= 2"));
        }
        let params = HnswParams { m, ef_construction, ef_search, seed };
        let n = codec::get_count(data, dim.checked_mul(4).ok_or(CodecError::Truncated)?)?;
        let vec_data = codec::get_f32s_exact(data, n * dim)?;
        Self::decode_graph(data, params, DenseStore::from_f32_rows(dim, vec_data), n)
    }

    /// Rebuild from bytes written by [`VectorIndex::encode_with`] (the
    /// store carries its own codec tag; see `decode_state_v1` for the RNG
    /// replay contract).
    pub(crate) fn decode_state(data: &mut Bytes) -> Result<HnswIndex, CodecError> {
        let m = codec::get_u64(data)? as usize;
        let ef_construction = codec::get_u64(data)? as usize;
        let ef_search = codec::get_u64(data)? as usize;
        let seed = codec::get_u64(data)?;
        if m < 2 {
            return Err(CodecError::Invalid("hnsw m must be >= 2"));
        }
        let params = HnswParams { m, ef_construction, ef_search, seed };
        let store = af_store::get_store(data)?;
        let n = store.rows();
        Self::decode_graph(data, params, store, n)
    }

    /// Shared tail of both decode paths: graph structure after the
    /// vectors.
    fn decode_graph(
        data: &mut Bytes,
        params: HnswParams,
        store: DenseStore,
        n: usize,
    ) -> Result<HnswIndex, CodecError> {
        let mut node_layer = Vec::with_capacity(n);
        for _ in 0..n {
            node_layer.push(codec::get_u8(data)?);
        }
        let entry_raw = codec::get_u64(data)?;
        let entry = if entry_raw == u64::MAX { None } else { Some(entry_raw as usize) };
        match entry {
            None if n > 0 => return Err(CodecError::Invalid("non-empty hnsw without entry")),
            Some(e) if e >= n => return Err(CodecError::Invalid("hnsw entry out of range")),
            _ => {}
        }
        let n_layers = codec::get_u64(data)? as usize;
        // Levels are capped at 12 during construction, so any sane graph
        // has at most 13 layers; reject absurd counts before allocating.
        if n_layers == 0 || n_layers > 64 {
            return Err(CodecError::Invalid("hnsw layer count out of range"));
        }
        if node_layer.iter().any(|&l| l as usize >= n_layers) {
            return Err(CodecError::Invalid("hnsw node level exceeds layer count"));
        }
        let mut links: Vec<Vec<Vec<u32>>> = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let mut layer = Vec::with_capacity(n);
            for _ in 0..n {
                let deg = codec::get_count(data, 4)?;
                let mut nbrs = Vec::with_capacity(deg);
                for _ in 0..deg {
                    let nb = codec::get_u32(data)?;
                    if nb as usize >= n {
                        return Err(CodecError::Invalid("hnsw link out of range"));
                    }
                    nbrs.push(nb);
                }
                layer.push(nbrs);
            }
            links.push(layer);
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        for _ in 0..n {
            let _: f64 = rng.random_range(f64::EPSILON..1.0);
        }
        Ok(HnswIndex {
            params,
            store,
            links,
            node_layer,
            entry,
            rng,
            level_norm: 1.0 / (params.m as f64).ln(),
        })
    }
}

impl VectorIndex for HnswIndex {
    fn len(&self) -> usize {
        self.node_layer.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn codec(&self) -> Codec {
        self.store.codec()
    }

    fn vector_owned(&self, id: usize) -> Vec<f32> {
        self.store.row_owned(id)
    }

    /// Insert a vector (quantized to the store's codec), returning its id.
    fn add(&mut self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim());
        let id = self.len();
        self.store.push(v);
        let level = self.random_level();
        self.node_layer.push(level as u8);
        while self.links.len() <= level {
            self.links.push(Vec::new());
        }
        for layer in self.links.iter_mut() {
            layer.resize(id + 1, Vec::new());
        }
        let Some(mut cur) = self.entry else {
            self.entry = Some(id);
            return id;
        };

        let top = self.links.len() - 1;
        // Descend through layers above the new node's level greedily.
        for layer in ((level + 1)..=top).rev() {
            if self.links[layer].len() > cur && !self.links[layer][cur].is_empty()
                || self.node_at_layer(cur, layer)
            {
                cur = self.greedy_closest(v, cur, layer);
            }
        }
        // Connect on each layer from min(level, old_top) down to 0.
        let start_layer = level.min(top);
        for layer in (0..=start_layer).rev() {
            let found = self.search_layer(v, cur, self.params.ef_construction, layer);
            cur = found.first().map(|n| n.id).unwrap_or(cur);
            let max_deg = self.max_degree(layer);
            let selected = Self::select_neighbors(found, max_deg);
            for &nb in &selected {
                let nb = nb as usize;
                self.links[layer][id].push(nb as u32);
                self.links[layer][nb].push(id as u32);
                // Prune over-full neighbor lists. The pruned node is
                // dequantized once (a no-op copy on f32) so node-to-node
                // distances reuse the same asymmetric kernel.
                if self.links[layer][nb].len() > max_deg {
                    let nbv = self.store.row_owned(nb);
                    let cands: Vec<Neighbor> = self.links[layer][nb]
                        .iter()
                        .map(|&x| Neighbor::new(x as usize, self.dist(&nbv, x as usize)))
                        .collect();
                    self.links[layer][nb] = Self::select_neighbors(cands, max_deg);
                }
            }
        }
        // A node on a new top layer becomes the entry point.
        if level > self.node_layer[self.entry.expect("non-empty")] as usize {
            self.entry = Some(id);
        }
        id
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim());
        let Some(mut cur) = self.entry else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let top = self.links.len() - 1;
        for layer in (1..=top).rev() {
            cur = self.greedy_closest(query, cur, layer);
        }
        let ef = self.params.ef_search.max(k);
        let mut found = self.search_layer(query, cur, ef, 0);
        found.truncate(k);
        found
    }

    fn encode_with(&self, buf: &mut BytesMut, codec: Codec) {
        buf.put_u8(codec::TAG_HNSW2);
        buf.put_u64(self.params.m as u64);
        buf.put_u64(self.params.ef_construction as u64);
        buf.put_u64(self.params.ef_search as u64);
        buf.put_u64(self.params.seed);
        af_store::put_store_as(buf, &self.store, codec);
        for &l in &self.node_layer {
            buf.put_u8(l);
        }
        buf.put_u64(self.entry.map_or(u64::MAX, |e| e as u64));
        buf.put_u64(self.links.len() as u64);
        for layer in &self.links {
            debug_assert_eq!(layer.len(), self.len());
            for nbrs in layer {
                buf.put_u64(nbrs.len() as u64);
                for &nb in nbrs {
                    buf.put_u32(nb);
                }
            }
        }
    }

    fn clone_box(&self) -> Box<dyn VectorIndex> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::test_util::lcg_vectors as random_data;

    #[test]
    fn self_query_exact() {
        let dim = 16;
        let data = random_data(300, dim, 1);
        let idx = HnswIndex::build(&data, dim, HnswParams::default());
        for q in [0usize, 50, 123, 299] {
            let out = idx.search(&data[q * dim..(q + 1) * dim], 1);
            assert_eq!(out[0].id, q);
        }
    }

    #[test]
    fn recall_vs_flat() {
        let dim = 16;
        let n = 2000;
        let data = random_data(n, dim, 2);
        let hnsw = HnswIndex::build(&data, dim, HnswParams::default());
        let flat = FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()));
        let queries = random_data(50, dim, 3);
        let mut hits = 0;
        let mut total = 0;
        for q in queries.chunks(dim) {
            let approx: Vec<usize> = hnsw.search(q, 10).iter().map(|n| n.id).collect();
            let exact: Vec<usize> = flat.search(q, 10).iter().map(|n| n.id).collect();
            total += exact.len();
            hits += exact.iter().filter(|id| approx.contains(id)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.85, "recall@10 = {recall}");
    }

    #[test]
    fn results_sorted_ascending() {
        let dim = 8;
        let data = random_data(500, dim, 4);
        let idx = HnswIndex::build(&data, dim, HnswParams::default());
        let out = idx.search(&random_data(1, dim, 5), 20);
        assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn empty_and_tiny_indexes() {
        let idx = HnswIndex::new(4, HnswParams::default());
        assert!(idx.search(&[0.0; 4], 5).is_empty());
        let mut idx = HnswIndex::new(2, HnswParams::default());
        idx.add(&[1.0, 1.0]);
        let out = idx.search(&[0.0, 0.0], 3);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 0);
    }

    #[test]
    fn deterministic_build() {
        let dim = 8;
        let data = random_data(200, dim, 6);
        let a = HnswIndex::build(&data, dim, HnswParams::default());
        let b = HnswIndex::build(&data, dim, HnswParams::default());
        let q = random_data(1, dim, 7);
        assert_eq!(
            a.search(&q, 5).iter().map(|n| n.id).collect::<Vec<_>>(),
            b.search(&q, 5).iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplicate_vectors_handled() {
        let dim = 4;
        let mut data = Vec::new();
        for _ in 0..50 {
            data.extend_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        }
        let idx = HnswIndex::build(&data, dim, HnswParams::default());
        let out = idx.search(&[1.0, 2.0, 3.0, 4.0], 5);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|n| n.dist < 1e-9));
    }
}
