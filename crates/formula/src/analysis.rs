//! Formula analysis used by the sensitivity studies.
//!
//! §5.4 buckets formulas by *complexity* (AST node count, Fig. 10) and by
//! *type* — conditional / math / string / date / other (Fig. 11).

use crate::ast::Expr;
use std::fmt;

/// The paper's five formula-type buckets (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormulaType {
    /// Uses IF-style branching (IF/IFERROR/AND/OR/NOT/…).
    Conditional,
    /// Numeric computation or aggregation.
    Math,
    /// String manipulation.
    String,
    /// Date manipulation.
    Date,
    /// Anything else (pure references, lookups without math, …).
    Other,
}

impl fmt::Display for FormulaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FormulaType::Conditional => "Conditional",
            FormulaType::Math => "Math",
            FormulaType::String => "String",
            FormulaType::Date => "Date",
            FormulaType::Other => "Other",
        };
        f.write_str(s)
    }
}

impl FormulaType {
    pub const ALL: [FormulaType; 5] = [
        FormulaType::Conditional,
        FormulaType::Math,
        FormulaType::String,
        FormulaType::Date,
        FormulaType::Other,
    ];
}

const CONDITIONAL_FNS: &[&str] =
    &["IF", "IFS", "IFERROR", "IFNA", "AND", "OR", "NOT", "XOR", "SWITCH"];
const STRING_FNS: &[&str] = &[
    "CONCATENATE",
    "CONCAT",
    "LEFT",
    "RIGHT",
    "MID",
    "LEN",
    "UPPER",
    "LOWER",
    "TRIM",
    "SUBSTITUTE",
    "REPT",
    "EXACT",
    "FIND",
    "SEARCH",
    "TEXT",
    "TEXTJOIN",
    "VALUE",
];
const DATE_FNS: &[&str] = &[
    "DATE", "YEAR", "MONTH", "DAY", "WEEKDAY", "DAYS", "TODAY", "NOW", "EDATE", "EOMONTH",
    "DATEDIF",
];
const MATH_FNS: &[&str] = &[
    "SUM",
    "AVERAGE",
    "COUNT",
    "COUNTA",
    "COUNTBLANK",
    "COUNTIF",
    "SUMIF",
    "AVERAGEIF",
    "MIN",
    "MAX",
    "MEDIAN",
    "STDEV",
    "VAR",
    "ABS",
    "INT",
    "ROUND",
    "ROUNDUP",
    "ROUNDDOWN",
    "SQRT",
    "POWER",
    "MOD",
    "EXP",
    "LN",
    "LOG10",
    "SIGN",
    "PRODUCT",
    "CEILING",
    "FLOOR",
    "PI",
    "LARGE",
    "SMALL",
    "RANK",
];

/// Formula complexity: number of AST nodes (§5.4 "we define formula
/// complexity as the number of nodes in its parsed abstract syntax tree").
pub fn complexity(expr: &Expr) -> usize {
    expr.node_count()
}

/// Classify a formula into the paper's five type buckets. Priority when a
/// formula mixes categories: conditional > string > date > math > other
/// (the paper labels `IF(SUM(..)>0,..)` as "conditional (with IF-ELSE)").
pub fn classify(expr: &Expr) -> FormulaType {
    let fns = expr.functions();
    let has = |set: &[&str]| fns.iter().any(|f| set.contains(&f.to_ascii_uppercase().as_str()));
    if has(CONDITIONAL_FNS) {
        return FormulaType::Conditional;
    }
    if has(STRING_FNS) {
        return FormulaType::String;
    }
    if has(DATE_FNS) {
        return FormulaType::Date;
    }
    if has(MATH_FNS) {
        return FormulaType::Math;
    }
    // No recognizable functions: arithmetic operators still count as math.
    let mut has_arith = false;
    let mut has_concat = false;
    expr.walk(&mut |e| match e {
        Expr::Binary(op, _, _) => {
            use crate::ast::BinOp::*;
            match op {
                Add | Sub | Mul | Div | Pow => has_arith = true,
                Concat => has_concat = true,
                _ => {}
            }
        }
        Expr::Unary(_, _) => has_arith = true,
        _ => {}
    });
    if has_concat {
        FormulaType::String
    } else if has_arith {
        FormulaType::Math
    } else {
        FormulaType::Other
    }
}

/// The complexity buckets of Fig. 10, as (label, predicate) pairs.
pub fn length_bucket(len: usize) -> &'static str {
    match len {
        0..=2 => "l<3",
        3 => "l=3",
        4..=6 => "3<l<7",
        7..=19 => "7<=l<20",
        _ => "20<=l",
    }
}

/// All length-bucket labels in display order.
pub const LENGTH_BUCKETS: [&str; 5] = ["l<3", "l=3", "3<l<7", "7<=l<20", "20<=l"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ty(src: &str) -> FormulaType {
        classify(&parse(src).unwrap())
    }

    #[test]
    fn classification_examples() {
        assert_eq!(ty("IF(A1>0,1,0)"), FormulaType::Conditional);
        assert_eq!(ty("SUM(A1:A9)"), FormulaType::Math);
        assert_eq!(ty("COUNTIF(C7:C37,C41)"), FormulaType::Math);
        assert_eq!(ty("LEFT(A1,3)"), FormulaType::String);
        assert_eq!(ty("YEAR(A1)"), FormulaType::Date);
        assert_eq!(ty("A1"), FormulaType::Other);
        assert_eq!(ty("VLOOKUP(A1,B1:C9,2,FALSE)"), FormulaType::Other);
    }

    #[test]
    fn priority_conditional_wins() {
        assert_eq!(ty("IF(SUM(A1:A9)>0,LEFT(B1,2),\"\")"), FormulaType::Conditional);
    }

    #[test]
    fn operators_without_functions() {
        assert_eq!(ty("A1+B1"), FormulaType::Math);
        assert_eq!(ty("A1&B1"), FormulaType::String);
        assert_eq!(ty("A1=B1"), FormulaType::Other);
    }

    #[test]
    fn complexity_matches_node_count() {
        assert_eq!(complexity(&parse("A1").unwrap()), 1);
        assert_eq!(complexity(&parse("SUM(A1:A9)").unwrap()), 2);
        assert_eq!(complexity(&parse("COUNTIF(C7:C37,C41)").unwrap()), 3);
    }

    #[test]
    fn buckets_cover_all_lengths() {
        assert_eq!(length_bucket(1), "l<3");
        assert_eq!(length_bucket(3), "l=3");
        assert_eq!(length_bucket(5), "3<l<7");
        assert_eq!(length_bucket(10), "7<=l<20");
        assert_eq!(length_bucket(25), "20<=l");
    }
}
