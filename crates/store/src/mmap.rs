//! Read-only memory mapping of artifact files.
//!
//! [`map_file`] returns the file's contents as [`Bytes`] backed by an
//! `mmap(2)` region (page-on-demand, shared page cache) instead of a heap
//! read — so an artifact larger than RAM can be opened and served: only
//! the pages a query actually touches are resident, and the kernel evicts
//! cold ones under pressure. The mapping is page-aligned, which satisfies
//! every alignment the store codecs need for zero-copy adoption, and it is
//! unmapped when the last `Bytes` clone referencing it drops (the owner
//! hook added to the vendored `bytes`).
//!
//! On targets without a raw `mmap` binding — and under Miri, which
//! cannot model foreign `mmap` calls — the function degrades to
//! `std::fs::read`: same `Bytes` out, just heap-resident. That keeps
//! this module's tests runnable in the Miri CI job.
//!
//! The region is mapped `MAP_PRIVATE` + `PROT_READ`. Truncating or
//! rewriting the file while it is mapped is undefined behavior at the OS
//! level (SIGBUS on a truncated page); artifacts are immutable by
//! convention — replace by rename, never in place.

use bytes::Bytes;
use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(all(unix, not(miri), any(target_os = "linux", target_os = "android", target_os = "macos")))]
mod sys {
    use super::*;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    // Raw libc bindings: std already links the platform C library, so the
    // symbols resolve without a `libc` crate dependency (the build
    // environment has no registry access).
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    // Same numeric values on Linux, Android and macOS.
    const MADV_RANDOM: c_int = 1;
    const MADV_WILLNEED: c_int = 3;
    // Linux/Android only; `advise_range` skips it elsewhere.
    const MADV_HUGEPAGE: c_int = 14;

    /// Best-effort `madvise(2)` over the pages spanning `data`. The range
    /// is widened to 4 KiB page boundaries (madvise requires a page-
    /// aligned start); failures are ignored — advice is a hint, and a
    /// slice that is not mmap-backed (heap `Bytes`) simply gets `EINVAL`
    /// or advises unrelated heap pages harmlessly.
    pub fn advise_range(data: &[u8], advice: super::Advice) {
        if data.is_empty() {
            return;
        }
        const PAGE: usize = 4096;
        let start = data.as_ptr() as usize & !(PAGE - 1);
        let end = data.as_ptr() as usize + data.len();
        let advice = match advice {
            super::Advice::WillNeed => MADV_WILLNEED,
            super::Advice::Random => MADV_RANDOM,
            super::Advice::HugePage if cfg!(target_os = "macos") => return,
            super::Advice::HugePage => MADV_HUGEPAGE,
        };
        // SAFETY: the page range covers `data`, which is live memory for
        // the duration of the call; madvise only adjusts paging behavior
        // (PROT/visibility are untouched), and any error is discarded.
        unsafe { madvise(start as *mut c_void, end - start, advice) };
    }

    /// An owned read-only mapping; unmapped on drop.
    pub struct MmapRegion {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the region is immutable (PROT_READ, private) for its whole
    // lifetime, so shared references from any thread are fine.
    unsafe impl Send for MmapRegion {}
    // SAFETY: same argument as Send — immutable for its whole lifetime.
    unsafe impl Sync for MmapRegion {}

    impl AsRef<[u8]> for MmapRegion {
        fn as_ref(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping created in
            // `map`, valid until `drop` unmaps it.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // SAFETY: exactly the region mmap returned; called once.
            unsafe { munmap(self.ptr as *mut c_void, self.len) };
        }
    }

    pub fn map(file: &File, len: usize) -> io::Result<MmapRegion> {
        // SAFETY: fd is open for reading; len equals the file size checked
        // by the caller; a failed map returns MAP_FAILED, checked below.
        let ptr =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(MmapRegion { ptr: ptr as *const u8, len })
    }
}

/// Paging-pattern hint for [`advise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// The range will be read soon — prefetch it (`MADV_WILLNEED`).
    /// Loaders use it on headers and section tables so the first parse
    /// doesn't fault page by page.
    WillNeed,
    /// Accesses will be random — don't read ahead (`MADV_RANDOM`). Scan
    /// structures touched row-at-a-time (fine tables probed by ANN hits)
    /// use it so sparse queries don't drag whole neighborhoods in.
    Random,
    /// Back the range with transparent huge pages where the kernel
    /// supports it (`MADV_HUGEPAGE`; Linux/Android, no-op elsewhere).
    /// Issued over large freshly allocated buffers that are about to be
    /// written end to end — e.g. the reconstructed fine tables of a
    /// compact-layout load — so the sequential first touch takes one soft
    /// fault per 2 MiB instead of one per 4 KiB.
    HugePage,
}

/// Best-effort `madvise(2)` hint over the pages backing `data` — a no-op
/// on targets without the raw syscall layer (and under Miri). Errors are
/// ignored: advice never affects correctness, only paging behavior, and
/// heap-backed `Bytes` (the non-mmap load path) simply don't benefit.
pub fn advise(data: &[u8], advice: Advice) {
    #[cfg(all(
        unix,
        not(miri),
        any(target_os = "linux", target_os = "android", target_os = "macos")
    ))]
    sys::advise_range(data, advice);
    #[cfg(not(all(
        unix,
        not(miri),
        any(target_os = "linux", target_os = "android", target_os = "macos")
    )))]
    let _ = (data, advice);
}

/// Map `path` read-only and return its contents as zero-copy [`Bytes`].
/// Empty files yield empty `Bytes` without a mapping (zero-length `mmap`
/// is an error on POSIX).
pub fn map_file(path: &Path) -> io::Result<Bytes> {
    let file = File::open(path)?;
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(Bytes::new());
    }
    let len = usize::try_from(len)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space"))?;
    map_file_impl(&file, len, path)
}

#[cfg(all(unix, not(miri), any(target_os = "linux", target_os = "android", target_os = "macos")))]
fn map_file_impl(file: &File, len: usize, _path: &Path) -> io::Result<Bytes> {
    Ok(Bytes::from_owner(sys::map(file, len)?))
}

#[cfg(not(all(
    unix,
    not(miri),
    any(target_os = "linux", target_os = "android", target_os = "macos")
)))]
fn map_file_impl(_file: &File, _len: usize, path: &Path) -> io::Result<Bytes> {
    Ok(Bytes::from(std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("af_store_mmap_{}_{name}", std::process::id()));
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn maps_file_contents() {
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let p = tmp("payload", &payload);
        let b = map_file(&p).expect("map");
        assert_eq!(&*b, &payload[..]);
        // Slices keep the mapping alive after the original drops.
        let tail = b.slice(payload.len() - 8..);
        drop(b);
        assert_eq!(&*tail, &payload[payload.len() - 8..]);
        drop(tail);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn mapping_is_page_aligned() {
        let p = tmp("aligned", &[1u8; 64]);
        let b = map_file(&p).expect("map");
        assert!(
            (b.as_ptr() as usize).is_multiple_of(4096) || !cfg!(target_os = "linux") || cfg!(miri),
            "mmap base must be page-aligned"
        );
        drop(b);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn advise_is_harmless_on_any_slice() {
        // Mapped pages, heap bytes, interior slices, empty slices: advice
        // must never fail, panic, or alter contents.
        let payload: Vec<u8> = (0..50_000u32).map(|i| i as u8).collect();
        let p = tmp("advised", &payload);
        let b = map_file(&p).expect("map");
        advise(&b, Advice::WillNeed);
        advise(&b[1000..40_000], Advice::Random);
        advise(&[], Advice::WillNeed);
        let heap = vec![7u8; 100];
        advise(&heap, Advice::Random);
        assert_eq!(&*b, &payload[..]);
        drop(b);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn empty_file_and_missing_file() {
        let p = tmp("empty", b"");
        assert!(map_file(&p).expect("map empty").is_empty());
        std::fs::remove_file(&p).unwrap();
        assert!(map_file(Path::new("/no/such/af_store_file")).is_err());
    }
}
