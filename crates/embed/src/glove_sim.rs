//! `GloveSim` — the GloVe stand-in: a word embedding *trained on the
//! corpus* by weighted co-occurrence factorization (Pennington et al.),
//! scaled down to run in milliseconds.
//!
//! Compared to [`crate::SbertSim`], this embedder is lower-dimensional and
//! much cheaper per string (word lookups, no n-grams), reproducing the
//! GloVe side of the paper's quality/efficiency trade-off (Figs. 8, 12).

use crate::hashing::{fnv1a, rehash};
use crate::tokenize::words;
use crate::TextEmbedder;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Word-level corpus-trained embedder (GloVe stand-in).
pub struct GloveSim {
    dim: usize,
    vocab: HashMap<String, usize>,
    vectors: Vec<f32>,
    cache: Mutex<HashMap<String, Arc<Vec<f32>>>>,
}

/// Training hyperparameters for [`GloveSim::train`].
#[derive(Debug, Clone, Copy)]
pub struct GloveParams {
    pub dim: usize,
    pub window: usize,
    pub epochs: usize,
    pub lr: f32,
    pub max_vocab: usize,
    pub min_count: usize,
    pub seed: u64,
}

impl Default for GloveParams {
    fn default() -> Self {
        GloveParams {
            dim: 32,
            window: 4,
            epochs: 12,
            lr: 0.05,
            max_vocab: 20_000,
            min_count: 2,
            seed: 0x610e,
        }
    }
}

const CACHE_CAP: usize = 200_000;

impl GloveSim {
    /// Train on an iterator of texts (cell values, sheet names, …).
    pub fn train<'a>(texts: impl Iterator<Item = &'a str>, params: GloveParams) -> GloveSim {
        // Pass 1: tokenize everything once, count words.
        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut docs: Vec<Vec<String>> = Vec::new();
        for t in texts {
            let ws = words(t);
            for w in &ws {
                *counts.entry(w.clone()).or_insert(0) += 1;
            }
            if !ws.is_empty() {
                docs.push(ws);
            }
        }
        // Vocab: frequent words, capped, deterministic order.
        let mut by_freq: Vec<(String, usize)> =
            counts.into_iter().filter(|(_, c)| *c >= params.min_count).collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        by_freq.truncate(params.max_vocab);
        let vocab: HashMap<String, usize> =
            by_freq.into_iter().enumerate().map(|(i, (w, _))| (w, i)).collect();
        let v = vocab.len();

        // Pass 2: co-occurrence counts within the window.
        let mut cooc: HashMap<(u32, u32), f32> = HashMap::new();
        for doc in &docs {
            let ids: Vec<Option<usize>> = doc.iter().map(|w| vocab.get(w).copied()).collect();
            for i in 0..ids.len() {
                let Some(wi) = ids[i] else { continue };
                let hi = (i + params.window + 1).min(ids.len());
                for (j, idj) in ids.iter().enumerate().take(hi).skip(i + 1) {
                    let Some(wj) = *idj else { continue };
                    let weight = 1.0 / (j - i) as f32;
                    let key =
                        if wi <= wj { (wi as u32, wj as u32) } else { (wj as u32, wi as u32) };
                    *cooc.entry(key).or_insert(0.0) += weight;
                }
            }
        }
        let mut pairs: Vec<((u32, u32), f32)> = cooc.into_iter().collect();
        pairs.sort_by_key(|(k, _)| *k); // determinism

        // SGD on the GloVe objective with AdaGrad, symmetric factors.
        let mut rng = StdRng::seed_from_u64(params.seed);
        let d = params.dim;
        let mut w: Vec<f32> = (0..v * d).map(|_| rng.random_range(-0.5..0.5) / d as f32).collect();
        let mut b: Vec<f32> = vec![0.0; v];
        let mut gw: Vec<f32> = vec![1.0; v * d];
        let mut gb: Vec<f32> = vec![1.0; v];
        let x_max = 30.0f32;
        let alpha = 0.75f32;
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for _epoch in 0..params.epochs {
            // Deterministic shuffle per epoch.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for &pi in &order {
                let ((a, c), x) = pairs[pi];
                let (a, c) = (a as usize, c as usize);
                let f = if x < x_max { (x / x_max).powf(alpha) } else { 1.0 };
                let wa = a * d;
                let wc = c * d;
                let mut dot = b[a] + b[c];
                for k in 0..d {
                    dot += w[wa + k] * w[wc + k];
                }
                let diff = dot - x.ln();
                let g = f * diff;
                // AdaGrad updates.
                for k in 0..d {
                    let ga = g * w[wc + k];
                    let gc = g * w[wa + k];
                    w[wa + k] -= params.lr * ga / gw[wa + k].sqrt();
                    w[wc + k] -= params.lr * gc / gw[wc + k].sqrt();
                    gw[wa + k] += ga * ga;
                    gw[wc + k] += gc * gc;
                }
                b[a] -= params.lr * g / gb[a].sqrt();
                b[c] -= params.lr * g / gb[c].sqrt();
                gb[a] += g * g;
                gb[c] += g * g;
            }
        }
        GloveSim { dim: d, vocab, vectors: w, cache: Mutex::new(HashMap::new()) }
    }

    /// An untrained fallback (pure hashed word vectors) for tests and for
    /// cold-start settings with no corpus.
    pub fn untrained(dim: usize) -> GloveSim {
        GloveSim {
            dim,
            vocab: HashMap::new(),
            vectors: Vec::new(),
            cache: Mutex::new(HashMap::new()),
        }
    }

    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Rebuild a trained embedder from [`crate::TextEmbedder::export_state`]
    /// output. `None` on truncated or inconsistent state.
    pub fn from_state(dim: usize, state: &[u8]) -> Option<GloveSim> {
        use bytes::{Buf, Bytes};
        if dim == 0 {
            return None;
        }
        let mut data = Bytes::from(state.to_vec());
        let n_words = data.try_get_u64()? as usize;
        // Each word costs at least its 4-byte length prefix.
        if n_words > data.remaining() / 4 {
            return None;
        }
        let mut vocab = HashMap::with_capacity(n_words);
        for id in 0..n_words {
            let len = data.try_get_u32()? as usize;
            if data.remaining() < len {
                return None;
            }
            let word = String::from_utf8(data.split_to(len).to_vec()).ok()?;
            if vocab.insert(word, id).is_some() {
                return None; // duplicate word
            }
        }
        let n_vec = data.try_get_u64()? as usize;
        if n_vec != n_words.checked_mul(dim)? || data.remaining() != n_vec * 4 {
            return None;
        }
        let mut vectors = Vec::with_capacity(n_vec);
        for _ in 0..n_vec {
            vectors.push(data.try_get_f32()?);
        }
        Some(GloveSim { dim, vocab, vectors, cache: Mutex::new(HashMap::new()) })
    }

    /// Deterministic pseudo-random unit-ish vector for out-of-vocabulary
    /// words, so unseen words still compare consistently.
    fn oov_vector(&self, word: &str, out: &mut [f32]) {
        let mut h = fnv1a(word.as_bytes());
        for v in out.iter_mut() {
            h = rehash(h);
            // Map to [-0.5, 0.5).
            *v += ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
        }
    }

    fn compute(&self, text: &str, out: &mut [f32]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        let ws = words(text);
        if ws.is_empty() {
            return;
        }
        let mut tmp = vec![0.0f32; self.dim];
        for w in &ws {
            match self.vocab.get(w) {
                Some(&id) => {
                    let row = &self.vectors[id * self.dim..(id + 1) * self.dim];
                    for (o, &v) in out.iter_mut().zip(row) {
                        *o += v;
                    }
                }
                None => {
                    tmp.iter_mut().for_each(|v| *v = 0.0);
                    self.oov_vector(w, &mut tmp);
                    for (o, &v) in out.iter_mut().zip(&tmp) {
                        *o += v;
                    }
                }
            }
        }
        let norm: f32 = out.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for x in out.iter_mut() {
                *x /= norm;
            }
        }
    }
}

impl TextEmbedder for GloveSim {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, text: &str, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.dim);
        if let Some(hit) = self.cache.lock().get(text) {
            out.copy_from_slice(hit);
            return;
        }
        self.compute(text, out);
        let mut cache = self.cache.lock();
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(text.to_string(), Arc::new(out.to_vec()));
    }

    fn name(&self) -> &'static str {
        "glove-sim"
    }

    /// Vocabulary (in id order) and trained vectors; see
    /// [`GloveSim::from_state`].
    fn export_state(&self) -> Vec<u8> {
        use bytes::{BufMut, BytesMut};
        let mut words: Vec<(&str, usize)> =
            self.vocab.iter().map(|(w, &id)| (w.as_str(), id)).collect();
        words.sort_by_key(|&(_, id)| id);
        let mut buf = BytesMut::new();
        buf.put_u64(words.len() as u64);
        for (w, _) in &words {
            buf.put_u32(w.len() as u32);
            buf.put_slice(w.as_bytes());
        }
        buf.put_u64(self.vectors.len() as u64);
        for &v in &self.vectors {
            buf.put_f32(v);
        }
        buf.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_corpus() -> Vec<&'static str> {
        // Words that co-occur: {cat, dog, pet} vs {sales, revenue, total}.
        vec![
            "the cat is a pet",
            "the dog is a pet",
            "cat and dog play",
            "pet cat pet dog",
            "a pet dog",
            "a pet cat",
            "total sales revenue",
            "sales revenue total",
            "revenue total sales report",
            "total revenue for sales",
            "sales total revenue",
            "quarterly sales revenue total",
        ]
    }

    fn cosine(e: &GloveSim, a: &str, b: &str) -> f32 {
        let mut va = vec![0.0; e.dim()];
        let mut vb = vec![0.0; e.dim()];
        e.embed(a, &mut va);
        e.embed(b, &mut vb);
        va.iter().zip(&vb).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn cooccurring_words_cluster() {
        let e = GloveSim::train(
            toy_corpus().into_iter(),
            GloveParams { dim: 16, epochs: 60, ..Default::default() },
        );
        assert!(e.vocab_size() >= 6);
        let within = cosine(&e, "cat", "dog");
        let across = cosine(&e, "cat", "revenue");
        assert!(within > across, "within {within} across {across}");
    }

    #[test]
    fn oov_words_are_deterministic() {
        let e = GloveSim::untrained(16);
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        e.embed("zzzunseen", &mut a);
        e.embed("zzzunseen", &mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&v| v != 0.0));
        // Different OOV words get different vectors.
        e.embed("otherword", &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn multiword_average_normalized() {
        let e = GloveSim::untrained(8);
        let mut v = vec![0.0; 8];
        e.embed("alpha beta gamma", &mut v);
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = GloveSim::untrained(8);
        let mut v = vec![1.0; 8];
        e.embed("", &mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn training_is_deterministic() {
        let p = GloveParams { dim: 8, epochs: 5, ..Default::default() };
        let a = GloveSim::train(toy_corpus().into_iter(), p);
        let b = GloveSim::train(toy_corpus().into_iter(), p);
        assert_eq!(a.vectors, b.vectors);
    }
}
