//! `af-store` — quantized, mmap-able vector storage.
//!
//! Auto-Formula artifacts are dominated by reference-side embedding tables
//! (region and template-parameter windows): at `AF_SCALE=small` the AFAR
//! file is already ~175 MiB of raw `f32`, and at the paper's intended
//! corpus size (millions of enterprise sheets — see SpreadsheetCoder's
//! scale numbers in PAPERS.md) raw-f32 storage is the scaling wall. This
//! crate owns how those tables are laid out, compressed, and loaded:
//!
//! * **Codecs** — [`Codec::F32`] (exact, the default), [`Codec::F16`]
//!   (2×), and [`Codec::Int8`] (per-vector affine scalar quantization,
//!   4×), behind one [`VectorStore`] interface with *asymmetric* distance
//!   kernels: the f32 query meets the quantized row in the kernel, no
//!   dequantized copy is ever materialized. The kernels mirror
//!   `af_nn::kernel`'s lane structure, so a fused asymmetric distance is
//!   bit-identical to dequantize-then-`l2_sq` — quantization is the only
//!   error source, and `F32` keeps full bit-exactness.
//! * **Wire format** — [`put_store`]/[`get_store`]: little-endian bulk
//!   payloads, 4-byte-aligned via pad runs, adopted zero-copy on load.
//!   Decoding is hardened (bounded counts, finite scale/offset checks):
//!   corrupt input errors, never panics.
//! * **mmap** — [`map_file`] opens a file as page-on-demand [`Bytes`], so
//!   artifacts larger than RAM serve straight from the page cache.
//!
//! [`Bytes`]: bytes::Bytes
//!
//! # Examples
//!
//! ```
//! use af_store::{get_store, put_store, Codec, DenseStore, VectorStore};
//!
//! // Quantize three 4-d vectors to int8 (per-vector affine, 4× smaller).
//! let mut store = DenseStore::new(4, Codec::Int8);
//! store.push(&[0.0, 0.5, 1.0, -1.0]);
//! store.push(&[0.2, 0.1, -0.3, 0.9]);
//! store.push(&[1.0, 1.0, 1.0, 1.0]); // constant rows stay exact
//!
//! // Asymmetric distance: the f32 query meets the codes in the kernel.
//! let q = [0.1, 0.4, 0.9, -0.8];
//! let nearest = (0..store.rows())
//!     .min_by(|&a, &b| store.l2_sq_row(&q, a).total_cmp(&store.l2_sq_row(&q, b)))
//!     .unwrap();
//! assert_eq!(nearest, 0);
//!
//! // Wire round trip: little-endian, 4-byte aligned, zero-copy on load.
//! let mut buf = bytes::BytesMut::new();
//! put_store(&mut buf, &store);
//! let decoded = get_store(&mut buf.freeze()).unwrap();
//! assert_eq!(decoded.rows(), 3);
//! assert_eq!(decoded.codec(), Codec::Int8);
//! ```
#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod dense;
pub mod f16;
pub mod kernel;
pub mod mmap;
pub mod pq;
pub mod sink;

pub use dense::{
    get_store, put_store, put_store_as, Codec, DenseStore, F16Store, F32Store, Int8Store,
    StoreError, VectorStore,
};
pub use f16::{f16_to_f32, f32_to_f16};
pub use mmap::{advise, map_file, Advice};
pub use pq::{AdcTable, PqCodebook, PqStore};
pub use sink::StoreSink;
