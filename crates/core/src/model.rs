//! The two-branch representation model (Fig. 4).
//!
//! Input (per-cell features) → shared dimension-reduction MLP → either
//! * the **coarse branch** `M_c`: a translation-insensitive CNN that
//!   deliberately "blurs" cell boundaries, for fuzzy similar-sheet search;
//!   or
//! * the **fine branch** `M_f`: per-cell fully-connected layers that
//!   *preserve* cell boundaries, for precise similar-region search
//!   (shifting a region by one row must change the embedding — Example 3).
//!
//! Both branches end in L2 normalization (§4.4.4).

use crate::config::AutoFormulaConfig;
use af_nn::layers::{
    Conv2d, GlobalAvgPool, L2Normalize, Layer, Linear, MaxPool2d, Relu, Sequential,
};
use af_nn::serialize::{load_params, save_params, SnapshotError};
use af_nn::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reinterpret `[B·n_cells, C]` per-cell features as an image
/// `[B, C, H, W]` for the CNN (pure permutation; no parameters). Training
/// passes run through pooled scratch tensors like the `af-nn` layers, so
/// repeated steps do not reallocate.
#[derive(Default)]
struct CellsToImage {
    h: usize,
    w: usize,
    c: usize,
    out_pool: Tensor,
    bwd_pool: Tensor,
}

impl CellsToImage {
    fn new(h: usize, w: usize, c: usize) -> CellsToImage {
        CellsToImage { h, w, c, ..Default::default() }
    }

    /// `[B·n, C] → [B, C, H, W]`; `out` must already carry the image shape.
    fn permute_into(&self, x: &Tensor, out: &mut Tensor) {
        let n = self.h * self.w;
        let b = x.shape[0] / n;
        for bi in 0..b {
            for s in 0..n {
                let src = &x.data[(bi * n + s) * self.c..(bi * n + s + 1) * self.c];
                let (i, j) = (s / self.w, s % self.w);
                for (ch, &v) in src.iter().enumerate() {
                    out.data[((bi * self.c + ch) * self.h + i) * self.w + j] = v;
                }
            }
        }
    }

    /// Inverse permutation `[B, C, H, W] → [B·n, C]`.
    fn unpermute_into(&self, grad: &Tensor, out: &mut Tensor) {
        let (b, c, h, w) = (grad.shape[0], grad.shape[1], grad.shape[2], grad.shape[3]);
        let n = h * w;
        for bi in 0..b {
            for ch in 0..c {
                for i in 0..h {
                    for j in 0..w {
                        let s = i * w + j;
                        out.data[(bi * n + s) * c + ch] =
                            grad.data[((bi * c + ch) * h + i) * w + j];
                    }
                }
            }
        }
    }
}

impl Layer for CellsToImage {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let b = x.shape[0] / (self.h * self.w);
        let mut out = std::mem::take(&mut self.out_pool);
        out.reset_for_overwrite(&[b, self.c, self.h, self.w]);
        self.permute_into(&x, &mut out);
        self.bwd_pool = x;
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let (b, h, w) = (grad.shape[0], grad.shape[2], grad.shape[3]);
        let mut out = std::mem::take(&mut self.bwd_pool);
        out.reset_for_overwrite(&[b * h * w, self.c]);
        self.unpermute_into(&grad, &mut out);
        self.out_pool = grad;
        out
    }

    fn infer(&self, x: Tensor) -> Tensor {
        let b = x.shape[0] / (self.h * self.w);
        let mut out = Tensor::zeros(vec![b, self.c, self.h, self.w]);
        self.permute_into(&x, &mut out);
        out
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&[f32])) {}
}

/// The trained representation model: shared reduction + two branch heads.
pub struct RepresentationModel {
    pub feat_dim: usize,
    pub cfg: AutoFormulaConfig,
    /// Shared per-cell reduction MLP: `feat_dim → hidden → cell_dim`.
    pub reduce: Sequential,
    /// Fine branch per-cell head: `cell_dim → cell_dim → fine_cell_dim`
    /// (stacking + L2 happen in `fine_forward`).
    pub fine_head: Sequential,
    fine_norm: L2Normalize,
    /// Coarse branch: CellsToImage → Conv → ReLU → Pool → Conv → ReLU →
    /// GAP → Linear → L2.
    pub coarse_head: Sequential,
}

impl RepresentationModel {
    pub fn new(feat_dim: usize, cfg: AutoFormulaConfig) -> RepresentationModel {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut reduce = Sequential::new();
        reduce.push(Linear::new(&mut rng, feat_dim, cfg.reduce_hidden));
        reduce.push(Relu::new());
        reduce.push(Linear::new(&mut rng, cfg.reduce_hidden, cfg.cell_dim));

        let mut fine_head = Sequential::new();
        fine_head.push(Linear::new(&mut rng, cfg.cell_dim, cfg.cell_dim));
        fine_head.push(Relu::new());
        fine_head.push(Linear::new(&mut rng, cfg.cell_dim, cfg.fine_cell_dim));

        let (c1, c2) = cfg.coarse_channels;
        let mut coarse_head = Sequential::new();
        coarse_head.push(CellsToImage::new(
            cfg.window.rows as usize,
            cfg.window.cols as usize,
            cfg.cell_dim,
        ));
        coarse_head.push(Conv2d::new(&mut rng, cfg.cell_dim, c1, 3));
        coarse_head.push(Relu::new());
        coarse_head.push(MaxPool2d::new(2));
        coarse_head.push(Conv2d::new(&mut rng, c1, c2, 3));
        coarse_head.push(Relu::new());
        coarse_head.push(GlobalAvgPool::new());
        coarse_head.push(Linear::new(&mut rng, c2, cfg.coarse_dim));
        coarse_head.push(L2Normalize::new());

        RepresentationModel {
            feat_dim,
            cfg,
            reduce,
            fine_head,
            fine_norm: L2Normalize::new(),
            coarse_head,
        }
    }

    // ------------------------------------------------------ training mode

    /// Training forward through the coarse branch.
    /// `raw`: `[B, n_cells·feat_dim]` → `[B, coarse_dim]`.
    pub fn coarse_forward(&mut self, raw: Tensor) -> Tensor {
        let b = raw.batch();
        let n = self.cfg.n_cells();
        let cells = raw.reshape_to(&[b * n, self.feat_dim]);
        let reduced = self.reduce.forward(cells);
        self.coarse_head.forward(reduced)
    }

    /// Backward pass matching [`Self::coarse_forward`]. Returns the
    /// gradient w.r.t. the raw input — callers in the training loop
    /// recycle its buffer as the next step's batch tensor.
    pub fn coarse_backward(&mut self, grad: Tensor) -> Tensor {
        let g = self.coarse_head.backward(grad);
        self.reduce.backward(g)
    }

    /// Training forward through the fine branch.
    /// `raw`: `[B, n_cells·feat_dim]` → `[B, n_cells·fine_cell_dim]`
    /// (L2-normalized region embeddings).
    pub fn fine_forward(&mut self, raw: Tensor) -> Tensor {
        let b = raw.batch();
        let n = self.cfg.n_cells();
        let cells = raw.reshape_to(&[b * n, self.feat_dim]);
        let reduced = self.reduce.forward(cells);
        let per_cell = self.fine_head.forward(reduced);
        // [B·n, f] and [B, n·f] share the same row-major layout.
        let stacked = per_cell.reshape_to(&[b, n * self.cfg.fine_cell_dim]);
        self.fine_norm.forward(stacked)
    }

    /// Backward pass matching [`Self::fine_forward`]; returns the raw-input
    /// gradient like [`Self::coarse_backward`].
    pub fn fine_backward(&mut self, grad: Tensor) -> Tensor {
        let b = grad.batch();
        let n = self.cfg.n_cells();
        let g = self.fine_norm.backward(grad);
        let g = g.reshape_to(&[b * n, self.cfg.fine_cell_dim]);
        let g = self.fine_head.backward(g);
        self.reduce.backward(g)
    }

    // ----------------------------------------------------- inference mode

    /// Reduce a batch of per-cell raw features (inference, shareable).
    pub fn reduce_cells(&self, raw: Tensor) -> Tensor {
        self.reduce.infer(raw)
    }

    /// Per-cell fine vectors from reduced features (NOT normalized; the
    /// region embedding normalizes after stacking).
    pub fn fine_cells(&self, reduced: Tensor) -> Tensor {
        self.fine_head.infer(reduced)
    }

    /// Coarse sheet embedding from the reduced top-left window
    /// (`[n_cells, cell_dim]` → `[coarse_dim]`).
    pub fn coarse_from_reduced(&self, reduced: Tensor) -> Vec<f32> {
        let out = self.coarse_head.infer(reduced);
        out.data
    }

    /// Zero all gradients.
    pub fn zero_grad(&mut self) {
        self.reduce.zero_grad();
        self.fine_head.zero_grad();
        self.coarse_head.zero_grad();
    }

    // ------------------------------------------- flat weight/grad exchange
    //
    // Data-parallel training keeps one replica model per gradient shard.
    // Weights flow main → replicas through a flat buffer each step, and
    // shard gradients flow back the same way, reduced in fixed shard
    // order so worker count never changes the arithmetic.

    /// Copy all weights into `out` (cleared first; stable order).
    pub fn export_weights_into(&mut self, out: &mut Vec<f32>) {
        out.clear();
        af_nn::export_params_into(&mut self.reduce, out);
        af_nn::export_params_into(&mut self.fine_head, out);
        af_nn::export_params_into(&mut self.coarse_head, out);
    }

    /// Overwrite all weights from a flat buffer produced by
    /// [`Self::export_weights_into`] on an identically-shaped model.
    pub fn import_weights_from(&mut self, src: &[f32]) {
        let mut off = 0usize;
        off += af_nn::import_params_from(&mut self.reduce, &src[off..]);
        off += af_nn::import_params_from(&mut self.fine_head, &src[off..]);
        off += af_nn::import_params_from(&mut self.coarse_head, &src[off..]);
        assert_eq!(off, src.len(), "weight buffer does not match architecture");
    }

    /// Copy all accumulated gradients into `out` (cleared first).
    pub fn export_grads_into(&mut self, out: &mut Vec<f32>) {
        out.clear();
        af_nn::export_grads_into(&mut self.reduce, out);
        af_nn::export_grads_into(&mut self.fine_head, out);
        af_nn::export_grads_into(&mut self.coarse_head, out);
    }

    /// Add a flat gradient buffer (from [`Self::export_grads_into`] on a
    /// replica) into this model's gradients.
    pub fn accumulate_grads_from(&mut self, src: &[f32]) {
        let mut off = 0usize;
        off += af_nn::accumulate_grads_from(&mut self.reduce, &src[off..]);
        off += af_nn::accumulate_grads_from(&mut self.fine_head, &src[off..]);
        off += af_nn::accumulate_grads_from(&mut self.coarse_head, &src[off..]);
        assert_eq!(off, src.len(), "gradient buffer does not match architecture");
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.reduce.param_count() + self.fine_head.param_count() + self.coarse_head.param_count()
    }

    // --------------------------------------------------------- snapshots

    /// Serialize all weights. Read-only: a model being served can be
    /// snapshotted without pausing inference.
    pub fn to_bytes(&self) -> Bytes {
        let parts = [
            save_params(&self.reduce),
            save_params(&self.fine_head),
            save_params(&self.coarse_head),
        ];
        let mut buf = BytesMut::new();
        buf.put_u32(parts.len() as u32);
        for p in &parts {
            buf.put_u64(p.len() as u64);
            buf.put_slice(p);
        }
        buf.freeze()
    }

    /// Restore weights into a model of identical architecture.
    pub fn load_bytes(&mut self, mut data: Bytes) -> Result<(), SnapshotError> {
        if data.remaining() < 4 {
            return Err(SnapshotError::Truncated);
        }
        let n = data.get_u32();
        if n != 3 {
            return Err(SnapshotError::BlockCountMismatch { expected: 3, got: n as usize });
        }
        for target in [&mut self.reduce, &mut self.fine_head, &mut self.coarse_head] {
            if data.remaining() < 8 {
                return Err(SnapshotError::Truncated);
            }
            let len = data.get_u64() as usize;
            if data.remaining() < len {
                return Err(SnapshotError::Truncated);
            }
            let part = data.split_to(len);
            load_params(target, part)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn tiny_model() -> (RepresentationModel, usize) {
        let cfg = AutoFormulaConfig::test_tiny();
        let feat_dim = 20;
        (RepresentationModel::new(feat_dim, cfg), feat_dim)
    }

    fn random_raw(rng: &mut StdRng, b: usize, n: usize, fd: usize) -> Tensor {
        Tensor::new(
            vec![b, n * fd],
            (0..b * n * fd).map(|_| rng.random_range(-0.5..0.5f32)).collect(),
        )
    }

    #[test]
    fn forward_shapes() {
        let (mut m, fd) = tiny_model();
        let n = m.cfg.n_cells();
        let mut rng = StdRng::seed_from_u64(1);
        let raw = random_raw(&mut rng, 3, n, fd);
        let coarse = m.coarse_forward(raw.clone());
        assert_eq!(coarse.shape, vec![3, m.cfg.coarse_dim]);
        m.coarse_backward(Tensor::zeros(coarse.shape.clone()));
        let fine = m.fine_forward(raw);
        assert_eq!(fine.shape, vec![3, m.cfg.fine_dim()]);
        m.fine_backward(Tensor::zeros(fine.shape.clone()));
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let (mut m, fd) = tiny_model();
        let n = m.cfg.n_cells();
        let mut rng = StdRng::seed_from_u64(2);
        let raw = random_raw(&mut rng, 2, n, fd);
        let coarse = m.coarse_forward(raw.clone());
        for b in 0..2 {
            let norm: f32 = coarse.row(b).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "coarse norm {norm}");
        }
        m.coarse_backward(Tensor::zeros(coarse.shape.clone()));
        let fine = m.fine_forward(raw);
        for b in 0..2 {
            let norm: f32 = fine.row(b).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "fine norm {norm}");
        }
    }

    #[test]
    fn fine_embedding_distinguishes_row_shift() {
        // The defining property of the fine branch (Example 3): the same
        // content shifted by one row must produce a different embedding.
        let (m, fd) = tiny_model();
        let n = m.cfg.n_cells();
        let w = m.cfg.window.cols as usize;
        let mut rng = StdRng::seed_from_u64(3);
        let base = random_raw(&mut rng, 1, n, fd);
        // Shift content down one row.
        let mut shifted = Tensor::zeros(base.shape.clone());
        shifted.data[w * fd..n * fd].copy_from_slice(&base.data[..(n - w) * fd]);
        let mut m = m;
        let e1 = m.fine_forward(base);
        m.fine_backward(Tensor::zeros(e1.shape.clone()));
        let e2 = m.fine_forward(shifted);
        let d: f32 = e1.data.iter().zip(&e2.data).map(|(a, b)| (a - b) * (a - b)).sum();
        assert!(d > 1e-3, "shifted region should differ (d={d})");
    }

    #[test]
    fn infer_matches_training_forward() {
        let (mut m, fd) = tiny_model();
        let n = m.cfg.n_cells();
        let mut rng = StdRng::seed_from_u64(4);
        let raw = random_raw(&mut rng, 1, n, fd);
        // Inference path: reduce → coarse head.
        let cells = raw.clone().reshape(vec![n, fd]);
        let reduced = m.reduce_cells(cells);
        let via_infer = m.coarse_from_reduced(reduced);
        let via_train = m.coarse_forward(raw);
        for (a, b) in via_infer.iter().zip(&via_train.data) {
            assert!((a - b).abs() < 1e-5);
        }
        m.coarse_backward(Tensor::zeros(via_train.shape.clone()));
    }

    #[test]
    fn snapshot_round_trip() {
        let (mut a, fd) = tiny_model();
        let cfg = a.cfg;
        let mut b = RepresentationModel::new(fd, AutoFormulaConfig { seed: 999, ..cfg });
        let n = cfg.n_cells();
        let mut rng = StdRng::seed_from_u64(5);
        let raw = random_raw(&mut rng, 1, n, fd);
        let ea = a.coarse_forward(raw.clone());
        a.coarse_backward(Tensor::zeros(ea.shape.clone()));
        let snap = a.to_bytes();
        b.load_bytes(snap).unwrap();
        let eb = b.coarse_forward(raw);
        assert_eq!(ea.data, eb.data);
    }

    #[test]
    fn param_count_positive() {
        let (m, _) = tiny_model();
        assert!(m.param_count() > 1000);
    }
}
