//! Tests for the model checker itself: the classic litmus shapes it must
//! decide correctly (pass what the memory model guarantees, fail what it
//! doesn't), determinism of exploration, and tractability bounds.
//!
//! These are the checker's teeth certificates: every `model_expect_failure`
//! here is a race the memory model really allows, so a checker that
//! misses it would also rubber-stamp a broken serving protocol.

use af_check::{
    model, model_expect_failure, thread, AtomicUsizeShim, CheckArc, CheckAtomicUsize, CheckMutex,
    Model, MutexShim,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;

// ----------------------------------------------------- message passing

/// Message passing with Release/Acquire is guaranteed: reading the flag
/// via Acquire after its Release store makes the data store visible.
#[test]
fn message_passing_release_acquire_passes() {
    model(|| {
        let data = Arc::new(CheckAtomicUsize::new(0));
        let flag = Arc::new(CheckAtomicUsize::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "acquire must see the data");
        }
        t.join();
    });
}

/// The same shape with a Relaxed flag is NOT guaranteed — the checker
/// must find the interleaving where the reader sees the flag but stale
/// data. This is the core missing-`Acquire` bug class.
#[test]
fn message_passing_relaxed_fails() {
    let v = model_expect_failure(|| {
        let data = Arc::new(CheckAtomicUsize::new(0));
        let flag = Arc::new(CheckAtomicUsize::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data past a relaxed flag");
        }
        t.join();
    });
    assert!(v.message.contains("stale data"), "unexpected violation: {v}");
    assert!(!v.schedule.is_empty(), "violation must carry a replay schedule");
}

// ----------------------------------------------------- store buffering

/// Store buffering under SeqCst: both threads store then load the other's
/// location; at least one must see the other's store. Guaranteed only by
/// the single total order of SeqCst — the exact property the left-right
/// announce/confirm handshake leans on.
#[test]
fn store_buffering_seqcst_passes() {
    model(|| {
        let x = Arc::new(CheckAtomicUsize::new(0));
        let y = Arc::new(CheckAtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r2 = x.load(Ordering::SeqCst);
        let r1 = t.join();
        assert!(r1 == 1 || r2 == 1, "SeqCst forbids both threads reading 0");
    });
}

/// Store buffering with Acquire/Release only is allowed to end with both
/// threads reading 0 — the checker must find it. This is why the four
/// SB-critical left-right operations stay SeqCst after the relaxation.
#[test]
fn store_buffering_acq_rel_fails() {
    let v = model_expect_failure(|| {
        let x = Arc::new(CheckAtomicUsize::new(0));
        let y = Arc::new(CheckAtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Release);
            y2.load(Ordering::Acquire)
        });
        y.store(1, Ordering::Release);
        let r2 = x.load(Ordering::Acquire);
        let r1 = t.join();
        assert!(r1 == 1 || r2 == 1, "store buffering: both threads read 0");
    });
    assert!(v.message.contains("store buffering"), "unexpected violation: {v}");
}

// -------------------------------------------------------------- mutex

/// A mutex-guarded read-modify-write never loses an update.
#[test]
fn mutex_excludes() {
    model(|| {
        let m = Arc::new(<CheckMutex<usize> as MutexShim<usize>>::new(0));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            let mut g = m2.lock();
            *g += 1;
        });
        {
            let mut g = m.lock();
            *g += 1;
        }
        t.join();
        assert_eq!(*m.lock(), 2);
    });
}

/// The same increment done as unsynchronized load+store loses updates on
/// some interleaving — the checker must find the lost update.
#[test]
fn unsynchronized_increment_fails() {
    let v = model_expect_failure(|| {
        let c = Arc::new(CheckAtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(v.message.contains("lost update"), "unexpected violation: {v}");
}

/// `fetch_add` (modeled RMW atomicity) never loses an update.
#[test]
fn fetch_add_is_atomic() {
    model(|| {
        let c = Arc::new(CheckAtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        t.join();
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
}

// ------------------------------------------------------------ CheckArc

/// Counted clone/drop across threads is clean.
#[test]
fn check_arc_clone_drop_passes() {
    model(|| {
        let a = CheckArc::new(7usize);
        let b = a.clone();
        let t = thread::spawn(move || {
            assert_eq!(*b, 7);
            drop(b);
        });
        assert_eq!(*a, 7);
        drop(a);
        t.join();
    });
}

/// An alias that escaped refcount accounting (what a lost left-right
/// guard produces) is detected as use-after-free once the counted
/// handles are gone.
#[test]
fn check_arc_lost_guard_fails() {
    let v = model_expect_failure(|| {
        let a = CheckArc::new(7usize);
        let leaked = a.leak_alias();
        let t = thread::spawn(move || {
            drop(a);
        });
        t.join();
        let _ = *leaked;
    });
    assert!(v.message.contains("use-after-free"), "unexpected violation: {v}");
}

// ---------------------------------------------- determinism and bounds

/// Same model, same seed → bit-identical exploration: equal interleaving
/// counts and equal schedule digests. The digest folds every decision of
/// every execution, so equality means the whole exploration replayed.
#[test]
fn exploration_is_deterministic() {
    let build = || {
        Model::new().max_interleavings(200).random_fallback(50).seed(0x0D15_EA5E).check(|| {
            let x = Arc::new(CheckAtomicUsize::new(0));
            let y = Arc::new(CheckAtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Release);
                y2.load(Ordering::Acquire);
            });
            y.store(1, Ordering::Release);
            x.load(Ordering::Acquire);
            t.join();
        })
    };
    let a = build().expect("no violation");
    let b = build().expect("no violation");
    assert_eq!(a.schedule_digest, b.schedule_digest, "same seed must replay the same schedules");
    assert_eq!(a.interleavings, b.interleavings);
    assert_eq!(a.max_depth, b.max_depth);
}

/// A different seed explores a different random tail (sanity check that
/// the seed actually feeds the fallback).
#[test]
fn seed_changes_random_fallback() {
    let run = |seed: u64| {
        Model::new().max_interleavings(4).random_fallback(40).seed(seed).check(|| {
            let x = Arc::new(CheckAtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                x2.store(2, Ordering::Relaxed);
            });
            x.load(Ordering::Relaxed);
            x.load(Ordering::Relaxed);
            t.join();
        })
    };
    let a = run(1).expect("no violation");
    let b = run(2).expect("no violation");
    assert!(a.random_runs > 0, "model too small to exercise the fallback");
    assert_ne!(a.schedule_digest, b.schedule_digest, "different seeds, same exploration");
}

/// DFS on a small model is exhaustive and stays within a sane bound —
/// the tractability contract that keeps model suites CI-friendly.
#[test]
fn small_model_exhausts_within_bound() {
    let report = Model::new()
        .check(|| {
            let x = Arc::new(CheckAtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                x2.fetch_add(1, Ordering::SeqCst);
                x2.fetch_add(1, Ordering::SeqCst);
            });
            x.fetch_add(1, Ordering::SeqCst);
            x.fetch_add(1, Ordering::SeqCst);
            t.join();
            assert_eq!(x.load(Ordering::SeqCst), 4);
        })
        .expect("no violation");
    assert!(report.exhausted, "two threads x two RMWs must exhaust");
    assert!(report.interleavings >= 6, "2x2 interleavings undercounted: {}", report.interleavings);
    assert!(
        report.interleavings <= 2_000,
        "decision tree exploded: {} interleavings",
        report.interleavings
    );
    assert_eq!(report.truncated, 0);
}

/// A violation report's schedule replays: running the model again bounded
/// to one interleaving... is covered by determinism above; here check the
/// Display form carries both the message and the schedule.
#[test]
fn violation_display_is_actionable() {
    let v = model_expect_failure(|| {
        let x = Arc::new(CheckAtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || x2.store(1, Ordering::Relaxed));
        assert_eq!(x.load(Ordering::Relaxed), 0, "saw the store");
        t.join();
    });
    let s = v.to_string();
    assert!(s.contains("saw the store") && s.contains("schedule"), "{s}");
}

/// Spin-wait loops (left-right drain) terminate under the scheduler: the
/// yielded-thread preference hands the token to whoever can unblock the
/// wait instead of replaying the spin forever.
#[test]
fn spin_wait_drain_terminates() {
    use af_check::{CheckFamily, Family};
    let report = Model::new()
        .check(|| {
            let readers = Arc::new(CheckAtomicUsize::new(1));
            let r2 = Arc::clone(&readers);
            let t = thread::spawn(move || {
                r2.fetch_sub(1, Ordering::Release);
            });
            let mut iter = 0u32;
            while readers.load(Ordering::SeqCst) != 0 {
                <CheckFamily as Family>::spin(iter);
                iter += 1;
            }
            t.join();
        })
        .expect("no violation");
    assert_eq!(report.truncated, 0, "drain loop must not hit the step bound");
    assert!(report.exhausted);
}
