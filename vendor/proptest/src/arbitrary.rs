//! `any::<T>()` support for the `name: Type` argument form of `proptest!`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{RngExt, Standard};
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T`: uniform over the full domain (floats: unit
/// interval, matching what the workspace's tests need from plain-typed
/// arguments).
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Standard> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

impl<T: Standard> Arbitrary for T {
    type Strategy = AnyStrategy<T>;

    fn arbitrary() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// The strategy for `T`'s [`Arbitrary`] impl.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}
