//! Formula abstract syntax trees and the canonical printer.

use af_grid::A1Ref;
use std::fmt;

/// Binary operators, in Excel's precedence classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    /// String concatenation `&`.
    Concat,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// Binding power (higher binds tighter). Comparison < concat <
    /// additive < multiplicative < exponent, as in Excel.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 1,
            BinOp::Concat => 2,
            BinOp::Add | BinOp::Sub => 3,
            BinOp::Mul | BinOp::Div => 4,
            BinOp::Pow => 5,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
            BinOp::Concat => "&",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Plus,
    /// Postfix percent: `50%` is 0.5.
    Percent,
}

/// A formula expression. Formulas "can be arbitrarily complex, with
/// functions, cells, cell ranges, constants, etc., defined in a recursive
/// manner" (§3.3).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Number(f64),
    Text(String),
    Bool(bool),
    Ref(A1Ref),
    /// A rectangular range `start:end` (as written; not normalized so the
    /// printer round-trips).
    Range(A1Ref, A1Ref),
    Call(String, Vec<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Unary(UnOp, Box<Expr>),
}

impl Expr {
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(name.into(), args)
    }

    /// Number of AST nodes — the paper's formula-complexity measure
    /// (§5.4, Fig. 10).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Number(_) | Expr::Text(_) | Expr::Bool(_) | Expr::Ref(_) => 1,
            Expr::Range(_, _) => 1,
            Expr::Call(_, args) => 1 + args.iter().map(Expr::node_count).sum::<usize>(),
            Expr::Binary(_, l, r) => 1 + l.node_count() + r.node_count(),
            Expr::Unary(_, e) => 1 + e.node_count(),
        }
    }

    /// All function names used, in call order (outermost first).
    pub fn functions(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Call(name, _) = e {
                out.push(name.as_str());
            }
        });
        out
    }

    /// All cell references mentioned (each range contributes its two
    /// endpoints), in left-to-right source order — the paper's parameter
    /// cells `R`.
    pub fn param_refs(&self) -> Vec<A1Ref> {
        let mut out = Vec::new();
        self.walk(&mut |e| match e {
            Expr::Ref(r) => out.push(*r),
            Expr::Range(a, b) => {
                out.push(*a);
                out.push(*b);
            }
            _ => {}
        });
        out
    }

    /// Depth-first pre-order traversal.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Binary(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            Expr::Unary(_, e) => e.walk(f),
            _ => {}
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Expr::Binary(op, _, _) => op.precedence(),
            Expr::Unary(UnOp::Neg | UnOp::Plus, _) => 6,
            Expr::Unary(UnOp::Percent, _) => 7,
            _ => 8,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        let my_prec = self.precedence();
        let need_parens = my_prec < parent_prec;
        if need_parens {
            f.write_str("(")?;
        }
        match self {
            Expr::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)?;
                } else {
                    write!(f, "{n}")?;
                }
            }
            Expr::Text(s) => write!(f, "\"{}\"", s.replace('"', "\"\""))?,
            Expr::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" })?,
            Expr::Ref(r) => write!(f, "{r}")?,
            Expr::Range(a, b) => write!(f, "{a}:{b}")?,
            Expr::Call(name, args) => {
                write!(f, "{}(", name.to_ascii_uppercase())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                f.write_str(")")?;
            }
            Expr::Binary(op, l, r) => {
                l.fmt_prec(f, my_prec)?;
                f.write_str(op.symbol())?;
                // Left-associative: the right child needs parens at equal
                // precedence.
                r.fmt_prec(f, my_prec + 1)?;
            }
            Expr::Unary(UnOp::Neg, e) => {
                f.write_str("-")?;
                e.fmt_prec(f, my_prec)?;
            }
            Expr::Unary(UnOp::Plus, e) => {
                f.write_str("+")?;
                e.fmt_prec(f, my_prec)?;
            }
            Expr::Unary(UnOp::Percent, e) => {
                e.fmt_prec(f, my_prec)?;
                f.write_str("%")?;
            }
        }
        if need_parens {
            f.write_str(")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    /// Canonical rendering: uppercase function names, no whitespace, minimal
    /// parentheses. Two formulas match in our evaluation iff their canonical
    /// renderings are equal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_grid::CellRef;

    fn r(s: &str) -> A1Ref {
        s.parse().unwrap()
    }

    #[test]
    fn display_paper_formula() {
        let e = Expr::call("countif", vec![Expr::Range(r("C7"), r("C37")), Expr::Ref(r("C41"))]);
        assert_eq!(e.to_string(), "COUNTIF(C7:C37,C41)");
    }

    #[test]
    fn node_count_counts_every_node() {
        let e = Expr::call(
            "IF",
            vec![
                Expr::Binary(BinOp::Gt, Box::new(Expr::Ref(r("A1"))), Box::new(Expr::Number(0.0))),
                Expr::Text("pos".into()),
                Expr::Text("neg".into()),
            ],
        );
        // IF + (> + A1 + 0) + "pos" + "neg" = 6
        assert_eq!(e.node_count(), 6);
    }

    #[test]
    fn param_refs_in_order() {
        let e = Expr::call("COUNTIF", vec![Expr::Range(r("C7"), r("C37")), Expr::Ref(r("C41"))]);
        let refs = e.param_refs();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0].cell, CellRef::new(6, 2));
        assert_eq!(refs[2].cell, CellRef::new(40, 2));
    }

    #[test]
    fn functions_nested() {
        let e = Expr::call("SUM", vec![Expr::call("ABS", vec![Expr::Ref(r("A1"))])]);
        assert_eq!(e.functions(), ["SUM", "ABS"]);
    }

    #[test]
    fn parenthesization_minimal() {
        // (1+2)*3 must keep parens; 1+(2*3) must not.
        let sum =
            Expr::Binary(BinOp::Add, Box::new(Expr::Number(1.0)), Box::new(Expr::Number(2.0)));
        let e = Expr::Binary(BinOp::Mul, Box::new(sum.clone()), Box::new(Expr::Number(3.0)));
        assert_eq!(e.to_string(), "(1+2)*3");
        let prod =
            Expr::Binary(BinOp::Mul, Box::new(Expr::Number(2.0)), Box::new(Expr::Number(3.0)));
        let e = Expr::Binary(BinOp::Add, Box::new(Expr::Number(1.0)), Box::new(prod));
        assert_eq!(e.to_string(), "1+2*3");
    }

    #[test]
    fn right_child_same_precedence_parenthesized() {
        // 1-(2-3) must keep parens because `-` is left-associative.
        let inner =
            Expr::Binary(BinOp::Sub, Box::new(Expr::Number(2.0)), Box::new(Expr::Number(3.0)));
        let e = Expr::Binary(BinOp::Sub, Box::new(Expr::Number(1.0)), Box::new(inner));
        assert_eq!(e.to_string(), "1-(2-3)");
    }

    #[test]
    fn text_escaping() {
        let e = Expr::Text("say \"hi\"".into());
        assert_eq!(e.to_string(), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn percent_postfix() {
        let e = Expr::Unary(UnOp::Percent, Box::new(Expr::Number(50.0)));
        assert_eq!(e.to_string(), "50%");
    }
}
