//! `auto-formula` — facade crate for the Auto-Formula (SIGMOD 2024)
//! reproduction.
//!
//! Re-exports the workspace crates under stable module names so examples and
//! downstream users can depend on a single crate:
//!
//! ```
//! use auto_formula::grid::Sheet;
//! let sheet = Sheet::new("Quickstart");
//! assert_eq!(sheet.name(), "Quickstart");
//! ```

pub use af_ann as ann;
pub use af_baselines as baselines;
pub use af_core as core;
pub use af_corpus as corpus;
pub use af_embed as embed;
pub use af_formula as formula;
pub use af_grid as grid;
pub use af_nn as nn;
pub use af_serve as serve;
pub use af_store as store;
