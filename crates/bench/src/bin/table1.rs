//! Thin CLI wrapper: regenerates table1 (see DESIGN.md's per-experiment
//! index). `AF_SCALE={tiny,small,full}` scales the synthetic corpora.

fn main() {
    af_bench::report::run_experiment(
        "table1",
        "Table 1: statistics of the four organizations' test corpora",
        af_bench::experiments::table1,
    );
}
