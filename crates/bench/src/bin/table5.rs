//! Regenerates table5 (see DESIGN.md's per-experiment index).
fn main() {
    af_bench::experiments::table5();
}
