//! Naive formula adaptation shared by the non-learned baselines: shift all
//! relative references by the (target − source) offset, exactly what a user
//! pasting a formula into another cell would get. No local context search —
//! this is precisely what Auto-Formula's S3 improves upon.

use af_formula::{parse_formula, Expr};
use af_grid::{A1Ref, CellRef};

/// Offset-rewrite `formula` (authored at `from`) as if pasted at `to`.
/// Absolute (`$`) axes are preserved; a relative reference that would fall
/// off the sheet returns `None`.
pub fn offset_rewrite(formula: &str, from: CellRef, to: CellRef) -> Option<String> {
    let expr = parse_formula(formula).ok()?;
    let dr = to.row as i64 - from.row as i64;
    let dc = to.col as i64 - from.col as i64;
    let shifted = shift_expr(&expr, dr, dc)?;
    Some(shifted.to_string())
}

fn shift_ref(r: &A1Ref, dr: i64, dc: i64) -> Option<A1Ref> {
    let row = if r.abs_row { r.cell.row as i64 } else { r.cell.row as i64 + dr };
    let col = if r.abs_col { r.cell.col as i64 } else { r.cell.col as i64 + dc };
    if row < 0 || col < 0 {
        return None;
    }
    Some(A1Ref {
        cell: CellRef::new(row as u32, col as u32),
        abs_row: r.abs_row,
        abs_col: r.abs_col,
    })
}

fn shift_expr(e: &Expr, dr: i64, dc: i64) -> Option<Expr> {
    Some(match e {
        Expr::Number(n) => Expr::Number(*n),
        Expr::Text(s) => Expr::Text(s.clone()),
        Expr::Bool(b) => Expr::Bool(*b),
        Expr::Ref(r) => Expr::Ref(shift_ref(r, dr, dc)?),
        Expr::Range(a, b) => Expr::Range(shift_ref(a, dr, dc)?, shift_ref(b, dr, dc)?),
        Expr::Call(name, args) => Expr::Call(
            name.clone(),
            args.iter().map(|a| shift_expr(a, dr, dc)).collect::<Option<Vec<_>>>()?,
        ),
        Expr::Binary(op, l, r) => {
            Expr::Binary(*op, Box::new(shift_expr(l, dr, dc)?), Box::new(shift_expr(r, dr, dc)?))
        }
        Expr::Unary(op, x) => Expr::Unary(*op, Box::new(shift_expr(x, dr, dc)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> CellRef {
        s.parse().unwrap()
    }

    #[test]
    fn same_row_paste() {
        let out = offset_rewrite("SUM(B3:F3)", c("G3"), c("G7")).unwrap();
        assert_eq!(out, "SUM(B7:F7)");
    }

    #[test]
    fn absolute_refs_pinned() {
        let out = offset_rewrite("VLOOKUP(A2,$D$1:$E$9,2,FALSE)", c("C2"), c("C5")).unwrap();
        assert_eq!(out, "VLOOKUP(A5,$D$1:$E$9,2,FALSE)");
    }

    #[test]
    fn falls_off_sheet() {
        assert!(offset_rewrite("A1+1", c("B5"), c("B1")).is_none());
    }

    #[test]
    fn constants_untouched() {
        let out = offset_rewrite("IF(G4>40,G4-40,0)", c("H4"), c("H9")).unwrap();
        assert_eq!(out, "IF(G9>40,G9-40,0)");
    }

    #[test]
    fn unparseable_is_none() {
        assert!(offset_rewrite("NOT A FORMULA ((", c("A1"), c("B2")).is_none());
    }
}
