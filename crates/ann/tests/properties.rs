//! Property-based tests on the vector indexes: exactness of the flat scan,
//! result ordering, threshold semantics, and approximate-index recall
//! bounds on arbitrary data.

use af_ann::test_util::lcg_vectors as dataset;
use af_ann::{FlatIndex, HnswIndex, HnswParams, IvfFlatIndex, IvfParams, VectorIndex};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flat_matches_naive_scan(
        n in 1usize..200,
        dim in 1usize..16,
        k in 1usize..12,
        seed in 0u64..1000,
    ) {
        let data = dataset(n, dim, seed);
        let idx = FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()));
        let query = dataset(1, dim, seed ^ 0xFF);
        let got = idx.search(&query, k);
        // Naive reference.
        let mut naive: Vec<(usize, f32)> = data
            .chunks(dim)
            .enumerate()
            .map(|(i, v)| {
                (i, v.iter().zip(&query).map(|(a, b)| (a - b) * (a - b)).sum::<f32>())
            })
            .collect();
        naive.sort_by(|a, b| a.1.total_cmp(&b.1));
        naive.truncate(k);
        prop_assert_eq!(got.len(), naive.len());
        for (g, (_, nd)) in got.iter().zip(&naive) {
            // Allow distance ties to permute ids; distances must agree.
            prop_assert!((g.dist - nd).abs() < 1e-4);
        }
    }

    #[test]
    fn results_sorted_and_within_threshold(
        n in 1usize..120,
        seed in 0u64..1000,
        max_dist in 0.0f32..4.0,
    ) {
        let dim = 8;
        let data = dataset(n, dim, seed);
        let idx = FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()));
        let query = dataset(1, dim, seed ^ 0xAB);
        let out = idx.search_within(&query, n, max_dist);
        prop_assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
        prop_assert!(out.iter().all(|nb| nb.dist <= max_dist));
    }

    #[test]
    fn hnsw_always_finds_exact_duplicates(
        n in 2usize..150,
        seed in 0u64..500,
    ) {
        let dim = 8;
        let data = dataset(n, dim, seed);
        let idx = HnswIndex::build(&data, dim, HnswParams::default());
        // Query with an indexed vector: distance 0 must be found.
        let probe = (seed as usize) % n;
        let out = idx.search(&data[probe * dim..(probe + 1) * dim], 1);
        prop_assert_eq!(out.len(), 1);
        prop_assert!(out[0].dist < 1e-9);
    }

    #[test]
    fn ivf_full_probe_is_exact(
        n in 5usize..150,
        seed in 0u64..500,
    ) {
        let dim = 6;
        let data = dataset(n, dim, seed);
        let lists = (n as f64).sqrt().ceil() as usize;
        let ivf = IvfFlatIndex::build(
            &data,
            dim,
            IvfParams { n_lists: lists, n_probe: lists, ..Default::default() },
        );
        let flat = FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()));
        let query = dataset(1, dim, seed ^ 0x1234);
        let a = ivf.search(&query, 3);
        let b = flat.search(&query, 3);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.dist - y.dist).abs() < 1e-5);
        }
    }
}
