//! Configuration for the Auto-Formula models and pipeline.

use af_ann::{HnswParams, IvfParams};
use af_grid::ViewWindow;

/// Which `af-ann` index serves the sheet-level searches (`Idx_c`, and the
/// fine-signature ablation index when enabled). The paper indexes with
/// Faiss (§4.6, Fig. 8); these are the equivalent layout choices:
///
/// * [`AnnBackend::Flat`] — exact scan. Sub-millisecond up to tens of
///   thousands of sheets; recall is 1.0 by construction. The default.
/// * [`AnnBackend::Hnsw`] — graph search, `O(log n)`-ish queries. Pick for
///   corpora past ~10⁵ sheets where a scan stops fitting the latency
///   budget; tune `ef_search` upward if recall on family-clustered
///   embeddings drops (near-duplicate clumps are the hard case).
/// * [`AnnBackend::Ivf`] — k-means inverted lists (IVF-Flat). Cheapest to
///   build at scale; `n_probe` trades recall for speed. The quantizer is
///   trained at build time and frozen — after heavy incremental growth,
///   rebuild to re-balance the lists.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum AnnBackend {
    /// Exact linear scan (ground truth, the default).
    #[default]
    Flat,
    /// Hierarchical navigable small-world graph with these parameters.
    Hnsw(HnswParams),
    /// IVF-Flat inverted lists with these parameters.
    Ivf(IvfParams),
}

impl AnnBackend {
    /// Stable lower-case label (used in benchmark reports and JSON).
    pub fn label(&self) -> &'static str {
        match self {
            AnnBackend::Flat => "flat",
            AnnBackend::Hnsw(_) => "hnsw",
            AnnBackend::Ivf(_) => "ivf",
        }
    }
}

/// All tunables in one place. Defaults are the laptop-scale settings
/// documented in DESIGN.md (the paper's full-scale values in comments).
#[derive(Debug, Clone, Copy)]
pub struct AutoFormulaConfig {
    /// View window (paper: 100×10; scaled default 40×8).
    pub window: ViewWindow,
    /// Hidden width of the shared per-cell reduction MLP.
    pub reduce_hidden: usize,
    /// Per-cell reduced dimensionality (paper: 16).
    pub cell_dim: usize,
    /// Per-cell output of the fine branch (paper: 16 → 16000-dim regions;
    /// scaled default 8 → 2560-dim regions).
    pub fine_cell_dim: usize,
    /// Channels of the two conv layers in the coarse branch.
    pub coarse_channels: (usize, usize),
    /// Coarse embedding dimensionality (paper: 896; scaled default 64).
    pub coarse_dim: usize,
    /// Triplet margin `m` (FaceNet default 0.2).
    pub margin: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Training episodes (Algorithm 1's `T`).
    pub episodes: usize,
    /// Pairs per mini-batch.
    pub batch_size: usize,
    /// K similar sheets retrieved in S1.
    pub k_sheets: usize,
    /// Neighborhood radius `d` searched in S3.
    pub neighborhood_d: i64,
    /// Spatial prior for S3: candidates pay `lambda · (|Δrow| + |Δcol|)`
    /// on top of embedding distance, breaking near-ties toward the
    /// offset-mapped anchor (Algorithm 2 lines 24–25).
    pub s3_anchor_lambda: f32,
    /// Distance threshold θ on S2 (squared L2 over unit vectors, so in
    /// [0, 4]); predictions above it are suppressed. The PR-curve knob.
    pub theta_region: f32,
    /// Apply sheet-level data augmentation (coarse branch)?
    pub coarse_augmentation: bool,
    /// Apply region-level data augmentation (fine branch)?
    pub fine_augmentation: bool,
    /// Master RNG seed.
    pub seed: u64,
    /// Element-work size below which index scans stay single-threaded
    /// (0 = `af_ann::flat::DEFAULT_PARALLEL_THRESHOLD`).
    pub search_parallel_threshold: usize,
    /// Cap on worker threads for parallel index scans (0 = use every core
    /// `available_parallelism` reports).
    pub search_threads: usize,
    /// Cap on worker threads for batch sheet embedding at index-build time
    /// (0 = use every available core).
    pub embed_threads: usize,
    /// ANN backend serving the sheet-level indexes (see [`AnnBackend`]).
    pub ann_backend: AnnBackend,
    /// Serving shards (`af-serve`): the reference index is partitioned
    /// into this many shards by a deterministic hash of each sheet's
    /// provenance key, queries scatter-gather across them, and a write
    /// clones only ~1/N of the corpus. `0` and `1` both mean unsharded.
    /// Pick roughly `cores / 2` on a write-heavy box; `1` is right for
    /// read-only serving of small corpora (no scatter overhead).
    pub n_shards: usize,
    /// Sheets a serving shard's mutable delta segment may accumulate
    /// before background compaction folds it into the sealed base.
    /// Larger values amortize compaction over more writes but lengthen
    /// the delta scan added to every query on that shard. `0` disables
    /// delta segments entirely: every `add_workbook` grows the base
    /// synchronously (the pre-shard behavior — O(shard) per write).
    pub delta_max_sheets: usize,
    /// Write-path backpressure: when a shard's delta reaches
    /// `delta_max_sheets * backpressure_factor` sheets — the background
    /// compactor is wedged or can't keep up — `add_workbook` folds the
    /// delta into the base *inline* (synchronous O(shard) compaction)
    /// instead of letting the delta grow without bound and regress every
    /// query on that shard toward the O(corpus) scan. `0` disables the
    /// fallback (deltas may grow unboundedly while the compactor is down).
    /// Not persisted in artifacts — a runtime serving knob.
    pub backpressure_factor: usize,
}

impl Default for AutoFormulaConfig {
    fn default() -> Self {
        AutoFormulaConfig {
            window: ViewWindow::new(40, 8),
            reduce_hidden: 32,
            cell_dim: 16,
            fine_cell_dim: 8,
            coarse_channels: (16, 32),
            coarse_dim: 64,
            margin: 0.2,
            lr: 1e-3,
            episodes: 160,
            batch_size: 12,
            k_sheets: 5,
            neighborhood_d: 3,
            s3_anchor_lambda: 0.03,
            theta_region: 0.75,
            coarse_augmentation: true,
            fine_augmentation: true,
            seed: 0xAF_00,
            search_parallel_threshold: 0,
            search_threads: 0,
            embed_threads: 0,
            ann_backend: AnnBackend::Flat,
            n_shards: 1,
            delta_max_sheets: 64,
            backpressure_factor: 4,
        }
    }
}

/// Resolve a thread-cap knob against the machine: `0` means "use every
/// core `available_parallelism` reports", any other value caps it.
pub fn resolve_threads(cap: usize) -> usize {
    let avail = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    if cap == 0 {
        avail
    } else {
        avail.min(cap)
    }
}

impl AutoFormulaConfig {
    /// A very small configuration for unit tests.
    pub fn test_tiny() -> Self {
        AutoFormulaConfig {
            window: ViewWindow::new(12, 5),
            reduce_hidden: 16,
            cell_dim: 8,
            fine_cell_dim: 4,
            coarse_channels: (8, 8),
            coarse_dim: 16,
            episodes: 30,
            batch_size: 6,
            ..Default::default()
        }
    }

    /// Cells per window.
    pub fn n_cells(&self) -> usize {
        self.window.n_cells()
    }

    /// Fine region embedding dimensionality.
    pub fn fine_dim(&self) -> usize {
        self.n_cells() * self.fine_cell_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_dims() {
        let c = AutoFormulaConfig::default();
        assert_eq!(c.n_cells(), 320);
        assert_eq!(c.fine_dim(), 2560);
        let t = AutoFormulaConfig::test_tiny();
        assert_eq!(t.n_cells(), 60);
        assert_eq!(t.fine_dim(), 240);
    }
}
