//! `cargo run --release -p af-bench --bin throughput` — measure train
//! steps/sec, sheets-embedded/sec, and queries/sec at the current
//! `AF_SCALE`, and record them in `BENCH_throughput.json` (pass an output
//! path as the first argument to write elsewhere).

use af_bench::report::{print_table, run_experiment};
use af_bench::throughput;

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_throughput.json".to_string());
    run_experiment("throughput", "BENCH_throughput.json (perf trajectory)", || {
        let r = throughput::measure();
        print_table(
            "throughput",
            &["metric", "value"],
            &[
                vec!["threads".into(), r.threads.to_string()],
                vec!["train steps/sec".into(), format!("{:.2}", r.train_steps_per_sec)],
                vec![
                    "train wall (s)".into(),
                    format!("{:.2} ({} episodes)", r.train_seconds, r.train_episodes),
                ],
                vec!["sheets embedded/sec".into(), format!("{:.2}", r.sheets_embedded_per_sec)],
                vec!["queries/sec".into(), format!("{:.2}", r.queries_per_sec)],
                vec!["predict p50 (ms)".into(), format!("{:.3}", r.predict_p50_ms)],
            ],
        );
        throughput::write_json(&r, std::path::Path::new(&out));
        println!("\nwrote {out}");
    });
}
