//! The deterministic model-checking scheduler.
//!
//! One model *execution* runs the user closure with every shim operation
//! serialized through a token-passing scheduler: exactly one model thread
//! runs at a time, and before each visible operation (atomic access,
//! mutex acquire/release, spawn, join, `CheckArc` refcount traffic) the
//! running thread consults the current *schedule* — a vector of decision
//! indices — to pick which runnable thread performs the next operation.
//! Loads with non-`SeqCst` orderings add further decisions: which of the
//! visible stores the load returns (see the visibility model below).
//!
//! Exploration is bounded exhaustive DFS over that decision vector: run,
//! record `(chosen, alternatives)` at each decision, then backtrack to the
//! deepest decision with an untried alternative and replay. When the DFS
//! budget ([`Model::max_interleavings`]) is exhausted before the tree is,
//! a seeded-random fallback keeps sampling fresh schedules — same
//! machinery, random choice instead of first-untried.
//!
//! # Visibility model (what makes ordering bugs findable)
//!
//! Every atomic location keeps its full modification order (all stores,
//! in order), each store stamped with the writer's vector clock and a
//! release flag. A load may return any store `S` that is not stale:
//! `S` must not precede another store that already happens-before the
//! load, and must not precede a store the thread has already read
//! (per-location coherence). An `Acquire` load that picks a `Release`
//! store joins the store's clock into the reader's (that is the
//! synchronizes-with edge); a `Relaxed` load does not. `SeqCst` accesses
//! are modeled as reading the newest store — exact when the racing
//! stores are also `SeqCst` (the single total order is the scheduler's
//! interleaving), an approximation when `SeqCst` loads race `Relaxed`
//! stores (documented limit; the serving protocols have no such site).
//! RMWs always read the newest store (atomicity). Mutexes carry a
//! release clock: acquire joins it, unlock overwrites it.
//!
//! Spin loops: a shim `spin()` marks the thread *yielded*; the scheduler
//! prefers non-yielded runnable threads, so a spinning thread hands the
//! token to whoever can unblock it without adding decision branches —
//! spin-waiting neither livelocks the model nor blows up the DFS.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

// ------------------------------------------------------------ small bits

/// Sentinel panic payload used to unwind model threads when an execution
/// is aborted (violation found elsewhere, or budget exceeded). Never a
/// user-visible failure by itself.
pub(crate) struct Abort;

pub(crate) fn abort_unwind() -> ! {
    std::panic::panic_any(Abort)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(digest: u64, byte: u64) -> u64 {
    (digest ^ byte).wrapping_mul(FNV_PRIME)
}

/// A vector clock, one component per model thread.
pub(crate) type VClock = Vec<u64>;

pub(crate) fn vc_join(a: &mut VClock, b: &VClock) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (x, &y) in a.iter_mut().zip(b) {
        *x = (*x).max(y);
    }
}

// --------------------------------------------------------- model memory

/// One store in a location's modification order.
pub(crate) struct StoreRec {
    pub val: u64,
    /// The writer's vector clock at the store (its own component already
    /// incremented for this store).
    pub vc: VClock,
    /// Whether the store had Release (or stronger) ordering.
    pub release: bool,
    /// The thread that performed the store.
    pub writer: usize,
}

/// One atomic location: its full modification order.
pub(crate) struct Loc {
    pub stores: Vec<StoreRec>,
}

/// One modeled mutex.
pub(crate) struct MutexSt {
    pub owner: Option<usize>,
    /// Clock of the last unlock (the release the next lock acquires).
    pub release_vc: VClock,
}

#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    Ready,
    /// Blocked on a mutex or a join; the index is the mutex id or the
    /// joined thread id (used to wake the right waiters).
    BlockedOnMutex(usize),
    BlockedOnJoin(usize),
    Finished,
}

pub(crate) struct ThreadSt {
    pub status: Status,
    /// Set by `spin()`; makes the scheduler prefer other threads for the
    /// next decision. Cleared when the thread is next scheduled.
    pub yielded: bool,
    pub vc: VClock,
    /// Per-location index of the newest store this thread has read or
    /// written (coherence floor).
    pub read_floor: HashMap<usize, usize>,
}

impl ThreadSt {
    pub(crate) fn new_ready(vc: VClock) -> ThreadSt {
        ThreadSt { status: Status::Ready, yielded: false, vc, read_floor: HashMap::new() }
    }
}

pub(crate) struct State {
    pub threads: Vec<ThreadSt>,
    pub current: usize,
    pub locs: Vec<Loc>,
    pub mutexes: Vec<MutexSt>,
    /// Decision prefix to replay this execution.
    planned: Vec<u32>,
    /// Decisions actually taken: `(chosen, alternatives)`.
    recorded: Vec<(u32, u32)>,
    /// Random mode: choices past the planned prefix are drawn from `rng`
    /// instead of defaulting to 0.
    random: bool,
    rng: u64,
    pub failure: Option<String>,
    pub aborted: bool,
    steps: usize,
    truncated: bool,
}

impl State {
    fn new(planned: Vec<u32>, random: bool, rng: u64) -> State {
        State {
            threads: Vec::new(),
            current: 0,
            locs: Vec::new(),
            mutexes: Vec::new(),
            planned,
            recorded: Vec::new(),
            random,
            rng,
            failure: None,
            aborted: false,
            steps: 0,
            truncated: false,
        }
    }
}

// ------------------------------------------------------------- scheduler

pub(crate) struct Sched {
    pub m: Mutex<State>,
    pub cv: Condvar,
    max_steps: usize,
    /// OS join handles for threads spawned *inside* the model (the root
    /// thread is scoped by the controller). Separate lock: pushed while
    /// not holding `m`.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Sched>, usize)>> = const { std::cell::RefCell::new(None) };
}

/// Run `f` with the current model thread's scheduler context. Panics if
/// the calling thread is not a model thread — the instrumented shims are
/// only usable inside `af_check::model`.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Sched>, usize) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let (sched, me) =
            b.as_ref().expect("af-check shims must be used inside af_check::model(..)");
        f(sched, *me)
    })
}

impl Sched {
    fn new(max_steps: usize) -> Sched {
        Sched {
            m: Mutex::new(State::new(Vec::new(), false, 0)),
            cv: Condvar::new(),
            max_steps,
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Take one decision with `alternatives` options. Single-option
    /// decisions are free (not recorded — they create no branch).
    pub(crate) fn decide(&self, st: &mut State, alternatives: u32) -> u32 {
        if alternatives <= 1 || st.aborted {
            return 0;
        }
        let idx = st.recorded.len();
        let chosen = if idx < st.planned.len() {
            // Replay: clamp defensively (a nondeterministic closure could
            // shift alternative counts between runs).
            st.planned[idx].min(alternatives - 1)
        } else if st.random {
            (splitmix(&mut st.rng) % u64::from(alternatives)) as u32
        } else {
            0
        };
        st.recorded.push((chosen, alternatives));
        chosen
    }

    /// Pick the next thread to run among the runnable set (preferring
    /// non-yielded threads). `None` when nothing is runnable — which is
    /// normal completion if everything finished, or a deadlock.
    pub(crate) fn pick_next(&self, st: &mut State) -> Option<usize> {
        let runnable: Vec<usize> =
            (0..st.threads.len()).filter(|&i| st.threads[i].status == Status::Ready).collect();
        if runnable.is_empty() {
            let live_blocked = st
                .threads
                .iter()
                .any(|t| matches!(t.status, Status::BlockedOnMutex(_) | Status::BlockedOnJoin(_)));
            if live_blocked && st.failure.is_none() && !st.aborted {
                st.failure = Some("deadlock: every live thread is blocked".to_string());
                st.aborted = true;
            }
            return None;
        }
        let preferred: Vec<usize> =
            runnable.iter().copied().filter(|&i| !st.threads[i].yielded).collect();
        let set = if preferred.is_empty() {
            for &i in &runnable {
                st.threads[i].yielded = false;
            }
            runnable
        } else {
            preferred
        };
        let choice = self.decide(st, set.len() as u32) as usize;
        Some(set[choice])
    }

    /// The yield point executed before every visible operation: possibly
    /// hand the token to another thread, then return with the token held
    /// so the caller performs its operation.
    pub(crate) fn schedule(&self, me: usize) {
        let mut st = self.m.lock().unwrap();
        if st.aborted {
            drop(st);
            abort_unwind();
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            st.truncated = true;
            st.aborted = true;
            self.cv.notify_all();
            drop(st);
            abort_unwind();
        }
        if let Some(next) = self.pick_next(&mut st) {
            if next != me {
                st.current = next;
                self.cv.notify_all();
                while st.current != me && !st.aborted {
                    st = self.cv.wait(st).unwrap();
                }
                if st.aborted {
                    drop(st);
                    abort_unwind();
                }
            }
        }
        st.threads[me].yielded = false;
    }

    /// Block until `ready` returns true (re-evaluated each time this
    /// thread is rescheduled). `ready` runs with the token held; when it
    /// returns true the operation may proceed. `blocked` produces the
    /// blocked-status to park with when `ready` is false.
    pub(crate) fn block_until(
        &self,
        me: usize,
        blocked: Status,
        mut ready: impl FnMut(&mut State) -> bool,
    ) {
        let mut st = self.m.lock().unwrap();
        loop {
            if st.aborted {
                drop(st);
                abort_unwind();
            }
            if ready(&mut st) {
                st.threads[me].yielded = false;
                return;
            }
            st.threads[me].status = blocked;
            if let Some(next) = self.pick_next(&mut st) {
                st.current = next;
            }
            self.cv.notify_all();
            while !(st.aborted || (st.current == me && st.threads[me].status == Status::Ready)) {
                st = self.cv.wait(st).unwrap();
            }
        }
    }

    /// Record a model violation and abort the execution (unwinding the
    /// calling thread). The failure and the schedule that produced it are
    /// reported by [`Model::check`].
    pub(crate) fn fail(&self, msg: impl Into<String>) -> ! {
        let mut st = self.m.lock().unwrap();
        if st.failure.is_none() {
            st.failure = Some(msg.into());
        }
        st.aborted = true;
        self.cv.notify_all();
        drop(st);
        abort_unwind();
    }

    /// Mark the current thread as spin-yielding (see module docs).
    pub(crate) fn spin_mark(&self, me: usize) {
        let mut st = self.m.lock().unwrap();
        st.threads[me].yielded = true;
    }

    /// Allocate a new atomic location with an initial store by `me`.
    pub(crate) fn new_loc(&self, me: usize, init: u64) -> usize {
        let mut st = self.m.lock().unwrap();
        let vc = st.threads[me].vc.clone();
        let id = st.locs.len();
        // The initial store is release-tagged so any thread that is
        // (transitively) spawned after creation sees it as its floor.
        st.locs.push(Loc { stores: vec![StoreRec { val: init, vc, release: true, writer: me }] });
        st.threads[me].read_floor.insert(id, 0);
        id
    }

    /// Allocate a new modeled mutex.
    pub(crate) fn new_mutex(&self, me: usize) -> usize {
        let mut st = self.m.lock().unwrap();
        let vc = st.threads[me].vc.clone();
        let id = st.mutexes.len();
        st.mutexes.push(MutexSt { owner: None, release_vc: vc });
        id
    }

    fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut self.handles.lock().unwrap())
    }

    pub(crate) fn push_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles.lock().unwrap().push(h);
    }
}

// ---------------------------------------------------------- thread entry

fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Body of every model thread: install the TLS context, wait for the
/// first schedule, run, then mark finished and pass the token on.
pub(crate) fn run_thread(sched: Arc<Sched>, me: usize, f: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), me)));
    {
        let mut st = sched.m.lock().unwrap();
        while st.current != me && !st.aborted {
            st = sched.cv.wait(st).unwrap();
        }
    }
    let r = catch_unwind(AssertUnwindSafe(f));
    let mut st = sched.m.lock().unwrap();
    st.threads[me].status = Status::Finished;
    if let Err(p) = r {
        if !p.is::<Abort>() {
            if st.failure.is_none() {
                st.failure = Some(panic_msg(p));
            }
            st.aborted = true;
        }
    }
    // Wake joiners parked on this thread.
    for t in st.threads.iter_mut() {
        if t.status == Status::BlockedOnJoin(me) {
            t.status = Status::Ready;
        }
    }
    if let Some(next) = sched.pick_next(&mut st) {
        st.current = next;
    }
    sched.cv.notify_all();
    CTX.with(|c| *c.borrow_mut() = None);
}

// ------------------------------------------------------------ the runner

struct RunRes {
    failure: Option<String>,
    recorded: Vec<(u32, u32)>,
    truncated: bool,
}

fn run_one(
    sched: &Arc<Sched>,
    f: &(impl Fn() + Sync),
    planned: Vec<u32>,
    random: bool,
    rng: u64,
) -> RunRes {
    {
        let mut st = sched.m.lock().unwrap();
        *st = State::new(planned, random, rng);
        let mut vc = vec![0u64; 1];
        vc[0] = 1;
        st.threads.push(ThreadSt::new_ready(vc));
        st.current = 0;
    }
    std::thread::scope(|s| {
        s.spawn(|| run_thread(Arc::clone(sched), 0, f));
        let mut st = sched.m.lock().unwrap();
        while !st.threads.iter().all(|t| t.status == Status::Finished) {
            st = sched.cv.wait(st).unwrap();
        }
        drop(st);
        for h in sched.take_handles() {
            let _ = h.join();
        }
    });
    let mut st = sched.m.lock().unwrap();
    RunRes {
        failure: st.failure.take(),
        recorded: std::mem::take(&mut st.recorded),
        truncated: st.truncated,
    }
}

/// What a completed (violation-free) check explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct interleavings executed (DFS plus random fallback).
    pub interleavings: usize,
    /// The DFS exhausted the whole decision tree — every interleaving
    /// within the model's bounds was seen.
    pub exhausted: bool,
    /// Executions cut off at the per-execution step bound (counted, not
    /// failed — an unfair schedule spinning forever is not a bug).
    pub truncated: usize,
    /// Interleavings explored by the seeded-random fallback (included in
    /// `interleavings`).
    pub random_runs: usize,
    /// FNV digest of every `(chosen, alternatives)` decision across every
    /// execution, in order — two checks with equal digests explored the
    /// same schedules in the same order (the determinism contract).
    pub schedule_digest: u64,
    /// Deepest decision vector seen.
    pub max_depth: usize,
}

/// A failed check: the invariant violation and the schedule that
/// reproduces it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The failure message (an `assert!`/`fail` inside the model).
    pub message: String,
    /// The decision vector of the failing execution — replayable input
    /// for a fix-verify loop.
    pub schedule: Vec<u32>,
    /// Which execution (1-based) hit it.
    pub interleaving: usize,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model violation on interleaving {}: {}\n  schedule: {:?}",
            self.interleaving, self.message, self.schedule
        )
    }
}

/// A configured model check. `Default`/[`model`] bounds suit protocol
/// tests that should finish in seconds in CI.
#[derive(Debug, Clone, Copy)]
pub struct Model {
    /// DFS budget: maximum interleavings explored exhaustively.
    pub max_interleavings: usize,
    /// Further seeded-random interleavings after an unexhausted DFS.
    pub random_fallback: usize,
    /// Seed for the random fallback (and nothing else — DFS order is
    /// seed-independent).
    pub seed: u64,
    /// Per-execution step bound (livelock backstop).
    pub max_steps: usize,
}

impl Default for Model {
    fn default() -> Model {
        Model { max_interleavings: 8_000, random_fallback: 0, seed: 0x5EED_0001, max_steps: 20_000 }
    }
}

impl Model {
    /// A model with the default bounds.
    pub fn new() -> Model {
        Model::default()
    }

    /// Set the DFS interleaving budget.
    pub fn max_interleavings(mut self, n: usize) -> Model {
        self.max_interleavings = n;
        self
    }

    /// Set the number of seeded-random fallback interleavings run when
    /// the DFS budget ends before the tree does.
    pub fn random_fallback(mut self, n: usize) -> Model {
        self.random_fallback = n;
        self
    }

    /// Set the random-fallback seed.
    pub fn seed(mut self, seed: u64) -> Model {
        self.seed = seed;
        self
    }

    /// Set the per-execution step bound.
    pub fn max_steps(mut self, n: usize) -> Model {
        self.max_steps = n;
        self
    }

    /// Explore interleavings of `f` until a violation, the DFS tree, or
    /// the budget is exhausted. `f` is run once per interleaving and must
    /// be deterministic apart from scheduling (build fresh state each
    /// call).
    pub fn check(&self, f: impl Fn() + Sync) -> Result<Report, Violation> {
        let sched = Arc::new(Sched::new(self.max_steps));
        let mut planned: Vec<u32> = Vec::new();
        let mut runs = 0usize;
        let mut truncated = 0usize;
        let mut digest = FNV_OFFSET;
        let mut max_depth = 0usize;
        let mut exhausted = false;
        loop {
            if runs >= self.max_interleavings {
                break;
            }
            let res = run_one(&sched, &f, planned.clone(), false, 0);
            runs += 1;
            for &(c, a) in &res.recorded {
                digest = fnv_fold(digest, u64::from(c));
                digest = fnv_fold(digest, u64::from(a));
            }
            digest = fnv_fold(digest, 0xFF);
            max_depth = max_depth.max(res.recorded.len());
            if res.truncated {
                truncated += 1;
            }
            if let Some(message) = res.failure {
                return Err(Violation {
                    message,
                    schedule: res.recorded.iter().map(|&(c, _)| c).collect(),
                    interleaving: runs,
                });
            }
            // DFS backtrack: deepest decision with an untried alternative.
            let mut rec = res.recorded;
            loop {
                match rec.last_mut() {
                    None => {
                        exhausted = true;
                        break;
                    }
                    Some((chosen, alts)) if *chosen + 1 < *alts => {
                        *chosen += 1;
                        planned = rec.iter().map(|&(c, _)| c).collect();
                        break;
                    }
                    Some(_) => {
                        rec.pop();
                    }
                }
            }
            if exhausted {
                break;
            }
        }
        let mut random_runs = 0usize;
        if !exhausted {
            let mut rng = self.seed;
            for _ in 0..self.random_fallback {
                let run_seed = splitmix(&mut rng);
                let res = run_one(&sched, &f, Vec::new(), true, run_seed);
                runs += 1;
                random_runs += 1;
                for &(c, a) in &res.recorded {
                    digest = fnv_fold(digest, u64::from(c));
                    digest = fnv_fold(digest, u64::from(a));
                }
                digest = fnv_fold(digest, 0xFE);
                max_depth = max_depth.max(res.recorded.len());
                if res.truncated {
                    truncated += 1;
                }
                if let Some(message) = res.failure {
                    return Err(Violation {
                        message,
                        schedule: res.recorded.iter().map(|&(c, _)| c).collect(),
                        interleaving: runs,
                    });
                }
            }
        }
        Ok(Report {
            interleavings: runs,
            exhausted,
            truncated,
            random_runs,
            schedule_digest: digest,
            max_depth,
        })
    }
}

/// Model-check `f` with default bounds, panicking with the violation and
/// its reproducing schedule if one is found.
pub fn model(f: impl Fn() + Sync) {
    if let Err(v) = Model::new().check(f) {
        panic!("{v}");
    }
}

/// Model-check `f` expecting a violation (negative controls: a mutated
/// protocol the checker must be able to catch). Panics if the check
/// passes; returns the violation found.
pub fn model_expect_failure(f: impl Fn() + Sync) -> Violation {
    match Model::new().check(f) {
        Ok(report) => panic!(
            "negative control passed the checker: {} interleavings (exhausted: {}) found no violation",
            report.interleavings, report.exhausted
        ),
        Err(v) => v,
    }
}
