//! Histogram contracts under concurrency and against exact percentiles.
//! These run with or without the `obs` feature — the histogram types are
//! a plain library either way.

use af_obs::hist::{bucket_of, upper_bound_of, Histogram, HistogramSnapshot, Unit};
use af_obs::percentile::percentile;
use proptest::prelude::*;

const THREADS: u64 = 8;
const RECORDS: u64 = 10_000;

/// N threads hammering ONE shared histogram: every record lands, totals
/// are exact (wait-free recording loses nothing).
#[test]
fn concurrent_records_into_shared_histogram_are_exact() {
    let h = Histogram::new(Unit::Count);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = &h;
            scope.spawn(move || {
                for i in 0..RECORDS {
                    h.record(t * RECORDS + i + 1);
                }
            });
        }
    });
    let s = h.snapshot();
    let n = THREADS * RECORDS;
    assert_eq!(s.count, n);
    assert_eq!(s.total(), n);
    assert_eq!(s.sum, n * (n + 1) / 2);
    assert_eq!(s.max, n);
}

/// N threads each with a private histogram, merged at the end: the merge
/// is exact too (the per-thread-then-merge pattern bench code uses).
#[test]
fn per_thread_histograms_merge_exactly() {
    let parts: Vec<Histogram> = (0..THREADS).map(|_| Histogram::new(Unit::Nanos)).collect();
    std::thread::scope(|scope| {
        for (t, h) in parts.iter().enumerate() {
            scope.spawn(move || {
                for i in 0..RECORDS {
                    h.record((t as u64 + 1) * 1_000 + i);
                }
            });
        }
    });
    let merged = Histogram::new(Unit::Nanos);
    let mut merged_snaps = HistogramSnapshot::empty(Unit::Nanos);
    for h in &parts {
        merged.merge_from(h);
        merged_snaps.merge(&h.snapshot());
    }
    let s = merged.snapshot();
    assert_eq!(s.count, THREADS * RECORDS);
    assert_eq!(s.total(), THREADS * RECORDS);
    assert_eq!(s, merged_snaps, "merge_from and snapshot-merge agree");
    let expected_sum: u64 =
        (0..THREADS).flat_map(|t| (0..RECORDS).map(move |i| (t + 1) * 1_000 + i)).sum();
    assert_eq!(s.sum, expected_sum);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The log-bucket p99 estimate is within one bucket of the exact
    /// sort-based p99: it never under-reports the exact value and never
    /// exceeds the upper boundary of the exact value's bucket. Values
    /// stay inside the finite bucket range (no overflow bucket), which
    /// is where the contract holds.
    fn p99_within_one_bucket_of_exact(
        values in prop::collection::vec(1u64..100_000_000_000u64, 1..300)
    ) {
        let h = Histogram::new(Unit::Nanos);
        for &v in &values {
            h.record(v);
        }
        let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = percentile(&sorted, q) as u64;
            let est = h.snapshot().quantile(q);
            prop_assert!(
                est >= exact,
                "q={q}: estimate {est} under-reports exact {exact}"
            );
            let upper = upper_bound_of(Unit::Nanos, bucket_of(Unit::Nanos, exact));
            prop_assert!(
                est <= upper,
                "q={q}: estimate {est} beyond exact value's bucket (exact {exact}, upper {upper})"
            );
        }
    }

    /// Bucket index and boundaries are mutually consistent for any value
    /// in the finite range.
    fn buckets_bracket_their_values(v in 1u64..130_000_000_000u64) {
        let b = bucket_of(Unit::Nanos, v);
        prop_assert!(v < upper_bound_of(Unit::Nanos, b));
        if b > 0 {
            prop_assert!(v >= upper_bound_of(Unit::Nanos, b - 1));
        }
    }
}
