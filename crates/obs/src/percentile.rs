//! Exact sort-based percentiles — the single shared implementation the
//! bench harness and the histogram parity tests agree on.
//!
//! Rank convention: the `p`-percentile of `n` sorted samples is the
//! order statistic at index `round(p · (n-1))`. The same convention
//! drives [`crate::hist::HistogramSnapshot::quantile`], which is what
//! makes "histogram estimate within one bucket of exact" a meaningful,
//! testable contract.

/// The `p` (0.0 ..= 1.0) percentile of an ascending-sorted slice, by the
/// nearest-rank convention above. `0.0` on an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Sort a sample in place and return its `(p50, p99)` — the pair every
/// bench report wants. `(0.0, 0.0)` on an empty sample.
pub fn p50_p99(samples: &mut [f64]) -> (f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    (percentile(samples, 0.50), percentile(samples, 0.99))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_convention() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        // round(0.5 · 99) = 50 → the 51st sample.
        assert_eq!(percentile(&v, 0.5), 51.0);
        // round(0.99 · 99) = 98 → the 99th sample.
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.999), 7.0);
        // Out-of-range p clamps instead of indexing out of bounds.
        assert_eq!(percentile(&v, 1.5), 100.0);
        assert_eq!(percentile(&v, -0.5), 1.0);
    }

    #[test]
    fn p50_p99_sorts_first() {
        let mut v = vec![3.0, 1.0, 2.0];
        assert_eq!(p50_p99(&mut v), (2.0, 3.0));
        assert_eq!(p50_p99(&mut []), (0.0, 0.0));
    }
}
