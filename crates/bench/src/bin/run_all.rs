//! Regenerates run_all (see DESIGN.md's per-experiment index).
fn main() {
    af_bench::experiments::run_all();
}
