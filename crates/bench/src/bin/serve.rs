//! `cargo run --release -p af-bench --bin serve` — measure the serving
//! layer at the current `AF_SCALE`: artifact size, cold-start load vs full
//! index rebuild, and concurrent/micro-batched query latency through the
//! lock-free `ServeHandle`. Results land in `BENCH_serve.json` (pass an
//! output path as the first argument to write elsewhere).
//!
//! Built with `--features obs`, the run additionally measures the cost of
//! the af-obs instrumentation on the mixed workload, prints every
//! histogram site, and writes `BENCH_obs.json` (second argument to write
//! elsewhere). The process exits non-zero if the obs-on run blows the
//! overhead gate (pooled mixed p99 and pooled read p99 both more than
//! 5% + 0.5 ms over obs-off) — CI uses this as the regression tripwire.

use af_bench::report::{print_table, run_experiment};
use af_bench::serve_bench;

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serve.json".to_string());
    #[cfg(feature = "obs")]
    let obs_out = std::env::args().nth(2).unwrap_or_else(|| "BENCH_obs.json".to_string());
    #[cfg(feature = "obs")]
    let mut gate_ok = true;
    run_experiment("serve", "BENCH_serve.json (artifact + serving latency)", || {
        let run = serve_bench::measure_full();
        let r = &run.report;
        println!(
            "\nindex: {} sheets, {} regions → artifact {:.1} KiB",
            r.n_sheets,
            r.n_regions,
            r.artifact_bytes as f64 / 1024.0
        );
        print_table(
            "cold start",
            &["path", "ms"],
            &[
                vec!["rebuild (embed + index)".into(), format!("{:.2}", r.rebuild_ms)],
                vec!["artifact load".into(), format!("{:.2}", r.load_ms)],
                vec!["speedup".into(), format!("{:.1}x", r.load_speedup)],
            ],
        );
        print_table(
            "query latency",
            &["mode", "p50 (ms)", "p99 (ms)", "q/s"],
            &[
                vec![
                    "sequential".into(),
                    format!("{:.3}", r.sequential_p50_ms),
                    format!("{:.3}", r.sequential_p99_ms),
                    String::new(),
                ],
                vec![
                    format!("concurrent x{}", r.concurrent_readers),
                    format!("{:.3}", r.concurrent_p50_ms),
                    format!("{:.3}", r.concurrent_p99_ms),
                    format!("{:.0}", r.concurrent_queries_per_sec),
                ],
                vec![
                    "micro-batched".into(),
                    String::new(),
                    String::new(),
                    format!("{:.0}", r.batch_queries_per_sec),
                ],
            ],
        );
        print_table(
            "add-while-query (sustained ingest)",
            &["config", "read p99 (ms)", "add p99 (ms)", "mixed p99 (ms)"],
            &[
                vec![
                    "single index, no deltas".into(),
                    format!("{:.3}", r.mixed_baseline.read_p99_ms),
                    format!("{:.3}", r.mixed_baseline.add_p99_ms),
                    format!("{:.3}", r.mixed_baseline.mixed_p99_ms),
                ],
                vec![
                    format!("{} shards + deltas", r.mixed_shards),
                    format!("{:.3}", r.mixed_sharded.read_p99_ms),
                    format!("{:.3}", r.mixed_sharded.add_p99_ms),
                    format!("{:.3}", r.mixed_sharded.mixed_p99_ms),
                ],
                vec![
                    "p99 speedup".into(),
                    String::new(),
                    String::new(),
                    format!("{:.1}x", r.mixed_p99_speedup),
                ],
            ],
        );
        if let Some(c) = &r.chaos {
            print_table(
                "degraded mode (fault-injected closed loop)",
                &["metric", "value"],
                &[
                    vec!["ops".into(), format!("{}", c.ops)],
                    vec!["degraded outcomes".into(), format!("{}", c.degraded)],
                    vec!["deadline exceeded".into(), format!("{}", c.deadline_exceeded)],
                    vec!["quarantined at end".into(), format!("{}", c.quarantined_at_end)],
                    vec!["compactor restarts".into(), format!("{}", c.compactor_restarts)],
                    vec!["inline compactions".into(), format!("{}", c.inline_compactions)],
                    vec!["healthy p99 (ms)".into(), format!("{:.3}", c.healthy_p99_ms)],
                    vec!["faulted p99 (ms)".into(), format!("{:.3}", c.faulted_p99_ms)],
                    vec!["recovered p99 (ms)".into(), format!("{:.3}", c.recovered_p99_ms)],
                ],
            );
        }
        serve_bench::write_json(r, std::path::Path::new(&out));
        println!("\nwrote {out}");

        #[cfg(feature = "obs")]
        {
            let obs = af_bench::obs_bench::measure(&run);
            print_table(
                "obs overhead (mixed workload, runtime toggle)",
                &["recording", "mixed p99 (ms)", "read p99 (ms)"],
                &[
                    vec![
                        "off".into(),
                        format!("{:.3}", obs.off.mixed_p99_ms),
                        format!("{:.3}", obs.off.read_p99_ms),
                    ],
                    vec![
                        "on".into(),
                        format!("{:.3}", obs.on.mixed_p99_ms),
                        format!("{:.3}", obs.on.read_p99_ms),
                    ],
                    vec![
                        "ratio".into(),
                        format!("{:.3}x", obs.overhead_ratio),
                        format!("{:.3}x", obs.on.read_p99_ms / obs.off.read_p99_ms.max(1e-9)),
                    ],
                    vec![
                        "gate".into(),
                        if obs.gate_ok { "ok".into() } else { "FAIL".into() },
                        String::new(),
                    ],
                ],
            );
            println!("\n{}", obs.snapshot.to_text_table());
            af_bench::obs_bench::write_json(&obs, r.scale, std::path::Path::new(&obs_out));
            println!("wrote {obs_out}");
            gate_ok = obs.gate_ok;
        }
    });
    #[cfg(feature = "obs")]
    if !gate_ok {
        eprintln!(
            "obs overhead gate FAILED: obs-on mixed AND read p99 exceed obs-off by more than 5%"
        );
        std::process::exit(1);
    }
}
