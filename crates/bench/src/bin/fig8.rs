//! Regenerates fig8 (see DESIGN.md's per-experiment index).
fn main() {
    af_bench::experiments::fig8();
}
