//! `af-embed` — per-cell feature vectors for spreadsheet representation
//! learning (§4.4.1).
//!
//! Each cell contributes three feature groups:
//! * **semantic content** — a dense text embedding of the displayed value,
//!   via either [`GloveSim`] (word-level, trained on the corpus, low-dim,
//!   fast) or [`SbertSim`] (char-n-gram hashed, high-dim, slower) — the two
//!   stand-ins for GloVe / Sentence-BERT whose quality-vs-cost trade-off the
//!   paper studies in Figs. 8 and 12;
//! * **syntactic content** — data-type one-hot plus a hashed value-shape
//!   pattern (`DDDD-DD-DD`);
//! * **style** — fill/font colors, bold/italic/underline, font size, cell
//!   size, borders.
//!
//! Formula text is deliberately *never* featurized (paper §4.4.1 footnote 2:
//! using formula features would leak the label).

pub mod cell_features;
pub mod content;
pub mod glove_sim;
pub mod hashing;
pub mod sbert_sim;
pub mod snapshot;
pub mod style_feat;
pub mod tokenize;

pub use cell_features::{CellFeaturizer, FeatureMask};
pub use content::{syntactic_features, SYNTACTIC_DIM};
pub use glove_sim::GloveSim;
pub use sbert_sim::SbertSim;
pub use snapshot::{load_featurizer, save_featurizer, FeaturizerCodecError};
pub use style_feat::{style_features, STYLE_DIM};

use std::sync::Arc;

/// A text embedder mapping strings to fixed-dimension unit vectors, with
/// the contract that *similar strings land near each other*.
pub trait TextEmbedder: Send + Sync {
    /// Output dimensionality.
    fn dim(&self) -> usize;
    /// Write the embedding of `text` into `out` (length `dim()`), L2
    /// normalized (or all-zero for empty text).
    fn embed(&self, text: &str, out: &mut [f32]);
    /// Short human-readable name ("glove-sim" / "sbert-sim").
    fn name(&self) -> &'static str;
    /// Serialize the construction state (trained vocabulary, vectors, …)
    /// so [`snapshot::load_featurizer`] can rebuild an embedder producing
    /// bit-identical vectors. Stateless embedders return an empty payload.
    fn export_state(&self) -> Vec<u8>;
}

/// Shared handle to an embedder.
pub type DynEmbedder = Arc<dyn TextEmbedder>;
