//! Thin CLI wrapper: regenerates table3 (see DESIGN.md's per-experiment
//! index). `AF_SCALE={tiny,small,full}` scales the synthetic corpora.

fn main() {
    af_bench::report::run_experiment(
        "table3",
        "Table 3: quality comparison of all systems, random split",
        af_bench::experiments::table3,
    );
}
