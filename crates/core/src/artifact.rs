//! Self-contained recommendation artifacts.
//!
//! An artifact is everything the online pipeline needs, in one buffer:
//!
//! | section | id | contents |
//! |---|---|---|
//! | `CONFIG` | 1 | every [`AutoFormulaConfig`] field + the featurizer input dim |
//! | `FEATURIZER` | 2 | embedder name, dim, feature mask, trained vocabulary |
//! | `MODEL` | 3 | representation-model weights (`af_nn` snapshot blocks) |
//! | `INDEX` | 4 | the full [`ReferenceIndex`]: keys, sheet metadata, region provenance (params + reference-side fine vectors), region embeddings, and the ANN structures of whichever backend built them (flat vectors / HNSW graph / IVF lists + centroids) |
//! | `SHARDS` | 5 | *(v3, optional)* the serving shard layout: router tag + shard count + per-sheet shard assignment ([`ShardLayout`]) |
//!
//! Layout: magic `AFAR`, version, a section table (id, offset, length —
//! offsets relative to the payload that follows the table), then the
//! payload. Unknown section ids are skipped on load, so future sections
//! can be added without breaking old readers.
//!
//! **Format v2** puts every embedding table behind an `af_store` block
//! with a per-section codec tag: exact `f32` (the default — bit-identical
//! round trips, zero-copy adoption), or `f16`/`int8` scalar quantization
//! ([`StoreOptions::codec`], 2–4× smaller, served through asymmetric
//! distance kernels). Independently, [`StoreOptions::compact_fine`] swaps
//! the fat per-region fine windows for per-sheet cell caches (each cell
//! vector stored once instead of duplicated into up to `n_cells`
//! overlapping windows) and re-gathers the windows at load — a further
//! order-of-magnitude size lever that stays bit-identical under `f32`.
//! **Format v3** extends the CONFIG section with the serving-shard knobs
//! (`n_shards`, `delta_max_sheets`; older artifacts decode with the
//! defaults) and adds the optional `SHARDS` section: a sharded server
//! saves its merged global-order index plus the per-sheet shard
//! assignment, so a reload re-splits into exactly the shards that were
//! serving — not merely an equivalent partition. Version-1 and -2
//! artifacts still load; [`AutoFormula::save`] writes v3.
//!
//! [`AutoFormula::load`] reads from a byte slice;
//! [`AutoFormula::load_mmap`] maps the file page-on-demand instead, so
//! artifacts larger than RAM can serve (zero-copy tables then read
//! straight from the page cache).
//!
//! Decoding is hardened — every length, id, dimension, and quantization
//! parameter is validated, so truncated or bit-flipped artifacts return
//! [`ArtifactError`], never panic.

use crate::config::{AnnBackend, AutoFormulaConfig};
use crate::index::{
    FineCache, ReferenceIndex, RegionEntry, SheetFineCells, SheetKey, SheetMeta, VecTable,
};
use crate::model::RepresentationModel;
use crate::pipeline::AutoFormula;
use af_ann::{CodecError, HnswParams, IvfParams};
use af_embed::FeaturizerCodecError;
use af_grid::{CellRef, ViewWindow};
use af_nn::serialize::SnapshotError;
use af_nn::tensor::l2_normalize;
use af_store::{Codec, StoreError, StoreSink, VectorStore};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::path::Path;

const MAGIC: u32 = 0x4146_4152; // "AFAR"
const VERSION: u16 = 3;
/// Versions [`AutoFormula::load`] accepts.
pub const SUPPORTED_VERSIONS: &[u16] = &[1, 2, 3];

const SEC_CONFIG: u16 = 1;
const SEC_FEATURIZER: u16 = 2;
const SEC_MODEL: u16 = 3;
const SEC_INDEX: u16 = 4;
const SEC_SHARDS: u16 = 5;

/// Router tag inside the SHARDS section: deterministic hash of the sheet's
/// provenance key, modulo the shard count (the only router so far).
const ROUTER_HASH_BY_SHEET: u8 = 0;

/// The serving shard layout a v3 artifact can carry (`SHARDS` section):
/// how many shards were serving and which shard owned each sheet, in the
/// merged index's global sheet order. `af-serve` persists this on
/// `to_artifact` so a reload reproduces the exact partition — sheets added
/// at runtime were routed by hashing, and re-hashing on load with a
/// *different* `n_shards` would still work, but round-tripping the
/// assignment keeps the layout stable across config edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    /// Number of serving shards (≥ 1).
    pub n_shards: usize,
    /// Shard that owns each sheet, indexed by global sheet id.
    pub assignment: Vec<u32>,
}

fn encode_shards<S: StoreSink>(buf: &mut S, layout: &ShardLayout) {
    buf.write_u8(ROUTER_HASH_BY_SHEET);
    buf.write_u32(layout.n_shards as u32);
    buf.write_u64(layout.assignment.len() as u64);
    for &s in &layout.assignment {
        buf.write_u32(s);
    }
}

fn decode_shards(data: &mut Bytes, n_sheets: usize) -> Result<ShardLayout, ArtifactError> {
    const W: &str = "shard layout";
    if get_u8(data, W)? != ROUTER_HASH_BY_SHEET {
        return Err(ArtifactError::Invalid("unknown shard router tag"));
    }
    let n_shards = get_u32(data, W)? as usize;
    if n_shards == 0 {
        return Err(ArtifactError::Invalid("shard count must be positive"));
    }
    let n = get_count(data, 4, W)?;
    if n != n_sheets {
        return Err(ArtifactError::Invalid("shard assignment length disagrees with sheet count"));
    }
    let mut assignment = Vec::with_capacity(n);
    for _ in 0..n {
        let s = get_u32(data, W)?;
        if s as usize >= n_shards {
            return Err(ArtifactError::Invalid("shard assignment out of range"));
        }
        assignment.push(s);
    }
    Ok(ShardLayout { n_shards, assignment })
}

/// How [`AutoFormula::save_with`] lays out the embedding tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreOptions {
    /// Storage codec for every embedding table (ANN vectors, region and
    /// parameter windows, coarse region vectors). [`Codec::F32`] (the
    /// default) keeps bit-exact round trips; `F16`/`Int8` shrink the
    /// artifact 2–4× and serve through asymmetric kernels with recall
    /// measured in `BENCH_store.json`.
    pub codec: Codec,
    /// Persist per-sheet fine cell caches instead of per-region windows
    /// and re-gather the windows at load (~order-of-magnitude smaller
    /// fine store, bit-identical under `f32`; load pays one
    /// gather+normalize pass). Requires an index that retains its caches
    /// — one built in this process or loaded from a compact artifact.
    pub compact_fine: bool,
}

/// Why an artifact failed to load. Wraps the layer-specific errors so
/// callers can `?` straight through and still reach the root cause via
/// [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// Not an artifact at all.
    BadMagic,
    /// The artifact's format version is not one this build reads.
    UnsupportedVersion { found: u16, supported: &'static [u16] },
    /// The buffer ended before the structure did (`&'static str` names the
    /// part being read).
    Truncated(&'static str),
    /// A required section is absent from the section table.
    MissingSection(&'static str),
    /// A structural invariant does not hold.
    Invalid(&'static str),
    /// The model weights failed to deserialize or fit the architecture.
    Model(SnapshotError),
    /// An ANN index payload failed to decode.
    Index(CodecError),
    /// The featurizer payload failed to decode.
    Featurizer(FeaturizerCodecError),
    /// An embedding-table store failed to decode.
    Store(StoreError),
    /// The artifact file could not be opened or mapped.
    Io(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => f.write_str("not an auto-formula artifact"),
            ArtifactError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported artifact version {found} (this build reads {supported:?})")
            }
            ArtifactError::Truncated(what) => write!(f, "artifact truncated reading {what}"),
            ArtifactError::MissingSection(name) => write!(f, "artifact missing section {name}"),
            ArtifactError::Invalid(what) => write!(f, "invalid artifact: {what}"),
            ArtifactError::Model(_) => f.write_str("artifact model weights failed to load"),
            ArtifactError::Index(_) => f.write_str("artifact ANN index failed to load"),
            ArtifactError::Featurizer(_) => f.write_str("artifact featurizer failed to load"),
            ArtifactError::Store(_) => f.write_str("artifact embedding store failed to load"),
            ArtifactError::Io(e) => write!(f, "artifact file error: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Model(e) => Some(e),
            ArtifactError::Index(e) => Some(e),
            ArtifactError::Featurizer(e) => Some(e),
            ArtifactError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for ArtifactError {
    fn from(e: SnapshotError) -> Self {
        ArtifactError::Model(e)
    }
}

impl From<CodecError> for ArtifactError {
    fn from(e: CodecError) -> Self {
        ArtifactError::Index(e)
    }
}

impl From<FeaturizerCodecError> for ArtifactError {
    fn from(e: FeaturizerCodecError) -> Self {
        ArtifactError::Featurizer(e)
    }
}

impl From<StoreError> for ArtifactError {
    fn from(e: StoreError) -> Self {
        ArtifactError::Store(e)
    }
}

// ------------------------------------------------------------- primitives

fn get_u8(data: &mut Bytes, what: &'static str) -> Result<u8, ArtifactError> {
    data.try_get_u8().ok_or(ArtifactError::Truncated(what))
}

fn get_u16(data: &mut Bytes, what: &'static str) -> Result<u16, ArtifactError> {
    data.try_get_u16().ok_or(ArtifactError::Truncated(what))
}

fn get_u32(data: &mut Bytes, what: &'static str) -> Result<u32, ArtifactError> {
    data.try_get_u32().ok_or(ArtifactError::Truncated(what))
}

fn get_u64(data: &mut Bytes, what: &'static str) -> Result<u64, ArtifactError> {
    data.try_get_u64().ok_or(ArtifactError::Truncated(what))
}

fn get_f32(data: &mut Bytes, what: &'static str) -> Result<f32, ArtifactError> {
    data.try_get_f32().ok_or(ArtifactError::Truncated(what))
}

fn get_f64(data: &mut Bytes, what: &'static str) -> Result<f64, ArtifactError> {
    data.try_get_f64().ok_or(ArtifactError::Truncated(what))
}

/// Read a `u64` element count, rejecting counts the remaining buffer
/// cannot hold (`elem_bytes` is the minimum wire size of one element) so
/// corrupt lengths never drive huge allocations.
fn get_count(
    data: &mut Bytes,
    elem_bytes: usize,
    what: &'static str,
) -> Result<usize, ArtifactError> {
    let n = get_u64(data, what)? as usize;
    let need = n.checked_mul(elem_bytes).ok_or(ArtifactError::Truncated(what))?;
    if data.remaining() < need {
        return Err(ArtifactError::Truncated(what));
    }
    Ok(n)
}

fn put_string<S: StoreSink>(buf: &mut S, s: &str) {
    buf.write_u32(s.len() as u32);
    buf.write_bytes(s.as_bytes());
}

fn get_string(data: &mut Bytes, what: &'static str) -> Result<String, ArtifactError> {
    let len = get_u32(data, what)? as usize;
    if data.remaining() < len {
        return Err(ArtifactError::Truncated(what));
    }
    String::from_utf8(data.split_to(len).to_vec())
        .map_err(|_| ArtifactError::Invalid("string is not UTF-8"))
}

/// Embedding-table block, v2: an `af_store` store (codec tag + header +
/// pad-aligned little-endian payload), re-encoded into `codec` on the
/// way out. Embedding tables are the overwhelming bulk of an artifact;
/// alignment plus LE is what lets every codec adopt the block zero-copy
/// on load, so a cold start never materializes a second copy of them.
/// Alignment is section-local: `save_with` pads the section table and
/// every section body to a multiple of 4, so a local offset that is
/// 0 mod 4 is 0 mod 4 in the final buffer (and in a page-aligned mmap).
fn put_vec_table<S: StoreSink>(buf: &mut S, table: &VecTable, codec: Codec) {
    af_store::put_store_as(buf, table.store(), codec);
}

/// Resolve an auto PQ codec (`Codec::Pq { m: 0 }`) against a table's
/// dimension: when the table is a concatenation of fine cell vectors
/// (`dim` a multiple of `fine_cell_dim`), place one sub-quantizer per
/// cell slot so subspace boundaries land exactly on cell boundaries.
/// Window slots have heterogeneous magnitudes (headers vs. data vs.
/// empties), and a subspace straddling two slots would spend its 256
/// centroids on the cross product of both distributions — the same
/// fat-layout trap the per-vector int8 affine dodges with per-row
/// scales (ARCHITECTURE.md §5). Other tables (coarse embeddings, cell
/// caches) keep the auto split chosen by the store itself.
fn table_codec(codec: Codec, dim: usize, fine_cell_dim: usize) -> Codec {
    match codec {
        Codec::Pq { m: 0 } if fine_cell_dim > 0 && dim.is_multiple_of(fine_cell_dim) => {
            Codec::Pq { m: (dim / fine_cell_dim) as u16 }
        }
        c => c,
    }
}

/// Run a boxed ANN index's `encode_with` (a `BytesMut`-only trait
/// method) against any sink, byte-identically: the encoder's pad runs
/// key off `len() % 4`, so staging into a scratch buffer pre-seeded to
/// the sink's current alignment reproduces the exact bytes an in-place
/// call would have written, and the seed prefix is dropped on copy-out.
fn encode_ann_index<S: StoreSink>(buf: &mut S, idx: &dyn af_ann::VectorIndex, codec: Codec) {
    let seed = buf.written() % 4;
    let mut staged = BytesMut::new();
    for _ in 0..seed {
        staged.put_u8(0);
    }
    idx.encode_with(&mut staged, codec);
    buf.write_bytes(&staged[seed..]);
}

fn get_vec_table(
    data: &mut Bytes,
    dim: usize,
    expect_rows: usize,
    what: &'static str,
) -> Result<VecTable, ArtifactError> {
    let store = af_store::get_store(data)?;
    if store.dim() != dim {
        return Err(ArtifactError::Invalid("embedding table has the wrong dimension"));
    }
    if store.rows() != expect_rows {
        let _ = what;
        return Err(ArtifactError::Invalid("embedding table has the wrong row count"));
    }
    Ok(VecTable::from_store(store))
}

/// Embedding-table block, v1: row count, a pad run, then the raw
/// little-endian `f32` image of the whole table.
fn get_vec_table_v1(
    data: &mut Bytes,
    dim: usize,
    expect_rows: usize,
    what: &'static str,
) -> Result<VecTable, ArtifactError> {
    let rows = get_u64(data, what)? as usize;
    if rows != expect_rows {
        return Err(ArtifactError::Invalid("embedding table has the wrong row count"));
    }
    let pad = get_u8(data, what)? as usize;
    if pad > 3 {
        return Err(ArtifactError::Invalid("embedding table pad run out of range"));
    }
    if data.remaining() < pad {
        return Err(ArtifactError::Truncated(what));
    }
    data.split_to(pad);
    let need = rows
        .checked_mul(dim)
        .and_then(|n| n.checked_mul(4))
        .ok_or(ArtifactError::Truncated(what))?;
    if data.remaining() < need {
        return Err(ArtifactError::Truncated(what));
    }
    Ok(VecTable::from_store(af_store::DenseStore::F32(af_store::F32Store::from_le_bytes(
        dim,
        rows,
        data.split_to(need),
    ))))
}

fn put_cell<S: StoreSink>(buf: &mut S, cell: CellRef) {
    buf.write_u32(cell.row);
    buf.write_u32(cell.col);
}

fn get_cell(data: &mut Bytes, what: &'static str) -> Result<CellRef, ArtifactError> {
    let row = get_u32(data, what)?;
    let col = get_u32(data, what)?;
    Ok(CellRef { row, col })
}

// ----------------------------------------------------------- config codec

fn encode_config<S: StoreSink>(buf: &mut S, cfg: &AutoFormulaConfig, feat_dim: usize) {
    buf.write_u32(feat_dim as u32);
    buf.write_u32(cfg.window.rows);
    buf.write_u32(cfg.window.cols);
    buf.write_u64(cfg.reduce_hidden as u64);
    buf.write_u64(cfg.cell_dim as u64);
    buf.write_u64(cfg.fine_cell_dim as u64);
    buf.write_u64(cfg.coarse_channels.0 as u64);
    buf.write_u64(cfg.coarse_channels.1 as u64);
    buf.write_u64(cfg.coarse_dim as u64);
    buf.write_f32(cfg.margin);
    buf.write_f32(cfg.lr);
    buf.write_u64(cfg.episodes as u64);
    buf.write_u64(cfg.batch_size as u64);
    buf.write_u64(cfg.k_sheets as u64);
    buf.write_u64(cfg.neighborhood_d as u64);
    buf.write_f32(cfg.s3_anchor_lambda);
    buf.write_f32(cfg.theta_region);
    buf.write_u8(cfg.coarse_augmentation as u8);
    buf.write_u8(cfg.fine_augmentation as u8);
    buf.write_u64(cfg.seed);
    buf.write_u64(cfg.search_parallel_threshold as u64);
    buf.write_u64(cfg.search_threads as u64);
    buf.write_u64(cfg.embed_threads as u64);
    match cfg.ann_backend {
        AnnBackend::Flat => buf.write_u8(0),
        AnnBackend::Hnsw(p) => {
            buf.write_u8(1);
            buf.write_u64(p.m as u64);
            buf.write_u64(p.ef_construction as u64);
            buf.write_u64(p.ef_search as u64);
            buf.write_u64(p.seed);
        }
        AnnBackend::Ivf(p) => {
            buf.write_u8(2);
            buf.write_u64(p.n_lists as u64);
            buf.write_u64(p.n_probe as u64);
            buf.write_u64(p.kmeans_iters as u64);
            buf.write_u64(p.seed);
        }
    }
    // v3 tail: serving-shard knobs. Older readers never reach these bytes
    // (they reject version 3 up front); older *artifacts* decode with the
    // defaults below.
    buf.write_u64(cfg.n_shards as u64);
    buf.write_u64(cfg.delta_max_sheets as u64);
}

fn decode_config(
    data: &mut Bytes,
    version: u16,
) -> Result<(AutoFormulaConfig, usize), ArtifactError> {
    const W: &str = "config";
    let feat_dim = get_u32(data, W)? as usize;
    let window = ViewWindow::new(get_u32(data, W)?, get_u32(data, W)?);
    if feat_dim == 0 || window.n_cells() == 0 {
        return Err(ArtifactError::Invalid("config dimensions must be positive"));
    }
    let cfg = AutoFormulaConfig {
        window,
        reduce_hidden: get_u64(data, W)? as usize,
        cell_dim: get_u64(data, W)? as usize,
        fine_cell_dim: get_u64(data, W)? as usize,
        coarse_channels: (get_u64(data, W)? as usize, get_u64(data, W)? as usize),
        coarse_dim: get_u64(data, W)? as usize,
        margin: get_f32(data, W)?,
        lr: get_f32(data, W)?,
        episodes: get_u64(data, W)? as usize,
        batch_size: get_u64(data, W)? as usize,
        k_sheets: get_u64(data, W)? as usize,
        neighborhood_d: get_u64(data, W)? as i64,
        s3_anchor_lambda: get_f32(data, W)?,
        theta_region: get_f32(data, W)?,
        coarse_augmentation: get_u8(data, W)? != 0,
        fine_augmentation: get_u8(data, W)? != 0,
        seed: get_u64(data, W)?,
        search_parallel_threshold: get_u64(data, W)? as usize,
        search_threads: get_u64(data, W)? as usize,
        embed_threads: get_u64(data, W)? as usize,
        ann_backend: match get_u8(data, W)? {
            0 => AnnBackend::Flat,
            1 => AnnBackend::Hnsw(HnswParams {
                m: get_u64(data, W)? as usize,
                ef_construction: get_u64(data, W)? as usize,
                ef_search: get_u64(data, W)? as usize,
                seed: get_u64(data, W)?,
            }),
            2 => AnnBackend::Ivf(IvfParams {
                n_lists: get_u64(data, W)? as usize,
                n_probe: get_u64(data, W)? as usize,
                kmeans_iters: get_u64(data, W)? as usize,
                seed: get_u64(data, W)?,
            }),
            _ => return Err(ArtifactError::Invalid("unknown ANN backend tag")),
        },
        n_shards: if version >= 3 { get_u64(data, W)? as usize } else { 1 },
        delta_max_sheets: if version >= 3 { get_u64(data, W)? as usize } else { 64 },
        // Runtime serving knob, deliberately not on the wire (the v3
        // layout is pinned by PR-6 artifacts): loads get the default.
        backpressure_factor: 4,
    };
    // Positive and sane: a bit-flipped length field must be rejected here,
    // before the model constructor turns it into a giant allocation.
    const MAX_DIM: usize = 4096;
    const MAX_CELLS: usize = 1 << 20;
    for dim in [
        cfg.cell_dim,
        cfg.fine_cell_dim,
        cfg.coarse_dim,
        cfg.reduce_hidden,
        cfg.coarse_channels.0,
        cfg.coarse_channels.1,
        feat_dim,
    ] {
        if dim == 0 || dim > MAX_DIM {
            return Err(ArtifactError::Invalid("config dimension zero or implausibly large"));
        }
    }
    if cfg.n_cells() > MAX_CELLS {
        return Err(ArtifactError::Invalid("config window implausibly large"));
    }
    if cfg.n_shards > u32::MAX as usize {
        return Err(ArtifactError::Invalid("config shard count implausibly large"));
    }
    Ok((cfg, feat_dim))
}

// ------------------------------------------------------------ index codec

/// Fine-table layout flags inside the INDEX section (v2).
const FINE_FAT: u8 = 0;
const FINE_COMPACT: u8 = 1;

fn encode_index<S: StoreSink>(
    buf: &mut S,
    index: &ReferenceIndex,
    opts: StoreOptions,
    fine_cell_dim: usize,
) -> Result<(), ArtifactError> {
    buf.write_u64(index.keys.len() as u64);
    for key in &index.keys {
        buf.write_u64(key.workbook as u64);
        buf.write_u64(key.sheet as u64);
    }
    for meta in &index.meta {
        put_string(buf, &meta.name);
        buf.write_u32(meta.rows);
        buf.write_u32(meta.cols);
    }
    encode_ann_index(buf, index.coarse.as_ref(), opts.codec);
    match &index.fine_sheets {
        Some(idx) => {
            buf.write_u8(1);
            // Fine-signature vectors are whole windows: resolve an auto
            // PQ split onto cell boundaries (see `table_codec`).
            encode_ann_index(buf, idx.as_ref(), table_codec(opts.codec, idx.dim(), fine_cell_dim));
        }
        None => buf.write_u8(0),
    }
    buf.write_u64(index.regions.len() as u64);
    for entry in &index.regions {
        buf.write_u64(entry.sheet_idx as u64);
        put_cell(buf, entry.cell);
        put_string(buf, &entry.formula);
        buf.write_u64(entry.params.len() as u64);
        for &param in &entry.params {
            put_cell(buf, param);
        }
    }
    if opts.compact_fine {
        let Some(cache) = index.fine_cache.as_ref() else {
            return Err(ArtifactError::Invalid(
                "compact fine layout requires an index that retains its fine cell caches \
                 (built in-process or loaded from a compact artifact)",
            ));
        };
        debug_assert_eq!(cache.sheets.len(), index.keys.len());
        buf.write_u8(FINE_COMPACT);
        // Shared constant rows, always exact (they are two vectors). An
        // index with zero sheets never captured them; write zeros — no
        // region will ever gather them.
        let mut consts = VecTable::new(fine_cell_dim);
        if cache.empty.is_empty() {
            consts.push(&vec![0.0; fine_cell_dim]);
            consts.push(&vec![0.0; fine_cell_dim]);
        } else {
            consts.push(&cache.empty);
            consts.push(&cache.invalid);
        }
        put_vec_table(buf, &consts, Codec::F32);
        for sheet in &cache.sheets {
            buf.write_u64(sheet.refs.len() as u64);
            for &at in &sheet.refs {
                put_cell(buf, at);
            }
            put_vec_table(buf, &sheet.vecs, opts.codec);
        }
    } else {
        buf.write_u8(FINE_FAT);
        let fine = table_codec(opts.codec, index.region_vecs.store().dim(), fine_cell_dim);
        put_vec_table(buf, &index.region_vecs, fine);
        put_vec_table(buf, &index.param_vecs, fine);
    }
    match &index.coarse_region_vecs {
        Some(vecs) => {
            buf.write_u8(1);
            put_vec_table(buf, vecs, opts.codec);
        }
        None => buf.write_u8(0),
    }
    buf.write_f64(index.build_seconds);
    Ok(())
}

/// The raw bytes backing a `f32` slice, for page-level `madvise` hints.
fn as_byte_view(v: &[f32]) -> &[u8] {
    // SAFETY: `v` is a live, initialized allocation; f32 has no invalid
    // byte patterns and the length covers exactly the same memory, so
    // reinterpreting it as bytes for the duration of the borrow is sound.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), std::mem::size_of_val(v)) }
}

/// Per-sheet gather state, built once per sheet and reused across every
/// window gathered from it: the sorted cell refs, an optional contiguous
/// f32 image of the cache rows (exact codec — skips the per-row dynamic
/// dispatch), and a row → refs-range index so a window row costs one
/// range lookup plus a short in-row scan instead of a binary search per
/// slot. This is what makes a compact load cheap on a single core.
struct SheetGatherCtx<'a> {
    sheet: &'a SheetFineCells,
    flat: Option<&'a [f32]>,
    /// `row_ranges[r]` is the `[start, end)` range of `sheet.refs` lying
    /// on sheet row `r`. `None` for degenerate layouts whose max row is
    /// far larger than the cell count (the index would be mostly empty);
    /// those fall back to binary search per window row.
    row_ranges: Option<Vec<(u32, u32)>>,
}

impl<'a> SheetGatherCtx<'a> {
    fn new(sheet: &'a SheetFineCells) -> SheetGatherCtx<'a> {
        let refs = &sheet.refs;
        let flat = sheet.vecs.store().as_f32_slice();
        let max_row = refs.last().map(|r| r.row as usize).unwrap_or(0);
        let row_ranges = (max_row <= refs.len() * 16 + 1024).then(|| {
            let mut ranges = vec![(0u32, 0u32); max_row + 1];
            let mut i = 0usize;
            while i < refs.len() {
                let (row, start) = (refs[i].row, i);
                while i < refs.len() && refs[i].row == row {
                    i += 1;
                }
                ranges[row as usize] = (start as u32, i as u32);
            }
            ranges
        });
        SheetGatherCtx { sheet, flat, row_ranges }
    }

    /// The `[start, end)` range of `sheet.refs` on sheet row `r` (empty
    /// when the row holds no stored cells).
    fn row_range(&self, r: u32) -> (usize, usize) {
        match &self.row_ranges {
            Some(ranges) => {
                ranges.get(r as usize).map_or((0, 0), |&(s, e)| (s as usize, e as usize))
            }
            None => {
                let refs = &self.sheet.refs;
                let lo = refs.partition_point(|x| x.row < r);
                let hi = lo + refs[lo..].partition_point(|x| x.row == r);
                (lo, hi)
            }
        }
    }
}

/// Gather the fine window centered at `center` from a sheet's cell cache —
/// the artifact-side mirror of `SheetEmbedder::fine_window`, byte for
/// byte: window slots depend only on stored-cell presence and the
/// top/left sheet edge, so the cache (sorted refs + vectors), the two
/// constant rows, and the window geometry reproduce the build-time gather
/// exactly; under the `f32` codec the reconstructed tables are
/// bit-identical to the fat layout's.
///
/// Slots past the top/left sheet edge get the `invalid` row; in-bounds
/// slots default to the `empty` row, and the stored cells on each window
/// row — found via [`SheetGatherCtx::row_range`] — overwrite their slots.
/// The final values per slot are exactly the old one-binary-search-per-
/// slot gather's, just computed row-wise: each window row is at most two
/// whole-row copies from the pre-tiled blank rows plus one short copy per
/// stored cell.
fn gather_window(
    window: ViewWindow,
    fine_cell_dim: usize,
    ctx: &SheetGatherCtx<'_>,
    blanks: &BlankRows,
    center: CellRef,
    out: &mut [f32],
) {
    let (or, oc) = window.centered_origin(center);
    let f8 = fine_cell_dim;
    let cols = window.cols as usize;
    let refs = &ctx.sheet.refs;
    let interior = or >= 0 && oc >= 0;
    if interior {
        // No out-of-bounds slots anywhere: blanket the whole window in
        // one copy; stored cells overwrite below.
        out.copy_from_slice(&blanks.empty_window);
    }
    for dr in 0..window.rows as i64 {
        let r = or + dr;
        let row_out = &mut out[dr as usize * cols * f8..][..cols * f8];
        if r < 0 {
            row_out.copy_from_slice(&blanks.invalid_row);
            continue;
        }
        let n_invalid = ((-oc).max(0) as usize).min(cols);
        if !interior {
            row_out[..n_invalid * f8].copy_from_slice(&blanks.invalid_row[..n_invalid * f8]);
            row_out[n_invalid * f8..].copy_from_slice(&blanks.empty_row[n_invalid * f8..]);
        }
        let (lo, hi) = ctx.row_range(r as u32);
        let c0 = oc + n_invalid as i64;
        let start = lo + refs[lo..hi].partition_point(|x| (x.col as i64) < c0);
        let mut j = start;
        while j < hi {
            let col = refs[j].col as i64;
            if col >= oc + cols as i64 {
                break;
            }
            match ctx.flat {
                Some(flat) => {
                    // Consecutive columns are consecutive cache rows, so a
                    // densely stored stretch of the sheet row lands as one
                    // copy instead of one per cell.
                    let max_run = ((oc + cols as i64 - col) as usize).min(hi - j);
                    let mut run = 1usize;
                    while run < max_run && refs[j + run].col as i64 == col + run as i64 {
                        run += 1;
                    }
                    row_out[(col - oc) as usize * f8..][..run * f8]
                        .copy_from_slice(&flat[j * f8..(j + run) * f8]);
                    j += run;
                }
                None => {
                    let dst = &mut row_out[(col - oc) as usize * f8..][..f8];
                    ctx.sheet.vecs.store().row_into(j, dst);
                    j += 1;
                }
            }
        }
    }
    l2_normalize(out);
}

/// The constant window rows, pre-tiled to full window width (and the
/// all-blank window to full window size) so blank stretches are one
/// `memcpy` instead of one per cell slot.
struct BlankRows {
    /// `cols` repetitions of the in-bounds blank-cell vector.
    empty_row: Vec<f32>,
    /// `cols` repetitions of the out-of-bounds vector.
    invalid_row: Vec<f32>,
    /// `rows × cols` repetitions of the blank-cell vector — the whole
    /// window image of an interior window before cells are placed.
    empty_window: Vec<f32>,
}

impl BlankRows {
    fn new(rows: usize, cols: usize, empty: &[f32], invalid: &[f32]) -> BlankRows {
        BlankRows {
            empty_row: empty.repeat(cols),
            invalid_row: invalid.repeat(cols),
            empty_window: empty.repeat(rows * cols),
        }
    }
}

/// Rebuild the fat region/parameter tables from a compact fine cache (one
/// gather+normalize pass over every region and parameter window).
///
/// The gather is the dominant cost of a compact load (historically
/// ~190 ms at `AF_SCALE=small`), attacked from two directions, both
/// bit-identical to the original slot-at-a-time pass (pinned by
/// `compact_layout_is_bit_identical_under_f32`):
///
/// * **Cheaper windows** — per-sheet [`SheetGatherCtx`] (row-range index
///   and contiguous-f32 fast path), whole-row/whole-window blank tiling
///   ([`BlankRows`]), run-coalesced cell copies, duplicate-center reuse,
///   and huge-page backing for the output tables.
/// * **Parallel fill** — every window is independent: region `i` owns
///   row `i` of the region table and rows `param_start ..
///   param_start + params.len()` of the parameter table, so workers
///   (capped by `cfg.embed_threads`) split the region list into
///   contiguous chunks and write straight into disjoint slices of the
///   flat output — no locks, no post-hoc reordering. (Window dedup is
///   per-chunk, so worker count still never changes the output bits.)
fn reconstruct_fine_tables(
    cfg: &AutoFormulaConfig,
    regions: &[RegionEntry],
    cache: &FineCache,
) -> (VecTable, VecTable) {
    let fine_dim = cfg.fine_dim();
    let f8 = cfg.fine_cell_dim;
    let total_params = regions.last().map(|e| e.param_start + e.params.len()).unwrap_or(0);
    let mut region_flat = vec![0.0f32; regions.len() * fine_dim];
    let mut param_flat = vec![0.0f32; total_params * fine_dim];
    // The tables are tens of MiB written end to end; huge-page backing
    // turns the sequential first touch into one soft fault per 2 MiB.
    af_store::advise(as_byte_view(&region_flat), af_store::Advice::HugePage);
    af_store::advise(as_byte_view(&param_flat), af_store::Advice::HugePage);

    let blanks = BlankRows::new(
        cfg.window.rows as usize,
        cfg.window.cols as usize,
        &cache.empty,
        &cache.invalid,
    );
    let blanks = &blanks;
    let fill = |chunk: &[RegionEntry], region_out: &mut [f32], param_out: &mut [f32]| {
        let param_base = chunk.first().map(|e| e.param_start).unwrap_or(0);
        // Region entries arrive grouped by sheet, so the per-sheet gather
        // context (row index + f32 fast path) is rebuilt only on sheet
        // changes and amortized over every window on that sheet.
        let mut ctx: Option<(usize, SheetGatherCtx<'_>)> = None;
        // The same window center recurs across entries (~25% of windows
        // at small scale are parameter cells shared between regions);
        // identical inputs gather to identical rows, so later occurrences
        // are a straight copy of the first one's output. `true` marks a
        // row in the parameter table, `false` the region table.
        let mut seen: std::collections::HashMap<(usize, CellRef), (bool, usize)> =
            std::collections::HashMap::new();
        let mut place = |target_param: bool,
                         slot: usize,
                         center: CellRef,
                         sheet_idx: usize,
                         sg: &SheetGatherCtx<'_>,
                         region_out: &mut [f32],
                         param_out: &mut [f32]| {
            let src = seen.get(&(sheet_idx, center)).copied();
            let (out, other, dst_lo) = if target_param {
                (&mut *param_out, &*region_out, slot * fine_dim)
            } else {
                (&mut *region_out, &*param_out, slot * fine_dim)
            };
            match src {
                Some((src_param, src_slot)) if src_param == target_param => {
                    out.copy_within(src_slot * fine_dim..(src_slot + 1) * fine_dim, dst_lo);
                }
                Some((_, src_slot)) => {
                    out[dst_lo..dst_lo + fine_dim]
                        .copy_from_slice(&other[src_slot * fine_dim..(src_slot + 1) * fine_dim]);
                }
                None => {
                    let dst = &mut out[dst_lo..dst_lo + fine_dim];
                    gather_window(cfg.window, f8, sg, blanks, center, dst);
                    seen.insert((sheet_idx, center), (target_param, slot));
                }
            }
        };
        for (i, entry) in chunk.iter().enumerate() {
            if ctx.as_ref().map(|&(si, _)| si) != Some(entry.sheet_idx) {
                ctx = Some((entry.sheet_idx, SheetGatherCtx::new(&cache.sheets[entry.sheet_idx])));
            }
            let sg = &ctx.as_ref().expect("context just built").1;
            place(false, i, entry.cell, entry.sheet_idx, sg, region_out, param_out);
            for (pi, &param) in entry.params.iter().enumerate() {
                let slot = entry.param_start - param_base + pi;
                place(true, slot, param, entry.sheet_idx, sg, region_out, param_out);
            }
        }
    };

    let workers = crate::config::resolve_threads(cfg.embed_threads).min(regions.len().max(1));
    if workers <= 1 {
        fill(regions, &mut region_flat, &mut param_flat);
    } else {
        let fill = &fill;
        std::thread::scope(|s| {
            let mut region_rest: &mut [f32] = &mut region_flat;
            let mut param_rest: &mut [f32] = &mut param_flat;
            let mut start = 0usize;
            for w in 0..workers {
                let end = regions.len() * (w + 1) / workers;
                let chunk = &regions[start..end];
                let param_hi = regions.get(end).map(|e| e.param_start).unwrap_or(total_params);
                let param_lo = chunk.first().map(|e| e.param_start).unwrap_or(param_hi);
                let (region_here, rest) = region_rest.split_at_mut(chunk.len() * fine_dim);
                region_rest = rest;
                let (param_here, rest) = param_rest.split_at_mut((param_hi - param_lo) * fine_dim);
                param_rest = rest;
                s.spawn(move || fill(chunk, region_here, param_here));
                start = end;
            }
        });
    }

    (
        VecTable::from_store(af_store::DenseStore::from_f32_rows(fine_dim, region_flat)),
        VecTable::from_store(af_store::DenseStore::from_f32_rows(fine_dim, param_flat)),
    )
}

/// The section prefix shared by both format versions: keys, sheet
/// metadata, ANN indexes, and region provenance entries.
struct IndexPrefix {
    keys: Vec<SheetKey>,
    meta: Vec<SheetMeta>,
    coarse: Box<dyn af_ann::VectorIndex>,
    fine_sheets: Option<Box<dyn af_ann::VectorIndex>>,
    regions: Vec<RegionEntry>,
    regions_by_sheet: Vec<Vec<usize>>,
    total_params: usize,
}

fn decode_index_prefix(
    data: &mut Bytes,
    cfg: &AutoFormulaConfig,
) -> Result<IndexPrefix, ArtifactError> {
    let fine_dim = cfg.fine_dim();
    let n_sheets = get_count(data, 16, "index keys")?;
    let mut keys = Vec::with_capacity(n_sheets);
    for _ in 0..n_sheets {
        keys.push(SheetKey {
            workbook: get_u64(data, "index keys")? as usize,
            sheet: get_u64(data, "index keys")? as usize,
        });
    }
    let mut meta = Vec::with_capacity(n_sheets);
    for _ in 0..n_sheets {
        meta.push(SheetMeta {
            name: get_string(data, "sheet meta")?,
            rows: get_u32(data, "sheet meta")?,
            cols: get_u32(data, "sheet meta")?,
        });
    }
    let coarse = af_ann::codec::load_index(data)?;
    if coarse.dim() != cfg.coarse_dim {
        return Err(ArtifactError::Invalid("coarse index dimension disagrees with config"));
    }
    if coarse.len() != n_sheets {
        return Err(ArtifactError::Invalid("coarse index size disagrees with sheet count"));
    }
    let fine_sheets = match get_u8(data, "fine-sheet index flag")? {
        0 => None,
        1 => {
            let idx = af_ann::codec::load_index(data)?;
            if idx.dim() != fine_dim {
                return Err(ArtifactError::Invalid(
                    "fine-signature index dimension disagrees with config",
                ));
            }
            if idx.len() != n_sheets {
                return Err(ArtifactError::Invalid(
                    "fine-signature index size disagrees with sheet count",
                ));
            }
            Some(idx)
        }
        _ => return Err(ArtifactError::Invalid("fine-sheet index flag must be 0 or 1")),
    };
    let n_regions = get_count(data, 8, "regions")?;
    let mut regions = Vec::with_capacity(n_regions);
    let mut regions_by_sheet = vec![Vec::new(); n_sheets];
    let mut total_params = 0usize;
    for rid in 0..n_regions {
        let sheet_idx = get_u64(data, "region entry")? as usize;
        if sheet_idx >= n_sheets {
            return Err(ArtifactError::Invalid("region sheet id out of range"));
        }
        let cell = get_cell(data, "region entry")?;
        let formula = get_string(data, "region formula")?;
        let n_params = get_count(data, 8, "region params")?;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(get_cell(data, "region params")?);
        }
        regions_by_sheet[sheet_idx].push(rid);
        regions.push(RegionEntry { sheet_idx, cell, formula, params, param_start: total_params });
        total_params = total_params
            .checked_add(n_params)
            .ok_or(ArtifactError::Invalid("parameter count overflow"))?;
    }
    Ok(IndexPrefix { keys, meta, coarse, fine_sheets, regions, regions_by_sheet, total_params })
}

fn decode_index(
    data: &mut Bytes,
    cfg: &AutoFormulaConfig,
    version: u16,
) -> Result<ReferenceIndex, ArtifactError> {
    let fine_dim = cfg.fine_dim();
    let p = decode_index_prefix(data, cfg)?;
    let n_sheets = p.keys.len();

    let (region_vecs, param_vecs, fine_cache) = if version == 1 {
        let region_vecs = get_vec_table_v1(data, fine_dim, p.regions.len(), "region vecs")?;
        let param_vecs = get_vec_table_v1(data, fine_dim, p.total_params, "param vecs")?;
        (region_vecs, param_vecs, None)
    } else {
        match get_u8(data, "fine layout flag")? {
            FINE_FAT => {
                let region_vecs = get_vec_table(data, fine_dim, p.regions.len(), "region vecs")?;
                let param_vecs = get_vec_table(data, fine_dim, p.total_params, "param vecs")?;
                (region_vecs, param_vecs, None)
            }
            FINE_COMPACT => {
                let consts = get_vec_table(data, cfg.fine_cell_dim, 2, "fine constants")?;
                // A zero-sheet artifact wrote placeholder zero constants
                // (nothing ever captured them). Leave the cache's
                // constants *empty* in that case so the first
                // `add_workbook` captures the real model-derived rows —
                // adopting the zeros would silently poison every later
                // compact save.
                let mut cache = if n_sheets == 0 {
                    FineCache::empty_cache()
                } else {
                    FineCache {
                        empty: consts.row_owned(0),
                        invalid: consts.row_owned(1),
                        sheets: Vec::with_capacity(n_sheets),
                    }
                };
                for _ in 0..n_sheets {
                    let n_cells = get_count(data, 8, "sheet cell refs")?;
                    let mut refs = Vec::with_capacity(n_cells);
                    for _ in 0..n_cells {
                        refs.push(get_cell(data, "sheet cell refs")?);
                    }
                    if !refs.windows(2).all(|w| w[0] < w[1]) {
                        return Err(ArtifactError::Invalid("sheet cell refs not strictly sorted"));
                    }
                    let vecs = get_vec_table(data, cfg.fine_cell_dim, n_cells, "sheet cells")?;
                    cache.sheets.push(SheetFineCells { refs, vecs });
                }
                let (region_vecs, param_vecs) = reconstruct_fine_tables(cfg, &p.regions, &cache);
                (region_vecs, param_vecs, Some(cache))
            }
            _ => return Err(ArtifactError::Invalid("fine layout flag must be 0 or 1")),
        }
    };

    let (coarse_region_vecs, build_seconds) = {
        let coarse_region_vecs = match get_u8(data, "coarse region flag")? {
            0 => None,
            1 => Some(if version == 1 {
                get_vec_table_v1(data, cfg.coarse_dim, p.regions.len(), "coarse region vecs")?
            } else {
                get_vec_table(data, cfg.coarse_dim, p.regions.len(), "coarse region vecs")?
            }),
            _ => return Err(ArtifactError::Invalid("coarse region flag must be 0 or 1")),
        };
        (coarse_region_vecs, get_f64(data, "build seconds")?)
    };

    Ok(ReferenceIndex {
        keys: p.keys,
        meta: p.meta,
        coarse: p.coarse,
        fine_sheets: p.fine_sheets,
        regions: p.regions,
        region_vecs,
        param_vecs,
        coarse_region_vecs,
        regions_by_sheet: p.regions_by_sheet,
        fine_cache,
        build_seconds,
    })
}

// ---------------------------------------------------------- save and load

/// A [`StoreSink`] streaming into a buffered temp file. I/O errors are
/// deferred — the encoders stay infallible, [`StoreSink::write_bytes`]
/// keeps counting bytes after a failure so pad alignment never skews, and
/// the save path surfaces the first error once in [`FileSink::finish`].
struct FileSink {
    w: std::io::BufWriter<std::fs::File>,
    written: usize,
    err: Option<std::io::Error>,
}

impl FileSink {
    fn create(path: &Path) -> std::io::Result<FileSink> {
        let f = std::fs::File::create(path)?;
        Ok(FileSink { w: std::io::BufWriter::new(f), written: 0, err: None })
    }

    /// Flush the stream, seek back over the zeroed placeholder at offset
    /// 12 to write the now-known section table, and `fsync`. The caller
    /// renames into place afterwards, so readers never observe the
    /// placeholder.
    fn finish(mut self, table: &[(u16, u64, u64)]) -> std::io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        if let Some(e) = self.err {
            return Err(e);
        }
        self.w.flush()?;
        let mut f = self.w.into_inner().map_err(|e| e.into_error())?;
        f.seek(SeekFrom::Start(12))?;
        let mut entries = BytesMut::with_capacity(table.len() * 18);
        for &(id, offset, len) in table {
            entries.put_u16(id);
            entries.put_u64(offset);
            entries.put_u64(len);
        }
        f.write_all(&entries)?;
        f.sync_all()
    }
}

impl StoreSink for FileSink {
    fn write_bytes(&mut self, s: &[u8]) {
        if self.err.is_none() {
            if let Err(e) = std::io::Write::write_all(&mut self.w, s) {
                self.err = Some(e);
            }
        }
        self.written += s.len();
    }

    fn written(&self) -> usize {
        self.written
    }
}

/// Write `bytes` to `path` atomically: a temporary file in the same
/// directory (same filesystem, so the final `rename(2)` is atomic) takes
/// the full write and an `fsync`, then replaces `path` in one step. On any
/// error the temporary is removed and `path` is left exactly as it was —
/// a process killed mid-save never publishes a torn artifact.
///
/// The `core::artifact_save` failpoint sits between two halves of the
/// write so the chaos suite can kill a save mid-file and assert the old
/// artifact still loads.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ArtifactError> {
    use std::io::Write;
    let io_err = |e: std::io::Error| ArtifactError::Io(e.to_string());
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("artifact.afar");
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    // Any failure from here on removes the temporary before returning.
    let write_all = |tmp: &Path| -> Result<(), ArtifactError> {
        let mut f = std::fs::File::create(tmp).map_err(io_err)?;
        let half = bytes.len() / 2;
        f.write_all(&bytes[..half]).map_err(io_err)?;
        crate::fail_point!("core::artifact_save", |e: crate::failpoint::Injected| Err(
            ArtifactError::Io(e.to_string())
        ));
        f.write_all(&bytes[half..]).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        Ok(())
    };
    match write_all(&tmp) {
        Ok(()) => std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            io_err(e)
        }),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

impl AutoFormula {
    /// Serialize the whole serving state — config, featurizer vocabulary,
    /// model weights, and the reference index with all its provenance —
    /// into one self-contained artifact (format v2, exact `f32`, fat fine
    /// tables: bit-identical round trips).
    pub fn save(&self, index: &ReferenceIndex) -> Bytes {
        self.save_with(index, StoreOptions::default()).expect("default layout cannot fail")
    }

    /// [`AutoFormula::save`] with explicit storage options: a quantized
    /// [`StoreOptions::codec`] (2–4× smaller tables, recall measured in
    /// `BENCH_store.json`) and/or the [`StoreOptions::compact_fine`]
    /// layout (per-sheet cell caches instead of per-region windows).
    pub fn save_with(
        &self,
        index: &ReferenceIndex,
        opts: StoreOptions,
    ) -> Result<Bytes, ArtifactError> {
        self.save_sharded(index, opts, None)
    }

    /// [`AutoFormula::save_with`] plus an optional serving [`ShardLayout`]
    /// persisted in the `SHARDS` section. `index` must be the *merged*
    /// index in global sheet order (what `af-serve` reconstitutes before
    /// saving); the layout records which shard owned each of its sheets.
    pub fn save_sharded(
        &self,
        index: &ReferenceIndex,
        opts: StoreOptions,
        layout: Option<&ShardLayout>,
    ) -> Result<Bytes, ArtifactError> {
        if let Some(layout) = layout {
            if layout.assignment.len() != index.keys.len() {
                return Err(ArtifactError::Invalid(
                    "shard assignment length disagrees with sheet count",
                ));
            }
        }
        let _save = af_obs::span!("artifact::save");
        let mut sections: Vec<(u16, BytesMut)> = vec![
            (SEC_CONFIG, {
                let mut b = BytesMut::new();
                encode_config(&mut b, self.cfg(), self.model.feat_dim);
                b
            }),
            (SEC_FEATURIZER, {
                let mut b = BytesMut::new();
                b.put_slice(&af_embed::save_featurizer(&self.featurizer));
                b
            }),
            (SEC_MODEL, {
                let mut b = BytesMut::new();
                b.put_slice(&self.model.to_bytes());
                b
            }),
            (SEC_INDEX, {
                let mut b = BytesMut::new();
                encode_index(&mut b, index, opts, self.cfg().fine_cell_dim)?;
                b
            }),
        ];
        if let Some(layout) = layout {
            let mut b = BytesMut::new();
            encode_shards(&mut b, layout);
            sections.push((SEC_SHARDS, b));
        }
        // Pad every section body to a multiple of 4 so section offsets stay
        // 4-byte aligned in the final buffer (the embedding-table blocks
        // inside INDEX rely on it for their zero-copy views; decoders of
        // the other sections ignore trailing bytes).
        for (_, body) in sections.iter_mut() {
            while body.len() % 4 != 0 {
                body.put_u8(0);
            }
        }
        let header = 12 + sections.len() * 18;
        let table_pad = (4 - header % 4) % 4;
        let payload: usize = sections.iter().map(|(_, b)| b.len()).sum();
        let mut buf = BytesMut::with_capacity(header + table_pad + payload);
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        buf.put_u16(0); // flags, reserved
        buf.put_u32(sections.len() as u32);
        let mut offset = 0u64;
        for (id, body) in &sections {
            buf.put_u16(*id);
            buf.put_u64(offset);
            buf.put_u64(body.len() as u64);
            offset += body.len() as u64;
        }
        // v2: pad the section table so the payload base is 4-byte aligned
        // for any section count (v1 relied on 4 sections × 18 bytes + the
        // 12-byte header happening to be a multiple of 4).
        for _ in 0..table_pad {
            buf.put_u8(0);
        }
        for (_, body) in &sections {
            buf.put_slice(body);
        }
        Ok(buf.freeze())
    }

    /// [`AutoFormula::save`] straight to a file, atomically: bytes are
    /// written to a temporary file *in the target directory* and renamed
    /// into place, so a crash (or injected fault) mid-write can never
    /// leave a torn `.afar` at `path` — readers see the old artifact or
    /// the new one, nothing in between. This is the write half of the
    /// "replace artifact files by rename, never in place" contract that
    /// [`AutoFormula::load_mmap`] relies on.
    pub fn save_to_path(&self, index: &ReferenceIndex, path: &Path) -> Result<(), ArtifactError> {
        self.save_to_path_with(index, StoreOptions::default(), None, path)
    }

    /// [`AutoFormula::save_to_path`] with explicit storage options and an
    /// optional serving shard layout (see [`AutoFormula::save_sharded`]).
    ///
    /// Unlike [`AutoFormula::save_sharded`], which concatenates every
    /// section in memory, this **streams** each section straight into the
    /// temp file through a [`StoreSink`]: peak save memory stays bounded
    /// by the largest staged block (the section table and the ANN
    /// payloads) instead of scaling with the whole artifact. The bytes on
    /// disk are identical to the in-memory encoding — both paths run the
    /// same encoders, and pad runs align on the sink position — and the
    /// temp + `fsync` + rename contract of [`write_atomic`] is preserved,
    /// including the `core::artifact_save` failpoint mid-stream.
    pub fn save_to_path_with(
        &self,
        index: &ReferenceIndex,
        opts: StoreOptions,
        layout: Option<&ShardLayout>,
        path: &Path,
    ) -> Result<(), ArtifactError> {
        if let Some(layout) = layout {
            if layout.assignment.len() != index.keys.len() {
                return Err(ArtifactError::Invalid(
                    "shard assignment length disagrees with sheet count",
                ));
            }
        }
        let _save = af_obs::span!("artifact::save");
        let io_err = |e: std::io::Error| ArtifactError::Io(e.to_string());
        let dir = path.parent().filter(|d| !d.as_os_str().is_empty()).unwrap_or(Path::new("."));
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("artifact.afar");
        let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
        // Any failure from here on removes the temporary before returning.
        let stream = |tmp: &Path| -> Result<(), ArtifactError> {
            let n_sections = 4 + usize::from(layout.is_some());
            let header = 12 + n_sections * 18;
            let table_pad = (4 - header % 4) % 4;
            let mut sink = FileSink::create(tmp).map_err(io_err)?;
            sink.write_u32(MAGIC);
            sink.write_u16(VERSION);
            sink.write_u16(0); // flags, reserved
            sink.write_u32(n_sections as u32);
            // Zeroed placeholder for the section table (+ alignment pad):
            // offsets and lengths are known only after streaming, so
            // `finish` seeks back and writes the real entries before the
            // fsync + rename publishes the file.
            sink.write_bytes(&vec![0u8; n_sections * 18 + table_pad]);
            let payload_base = sink.written();
            debug_assert_eq!(payload_base % 4, 0);
            let mut table: Vec<(u16, u64, u64)> = Vec::with_capacity(n_sections);
            // Pad the body to a multiple of 4 (the next section and the
            // embedding-table blocks inside it rely on the alignment) and
            // record the entry; lengths include the pad, like
            // `save_sharded`.
            let mut seal = |sink: &mut FileSink, id: u16, start: usize| {
                while !sink.written().is_multiple_of(4) {
                    sink.write_u8(0);
                }
                table.push((id, (start - payload_base) as u64, (sink.written() - start) as u64));
            };
            let mut start = sink.written();
            encode_config(&mut sink, self.cfg(), self.model.feat_dim);
            seal(&mut sink, SEC_CONFIG, start);
            start = sink.written();
            sink.write_bytes(&af_embed::save_featurizer(&self.featurizer));
            seal(&mut sink, SEC_FEATURIZER, start);
            start = sink.written();
            sink.write_bytes(&self.model.to_bytes());
            seal(&mut sink, SEC_MODEL, start);
            crate::fail_point!("core::artifact_save", |e: crate::failpoint::Injected| Err(
                ArtifactError::Io(e.to_string())
            ));
            start = sink.written();
            encode_index(&mut sink, index, opts, self.cfg().fine_cell_dim)?;
            seal(&mut sink, SEC_INDEX, start);
            if let Some(layout) = layout {
                start = sink.written();
                encode_shards(&mut sink, layout);
                seal(&mut sink, SEC_SHARDS, start);
            }
            sink.finish(&table).map_err(io_err)
        };
        match stream(&tmp) {
            Ok(()) => std::fs::rename(&tmp, path).map_err(|e| {
                let _ = std::fs::remove_file(&tmp);
                io_err(e)
            }),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Rebuild a complete serving state from an artifact produced by
    /// [`AutoFormula::save`] (either format version). The returned system
    /// and index reproduce the in-memory pipeline's predictions exactly
    /// when the artifact was written with the exact codec.
    pub fn load(data: &[u8]) -> Result<(AutoFormula, ReferenceIndex), ArtifactError> {
        AutoFormula::load_bytes_artifact(Bytes::from(data.to_vec()))
    }

    /// [`AutoFormula::load`] via `mmap(2)`: the artifact file is mapped
    /// page-on-demand instead of read into memory, so the zero-copy
    /// embedding tables serve straight from the page cache and artifacts
    /// larger than RAM stay loadable — only the pages queries touch
    /// become resident, and the kernel evicts cold ones under pressure.
    /// The mapping lives until the returned index (and every clone of its
    /// tables) drops. Replace artifact files by rename, never in place.
    pub fn load_mmap(path: &Path) -> Result<(AutoFormula, ReferenceIndex), ArtifactError> {
        let bytes = af_store::map_file(path).map_err(|e| ArtifactError::Io(e.to_string()))?;
        AutoFormula::load_bytes_artifact(bytes)
    }

    /// [`AutoFormula::load_mmap`] that also surfaces the serving
    /// [`ShardLayout`] when the artifact carries one (v3 `SHARDS`
    /// section); `None` for unsharded or pre-v3 artifacts.
    pub fn load_mmap_sharded(
        path: &Path,
    ) -> Result<(AutoFormula, ReferenceIndex, Option<ShardLayout>), ArtifactError> {
        let bytes = af_store::map_file(path).map_err(|e| ArtifactError::Io(e.to_string()))?;
        AutoFormula::load_bytes_sharded(bytes)
    }

    /// [`AutoFormula::load`] without the input copy: pass an owned
    /// [`Bytes`] (e.g. `Bytes::from(std::fs::read(path)?)` or an mmap via
    /// `af_store::map_file`) and sections are sliced out of it zero-copy.
    pub fn load_bytes_artifact(
        data: Bytes,
    ) -> Result<(AutoFormula, ReferenceIndex), ArtifactError> {
        AutoFormula::load_bytes_sharded(data).map(|(af, index, _)| (af, index))
    }

    /// [`AutoFormula::load_bytes_artifact`] that also surfaces the serving
    /// [`ShardLayout`] when the artifact carries one (v3 `SHARDS`
    /// section); `None` for unsharded or pre-v3 artifacts.
    pub fn load_bytes_sharded(
        data: Bytes,
    ) -> Result<(AutoFormula, ReferenceIndex, Option<ShardLayout>), ArtifactError> {
        crate::fail_point!("core::artifact_load", |e: crate::failpoint::Injected| Err(
            ArtifactError::Io(e.to_string())
        ));
        let _load = af_obs::span!("artifact::load");
        // For an mmap-backed load, prefetch the header + section table
        // page up front (it is about to be parsed sequentially). On heap
        // buffers or non-unix targets this is a no-op.
        af_store::advise(&data[..data.len().min(4096)], af_store::Advice::WillNeed);
        let mut head = data;
        if get_u32(&mut head, "magic")? != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = get_u16(&mut head, "version")?;
        if !SUPPORTED_VERSIONS.contains(&version) {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: SUPPORTED_VERSIONS,
            });
        }
        let _flags = get_u16(&mut head, "flags")?;
        let n_sections = get_u32(&mut head, "section table")? as usize;
        // Each table entry is 18 bytes; reject counts the buffer cannot hold.
        if n_sections > head.remaining() / 18 {
            return Err(ArtifactError::Truncated("section table"));
        }
        let mut table = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let id = get_u16(&mut head, "section table")?;
            let offset = get_u64(&mut head, "section table")? as usize;
            let len = get_u64(&mut head, "section table")? as usize;
            table.push((id, offset, len));
        }
        if version >= 2 {
            let table_pad = (4 - (12 + n_sections * 18) % 4) % 4;
            if head.remaining() < table_pad {
                return Err(ArtifactError::Truncated("section table"));
            }
            head.split_to(table_pad);
        }
        let payload = head; // everything after the table
        let section = |id: u16, name: &'static str| -> Result<Bytes, ArtifactError> {
            let &(_, offset, len) = table
                .iter()
                .find(|&&(i, _, _)| i == id)
                .ok_or(ArtifactError::MissingSection(name))?;
            let end = offset.checked_add(len).ok_or(ArtifactError::Truncated(name))?;
            if end > payload.len() {
                return Err(ArtifactError::Truncated(name));
            }
            Ok(payload.slice(offset..end))
        };

        let (cfg, feat_dim) = decode_config(&mut section(SEC_CONFIG, "CONFIG")?, version)?;
        let featurizer = af_embed::load_featurizer(&mut section(SEC_FEATURIZER, "FEATURIZER")?)?;
        if featurizer.dim() != feat_dim {
            return Err(ArtifactError::Invalid(
                "featurizer dimension disagrees with the stored model input dim",
            ));
        }
        let mut model = RepresentationModel::new(feat_dim, cfg);
        model.load_bytes(section(SEC_MODEL, "MODEL")?)?;
        let mut index_bytes = section(SEC_INDEX, "INDEX")?;
        // The INDEX section is served zero-copy and queried at random row
        // offsets — tell the kernel not to waste read-ahead on it.
        af_store::advise(&index_bytes, af_store::Advice::Random);
        let load_index = af_obs::span!("artifact::load_index");
        let index = decode_index(&mut index_bytes, &cfg, version)?;
        load_index.end();
        let layout = if table.iter().any(|&(id, _, _)| id == SEC_SHARDS) {
            Some(decode_shards(&mut section(SEC_SHARDS, "SHARDS")?, index.keys.len())?)
        } else {
            None
        };
        Ok((AutoFormula::from_model(model, featurizer), index, layout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexOptions;
    use crate::pipeline::PipelineVariant;
    use af_corpus::organization::{OrgSpec, Scale};
    use af_embed::{CellFeaturizer, FeatureMask, SbertSim};
    use std::sync::Arc;

    fn small_system() -> (AutoFormula, ReferenceIndex, af_corpus::OrgCorpus) {
        let corpus = OrgSpec::pge(Scale::Tiny).generate();
        let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
        let cfg = AutoFormulaConfig::test_tiny();
        let af =
            AutoFormula::from_model(RepresentationModel::new(featurizer.dim(), cfg), featurizer);
        let members: Vec<usize> = (0..4).collect();
        let index = af.build_index(&corpus.workbooks, &members, IndexOptions::default());
        (af, index, corpus)
    }

    fn assert_identical_predictions(
        a: &AutoFormula,
        ia: &ReferenceIndex,
        b: &AutoFormula,
        ib: &ReferenceIndex,
        corpus: &af_corpus::OrgCorpus,
    ) -> usize {
        let mut compared = 0usize;
        for wb in corpus.workbooks.iter().take(4) {
            for sheet in &wb.sheets {
                for (target, _) in sheet.formulas() {
                    let x = a.predict_with(ia, sheet, target, PipelineVariant::Full);
                    let y = b.predict_with(ib, sheet, target, PipelineVariant::Full);
                    match (x, y) {
                        (Some(x), Some(y)) => {
                            assert_eq!(x.formula, y.formula);
                            assert_eq!(x.s2_distance.to_bits(), y.s2_distance.to_bits());
                            assert_eq!(x.reference_sheet, y.reference_sheet);
                        }
                        (None, None) => {}
                        (x, y) => panic!("prediction mismatch: {x:?} vs {y:?}"),
                    }
                    compared += 1;
                }
            }
        }
        compared
    }

    #[test]
    fn artifact_round_trips_predictions() {
        let (af, index, corpus) = small_system();
        let bytes = af.save(&index);
        let (loaded, loaded_index) = AutoFormula::load(&bytes).expect("load");
        assert_eq!(loaded_index.n_sheets(), index.n_sheets());
        assert_eq!(loaded_index.n_regions(), index.n_regions());
        let compared = assert_identical_predictions(&af, &index, &loaded, &loaded_index, &corpus);
        assert!(compared > 0);
    }

    #[test]
    fn compact_layout_is_bit_identical_under_f32() {
        let (af, index, corpus) = small_system();
        let fat = af.save(&index);
        let compact = af
            .save_with(&index, StoreOptions { codec: Codec::F32, compact_fine: true })
            .expect("compact save");
        assert!(
            compact.len() * 2 < fat.len(),
            "compact must shrink the artifact substantially ({} vs {})",
            compact.len(),
            fat.len()
        );
        let (loaded, loaded_index) = AutoFormula::load(&compact).expect("compact load");
        // Reconstructed tables are bit-identical: same gather, same
        // normalize, same f32 inputs.
        for rid in 0..index.n_regions() {
            assert_eq!(loaded_index.region_vec(rid), index.region_vec(rid), "region {rid}");
            for pi in 0..index.regions[rid].params.len() {
                assert_eq!(loaded_index.param_vec(rid, pi), index.param_vec(rid, pi));
            }
        }
        let compared = assert_identical_predictions(&af, &index, &loaded, &loaded_index, &corpus);
        assert!(compared > 0);
        // A compact-loaded index retains its cache, so it can re-save
        // compact (round and round).
        let again = loaded
            .save_with(&loaded_index, StoreOptions { codec: Codec::F32, compact_fine: true })
            .expect("re-save compact");
        assert_eq!(again.len(), compact.len());
    }

    #[test]
    fn quantized_artifacts_load_and_serve() {
        let (af, index, corpus) = small_system();
        let fat = af.save(&index);
        for codec in [Codec::F16, Codec::Int8, Codec::Pq { m: 0 }] {
            for compact_fine in [false, true] {
                let opts = StoreOptions { codec, compact_fine };
                let bytes = af.save_with(&index, opts).expect("save");
                // PQ shrinks only the tables whose row count clears the
                // training threshold (here the param table trains, the
                // region tables stay pending as raw f32 + header), so the
                // size win is partial and corpus-dependent at this scale —
                // it is benchmarked properly in BENCH_store.json; the
                // other codecs shrink everywhere.
                if codec.tag() != 4 {
                    assert!(bytes.len() < fat.len(), "{opts:?} must shrink the artifact");
                }
                let (loaded, loaded_index) = AutoFormula::load(&bytes).expect("load");
                assert_eq!(loaded_index.n_sheets(), index.n_sheets());
                assert_eq!(loaded_index.n_regions(), index.n_regions());
                if !compact_fine {
                    assert_eq!(loaded_index.fine_codec().tag(), codec.tag());
                }
                // Quantized serving stays on the rails: predictions exist
                // and the self-query case still finds itself.
                let sheet = &corpus.workbooks[0].sheets[0];
                let (target, _) = sheet.formulas().next().expect("formula cell");
                let pred = loaded
                    .predict_with(&loaded_index, sheet, target, PipelineVariant::Full)
                    .unwrap_or_else(|| panic!("{opts:?} must serve"));
                assert!(pred.s2_distance < 1e-2, "{opts:?}: self-region distance");
            }
        }
    }

    #[test]
    fn zero_sheet_compact_artifact_grows_without_poisoned_constants() {
        // Regression: a compact artifact saved over zero sheets wrote
        // placeholder zero constant rows; loading it left a *non-empty*
        // all-zero FineCache, so the `is_empty()` capture guard never
        // fired on later adds and every subsequent compact save persisted
        // zero blank/out-of-bounds rows — silently wrong reconstructions.
        let corpus = OrgSpec::pge(Scale::Tiny).generate();
        let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
        let cfg = AutoFormulaConfig::test_tiny();
        let af =
            AutoFormula::from_model(RepresentationModel::new(featurizer.dim(), cfg), featurizer);
        let empty_index = af.build_index(&corpus.workbooks, &[], IndexOptions::default());
        let opts = StoreOptions { codec: Codec::F32, compact_fine: true };
        let bytes = af.save_with(&empty_index, opts).expect("zero-sheet compact save");
        let (loaded, mut grown) = AutoFormula::load(&bytes).expect("zero-sheet compact load");

        // Grow the loaded index, re-save compact, reload: must serve
        // exactly like an in-memory index grown the same way.
        grown.add_workbook(&loaded.embedder(), &corpus.workbooks[0], 0);
        let mut reference = af.build_index(&corpus.workbooks, &[], IndexOptions::default());
        reference.add_workbook(&af.embedder(), &corpus.workbooks[0], 0);
        let again = loaded.save_with(&grown, opts).expect("re-save compact");
        let (af2, idx2) = AutoFormula::load(&again).expect("reload");
        assert_eq!(idx2.n_regions(), reference.n_regions());
        for rid in 0..reference.n_regions() {
            assert_eq!(idx2.region_vec(rid), reference.region_vec(rid), "region {rid}");
        }
        let sheet = &corpus.workbooks[0].sheets[0];
        let (target, _) = sheet.formulas().next().expect("formula cell");
        let a = af.predict_with(&reference, sheet, target, PipelineVariant::Full);
        let b = af2.predict_with(&idx2, sheet, target, PipelineVariant::Full);
        assert_eq!(a.map(|p| p.formula), b.map(|p| p.formula));
    }

    #[test]
    fn compact_save_requires_the_cache() {
        let (af, index, _) = small_system();
        // A fat artifact does not carry the caches, so its loaded index
        // cannot re-save compact.
        let (loaded, loaded_index) = AutoFormula::load(&af.save(&index)).unwrap();
        let err = loaded
            .save_with(&loaded_index, StoreOptions { codec: Codec::F32, compact_fine: true })
            .err();
        assert!(matches!(err, Some(ArtifactError::Invalid(_))));
    }

    #[test]
    fn load_mmap_round_trips_bit_identically() {
        let (af, index, corpus) = small_system();
        let bytes = af.save(&index);
        let mut path = std::env::temp_dir();
        path.push(format!("af_artifact_mmap_{}.afar", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let (loaded, loaded_index) = AutoFormula::load_mmap(&path).expect("mmap load");
        let compared = assert_identical_predictions(&af, &index, &loaded, &loaded_index, &corpus);
        assert!(compared > 0);
        drop(loaded_index); // release the mapping before unlinking
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            AutoFormula::load_mmap(Path::new("/no/such/artifact.afar")),
            Err(ArtifactError::Io(_))
        ));
    }

    #[test]
    fn loaded_index_keeps_sheet_meta() {
        let (af, index, _) = small_system();
        let bytes = af.save(&index);
        let (_, loaded_index) = AutoFormula::load(&bytes).unwrap();
        for si in 0..index.n_sheets() {
            assert_eq!(loaded_index.sheet_meta(si), index.sheet_meta(si));
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let (af, index, _) = small_system();
        let bytes = af.save(&index);
        assert_eq!(AutoFormula::load(b"not an artifact").err(), Some(ArtifactError::BadMagic));
        let mut flipped = bytes.to_vec();
        flipped[5] ^= 0xFF; // version byte
        match AutoFormula::load(&flipped).err() {
            Some(ArtifactError::UnsupportedVersion { found, supported }) => {
                assert_ne!(found, VERSION);
                assert_eq!(supported, SUPPORTED_VERSIONS);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn future_version_reports_unsupported_not_a_section_error() {
        // Regression: a future-versioned artifact must name the version
        // problem directly instead of failing on some section decode.
        let (af, index, _) = small_system();
        let mut bytes = af.save(&index).to_vec();
        bytes[4..6].copy_from_slice(&9u16.to_be_bytes());
        assert_eq!(
            AutoFormula::load(&bytes).err(),
            Some(ArtifactError::UnsupportedVersion { found: 9, supported: SUPPORTED_VERSIONS })
        );
    }

    #[test]
    fn shard_layout_round_trips_and_plain_saves_carry_none() {
        let (af, index, _) = small_system();
        let n = index.n_sheets();
        let layout =
            ShardLayout { n_shards: 3, assignment: (0..n).map(|i| (i % 3) as u32).collect() };
        let bytes = af.save_sharded(&index, StoreOptions::default(), Some(&layout)).unwrap();
        let (_, idx2, loaded) = AutoFormula::load_bytes_sharded(bytes).unwrap();
        assert_eq!(loaded.as_ref(), Some(&layout));
        assert_eq!(idx2.n_sheets(), n);
        // A plain save writes no SHARDS section and loads as unsharded.
        let (_, _, none) = AutoFormula::load_bytes_sharded(af.save(&index)).unwrap();
        assert!(none.is_none());
        // A layout that disagrees with the sheet count is rejected up front.
        let bad = ShardLayout { n_shards: 2, assignment: vec![0; n + 1] };
        assert!(matches!(
            af.save_sharded(&index, StoreOptions::default(), Some(&bad)),
            Err(ArtifactError::Invalid(_))
        ));
    }

    #[test]
    fn v3_config_fields_survive_the_round_trip() {
        let (af, index, _) = small_system();
        let bytes = af.save(&index);
        let (loaded, _) = AutoFormula::load(&bytes).expect("load");
        assert_eq!(loaded.cfg().n_shards, af.cfg().n_shards);
        assert_eq!(loaded.cfg().delta_max_sheets, af.cfg().delta_max_sheets);
    }

    #[test]
    fn artifact_error_exposes_source() {
        use std::error::Error;
        let e = ArtifactError::from(SnapshotError::BadMagic);
        assert!(e.source().is_some());
        let e = ArtifactError::from(CodecError::Truncated);
        assert!(e.source().is_some());
        let e = ArtifactError::from(FeaturizerCodecError::Truncated);
        assert!(e.source().is_some());
        let e = ArtifactError::from(StoreError::Truncated("x"));
        assert!(e.source().is_some());
        assert!(ArtifactError::BadMagic.source().is_none());
        // Display lines are distinct and non-empty all the way down.
        assert!(!ArtifactError::Truncated("x").to_string().is_empty());
        assert!(!ArtifactError::UnsupportedVersion { found: 9, supported: SUPPORTED_VERSIONS }
            .to_string()
            .is_empty());
    }
}
