//! Thin CLI wrapper: regenerates table5 (see DESIGN.md's per-experiment
//! index). `AF_SCALE={tiny,small,full}` scales the synthetic corpora.

fn main() {
    af_bench::report::run_experiment(
        "table5",
        "Table 5: Auto-Formula vs SpreadsheetCoder vs GPT-union on 180 cases",
        af_bench::experiments::table5,
    );
}
