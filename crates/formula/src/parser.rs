//! A Pratt (precedence-climbing) parser for spreadsheet formulas.

use crate::ast::{BinOp, Expr, UnOp};
use crate::token::{tokenize, LexError, Token, TokenKind};
use af_grid::A1Ref;
use std::fmt;

/// Parse failure, with the byte offset of the offending token.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { pos: e.pos, message: e.message }
    }
}

/// Parse a formula body (without leading `=`) into an AST.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens: &tokens, i: 0, src_len: src.len(), depth: 0 };
    let expr = p.expr(0)?;
    if p.i != tokens.len() {
        return Err(p.err_here("unexpected trailing tokens"));
    }
    Ok(expr)
}

struct Parser<'t> {
    tokens: &'t [Token],
    i: usize,
    src_len: usize,
    depth: u32,
}

const MAX_DEPTH: u32 = 128;

impl Parser<'_> {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.i).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<&TokenKind> {
        let t = self.tokens.get(self.i).map(|t| &t.kind);
        self.i += 1;
        t
    }

    fn pos(&self) -> usize {
        self.tokens.get(self.i).map(|t| t.pos).unwrap_or(self.src_len)
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError { pos: self.pos(), message: msg.into() }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.peek() == Some(&kind) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err_here(format!("expected {kind}")))
        }
    }

    /// Precedence-climbing expression parser.
    fn expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err_here("formula nests too deeply"));
        }
        let mut lhs = self.prefix()?;
        // Postfix percent binds tightest.
        while self.peek() == Some(&TokenKind::Percent) {
            self.i += 1;
            lhs = Expr::Unary(UnOp::Percent, Box::new(lhs));
        }
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                Some(TokenKind::Caret) => BinOp::Pow,
                Some(TokenKind::Ampersand) => BinOp::Concat,
                Some(TokenKind::Eq) => BinOp::Eq,
                Some(TokenKind::Ne) => BinOp::Ne,
                Some(TokenKind::Lt) => BinOp::Lt,
                Some(TokenKind::Le) => BinOp::Le,
                Some(TokenKind::Gt) => BinOp::Gt,
                Some(TokenKind::Ge) => BinOp::Ge,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.i += 1;
            // Left-associative: parse the right side at prec+1.
            let rhs = self.expr(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        self.depth -= 1;
        Ok(lhs)
    }

    fn prefix(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(TokenKind::Minus) => {
                self.i += 1;
                // Unary minus binds tighter than binary operators (Excel
                // convention: -2^2 = 4).
                let e = self.prefix()?;
                Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
            }
            Some(TokenKind::Plus) => {
                self.i += 1;
                let e = self.prefix()?;
                Ok(Expr::Unary(UnOp::Plus, Box::new(e)))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.bump() {
            Some(TokenKind::Number(n)) => {
                let n = *n;
                let mut e = Expr::Number(n);
                while self.peek() == Some(&TokenKind::Percent) {
                    self.i += 1;
                    e = Expr::Unary(UnOp::Percent, Box::new(e));
                }
                Ok(e)
            }
            Some(TokenKind::Str(s)) => Ok(Expr::Text(s.clone())),
            Some(TokenKind::LParen) => {
                let e = self.expr(0)?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            Some(TokenKind::Ident(name)) => {
                let name = name.clone();
                if self.peek() == Some(&TokenKind::LParen) {
                    self.i += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr(0)?);
                            match self.peek() {
                                Some(TokenKind::Comma) => {
                                    self.i += 1;
                                }
                                _ => break,
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    return Ok(Expr::Call(name.to_ascii_uppercase(), args));
                }
                // Not a call: boolean literal or cell reference / range.
                let upper = name.to_ascii_uppercase();
                if upper == "TRUE" {
                    return Ok(Expr::Bool(true));
                }
                if upper == "FALSE" {
                    return Ok(Expr::Bool(false));
                }
                let start: A1Ref = name
                    .parse()
                    .map_err(|_| ParseError { pos, message: format!("unknown name {name:?}") })?;
                if self.peek() == Some(&TokenKind::Colon) {
                    self.i += 1;
                    let end_pos = self.pos();
                    match self.bump() {
                        Some(TokenKind::Ident(end_name)) => {
                            let end: A1Ref = end_name.parse().map_err(|_| ParseError {
                                pos: end_pos,
                                message: format!("bad range end {end_name:?}"),
                            })?;
                            Ok(Expr::Range(start, end))
                        }
                        _ => Err(ParseError { pos: end_pos, message: "expected range end".into() }),
                    }
                } else {
                    Ok(Expr::Ref(start))
                }
            }
            Some(other) => {
                let msg = format!("unexpected token {other}");
                Err(ParseError { pos, message: msg })
            }
            None => Err(ParseError { pos, message: "unexpected end of formula".into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        parse(src).unwrap().to_string()
    }

    #[test]
    fn paper_formulas() {
        assert_eq!(roundtrip("COUNTIF(C7:C37,C41)"), "COUNTIF(C7:C37,C41)");
        assert_eq!(roundtrip("COUNTIF(C6:C350,C354)"), "COUNTIF(C6:C350,C354)");
        assert_eq!(roundtrip("SUM(A12:B40)"), "SUM(A12:B40)");
    }

    #[test]
    fn precedence() {
        assert_eq!(roundtrip("1+2*3"), "1+2*3");
        assert_eq!(roundtrip("(1+2)*3"), "(1+2)*3");
        assert_eq!(roundtrip("2^3^2"), "2^3^2");
        assert_eq!(roundtrip("A1&B1=\"x\""), "A1&B1=\"x\"");
        assert_eq!(roundtrip("1<2"), "1<2");
    }

    #[test]
    fn unary_and_percent() {
        assert_eq!(roundtrip("-A1"), "-A1");
        assert_eq!(roundtrip("-2^2"), "-2^2");
        let e = parse("-2^2").unwrap();
        // Excel convention: the negation applies first.
        assert!(matches!(e, Expr::Binary(BinOp::Pow, _, _)));
        assert_eq!(roundtrip("50%"), "50%");
        assert_eq!(roundtrip("A1*10%"), "A1*10%");
    }

    #[test]
    fn nested_calls() {
        assert_eq!(
            roundtrip("IF(SUM(A1:A9)>100,\"big\",\"small\")"),
            "IF(SUM(A1:A9)>100,\"big\",\"small\")"
        );
        assert_eq!(roundtrip("sum(a1:a3)"), "SUM(A1:A3)");
    }

    #[test]
    fn empty_arg_list() {
        assert_eq!(roundtrip("PI()"), "PI()");
        assert_eq!(roundtrip("RAND()*10"), "RAND()*10");
    }

    #[test]
    fn booleans() {
        assert_eq!(roundtrip("IF(TRUE,1,0)"), "IF(TRUE,1,0)");
        assert_eq!(roundtrip("false"), "FALSE");
    }

    #[test]
    fn absolute_refs() {
        assert_eq!(roundtrip("VLOOKUP(A2,$D$1:$E$9,2,FALSE)"), "VLOOKUP(A2,$D$1:$E$9,2,FALSE)");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("SUM(").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("foo").is_err(), "bare unknown name");
        assert!(parse("1 2").is_err(), "trailing tokens");
        assert!(parse("SUM(A1:)").is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut src = String::new();
        for _ in 0..200 {
            src.push('(');
        }
        src.push('1');
        for _ in 0..200 {
            src.push(')');
        }
        assert!(parse(&src).is_err(), "should refuse pathological nesting");
    }

    #[test]
    fn semicolon_separator() {
        assert_eq!(roundtrip("IF(A1>0;1;2)"), "IF(A1>0,1,2)");
    }
}
