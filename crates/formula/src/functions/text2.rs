//! Second batch of text and array functions: `PROPER`, `TEXTJOIN`,
//! `SUMPRODUCT`, `ISERROR`/`ISERR`/`ISNA`, and `EDATE`/`EOMONTH`.

use super::{arity, number_arg, scalar_arg, text_arg};
use crate::eval::Operand;
use af_grid::value::{date_to_serial, serial_to_date};
use af_grid::{CellError, CellValue};

pub(super) fn call(name: &str, args: &[Operand]) -> Result<CellValue, CellError> {
    match name {
        "PROPER" => {
            arity(args, 1, 1)?;
            let s = text_arg(args, 0)?;
            let mut out = String::with_capacity(s.len());
            let mut boundary = true;
            for ch in s.chars() {
                if ch.is_alphabetic() {
                    if boundary {
                        out.extend(ch.to_uppercase());
                    } else {
                        out.extend(ch.to_lowercase());
                    }
                    boundary = false;
                } else {
                    out.push(ch);
                    boundary = true;
                }
            }
            Ok(CellValue::Text(out))
        }
        "TEXTJOIN" => {
            // TEXTJOIN(delimiter, ignore_empty, value1, …).
            if args.len() < 3 {
                return Err(CellError::Value);
            }
            let delim = text_arg(args, 0)?;
            let ignore_empty = super::truthy(&scalar_arg(args, 1)?)?;
            let mut parts: Vec<String> = Vec::new();
            for a in &args[2..] {
                for v in a.values() {
                    if let CellValue::Error(e) = v {
                        return Err(*e);
                    }
                    let d = v.display();
                    if !(ignore_empty && d.is_empty()) {
                        parts.push(d);
                    }
                }
            }
            Ok(CellValue::Text(parts.join(&delim)))
        }
        "SUMPRODUCT" => {
            if args.is_empty() {
                return Err(CellError::Value);
            }
            let columns: Vec<Vec<f64>> = args
                .iter()
                .map(|a| a.values().map(|v| v.as_number().unwrap_or(0.0)).collect::<Vec<f64>>())
                .collect();
            let len = columns[0].len();
            if columns.iter().any(|c| c.len() != len) {
                return Err(CellError::Value);
            }
            let mut total = 0.0;
            for i in 0..len {
                total += columns.iter().map(|c| c[i]).product::<f64>();
            }
            Ok(CellValue::Number(total))
        }
        "ISERROR" | "ISERR" | "ISNA" => {
            arity(args, 1, 1)?;
            // Errors must be observable, not propagated.
            let v = args[0].clone().into_scalar();
            let out = match (name, v) {
                ("ISNA", Ok(CellValue::Error(CellError::Na))) => true,
                ("ISNA", _) => false,
                ("ISERR", Ok(CellValue::Error(CellError::Na))) => false,
                (_, Ok(CellValue::Error(_))) | (_, Err(_)) => true,
                _ => false,
            };
            Ok(CellValue::Bool(out))
        }
        "EDATE" | "EOMONTH" => {
            arity(args, 2, 2)?;
            let serial = match scalar_arg(args, 0)? {
                CellValue::Date(d) => d,
                CellValue::Number(n) => n as i64,
                _ => return Err(CellError::Value),
            };
            let months = number_arg(args, 1)? as i64;
            let (y, m, d) = serial_to_date(serial);
            let total = y * 12 + (m as i64 - 1) + months;
            let (ny, nm) = (total.div_euclid(12), total.rem_euclid(12) as u32 + 1);
            let last = last_day_of_month(ny, nm);
            let day = if name == "EOMONTH" { last } else { d.min(last) };
            Ok(CellValue::Date(date_to_serial(ny, nm, day)))
        }
        _ => Err(CellError::Name),
    }
}

fn last_day_of_month(year: i64, month: u32) -> u32 {
    let lens = [31u32, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
    let mut d = lens[month as usize - 1];
    let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    if month == 2 && leap {
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::ArrayValue;

    fn s(v: CellValue) -> Operand {
        Operand::Scalar(v)
    }

    fn nums(values: &[f64]) -> Operand {
        Operand::Array(ArrayValue {
            rows: values.len() as u32,
            cols: 1,
            data: values.iter().map(|&v| CellValue::Number(v)).collect(),
        })
    }

    #[test]
    fn proper_title_cases() {
        assert_eq!(
            call("PROPER", &[s(CellValue::text("north SALES report"))]),
            Ok(CellValue::text("North Sales Report"))
        );
        assert_eq!(
            call("PROPER", &[s(CellValue::text("o'brien-smith"))]),
            Ok(CellValue::text("O'Brien-Smith"))
        );
    }

    #[test]
    fn textjoin_with_ignore_empty() {
        let vals = Operand::Array(ArrayValue {
            rows: 3,
            cols: 1,
            data: vec![CellValue::text("a"), CellValue::Empty, CellValue::text("b")],
        });
        assert_eq!(
            call("TEXTJOIN", &[s(CellValue::text("-")), s(CellValue::Bool(true)), vals.clone()]),
            Ok(CellValue::text("a-b"))
        );
        assert_eq!(
            call("TEXTJOIN", &[s(CellValue::text("-")), s(CellValue::Bool(false)), vals]),
            Ok(CellValue::text("a--b"))
        );
    }

    #[test]
    fn sumproduct_multiplies_lanes() {
        let a = nums(&[1.0, 2.0, 3.0]);
        let b = nums(&[4.0, 5.0, 6.0]);
        assert_eq!(call("SUMPRODUCT", &[a, b]), Ok(CellValue::Number(32.0)));
        assert_eq!(call("SUMPRODUCT", &[nums(&[1.0]), nums(&[1.0, 2.0])]), Err(CellError::Value));
    }

    #[test]
    fn error_predicates() {
        let div0 = s(CellValue::Error(CellError::Div0));
        let na = s(CellValue::Error(CellError::Na));
        let ok = s(CellValue::Number(1.0));
        assert_eq!(call("ISERROR", std::slice::from_ref(&div0)), Ok(CellValue::Bool(true)));
        assert_eq!(call("ISERROR", std::slice::from_ref(&ok)), Ok(CellValue::Bool(false)));
        assert_eq!(call("ISNA", std::slice::from_ref(&na)), Ok(CellValue::Bool(true)));
        assert_eq!(call("ISNA", std::slice::from_ref(&div0)), Ok(CellValue::Bool(false)));
        assert_eq!(call("ISERR", &[na]), Ok(CellValue::Bool(false)));
        assert_eq!(call("ISERR", &[div0]), Ok(CellValue::Bool(true)));
    }

    #[test]
    fn edate_and_eomonth() {
        let jan31 = s(CellValue::Date(date_to_serial(2023, 1, 31)));
        // One month after Jan 31 clamps to Feb 28.
        assert_eq!(
            call("EDATE", &[jan31.clone(), s(CellValue::Number(1.0))]),
            Ok(CellValue::Date(date_to_serial(2023, 2, 28)))
        );
        assert_eq!(
            call("EOMONTH", &[jan31.clone(), s(CellValue::Number(1.0))]),
            Ok(CellValue::Date(date_to_serial(2023, 2, 28)))
        );
        // Negative months cross year boundaries.
        assert_eq!(
            call("EDATE", &[jan31, s(CellValue::Number(-2.0))]),
            Ok(CellValue::Date(date_to_serial(2022, 11, 30)))
        );
        // Leap-year February.
        let jan20 = s(CellValue::Date(date_to_serial(2020, 1, 15)));
        assert_eq!(
            call("EOMONTH", &[jan20, s(CellValue::Number(1.0))]),
            Ok(CellValue::Date(date_to_serial(2020, 2, 29)))
        );
    }
}
