//! View windows (§4.4.1, Fig. 5).
//!
//! Spreadsheets have no explicit table boundary, so the paper represents a
//! sheet (or the region around a cell) through a fixed `n_r × n_c` window —
//! "similar to a view window that human eyes can focus on". A window either
//! starts at the top-left corner (to represent the whole sheet) or is
//! centered on a cell (to represent its surrounding region). Slots that fall
//! outside the sheet are *invalid* and featurized distinctly from in-bounds
//! empty cells.

use crate::cell::Cell;
use crate::cellref::CellRef;
use crate::sheet::Sheet;

/// A fixed-size window specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewWindow {
    pub rows: u32,
    pub cols: u32,
}

impl ViewWindow {
    pub const fn new(rows: u32, cols: u32) -> Self {
        ViewWindow { rows, cols }
    }

    pub fn n_cells(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// The top-left *virtual* coordinate of the window centered at `center`.
    /// Virtual coordinates are signed: negative when the window extends past
    /// the top/left sheet edge.
    pub fn centered_origin(&self, center: CellRef) -> (i64, i64) {
        (center.row as i64 - (self.rows as i64) / 2, center.col as i64 - (self.cols as i64) / 2)
    }

    /// Enumerate the window slots centered at `center` over `sheet`, in
    /// row-major order. Every slot is reported, including invalid ones, so
    /// the output always has exactly `rows × cols` entries.
    pub fn centered<'s>(
        &self,
        sheet: &'s Sheet,
        center: CellRef,
    ) -> impl Iterator<Item = WindowSlot<'s>> + 's {
        let origin = self.centered_origin(center);
        self.slots(sheet, origin)
    }

    /// Enumerate the window anchored at the sheet's top-left corner (the
    /// representative region for the entire sheet).
    pub fn top_left<'s>(&self, sheet: &'s Sheet) -> impl Iterator<Item = WindowSlot<'s>> + 's {
        self.slots(sheet, (0, 0))
    }

    fn slots<'s>(
        &self,
        sheet: &'s Sheet,
        origin: (i64, i64),
    ) -> impl Iterator<Item = WindowSlot<'s>> + 's {
        let (rows, cols) = (self.rows as i64, self.cols as i64);
        let (or, oc) = origin;
        (0..rows).flat_map(move |dr| {
            (0..cols).map(move |dc| {
                let (r, c) = (or + dr, oc + dc);
                if r < 0 || c < 0 {
                    WindowSlot::Invalid
                } else {
                    let at = CellRef::new(r as u32, c as u32);
                    match sheet.get(at) {
                        Some(cell) => WindowSlot::Cell(at, cell),
                        None => WindowSlot::EmptyCell(at),
                    }
                }
            })
        })
    }
}

impl Default for ViewWindow {
    /// The scaled-down default (paper §5.1 uses 100×10; see DESIGN.md).
    fn default() -> Self {
        ViewWindow::new(50, 10)
    }
}

/// One slot of a view window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSlot<'s> {
    /// In-bounds slot holding a stored cell.
    Cell(CellRef, &'s Cell),
    /// In-bounds slot with no stored cell (blank).
    EmptyCell(CellRef),
    /// Out-of-bounds slot (beyond the top/left sheet edge).
    Invalid,
}

impl WindowSlot<'_> {
    pub fn is_invalid(&self) -> bool {
        matches!(self, WindowSlot::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sheet() -> Sheet {
        let mut s = Sheet::new("t");
        for r in 0..5 {
            for c in 0..3 {
                s.set(CellRef::new(r, c), Cell::new((r * 3 + c) as f64));
            }
        }
        s
    }

    #[test]
    fn window_has_exact_slot_count() {
        let s = sheet();
        let w = ViewWindow::new(4, 4);
        assert_eq!(w.top_left(&s).count(), 16);
        assert_eq!(w.centered(&s, CellRef::new(2, 1)).count(), 16);
    }

    #[test]
    fn top_left_window_reads_cells() {
        let s = sheet();
        let w = ViewWindow::new(2, 2);
        let slots: Vec<_> = w.top_left(&s).collect();
        match slots[0] {
            WindowSlot::Cell(at, c) => {
                assert_eq!(at, CellRef::new(0, 0));
                assert_eq!(c.value.display(), "0");
            }
            _ => panic!("expected cell"),
        }
        match slots[3] {
            WindowSlot::Cell(at, c) => {
                assert_eq!(at, CellRef::new(1, 1));
                assert_eq!(c.value.display(), "4");
            }
            _ => panic!("expected cell"),
        }
    }

    #[test]
    fn centered_window_marks_out_of_bounds_invalid() {
        let s = sheet();
        let w = ViewWindow::new(4, 4);
        // Centered at A1: origin is (-2, -2), so the first rows/cols are
        // invalid.
        let slots: Vec<_> = w.centered(&s, CellRef::new(0, 0)).collect();
        let invalid = slots.iter().filter(|s| s.is_invalid()).count();
        // rows -2,-1 entirely invalid (8 slots) plus cols -2,-1 of rows 0,1
        // (4 slots).
        assert_eq!(invalid, 12);
    }

    #[test]
    fn in_bounds_blank_cells_are_empty_not_invalid() {
        let s = sheet();
        let w = ViewWindow::new(2, 2);
        let slots: Vec<_> = w.centered(&s, CellRef::new(10, 10)).collect();
        assert!(slots.iter().all(|sl| matches!(sl, WindowSlot::EmptyCell(_))));
    }

    #[test]
    fn centered_origin_math() {
        let w = ViewWindow::new(100, 10);
        // Paper Fig. 5: the window around A120 spans 100 rows centered on
        // row 119 (0-based).
        let (r, c) = w.centered_origin(CellRef::new(119, 0));
        assert_eq!(r, 69);
        assert_eq!(c, -5);
    }
}
