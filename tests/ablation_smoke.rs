//! Ablation smoke tests: the experiment arms of Figs. 13–15 must all run
//! end-to-end and the feature masks must actually change model inputs.

use auto_formula::core::index::IndexOptions;
use auto_formula::core::pipeline::{AutoFormula, PipelineVariant};
use auto_formula::core::{AutoFormulaConfig, TrainingOptions};
use auto_formula::corpus::organization::{OrgSpec, Scale};
use auto_formula::corpus::split::{split, SplitKind};
use auto_formula::corpus::testcase::{masked_sheet, sample_test_cases};
use auto_formula::embed::{CellFeaturizer, FeatureMask, SbertSim};
use std::sync::Arc;

fn train(mask: FeatureMask, coarse_da: bool, fine_da: bool) -> AutoFormula {
    let universe = OrgSpec::web_crawl(Scale::Tiny).generate();
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), mask);
    let cfg = AutoFormulaConfig {
        episodes: 20,
        coarse_augmentation: coarse_da,
        fine_augmentation: fine_da,
        ..AutoFormulaConfig::test_tiny()
    };
    let (af, report) =
        AutoFormula::train(&universe.workbooks, featurizer, cfg, TrainingOptions::default());
    assert!(report.episodes > 0);
    af
}

fn predict_some(af: &AutoFormula) -> usize {
    let org = OrgSpec::pge(Scale::Tiny).generate();
    let sp = split(&org, SplitKind::Random, 0.1, 2);
    let index = af.build_index(&org.workbooks, &sp.reference, IndexOptions::default());
    let cases = sample_test_cases(&org, &sp, 2, 3);
    cases
        .iter()
        .take(10)
        .filter(|tc| {
            let sheet = &org.workbooks[tc.workbook].sheets[tc.sheet];
            let masked = masked_sheet(sheet, tc.target);
            af.predict_with(&index, &masked, tc.target, PipelineVariant::Full).is_some()
        })
        .count()
}

#[test]
fn feature_mask_arms_run() {
    for mask in [FeatureMask::FULL, FeatureMask::NO_CONTENT, FeatureMask::NO_STYLE] {
        let af = train(mask, true, true);
        // All arms must still produce *some* predictions (quality differs,
        // which the fig13 harness measures).
        let n = predict_some(&af);
        assert!(n > 0, "mask {mask:?} produced no predictions");
    }
}

#[test]
fn augmentation_arms_run() {
    for (cda, fda) in [(true, true), (true, false), (false, false)] {
        let af = train(FeatureMask::FULL, cda, fda);
        let n = predict_some(&af);
        assert!(n > 0, "DA arm ({cda},{fda}) produced no predictions");
    }
}

#[test]
fn masked_features_change_embeddings() {
    // The NO_CONTENT arm must actually blind the model to content: two
    // cells with different text but identical style embed identically.
    use auto_formula::grid::{Cell, Sheet};
    let af = train(FeatureMask::NO_CONTENT, true, true);
    let embedder = af.embedder();
    let mut a = Sheet::new("a");
    a.set_a1("A1", Cell::new("Revenue"));
    let mut b = Sheet::new("b");
    b.set_a1("A1", Cell::new("Inventory"));
    let ea = embedder.embed_sheet(&a, false);
    let eb = embedder.embed_sheet(&b, false);
    assert_eq!(ea.coarse, eb.coarse, "content-blind model cannot tell these apart");

    let af_full = train(FeatureMask::FULL, true, true);
    let embedder = af_full.embedder();
    let ea = embedder.embed_sheet(&a, false);
    let eb = embedder.embed_sheet(&b, false);
    assert_ne!(ea.coarse, eb.coarse, "full model must tell these apart");
}
