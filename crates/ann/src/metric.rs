//! Distance computation and neighbor records.
//!
//! The distance kernel itself lives in `af_nn::kernel` (one unrolled,
//! property-tested implementation shared by the training stack and the
//! indexes); this module re-exports it so `af_ann::metric::l2_sq` keeps
//! working and call sites cannot drift apart again.

/// Squared Euclidean distance (8-wide unrolled; see `af_nn::kernel`). On
/// unit vectors this equals `2 − 2·cosθ`, so ranking by it matches ranking
/// by cosine similarity.
pub use af_nn::kernel::{dot, l2_sq};

/// A search hit: vector id plus squared-L2 distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Id of the matched vector (dense, in insertion order).
    pub id: usize,
    /// Squared Euclidean distance to the query.
    pub dist: f32,
}

impl Neighbor {
    /// A neighbor record for vector `id` at distance `dist`.
    pub fn new(id: usize, dist: f32) -> Neighbor {
        Neighbor { id, dist }
    }
}

/// Merge per-shard top-k lists into one global top-k, ordered by
/// `(dist, id)` — the scatter-gather reduction of a sharded search.
///
/// Each input list must already carry **globalized** ids (the caller maps
/// shard-local ids to corpus-wide ids before merging). Ties on distance
/// resolve toward the smaller id, which is exactly the order a single
/// exact [`crate::FlatIndex`] scan over the undivided corpus produces: its
/// [`TopK`] admits the *first* (lowest-id) candidate at any tied distance
/// and rejects later ones at the cutoff. Merging exhaustive per-shard
/// results therefore returns bit-identical ids *and* distances to the
/// unsharded scan — sharding is invisible to callers on exact backends.
///
/// # Examples
///
/// ```
/// use af_ann::{merge_neighbors, Neighbor};
///
/// let shard_a = vec![Neighbor::new(0, 0.25), Neighbor::new(4, 0.5)];
/// let shard_b = vec![Neighbor::new(3, 0.5), Neighbor::new(1, 0.75)];
/// let merged = merge_neighbors([shard_a, shard_b], 3);
/// let ids: Vec<usize> = merged.iter().map(|n| n.id).collect();
/// assert_eq!(ids, vec![0, 3, 4]); // tie at 0.5 resolves to the lower id
/// ```
pub fn merge_neighbors<I>(per_shard: I, k: usize) -> Vec<Neighbor>
where
    I: IntoIterator<Item = Vec<Neighbor>>,
{
    let mut all: Vec<Neighbor> = per_shard.into_iter().flatten().collect();
    all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

/// Maintain the `k` smallest neighbors seen so far (a bounded max-heap
/// encoded as a sorted insertion buffer — for the small `k` used here this
/// beats a real heap).
#[derive(Debug)]
pub struct TopK {
    k: usize,
    items: Vec<Neighbor>,
}

impl TopK {
    /// An empty accumulator keeping at most `k` neighbors.
    pub fn new(k: usize) -> TopK {
        TopK { k, items: Vec::with_capacity(k + 1) }
    }

    /// Current worst (largest) accepted distance, or `f32::INFINITY` while
    /// not yet full.
    pub fn worst(&self) -> f32 {
        if self.items.len() < self.k {
            f32::INFINITY
        } else {
            self.items.last().map(|n| n.dist).unwrap_or(f32::INFINITY)
        }
    }

    /// Insert a candidate. Non-finite distances (NaN from a corrupted
    /// embedding, ±∞ from overflow) are rejected at the boundary: a NaN
    /// would slip past the `>=` cutoff below and then poison
    /// `partition_point`'s ordering for every later push.
    pub fn push(&mut self, n: Neighbor) {
        if self.k == 0 || !n.dist.is_finite() || n.dist >= self.worst() {
            return;
        }
        let pos = self.items.partition_point(|x| x.dist <= n.dist);
        self.items.insert(pos, n);
        self.items.truncate(self.k);
    }

    /// The accepted neighbors, ascending by distance.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        self.items
    }

    /// Number of neighbors currently held (≤ `k`).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no neighbor has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((l2_sq(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn topk_keeps_k_smallest_sorted() {
        let mut t = TopK::new(3);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 3.0), (3, 0.5), (4, 4.0)] {
            t.push(Neighbor::new(id, d));
        }
        let out = t.into_sorted();
        let ids: Vec<usize> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 1, 2]);
        assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn topk_zero_capacity() {
        let mut t = TopK::new(0);
        t.push(Neighbor::new(0, 1.0));
        assert!(t.is_empty());
    }

    #[test]
    fn non_finite_distances_rejected() {
        // Regression: a NaN passed the `>=` cutoff (NaN comparisons are
        // false), landed at an arbitrary `partition_point` position, and
        // corrupted the sort order of every subsequent push.
        let mut t = TopK::new(3);
        t.push(Neighbor::new(0, 2.0));
        t.push(Neighbor::new(1, f32::NAN));
        t.push(Neighbor::new(2, 1.0));
        t.push(Neighbor::new(3, f32::INFINITY));
        t.push(Neighbor::new(4, 3.0));
        t.push(Neighbor::new(5, 0.5));
        let out = t.into_sorted();
        let ids: Vec<usize> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![5, 2, 0]);
        assert!(out.iter().all(|n| n.dist.is_finite()));
        assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn nan_never_becomes_the_worst_cutoff() {
        // A NaN accepted while the buffer is not yet full would also make
        // `worst()` NaN, silently rejecting all later (valid) candidates.
        let mut t = TopK::new(2);
        t.push(Neighbor::new(0, f32::NAN));
        assert!(t.is_empty());
        t.push(Neighbor::new(1, 1.0));
        t.push(Neighbor::new(2, 2.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.worst(), 2.0);
    }

    #[test]
    fn merge_matches_unsharded_topk_on_ties() {
        // Simulate a 2-way shard of ids 0..6 (evens/odds) with tied
        // distances; the merged result must reproduce the order a single
        // TopK scan over 0..6 in id order produces.
        let dists = [0.5f32, 0.25, 0.5, 0.75, 0.25, 0.5];
        let mut unsharded = TopK::new(4);
        for (id, &d) in dists.iter().enumerate() {
            unsharded.push(Neighbor::new(id, d));
        }
        let per_shard: Vec<Vec<Neighbor>> = (0..2)
            .map(|s| {
                let mut t = TopK::new(4);
                for (id, &d) in dists.iter().enumerate().filter(|(id, _)| id % 2 == s) {
                    t.push(Neighbor::new(id, d));
                }
                t.into_sorted()
            })
            .collect();
        assert_eq!(merge_neighbors(per_shard, 4), unsharded.into_sorted());
    }

    #[test]
    fn worst_tracks_threshold() {
        let mut t = TopK::new(2);
        assert_eq!(t.worst(), f32::INFINITY);
        t.push(Neighbor::new(0, 2.0));
        assert_eq!(t.worst(), f32::INFINITY, "not yet full");
        t.push(Neighbor::new(1, 1.0));
        assert_eq!(t.worst(), 2.0);
        t.push(Neighbor::new(2, 0.5));
        assert_eq!(t.worst(), 1.0);
    }
}
