//! Word and character-n-gram tokenization for the text embedders.

/// Lowercased alphanumeric word tokens. Punctuation splits tokens; digits
/// group with digits, letters with letters (so `FY23` → `fy`, `23`).
pub fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut cur_is_digit = false;
    for ch in text.chars() {
        let (is_alnum, is_digit) = (ch.is_alphanumeric(), ch.is_ascii_digit());
        if is_alnum && (cur.is_empty() || cur_is_digit == is_digit) {
            for c in ch.to_lowercase() {
                cur.push(c);
            }
            cur_is_digit = is_digit;
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            if is_alnum {
                for c in ch.to_lowercase() {
                    cur.push(c);
                }
                cur_is_digit = is_digit;
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Character n-grams of the lowercased text padded with `^`/`$` sentinels,
/// for n in `ns`. Invoked per n-gram via callback to avoid allocations.
pub fn char_ngrams(text: &str, ns: &[usize], mut f: impl FnMut(&[char])) {
    let mut padded: Vec<char> = Vec::with_capacity(text.len() + 2);
    padded.push('^');
    for ch in text.chars() {
        for c in ch.to_lowercase() {
            padded.push(c);
        }
    }
    padded.push('$');
    for &n in ns {
        if padded.len() < n {
            continue;
        }
        for w in padded.windows(n) {
            f(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_splitting() {
        assert_eq!(words("Total Sales"), ["total", "sales"]);
        assert_eq!(words("FY23-Q1"), ["fy", "23", "q", "1"]);
        assert_eq!(words("  a,b;; c "), ["a", "b", "c"]);
        assert!(words("***").is_empty());
        assert!(words("").is_empty());
    }

    #[test]
    fn unicode_words() {
        assert_eq!(words("Énergie Été"), ["énergie", "été"]);
    }

    #[test]
    fn ngrams_with_sentinels() {
        let mut grams: Vec<String> = Vec::new();
        char_ngrams("ab", &[2], |g| grams.push(g.iter().collect()));
        assert_eq!(grams, ["^a", "ab", "b$"]);
    }

    #[test]
    fn ngrams_multiple_sizes() {
        let mut count = 0;
        char_ngrams("abc", &[2, 3], |_| count += 1);
        // padded = ^abc$ (5 chars): 4 bigrams + 3 trigrams.
        assert_eq!(count, 7);
    }

    #[test]
    fn ngrams_short_text() {
        let mut count = 0;
        char_ngrams("", &[3], |_| count += 1);
        // padded = ^$ (2 chars) < 3 → no trigrams.
        assert_eq!(count, 0);
    }
}
