//! Workbooks: spreadsheet files containing an ordered sequence of sheets.
//!
//! The weak-supervision step (§4.2) reasons over *files* — two files whose
//! sheet-name sequences match 1-to-1 are likely similar — so workbooks carry
//! a name and a last-modified timestamp (used for the "timestamp" test
//! split in §5.1).

use crate::sheet::Sheet;

/// A spreadsheet file (`.xlsx` analog): named, timestamped, multi-sheet.
#[derive(Debug, Clone, Default)]
pub struct Workbook {
    pub name: String,
    pub sheets: Vec<Sheet>,
    /// Last-modified time in seconds since an arbitrary epoch; only the
    /// ordering matters (timestamp split).
    pub timestamp: i64,
}

impl Workbook {
    pub fn new(name: impl Into<String>) -> Self {
        Workbook { name: name.into(), sheets: Vec::new(), timestamp: 0 }
    }

    pub fn with_timestamp(mut self, ts: i64) -> Self {
        self.timestamp = ts;
        self
    }

    pub fn push_sheet(&mut self, sheet: Sheet) {
        self.sheets.push(sheet);
    }

    pub fn sheet_names(&self) -> Vec<&str> {
        self.sheets.iter().map(|s| s.name()).collect()
    }

    pub fn sheet_by_name(&self, name: &str) -> Option<&Sheet> {
        self.sheets.iter().find(|s| s.name() == name)
    }

    pub fn n_sheets(&self) -> usize {
        self.sheets.len()
    }

    /// Total number of formulas across all sheets.
    pub fn formula_count(&self) -> usize {
        self.sheets.iter().map(|s| s.formula_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;

    #[test]
    fn sheet_lookup_and_counts() {
        let mut wb = Workbook::new("report.xlsx").with_timestamp(42);
        let mut s1 = Sheet::new("Instructions");
        s1.set_a1("A1", Cell::new("read me"));
        let mut s2 = Sheet::new("WorkshopDetails");
        s2.set_a1("B2", Cell::new(1.0).with_formula("SUM(A1:A1)"));
        wb.push_sheet(s1);
        wb.push_sheet(s2);

        assert_eq!(wb.n_sheets(), 2);
        assert_eq!(wb.sheet_names(), ["Instructions", "WorkshopDetails"]);
        assert!(wb.sheet_by_name("WorkshopDetails").is_some());
        assert!(wb.sheet_by_name("nope").is_none());
        assert_eq!(wb.formula_count(), 1);
        assert_eq!(wb.timestamp, 42);
    }
}
