//! Cell styles: the paper's non-textual "style" channel (§3.1, §4.4.1).
//!
//! Styles are what make two similar-sheets *look* similar to a human even
//! when their data differs — background colors, fonts, borders, cell sizes.
//! The featurizer in `af-embed` turns a [`CellStyle`] into a dense vector.

/// An sRGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color {
    pub r: u8,
    pub g: u8,
    pub b: u8,
}

impl Color {
    pub const WHITE: Color = Color::new(255, 255, 255);
    pub const BLACK: Color = Color::new(0, 0, 0);

    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// Parse `#RRGGBB`.
    pub fn from_hex(s: &str) -> Option<Color> {
        let s = s.strip_prefix('#')?;
        if s.len() != 6 {
            return None;
        }
        let r = u8::from_str_radix(&s[0..2], 16).ok()?;
        let g = u8::from_str_radix(&s[2..4], 16).ok()?;
        let b = u8::from_str_radix(&s[4..6], 16).ok()?;
        Some(Color::new(r, g, b))
    }

    /// Channels normalized to `[0, 1]` for featurization.
    pub fn normalized(&self) -> [f32; 3] {
        [self.r as f32 / 255.0, self.g as f32 / 255.0, self.b as f32 / 255.0]
    }

    /// Perturb each channel by at most `amount` (used by the corpus generator
    /// to jitter palettes between similar sheets).
    pub fn jitter(&self, amount: i16, noise: [i16; 3]) -> Color {
        let clamp = |v: i16, n: i16| (v + n.clamp(-amount, amount)).clamp(0, 255) as u8;
        Color::new(
            clamp(self.r as i16, noise[0]),
            clamp(self.g as i16, noise[1]),
            clamp(self.b as i16, noise[2]),
        )
    }
}

impl Default for Color {
    fn default() -> Self {
        Color::WHITE
    }
}

/// Bitflags for the four cell borders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BorderFlags(pub u8);

impl BorderFlags {
    pub const NONE: BorderFlags = BorderFlags(0);
    pub const TOP: u8 = 1;
    pub const BOTTOM: u8 = 2;
    pub const LEFT: u8 = 4;
    pub const RIGHT: u8 = 8;
    pub const ALL: BorderFlags = BorderFlags(0b1111);

    pub fn has(&self, flag: u8) -> bool {
        self.0 & flag != 0
    }

    pub fn with(self, flag: u8) -> BorderFlags {
        BorderFlags(self.0 | flag)
    }

    /// Four 0/1 features, one per side.
    pub fn features(&self) -> [f32; 4] {
        [
            self.has(Self::TOP) as u8 as f32,
            self.has(Self::BOTTOM) as u8 as f32,
            self.has(Self::LEFT) as u8 as f32,
            self.has(Self::RIGHT) as u8 as f32,
        ]
    }
}

/// The full per-cell style record.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStyle {
    pub fill: Color,
    pub font_color: Color,
    pub bold: bool,
    pub italic: bool,
    pub underline: bool,
    /// Font size in points.
    pub font_size: f32,
    /// Column width in characters (spreadsheet convention).
    pub width: f32,
    /// Row height in points.
    pub height: f32,
    pub borders: BorderFlags,
}

impl Default for CellStyle {
    fn default() -> Self {
        CellStyle {
            fill: Color::WHITE,
            font_color: Color::BLACK,
            bold: false,
            italic: false,
            underline: false,
            font_size: 11.0,
            width: 8.43,
            height: 15.0,
            borders: BorderFlags::NONE,
        }
    }
}

impl CellStyle {
    /// A typical bold header style on a colored fill.
    pub fn header(fill: Color) -> Self {
        CellStyle {
            fill,
            bold: true,
            font_size: 12.0,
            borders: BorderFlags(BorderFlags::BOTTOM),
            ..Default::default()
        }
    }

    pub fn with_fill(mut self, fill: Color) -> Self {
        self.fill = fill;
        self
    }

    pub fn with_bold(mut self, bold: bool) -> Self {
        self.bold = bold;
        self
    }

    pub fn with_font_color(mut self, c: Color) -> Self {
        self.font_color = c;
        self
    }

    pub fn with_borders(mut self, b: BorderFlags) -> Self {
        self.borders = b;
        self
    }

    pub fn is_default(&self) -> bool {
        *self == CellStyle::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_parsing() {
        assert_eq!(Color::from_hex("#FF8000"), Some(Color::new(255, 128, 0)));
        assert_eq!(Color::from_hex("FF8000"), None);
        assert_eq!(Color::from_hex("#F80"), None);
        assert_eq!(Color::from_hex("#GG0000"), None);
    }

    #[test]
    fn normalization_bounds() {
        let n = Color::new(255, 0, 128).normalized();
        assert_eq!(n[0], 1.0);
        assert_eq!(n[1], 0.0);
        assert!((n[2] - 128.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn jitter_clamps() {
        let c = Color::new(250, 5, 100);
        let j = c.jitter(10, [100, -100, 3]);
        assert_eq!(j, Color::new(255, 0, 103));
    }

    #[test]
    fn border_features() {
        let b = BorderFlags::NONE.with(BorderFlags::TOP).with(BorderFlags::RIGHT);
        assert_eq!(b.features(), [1.0, 0.0, 0.0, 1.0]);
        assert!(BorderFlags::ALL.has(BorderFlags::LEFT));
    }

    #[test]
    fn default_style_detection() {
        assert!(CellStyle::default().is_default());
        assert!(!CellStyle::header(Color::new(0, 0, 255)).is_default());
    }
}
