//! `af-ann` — vector similarity search, built from scratch.
//!
//! The paper indexes sheet- and region-embeddings with Faiss (§4.6, Fig. 8)
//! and credits ANN search for Auto-Formula's orders-of-magnitude latency
//! advantage over Mondrian's graph matching. This crate supplies that
//! substrate:
//!
//! * [`FlatIndex`] — exact scan (optionally parallel), ground truth;
//! * [`HnswIndex`] — hierarchical navigable small-world graphs;
//! * [`IvfFlatIndex`] — k-means inverted lists (IVF-Flat, the classic Faiss
//!   layout);
//! * [`kmeans`] — seeded Lloyd's algorithm with k-means++ initialization.
//!
//! All indexes measure **squared Euclidean distance**; the embeddings this
//! workspace produces are L2-normalized, making squared-L2 ordering
//! identical to cosine ordering.

pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod kmeans;
pub mod metric;

pub use flat::FlatIndex;
pub use hnsw::{HnswIndex, HnswParams};
pub use ivf::{IvfFlatIndex, IvfParams};
pub use kmeans::{kmeans, KMeansResult};
pub use metric::{l2_sq, Neighbor};

/// Common interface over the index types.
pub trait VectorIndex: Send + Sync {
    /// Number of indexed vectors.
    fn len(&self) -> usize;
    /// Vector dimensionality.
    fn dim(&self) -> usize;
    /// The `k` nearest neighbors of `query`, ascending by distance.
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor>;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Nearest neighbors within a distance threshold (the paper's `θ`
    /// confidence knob in step S2).
    fn search_within(&self, query: &[f32], k: usize, max_dist: f32) -> Vec<Neighbor> {
        let mut out = self.search(query, k);
        out.retain(|n| n.dist <= max_dist);
        out
    }
}
