//! Data-parallel training must be bit-deterministic in the worker count:
//! the gradient-shard decomposition depends only on the batch, and shards
//! are reduced in fixed order, so 1 worker and N workers must produce
//! **bit-identical** model weights for the same seed and corpus.

use af_core::training::{train_model, TrainingOptions};
use af_core::AutoFormulaConfig;
use af_corpus::organization::{OrgSpec, Scale};
use af_embed::{CellFeaturizer, FeatureMask, SbertSim};
use std::sync::Arc;

fn weights_after_training(workers: usize) -> Vec<u8> {
    let corpus = OrgSpec::web_crawl(Scale::Tiny).generate();
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
    let cfg = AutoFormulaConfig { episodes: 12, ..AutoFormulaConfig::test_tiny() };
    let opts = TrainingOptions { workers, ..TrainingOptions::default() };
    let (model, report) = train_model(&corpus.workbooks, &featurizer, cfg, opts);
    assert!(report.episodes > 0, "corpus must produce training pairs");
    model.to_bytes().to_vec()
}

#[test]
fn one_worker_vs_many_workers_bit_identical() {
    let w1 = weights_after_training(1);
    let w4 = weights_after_training(4);
    assert_eq!(w1, w4, "1-worker and 4-worker training diverged");
    // Auto (0 = one per core) must also match the fixed counts.
    let wauto = weights_after_training(0);
    assert_eq!(w1, wauto, "auto-width training diverged from 1-worker");
}

#[test]
fn repeated_runs_bit_identical() {
    // Same seed + same worker count: training is a pure function.
    assert_eq!(weights_after_training(3), weights_after_training(3));
}
