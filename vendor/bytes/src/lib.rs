//! Vendored stand-in for the `bytes` crate: [`Bytes`], [`BytesMut`], and the
//! [`Buf`]/[`BufMut`] cursor traits, covering the surface the model
//! snapshotting code uses (big-endian put/get of fixed-width scalars,
//! `put_slice`, `freeze`, `slice`, `split_to`).
//!
//! `Bytes` is a shared owner plus a window, so `clone`, `slice`, and
//! `split_to` are O(1) and allocation-free like upstream. The owner is
//! usually a `Vec<u8>`, but [`Bytes::from_owner`] (mirroring upstream
//! `bytes` ≥ 1.9) accepts any `AsRef<[u8]> + Send + Sync` value — that is
//! what lets an mmap-backed region flow through every `Bytes` consumer
//! zero-copy, with the mapping unmapped when the last clone drops.
//! `from_static` copies (no zero-copy specialization) — irrelevant at
//! snapshot sizes.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, immutable byte buffer.
///
/// The owner's storage pointer is cached at construction (like upstream
/// `bytes`), so `deref` is a branch-free `from_raw_parts` — no dynamic
/// dispatch on the read hot paths — while the `Arc`'d owner keeps the
/// storage alive and address-stable.
#[derive(Clone)]
pub struct Bytes {
    /// Keeps the storage alive; never accessed on the read path.
    _owner: Arc<dyn AsRef<[u8]> + Send + Sync>,
    /// Base of the owner's full slice, captured once at construction.
    ptr: *const u8,
    start: usize,
    end: usize,
}

// SAFETY: the raw pointer is derived from (and outlived by) the shared,
// immutable, `Send + Sync` owner the `Arc` pins; `Bytes` provides only
// shared read access to it.
unsafe impl Send for Bytes {}
unsafe impl Sync for Bytes {}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Wrap any byte owner without copying. The owner is kept alive (and
    /// its storage address pinned) for as long as any clone or sub-slice
    /// of the returned `Bytes` exists, then dropped — e.g. a memory map
    /// is unmapped only after the last view into it is gone. The owner's
    /// `as_ref()` must be stable: it is called once here and the
    /// resulting slice is assumed valid for the owner's lifetime (true
    /// for `Vec`, boxed slices, mmaps — anything that does not reallocate
    /// under shared access).
    pub fn from_owner<T: AsRef<[u8]> + Send + Sync + 'static>(owner: T) -> Self {
        let data: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::new(owner);
        let slice = (*data).as_ref();
        let (ptr, end) = (slice.as_ptr(), slice.len());
        Bytes { _owner: data, ptr, start: 0, end }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-window of this buffer (panics if out of bounds).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range");
        Bytes {
            _owner: Arc::clone(&self._owner),
            ptr: self.ptr,
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `n` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to({n}) out of range");
        let head = self.slice(0..n);
        self.start += n;
        head
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        self.start += N;
        out
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_owner(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr` points at the owner's slice, captured at
        // construction; the `Arc` keeps the owner (and thus the slice)
        // alive and immutable, and `start <= end <= slice.len()` is an
        // invariant maintained by every constructor and `split_to`.
        unsafe { std::slice::from_raw_parts(self.ptr.add(self.start), self.end - self.start) }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

/// Read cursor over a byte source. All multi-byte reads are big-endian,
/// matching upstream `bytes`. The `get_*` methods panic on underflow (like
/// upstream); the `try_get_*` family returns `None` instead and leaves the
/// buffer untouched, for parsers that must reject corrupt input gracefully.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn get_u8(&mut self) -> u8;
    fn get_u16(&mut self) -> u16;
    fn get_u32(&mut self) -> u32;
    fn get_u64(&mut self) -> u64;

    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn try_get_u8(&mut self) -> Option<u8> {
        (self.remaining() >= 1).then(|| self.get_u8())
    }

    fn try_get_u16(&mut self) -> Option<u16> {
        (self.remaining() >= 2).then(|| self.get_u16())
    }

    fn try_get_u32(&mut self) -> Option<u32> {
        (self.remaining() >= 4).then(|| self.get_u32())
    }

    fn try_get_u64(&mut self) -> Option<u64> {
        (self.remaining() >= 8).then(|| self.get_u64())
    }

    fn try_get_f32(&mut self) -> Option<f32> {
        self.try_get_u32().map(f32::from_bits)
    }

    fn try_get_f64(&mut self) -> Option<f64> {
        self.try_get_u64().map(f64::from_bits)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        u8::from_be_bytes(self.take_array())
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }
}

/// Growable byte sink. All multi-byte writes are big-endian, matching
/// upstream `bytes`.
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32(0xDEAD_BEEF);
        w.put_u16(7);
        w.put_u64(u64::MAX - 3);
        w.put_f32(1.5);
        w.put_slice(b"ok");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 2 + 8 + 4 + 2);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16(), 7);
        assert_eq!(r.get_u64(), u64::MAX - 3);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(&*r, b"ok");
    }

    #[test]
    fn slice_and_split() {
        let mut b = Bytes::from(b"hello world".to_vec());
        let head = b.split_to(5);
        assert_eq!(&*head, b"hello");
        assert_eq!(&*b, b" world");
        assert_eq!(&*b.slice(1..6), b"world");
        assert_eq!(head.slice(0..head.len() - 1).len(), 4);
    }

    #[test]
    fn try_get_rejects_underflow_without_consuming() {
        let mut w = BytesMut::new();
        w.put_u16(0xBEEF);
        let mut r = w.freeze();
        assert_eq!(r.try_get_u32(), None);
        assert_eq!(r.remaining(), 2, "failed read must not consume");
        assert_eq!(r.try_get_u16(), Some(0xBEEF));
        assert_eq!(r.try_get_u8(), None);
        assert_eq!(r.try_get_f64(), None);
    }

    #[test]
    fn big_endian_layout() {
        let mut w = BytesMut::new();
        w.put_u32(1);
        assert_eq!(&*w, &[0, 0, 0, 1]);
    }

    #[test]
    fn from_owner_keeps_owner_alive_and_drops_it_last() {
        struct Tracked(Vec<u8>, Arc<std::sync::atomic::AtomicBool>);
        impl AsRef<[u8]> for Tracked {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.1.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut b = Bytes::from_owner(Tracked(b"abcdef".to_vec(), Arc::clone(&dropped)));
        let head = b.split_to(2);
        let tail = b.slice(1..4);
        assert_eq!(&*head, b"ab");
        assert_eq!(&*tail, b"def");
        drop(b);
        drop(head);
        assert!(!dropped.load(std::sync::atomic::Ordering::SeqCst), "tail still borrows");
        drop(tail);
        assert!(dropped.load(std::sync::atomic::Ordering::SeqCst), "owner freed with last view");
    }
}
