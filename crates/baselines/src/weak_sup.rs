//! Weak-supervision-only baseline (§5.1): sheets are "similar" iff they
//! pass the §4.2 sheet-name hypothesis test; the predicted formula is the
//! reference formula closest to the target cell, offset-rewritten. High
//! precision, low recall — it is blind to similarly-*looking* sheets with
//! different names (Fig. 3c).

use crate::adapt::offset_rewrite;
use crate::{Baseline, BaselinePrediction, PredictionContext};
use af_corpus::weak_supervision::NameModel;
use af_grid::Workbook;

/// Weak-supervision-only predictor.
pub struct WeakSupBaseline {
    model: NameModel,
    alpha: f64,
}

impl WeakSupBaseline {
    /// Build the name-frequency model over the whole collection.
    pub fn build(workbooks: &[Workbook], alpha: f64) -> WeakSupBaseline {
        WeakSupBaseline { model: NameModel::build(workbooks), alpha }
    }
}

impl Baseline for WeakSupBaseline {
    fn name(&self) -> &'static str {
        "Weak Supervision"
    }

    fn predict(&self, ctx: &PredictionContext<'_>) -> Option<BaselinePrediction> {
        let target_wb = &ctx.workbooks[ctx.target_workbook];
        // Most significant matching reference workbook.
        let mut best: Option<(usize, f64)> = None;
        for &wi in ctx.reference {
            if let Some(p) = self.model.match_p_value(target_wb, &ctx.workbooks[wi]) {
                if p <= self.alpha && best.is_none_or(|(_, bp)| p < bp) {
                    best = Some((wi, p));
                }
            }
        }
        let (wi, p) = best?;
        let ref_sheet = ctx.workbooks[wi].sheets.get(ctx.target_sheet)?;
        let nearest = ref_sheet.formulas().min_by_key(|(at, _)| {
            let dr = (at.row as i64 - ctx.target.row as i64).abs();
            let dc = (at.col as i64 - ctx.target.col as i64).abs();
            dr + 4 * dc
        })?;
        let formula = offset_rewrite(nearest.1, nearest.0, ctx.target)?;
        Some(BaselinePrediction { formula, confidence: 1.0 - p as f32 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_corpus::organization::{OrgSpec, Scale};
    use af_corpus::split::{split, SplitKind};
    use af_corpus::testcase::{masked_sheet, sample_test_cases};

    #[test]
    fn predicts_on_name_matched_families_only() {
        let corpus = OrgSpec::pge(Scale::Tiny).generate();
        let ws = WeakSupBaseline::build(&corpus.workbooks, 0.05);
        let sp = split(&corpus, SplitKind::Random, 0.1, 1);
        let cases = sample_test_cases(&corpus, &sp, 5, 2);
        let mut predicted = 0;
        let mut hits = 0;
        for tc in &cases {
            let sheet = &corpus.workbooks[tc.workbook].sheets[tc.sheet];
            let masked = masked_sheet(sheet, tc.target);
            let ctx = PredictionContext {
                workbooks: &corpus.workbooks,
                reference: &sp.reference,
                target_workbook: tc.workbook,
                target_sheet: tc.sheet,
                masked: &masked,
                target: tc.target,
            };
            if let Some(pred) = ws.predict(&ctx) {
                predicted += 1;
                let gt = af_formula::parse_formula(&tc.ground_truth).unwrap().to_string();
                if pred.formula == gt {
                    hits += 1;
                }
            }
        }
        assert!(predicted > 0, "PGE-sim has name-matched families");
        // Precision should be decent on fixed-shape families; recall
        // limited by generic-named ones.
        assert!(hits > 0, "some exact hits expected ({hits}/{predicted})");
        assert!(predicted < cases.len(), "must not predict for every case");
    }

    #[test]
    fn silent_on_generic_names() {
        // A corpus of singletons with generic names gives no evidence.
        let spec = OrgSpec { n_families: 0, n_singletons: 8, ..OrgSpec::cisco(Scale::Tiny) };
        let corpus = spec.generate();
        let ws = WeakSupBaseline::build(&corpus.workbooks, 0.05);
        let sp = split(&corpus, SplitKind::Random, 0.2, 1);
        let cases = sample_test_cases(&corpus, &sp, 3, 2);
        for tc in &cases {
            let sheet = &corpus.workbooks[tc.workbook].sheets[tc.sheet];
            let masked = masked_sheet(sheet, tc.target);
            let ctx = PredictionContext {
                workbooks: &corpus.workbooks,
                reference: &sp.reference,
                target_workbook: tc.workbook,
                target_sheet: tc.sheet,
                masked: &masked,
                target: tc.target,
            };
            assert!(ws.predict(&ctx).is_none());
        }
    }
}
