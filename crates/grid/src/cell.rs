//! A single grid cell: value + style + optional formula source.

use crate::style::CellStyle;
use crate::value::CellValue;

/// One cell of a spreadsheet. When `formula` is `Some`, `value` holds the
/// cached evaluation result (spreadsheets store both; the paper's featurizer
/// deliberately uses only the *value*, never the formula text, to avoid
/// leaking the label — see §4.4.1 footnote 2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cell {
    pub value: CellValue,
    pub style: CellStyle,
    /// Formula source without the leading `=`, e.g. `COUNTIF(C7:C37,C41)`.
    pub formula: Option<String>,
}

impl Cell {
    pub fn new(value: impl Into<CellValue>) -> Self {
        Cell { value: value.into(), ..Default::default() }
    }

    pub fn styled(value: impl Into<CellValue>, style: CellStyle) -> Self {
        Cell { value: value.into(), style, formula: None }
    }

    pub fn with_formula(mut self, formula: impl Into<String>) -> Self {
        self.formula = Some(formula.into());
        self
    }

    pub fn with_style(mut self, style: CellStyle) -> Self {
        self.style = style;
        self
    }

    pub fn has_formula(&self) -> bool {
        self.formula.is_some()
    }

    /// True when the cell carries no information at all (empty value,
    /// default style, no formula) — such cells need not be stored.
    pub fn is_blank(&self) -> bool {
        self.value.is_empty() && self.formula.is_none() && self.style.is_default()
    }
}

impl From<CellValue> for Cell {
    fn from(value: CellValue) -> Self {
        Cell { value, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::style::Color;

    #[test]
    fn blank_detection() {
        assert!(Cell::default().is_blank());
        assert!(!Cell::new(1.0).is_blank());
        assert!(!Cell::default().with_formula("SUM(A1:A2)").is_blank());
        assert!(!Cell::styled(CellValue::Empty, CellStyle::header(Color::new(1, 2, 3))).is_blank());
    }

    #[test]
    fn builder_chain() {
        let c = Cell::new("Total").with_formula("SUM(B2:B9)");
        assert!(c.has_formula());
        assert_eq!(c.value.display(), "Total");
    }
}
