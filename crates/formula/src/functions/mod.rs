//! Built-in function library, dispatched by upper-cased name.

mod conditional_multi;
mod criteria;
mod datetime;
mod logic;
mod lookup;
mod math;
mod stats;
mod text;
mod text2;

pub use criteria::Criteria;

use crate::eval::Operand;
use af_grid::{CellError, CellValue};

/// Call a built-in function. Unknown names are a `#NAME?` error, wrong
/// arities / bad operand types are `#VALUE!`.
pub fn call(name: &str, args: &[Operand]) -> Result<CellValue, CellError> {
    let upper = name.to_ascii_uppercase();
    match upper.as_str() {
        // --- math ---
        "ABS" | "INT" | "SQRT" | "EXP" | "LN" | "LOG10" | "SIGN" | "ROUND" | "ROUNDUP"
        | "ROUNDDOWN" | "POWER" | "MOD" | "CEILING" | "FLOOR" | "PI" | "PRODUCT" => {
            math::call(&upper, args)
        }
        // --- statistics / aggregates ---
        "SUM" | "AVERAGE" | "COUNT" | "COUNTA" | "COUNTBLANK" | "MIN" | "MAX" | "MEDIAN"
        | "STDEV" | "VAR" | "LARGE" | "SMALL" | "RANK" | "COUNTIF" | "SUMIF" | "AVERAGEIF" => {
            stats::call(&upper, args)
        }
        // --- logic ---
        "IF" | "IFERROR" | "AND" | "OR" | "NOT" | "XOR" | "ISBLANK" | "ISNUMBER" | "ISTEXT" => {
            logic::call(&upper, args)
        }
        // --- text ---
        "CONCATENATE" | "CONCAT" | "LEFT" | "RIGHT" | "MID" | "LEN" | "UPPER" | "LOWER"
        | "TRIM" | "SUBSTITUTE" | "REPT" | "EXACT" | "FIND" | "VALUE" | "TEXT" => {
            text::call(&upper, args)
        }
        // --- extended text / array / error functions ---
        "PROPER" | "TEXTJOIN" | "SUMPRODUCT" | "ISERROR" | "ISERR" | "ISNA" | "EDATE"
        | "EOMONTH" => text2::call(&upper, args),
        // --- multi-criteria conditionals ---
        "COUNTIFS" | "SUMIFS" | "AVERAGEIFS" | "MINIFS" | "MAXIFS" | "IFS" | "SWITCH" => {
            conditional_multi::call(&upper, args)
        }
        // --- lookup ---
        "VLOOKUP" | "HLOOKUP" | "INDEX" | "MATCH" | "CHOOSE" => lookup::call(&upper, args),
        // --- date/time ---
        "DATE" | "YEAR" | "MONTH" | "DAY" | "WEEKDAY" | "DAYS" => datetime::call(&upper, args),
        _ => Err(CellError::Name),
    }
}

/// Names of every supported function (for documentation and tests).
pub fn supported_functions() -> &'static [&'static str] {
    &[
        "ABS",
        "INT",
        "SQRT",
        "EXP",
        "LN",
        "LOG10",
        "SIGN",
        "ROUND",
        "ROUNDUP",
        "ROUNDDOWN",
        "POWER",
        "MOD",
        "CEILING",
        "FLOOR",
        "PI",
        "PRODUCT",
        "SUM",
        "AVERAGE",
        "COUNT",
        "COUNTA",
        "COUNTBLANK",
        "MIN",
        "MAX",
        "MEDIAN",
        "STDEV",
        "VAR",
        "LARGE",
        "SMALL",
        "RANK",
        "COUNTIF",
        "SUMIF",
        "AVERAGEIF",
        "IF",
        "IFERROR",
        "AND",
        "OR",
        "NOT",
        "XOR",
        "ISBLANK",
        "ISNUMBER",
        "ISTEXT",
        "CONCATENATE",
        "CONCAT",
        "LEFT",
        "RIGHT",
        "MID",
        "LEN",
        "UPPER",
        "LOWER",
        "TRIM",
        "SUBSTITUTE",
        "REPT",
        "EXACT",
        "FIND",
        "VALUE",
        "TEXT",
        "VLOOKUP",
        "HLOOKUP",
        "INDEX",
        "MATCH",
        "CHOOSE",
        "DATE",
        "YEAR",
        "MONTH",
        "DAY",
        "WEEKDAY",
        "DAYS",
        "COUNTIFS",
        "SUMIFS",
        "AVERAGEIFS",
        "MINIFS",
        "MAXIFS",
        "IFS",
        "SWITCH",
        "PROPER",
        "TEXTJOIN",
        "SUMPRODUCT",
        "ISERROR",
        "ISERR",
        "ISNA",
        "EDATE",
        "EOMONTH",
    ]
}

// ---- shared argument helpers -------------------------------------------

pub(crate) fn arity(args: &[Operand], min: usize, max: usize) -> Result<(), CellError> {
    if args.len() < min || args.len() > max {
        Err(CellError::Value)
    } else {
        Ok(())
    }
}

pub(crate) fn scalar_arg(args: &[Operand], i: usize) -> Result<CellValue, CellError> {
    args.get(i).cloned().ok_or(CellError::Value)?.into_scalar()
}

pub(crate) fn number_arg(args: &[Operand], i: usize) -> Result<f64, CellError> {
    let v = scalar_arg(args, i)?;
    match v {
        CellValue::Empty => Ok(0.0),
        CellValue::Error(e) => Err(e),
        other => other.as_number().ok_or(CellError::Value),
    }
}

pub(crate) fn text_arg(args: &[Operand], i: usize) -> Result<String, CellError> {
    let v = scalar_arg(args, i)?;
    match v {
        CellValue::Error(e) => Err(e),
        other => Ok(other.display()),
    }
}

pub(crate) fn bool_arg(args: &[Operand], i: usize) -> Result<bool, CellError> {
    let v = scalar_arg(args, i)?;
    truthy(&v)
}

/// Spreadsheet truthiness: booleans as-is, numbers non-zero, empty false,
/// text `"TRUE"`/`"FALSE"` literal, other text is a `#VALUE!` error.
pub(crate) fn truthy(v: &CellValue) -> Result<bool, CellError> {
    match v {
        CellValue::Bool(b) => Ok(*b),
        CellValue::Number(n) => Ok(*n != 0.0),
        CellValue::Date(d) => Ok(*d != 0),
        CellValue::Empty => Ok(false),
        CellValue::Text(s) => match s.to_ascii_uppercase().as_str() {
            "TRUE" => Ok(true),
            "FALSE" => Ok(false),
            _ => Err(CellError::Value),
        },
        CellValue::Error(e) => Err(*e),
    }
}

pub(crate) fn collect_all_numbers(args: &[Operand]) -> Result<Vec<f64>, CellError> {
    let mut out = Vec::new();
    for a in args {
        a.collect_numbers(&mut out)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_function_is_name_error() {
        assert_eq!(call("NOPE", &[]), Err(CellError::Name));
    }

    #[test]
    fn dispatch_is_case_insensitive() {
        let args = [Operand::Scalar(CellValue::Number(-3.0))];
        assert_eq!(call("abs", &args), Ok(CellValue::Number(3.0)));
    }

    #[test]
    fn every_listed_function_dispatches() {
        // Calling with zero args must never yield #NAME? for supported
        // functions (it may legitimately yield #VALUE! for arity).
        for f in supported_functions() {
            let r = call(f, &[]);
            assert_ne!(r, Err(CellError::Name), "{f} should be dispatched");
        }
    }

    #[test]
    fn truthiness_rules() {
        assert_eq!(truthy(&CellValue::Number(2.0)), Ok(true));
        assert_eq!(truthy(&CellValue::Number(0.0)), Ok(false));
        assert_eq!(truthy(&CellValue::Empty), Ok(false));
        assert_eq!(truthy(&CellValue::text("TRUE")), Ok(true));
        assert_eq!(truthy(&CellValue::text("yes")), Err(CellError::Value));
    }
}
