//! Plain-text table/series printers for experiment output.

use std::time::Instant;

/// Standard entry point for the `bin/` experiment wrappers: prints a named
/// report header (experiment id, what it regenerates, effective `AF_SCALE`),
/// runs the experiment, and prints a wall-clock footer so `run_all` output
/// is self-describing.
pub fn run_experiment(name: &str, regenerates: &str, f: impl FnOnce()) {
    // Report the *effective* scale (unrecognized AF_SCALE values fall back
    // to Small inside Scale::from_env), not the raw env string.
    let scale = match af_corpus::organization::Scale::from_env() {
        af_corpus::organization::Scale::Tiny => "tiny",
        af_corpus::organization::Scale::Small => "small",
        af_corpus::organization::Scale::Full => "full",
    };
    println!("=== auto-formula bench · {name} ===");
    println!("regenerates: {regenerates}");
    println!("corpus scale: {scale} (set AF_SCALE={{tiny,small,full}} to change)");
    let start = Instant::now();
    f();
    println!("\n[{name}] completed in {:.2?}", start.elapsed());
}

/// Render a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Render a PR-curve (or any x/y series) as labelled text rows.
pub fn print_series(title: &str, points: &[(f64, f64)], x_label: &str, y_label: &str) {
    println!("\n-- {title} ({x_label} -> {y_label}) --");
    for (x, y) in points {
        println!("  {x:.4}\t{y:.4}");
    }
}

/// Format to 2 decimals (the paper's table precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format to 3 decimals (Table 4's precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(f2(0.456), "0.46");
        assert_eq!(f3(0.0333), "0.033");
    }

    #[test]
    fn printers_do_not_panic() {
        print_table("t", &["a", "bb"], &[vec!["1".into(), "2".into()]]);
        print_series("s", &[(0.1, 0.9)], "recall", "precision");
    }
}
