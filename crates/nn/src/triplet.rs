//! Triplet loss with semi-hard negative mining (§4.5, FaceNet-style).
//!
//! `l_triplet = max(‖φ_A − φ_P‖² − ‖φ_A − φ_N‖² + m, 0)` (Eq. 1). During
//! training we select, per (anchor, positive) pair, a *semi-hard* negative:
//! one whose triplet loss is strictly inside `(0, m)` — hard enough to learn
//! from, not so hard that gradients collapse.

use crate::tensor::{l2_sq, Tensor};

/// A batch of aligned anchor/positive/negative embeddings, each
/// `[batch, dim]`.
pub struct TripletBatch {
    pub anchors: Tensor,
    pub positives: Tensor,
    pub negatives: Tensor,
}

/// Compute mean triplet loss over the batch and the gradients w.r.t. all
/// three embedding tensors. Returns `(loss, grad_a, grad_p, grad_n)`.
pub fn triplet_loss_grads(batch: &TripletBatch, margin: f32) -> (f32, Tensor, Tensor, Tensor) {
    let n = batch.anchors.batch();
    let d = batch.anchors.features();
    assert_eq!(batch.positives.shape, batch.anchors.shape);
    assert_eq!(batch.negatives.shape, batch.anchors.shape);
    let mut ga = Tensor::zeros(batch.anchors.shape.clone());
    let mut gp = Tensor::zeros(batch.anchors.shape.clone());
    let mut gn = Tensor::zeros(batch.anchors.shape.clone());
    if n == 0 {
        return (0.0, ga, gp, gn);
    }
    let mut total = 0.0f32;
    let scale = 1.0 / n as f32;
    for b in 0..n {
        let a = batch.anchors.row(b);
        let p = batch.positives.row(b);
        let nn = batch.negatives.row(b);
        let loss = l2_sq(a, p) - l2_sq(a, nn) + margin;
        if loss <= 0.0 {
            continue;
        }
        total += loss;
        // d/da ‖a−p‖² = 2(a−p); d/da −‖a−n‖² = −2(a−n).
        let (gar, gpr, gnr) = (ga.row_mut(b), gp.row_mut(b), gn.row_mut(b));
        for i in 0..d {
            gar[i] = 2.0 * (nn[i] - p[i]) * scale;
            gpr[i] = 2.0 * (p[i] - a[i]) * scale;
            gnr[i] = 2.0 * (a[i] - nn[i]) * scale;
        }
    }
    (total * scale, ga, gp, gn)
}

/// Given per-pair anchor embeddings and a pool of candidate negative
/// embeddings, pick for each pair the index of a semi-hard negative: one
/// with `0 < ‖a−p‖² − ‖a−n‖² + m < m` (i.e. farther than the positive but
/// within the margin). Falls back to the hardest (closest) negative that is
/// not the positive itself when no semi-hard candidate exists.
///
/// `forbidden[i]` is a candidate index that must not be chosen for pair `i`
/// (typically the candidate that *is* pair `i`'s own positive class).
pub fn semi_hard_indices(
    anchors: &Tensor,
    positives: &Tensor,
    candidates: &Tensor,
    forbidden: &[usize],
    margin: f32,
) -> Vec<usize> {
    let n = anchors.batch();
    let m = candidates.batch();
    assert!(m > 1, "need at least two negative candidates");
    let mut out = Vec::with_capacity(n);
    for b in 0..n {
        let a = anchors.row(b);
        let dp = l2_sq(a, positives.row(b));
        let mut best_semi: Option<(usize, f32)> = None;
        let mut hardest: Option<(usize, f32)> = None;
        for c in 0..m {
            if forbidden.get(b) == Some(&c) {
                continue;
            }
            let dn = l2_sq(a, candidates.row(c));
            let loss = dp - dn + margin;
            if loss > 0.0 && loss < margin {
                // Semi-hard: prefer the one closest to the anchor (largest
                // loss) for the most informative gradient.
                if best_semi.is_none_or(|(_, l)| loss > l) {
                    best_semi = Some((c, loss));
                }
            }
            if hardest.is_none_or(|(_, d)| dn < d) {
                hardest = Some((c, dn));
            }
        }
        let pick = best_semi
            .map(|(c, _)| c)
            .or(hardest.map(|(c, _)| c))
            .expect("non-empty candidate pool");
        out.push(pick);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: &[&[f32]]) -> Tensor {
        let d = rows[0].len();
        let mut data = Vec::new();
        for r in rows {
            assert_eq!(r.len(), d);
            data.extend_from_slice(r);
        }
        Tensor::new(vec![rows.len(), d], data)
    }

    #[test]
    fn loss_zero_when_separated() {
        let batch = TripletBatch {
            anchors: t(&[&[0.0, 0.0]]),
            positives: t(&[&[0.1, 0.0]]),
            negatives: t(&[&[5.0, 0.0]]),
        };
        let (loss, ga, _, _) = triplet_loss_grads(&batch, 0.2);
        assert_eq!(loss, 0.0);
        assert!(ga.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn loss_positive_when_violating() {
        let batch = TripletBatch {
            anchors: t(&[&[0.0, 0.0]]),
            positives: t(&[&[1.0, 0.0]]),
            negatives: t(&[&[0.5, 0.0]]),
        };
        // dp = 1, dn = 0.25, margin 0.2 → loss = 0.95.
        let (loss, _, _, _) = triplet_loss_grads(&batch, 0.2);
        assert!((loss - 0.95).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let batch = TripletBatch {
            anchors: t(&[&[0.1, -0.2, 0.3]]),
            positives: t(&[&[0.4, 0.1, 0.0]]),
            negatives: t(&[&[0.2, 0.0, 0.35]]),
        };
        let margin = 0.2;
        let (_, ga, gp, gn) = triplet_loss_grads(&batch, margin);
        let eps = 1e-3f32;
        let loss_of = |b: &TripletBatch| triplet_loss_grads(b, margin).0;
        for i in 0..3 {
            for (which, analytic) in [(0, &ga), (1, &gp), (2, &gn)] {
                let mut bp = TripletBatch {
                    anchors: batch.anchors.clone(),
                    positives: batch.positives.clone(),
                    negatives: batch.negatives.clone(),
                };
                let target = match which {
                    0 => &mut bp.anchors,
                    1 => &mut bp.positives,
                    _ => &mut bp.negatives,
                };
                target.data[i] += eps;
                let fp = loss_of(&bp);
                let target = match which {
                    0 => &mut bp.anchors,
                    1 => &mut bp.positives,
                    _ => &mut bp.negatives,
                };
                target.data[i] -= 2.0 * eps;
                let fm = loss_of(&bp);
                let num = (fp - fm) / (2.0 * eps);
                let ana = analytic.data[i];
                assert!(
                    (num - ana).abs() < 1e-2,
                    "tensor {which} idx {i}: numeric {num} analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn semi_hard_prefers_in_margin_negatives() {
        let anchors = t(&[&[0.0, 0.0]]);
        let positives = t(&[&[0.5, 0.0]]); // dp = 0.25
                                           // Candidates: [0] too easy (far), [1] semi-hard, [2] too hard
                                           // (closer than positive).
        let candidates = t(&[&[5.0, 0.0], &[0.6, 0.0], &[0.1, 0.0]]);
        let picks = semi_hard_indices(&anchors, &positives, &candidates, &[], 0.2);
        assert_eq!(picks, vec![1]);
    }

    #[test]
    fn falls_back_to_hardest_and_respects_forbidden() {
        let anchors = t(&[&[0.0, 0.0]]);
        let positives = t(&[&[0.5, 0.0]]);
        // No semi-hard candidate exists; hardest (closest) is index 0, but
        // it is forbidden, so index 1 wins.
        let candidates = t(&[&[0.01, 0.0], &[0.02, 0.0]]);
        let picks = semi_hard_indices(&anchors, &positives, &candidates, &[0], 0.2);
        assert_eq!(picks, vec![1]);
    }

    #[test]
    fn empty_batch_is_safe() {
        let empty = Tensor::zeros(vec![0, 4]);
        let batch =
            TripletBatch { anchors: empty.clone(), positives: empty.clone(), negatives: empty };
        let (loss, _, _, _) = triplet_loss_grads(&batch, 0.2);
        assert_eq!(loss, 0.0);
    }
}
