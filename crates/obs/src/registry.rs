//! Process-global histogram registry keyed by static site names.
//!
//! Always compiled — with the `obs` feature off no instrumentation macro
//! ever registers a site, so the registry just stays empty and
//! [`crate::MetricsSnapshot::capture`] returns nothing. Registration
//! takes a mutex, but each instrumentation site pays it once (the first
//! time it fires); the hot path caches the `&'static Histogram`.

use std::sync::{Mutex, OnceLock};

use crate::hist::{Histogram, Unit};

static REGISTRY: OnceLock<Mutex<Vec<(&'static str, &'static Histogram)>>> = OnceLock::new();

fn table() -> std::sync::MutexGuard<'static, Vec<(&'static str, &'static Histogram)>> {
    REGISTRY
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        // A panic while holding the lock leaves only a fully-pushed or
        // untouched Vec, so the poisoned state is still consistent.
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The process-wide histogram for `site`, registering it on first use.
/// Re-registering an existing name returns the original histogram (its
/// unit wins; site names are expected to be globally unique).
pub fn histogram(site: &'static str, unit: Unit) -> &'static Histogram {
    let mut t = table();
    if let Some(&(_, h)) = t.iter().find(|&&(n, _)| n == site) {
        return h;
    }
    // Sites are static program locations; one leaked allocation per site
    // for the life of the process is the intended ownership model.
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new(unit)));
    t.push((site, h));
    h
}

/// Every registered site, in registration order.
pub(crate) fn entries() -> Vec<(&'static str, &'static Histogram)> {
    table().clone()
}

/// Zero every registered histogram (sites stay registered).
pub(crate) fn reset_all() {
    for (_, h) in entries() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_once_per_name() {
        let a = histogram("registry::test_site", Unit::Nanos);
        let b = histogram("registry::test_site", Unit::Count);
        assert!(std::ptr::eq(a, b), "same name must yield the same histogram");
        assert_eq!(b.unit(), Unit::Nanos, "first registration's unit wins");
        a.record(5_000);
        assert_eq!(
            entries()
                .iter()
                .find(|(n, _)| *n == "registry::test_site")
                .map(|(_, h)| h.snapshot().count),
            Some(1)
        );
    }
}
