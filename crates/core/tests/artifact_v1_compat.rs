//! Backward compatibility: version-1 artifacts (written by the pre-
//! `af-store` code) must keep loading and serving after the v2 format
//! change.
//!
//! The fixtures under `tests/data/` were generated **once** from the PR-4
//! codebase (commit 4a79415, before the v2 writer landed), one per ANN
//! backend, over `OrgSpec::pge(Scale::Tiny)` workbooks 0–1 with
//! `AutoFormulaConfig::test_tiny()` and an untrained (seeded random-init)
//! model — everything deterministic, so the same system can be rebuilt
//! in-memory today and compared prediction-for-prediction.

use af_core::config::AnnBackend;
use af_core::index::IndexOptions;
use af_core::model::RepresentationModel;
use af_core::pipeline::{AutoFormula, PipelineVariant};
use af_core::AutoFormulaConfig;
use af_corpus::organization::{OrgSpec, Scale};
use af_embed::{CellFeaturizer, FeatureMask, SbertSim};
use std::sync::Arc;

fn fixture(name: &str) -> Vec<u8> {
    let path = format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read(&path).unwrap_or_else(|e| panic!("fixture {path}: {e}"))
}

/// Rebuild the exact system the fixture was saved from.
fn rebuild(backend: AnnBackend) -> (AutoFormula, af_core::ReferenceIndex, af_corpus::OrgCorpus) {
    let corpus = OrgSpec::pge(Scale::Tiny).generate();
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
    let cfg = AutoFormulaConfig { ann_backend: backend, ..AutoFormulaConfig::test_tiny() };
    let af = AutoFormula::from_model(RepresentationModel::new(featurizer.dim(), cfg), featurizer);
    let members: Vec<usize> = (0..2).collect();
    let index = af.build_index(&corpus.workbooks, &members, IndexOptions::default());
    (af, index, corpus)
}

fn assert_v1_serves_identically(fixture_name: &str, backend: AnnBackend) {
    let bytes = fixture(fixture_name);
    let (loaded, loaded_index) =
        AutoFormula::load(&bytes).unwrap_or_else(|e| panic!("{fixture_name}: {e}"));
    let (fresh, fresh_index, corpus) = rebuild(backend);
    assert_eq!(loaded_index.n_sheets(), fresh_index.n_sheets(), "{fixture_name}");
    assert_eq!(loaded_index.n_regions(), fresh_index.n_regions(), "{fixture_name}");
    let mut compared = 0usize;
    for wb in corpus.workbooks.iter().take(2) {
        for sheet in &wb.sheets {
            for (target, _) in sheet.formulas() {
                let a = fresh.predict_with(&fresh_index, sheet, target, PipelineVariant::Full);
                let b = loaded.predict_with(&loaded_index, sheet, target, PipelineVariant::Full);
                match (a, b) {
                    (Some(x), Some(y)) => {
                        assert_eq!(x.formula, y.formula, "{fixture_name}");
                        assert_eq!(
                            x.s2_distance.to_bits(),
                            y.s2_distance.to_bits(),
                            "{fixture_name}"
                        );
                    }
                    (None, None) => {}
                    (x, y) => panic!("{fixture_name}: prediction mismatch {x:?} vs {y:?}"),
                }
                compared += 1;
            }
        }
    }
    assert!(compared > 0, "{fixture_name}: no formulas compared");
}

#[test]
fn v1_flat_artifact_loads_and_serves_bit_identically() {
    assert_v1_serves_identically("artifact_v1_tiny.afar", AnnBackend::Flat);
}

#[test]
fn v1_hnsw_artifact_loads_and_serves_bit_identically() {
    assert_v1_serves_identically("artifact_v1_hnsw.afar", AnnBackend::Hnsw(Default::default()));
}

#[test]
fn v1_ivf_artifact_loads_and_serves_bit_identically() {
    assert_v1_serves_identically(
        "artifact_v1_ivf.afar",
        AnnBackend::Ivf(af_ann::IvfParams { n_lists: 2, ..Default::default() }),
    );
}

#[test]
fn v1_artifact_resaves_as_v2_losslessly() {
    // Migration path: load v1, save (writes v2), load again — still
    // bit-identical. A v1-loaded index carries no fine cache, so the fat
    // layout is used; that is exactly what `save` defaults to.
    let bytes = fixture("artifact_v1_tiny.afar");
    let (loaded, index) = AutoFormula::load(&bytes).expect("v1 loads");
    let v2 = loaded.save(&index);
    let (again, again_index) = AutoFormula::load(&v2).expect("v2 re-save loads");
    let corpus = OrgSpec::pge(Scale::Tiny).generate();
    let sheet = &corpus.workbooks[0].sheets[0];
    for (target, _) in sheet.formulas() {
        let a = loaded.predict_with(&index, sheet, target, PipelineVariant::Full);
        let b = again.predict_with(&again_index, sheet, target, PipelineVariant::Full);
        assert_eq!(a.map(|p| p.formula), b.map(|p| p.formula));
    }
}
