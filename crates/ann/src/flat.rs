//! Exact (brute-force) index — the ground truth the approximate indexes are
//! tested against, and fast enough in practice for the fine-grained
//! region index sizes this workspace produces.

use crate::codec::{self, CodecError};
use crate::metric::{Neighbor, TopK};
use crate::VectorIndex;
use af_store::{Codec, DenseStore, VectorStore};
use bytes::{BufMut, Bytes, BytesMut};

/// A flat index: vectors stored contiguously, searched by linear scan.
/// Scans parallelize across threads once the corpus is large enough to
/// amortize the spawn cost; both the threshold and the thread cap are
/// configurable (see [`FlatIndex::set_parallelism`]).
///
/// Vectors live in an [`af_store::DenseStore`], so the scan runs on any
/// codec: exact `f32` (the default — bit-identical to the pre-store
/// implementation), or `f16`/`int8` quantized rows compared against the
/// f32 query with the asymmetric kernels (no dequantized copy is ever
/// materialized — the scan reads 2–4× fewer bytes).
#[derive(Debug, Clone)]
pub struct FlatIndex {
    store: DenseStore,
    /// Element-work size below which the scan stays serial
    /// (0 = [`DEFAULT_PARALLEL_THRESHOLD`]).
    parallel_threshold: usize,
    /// Cap on scan worker threads (0 = all of `available_parallelism`).
    max_scan_threads: usize,
}

impl FlatIndex {
    /// An empty exact (`f32`) index over `dim`-dimensional vectors.
    pub fn new(dim: usize) -> FlatIndex {
        FlatIndex::with_codec(dim, Codec::F32)
    }

    /// An empty index storing vectors in `codec` (incoming vectors are
    /// quantized on [`VectorIndex::add`]).
    pub fn with_codec(dim: usize, codec: Codec) -> FlatIndex {
        assert!(dim > 0);
        FlatIndex { store: DenseStore::new(dim, codec), parallel_threshold: 0, max_scan_threads: 0 }
    }

    /// Re-encode the stored vectors into `codec` (identity is a cheap
    /// clone). Converting away from `f32` quantizes; converting back
    /// dequantizes — lossy exactly once.
    pub fn to_codec(&self, codec: Codec) -> FlatIndex {
        FlatIndex {
            store: self.store.to_codec(codec),
            parallel_threshold: self.parallel_threshold,
            max_scan_threads: self.max_scan_threads,
        }
    }

    /// Configure when and how wide searches parallelize: scans touching
    /// fewer than `threshold` elements stay single-threaded (0 keeps the
    /// crate default), and at most `max_threads` workers are spawned
    /// (0 = use every core `available_parallelism` reports).
    pub fn set_parallelism(&mut self, threshold: usize, max_threads: usize) {
        self.parallel_threshold = threshold;
        self.max_scan_threads = max_threads;
    }

    /// Builder-style [`FlatIndex::set_parallelism`].
    pub fn with_parallelism(mut self, threshold: usize, max_threads: usize) -> FlatIndex {
        self.set_parallelism(threshold, max_threads);
        self
    }

    /// Build from a batch of vectors.
    pub fn from_vectors(dim: usize, vectors: impl IntoIterator<Item = Vec<f32>>) -> FlatIndex {
        let mut idx = FlatIndex::new(dim);
        for v in vectors {
            idx.add(&v);
        }
        idx
    }

    /// Row `id` as a borrowed f32 slice — exact codec only (quantized rows
    /// have no f32 image in memory; see [`FlatIndex::vector_owned`]).
    pub fn vector(&self, id: usize) -> &[f32] {
        self.store.row_f32(id).expect("FlatIndex::vector requires the exact f32 codec")
    }

    /// Row `id` dequantized into a fresh vector (any codec).
    pub fn vector_owned(&self, id: usize) -> Vec<f32> {
        self.store.row_owned(id)
    }

    /// Rebuild from the legacy (v1, f32-only) wire layout.
    pub(crate) fn decode_state_v1(data: &mut Bytes) -> Result<FlatIndex, CodecError> {
        let dim = codec::get_u32(data)? as usize;
        if dim == 0 {
            return Err(CodecError::Invalid("flat index dimension must be positive"));
        }
        let parallel_threshold = codec::get_u64(data)? as usize;
        let max_scan_threads = codec::get_u64(data)? as usize;
        let vec_data = codec::get_f32s(data)?;
        if vec_data.len() % dim != 0 {
            return Err(CodecError::Invalid("flat data is not a whole number of vectors"));
        }
        Ok(FlatIndex {
            store: DenseStore::from_f32_rows(dim, vec_data),
            parallel_threshold,
            max_scan_threads,
        })
    }

    /// Rebuild from bytes written by [`VectorIndex::encode_with`].
    pub(crate) fn decode_state(data: &mut Bytes) -> Result<FlatIndex, CodecError> {
        let parallel_threshold = codec::get_u64(data)? as usize;
        let max_scan_threads = codec::get_u64(data)? as usize;
        let store = af_store::get_store(data)?;
        Ok(FlatIndex { store, parallel_threshold, max_scan_threads })
    }

    /// The per-query ADC lookup table when the store is trained PQ —
    /// built once per search and shared by every scan worker, so probed
    /// rows are gathered straight from their code bytes.
    fn adc_table(&self, query: &[f32]) -> Option<af_store::AdcTable> {
        match &self.store {
            DenseStore::Pq(p) => p.adc_table(query),
            _ => None,
        }
    }

    fn scan_range(
        &self,
        query: &[f32],
        k: usize,
        lo: usize,
        hi: usize,
        adc: Option<&af_store::AdcTable>,
    ) -> Vec<Neighbor> {
        let mut top = TopK::new(k);
        if let (Some(t), DenseStore::Pq(p)) = (adc, &self.store) {
            // Fused ADC gather — bit-identical to `l2_sq_row` (the PQ
            // distance is *defined* as the ADC sum), so this branch can
            // never change a ranking, only the per-row cost.
            for id in lo..hi {
                top.push(Neighbor::new(id, p.l2_sq_adc(t, id)));
            }
        } else {
            for id in lo..hi {
                let d = self.store.l2_sq_row(query, id);
                top.push(Neighbor::new(id, d));
            }
        }
        top.into_sorted()
    }
}

/// Default work size below which a parallel scan is not worth spawning
/// threads (override per index with [`FlatIndex::set_parallelism`]).
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1 << 21;

impl VectorIndex for FlatIndex {
    fn len(&self) -> usize {
        self.store.rows()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn vector_owned(&self, id: usize) -> Vec<f32> {
        FlatIndex::vector_owned(self, id)
    }

    fn codec(&self) -> Codec {
        self.store.codec()
    }

    /// Append a vector (quantized to the store's codec), returning its id.
    fn add(&mut self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim(), "vector dimension mismatch");
        let id = self.len();
        self.store.push(v);
        id
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim());
        let n = self.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let work = n * self.dim();
        let threshold = if self.parallel_threshold == 0 {
            DEFAULT_PARALLEL_THRESHOLD
        } else {
            self.parallel_threshold
        };
        let mut threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        if self.max_scan_threads != 0 {
            threads = threads.min(self.max_scan_threads);
        }
        let adc = self.adc_table(query);
        if work < threshold || threads < 2 {
            return self.scan_range(query, k, 0, n, adc.as_ref());
        }
        // Never spawn more workers than there are vectors to scan.
        let n_chunks = threads.min(n);
        let chunk = n.div_ceil(n_chunks);
        let mut partials: Vec<Vec<Neighbor>> = Vec::with_capacity(n_chunks);
        std::thread::scope(|s| {
            let adc = adc.as_ref();
            let handles: Vec<_> = (0..n_chunks)
                .map(|c| {
                    let lo = c * chunk;
                    let hi = ((c + 1) * chunk).min(n);
                    s.spawn(move || self.scan_range(query, k, lo, hi, adc))
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("scan worker panicked"));
            }
        });
        let mut top = TopK::new(k);
        for p in partials {
            for nb in p {
                top.push(nb);
            }
        }
        top.into_sorted()
    }

    fn encode_with(&self, buf: &mut BytesMut, codec: Codec) {
        buf.put_u8(codec::TAG_FLAT2);
        buf.put_u64(self.parallel_threshold as u64);
        buf.put_u64(self.max_scan_threads as u64);
        af_store::put_store_as(buf, &self.store, codec);
    }

    fn clone_box(&self) -> Box<dyn VectorIndex> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_index() -> FlatIndex {
        // 100 points on a line: id i at (i, 0).
        FlatIndex::from_vectors(2, (0..100).map(|i| vec![i as f32, 0.0]))
    }

    #[test]
    fn exact_nearest() {
        let idx = grid_index();
        let out = idx.search(&[42.4, 0.0], 3);
        let ids: Vec<usize> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![42, 43, 41]);
    }

    #[test]
    fn k_larger_than_n() {
        let idx = FlatIndex::from_vectors(2, vec![vec![0.0, 0.0], vec![1.0, 0.0]]);
        let out = idx.search(&[0.0, 0.0], 10);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_index() {
        let idx = FlatIndex::new(4);
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0; 4], 5).is_empty());
    }

    #[test]
    fn threshold_query() {
        let idx = grid_index();
        let out = idx.search_within(&[10.0, 0.0], 10, 4.5);
        // ids 8..=12 are within distance² ≤ 4 of the query.
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|n| n.dist <= 4.5));
    }

    #[test]
    fn parallel_scan_agrees_with_serial() {
        // Force a corpus past the parallel threshold: 70k vectors × 32 dims
        // (one extra row serves as the query).
        let dim = 32;
        let n = 70_000;
        let all = crate::test_util::lcg_vectors(n + 1, dim, 1);
        let mut idx = FlatIndex::new(dim);
        for v in all[..n * dim].chunks(dim) {
            idx.add(v);
        }
        let query = &all[n * dim..];
        let fast = idx.search(query, 10);
        let slow = idx.scan_range(query, 10, 0, n, None);
        assert_eq!(fast, slow);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let mut idx = FlatIndex::new(3);
        idx.add(&[1.0, 2.0]);
    }

    #[test]
    fn pq_fused_scan_is_bit_identical_to_the_row_scan() {
        // Enough rows to train the PQ codebooks (≥ 256), then the fused
        // ADC search must equal a table-free generic scan bit for bit —
        // serial and parallel alike.
        let dim = 16;
        let n = 400;
        let all = crate::test_util::lcg_vectors(n + 1, dim, 5);
        let mut idx = FlatIndex::new(dim);
        for v in all[..n * dim].chunks(dim) {
            idx.add(v);
        }
        let pq = idx.to_codec(Codec::Pq { m: 0 });
        assert_eq!(pq.codec().tag(), 4, "must be trained PQ, not a silent fallback");
        let query = &all[n * dim..];
        let fused = pq.search(query, 7);
        let generic = pq.scan_range(query, 7, 0, n, None);
        assert_eq!(fused.len(), generic.len());
        for (a, b) in fused.iter().zip(&generic) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.dist.to_bits(), b.dist.to_bits());
        }
        // Forced-parallel fused path agrees too.
        let par = pq.clone().with_parallelism(1, 0).search(query, 7);
        assert_eq!(par, fused);
    }

    #[test]
    fn configurable_parallelism_agrees_with_serial() {
        let q = [42.4, 0.0];
        let mut idx = grid_index();
        let serial = idx.scan_range(&q, 3, 0, idx.len(), None);
        // Force the parallel path even on this tiny corpus.
        idx.set_parallelism(1, 0);
        assert_eq!(idx.search(&q, 3), serial);
        // A 1-thread cap forces the serial path regardless of threshold.
        idx.set_parallelism(1, 1);
        assert_eq!(idx.search(&q, 3), serial);
        // Builder form.
        let idx2 = grid_index().with_parallelism(1, 4);
        assert_eq!(idx2.search(&q, 3), serial);
    }
}
