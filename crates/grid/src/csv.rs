//! CSV interop: import plain tables into sheets and export sheet values —
//! the bridge between this substrate and the CSV-era corpora tools
//! (Mondrian's original domain) and a convenient test fixture format.
//!
//! Dialect: comma separator, `"` quoting with `""` escapes, `\n` or `\r\n`
//! row ends. Import infers numbers and booleans; everything else is text.

use crate::cell::Cell;
use crate::cellref::CellRef;
use crate::sheet::Sheet;
use crate::value::CellValue;

/// Parse CSV text into a sheet (top-left anchored at A1).
pub fn sheet_from_csv(name: &str, csv: &str) -> Sheet {
    let mut sheet = Sheet::new(name);
    for (r, row) in parse_rows(csv).into_iter().enumerate() {
        for (c, field) in row.into_iter().enumerate() {
            let value = infer_value(&field);
            if !value.is_empty() {
                sheet.set(CellRef::new(r as u32, c as u32), Cell::new(value));
            }
        }
    }
    sheet
}

/// Export the used range of a sheet as CSV (display values; formulas
/// export their cached results, like "paste values").
pub fn sheet_to_csv(sheet: &Sheet) -> String {
    let Some(range) = sheet.used_range() else {
        return String::new();
    };
    let mut out = String::new();
    for r in range.start.row..=range.end.row {
        for c in range.start.col..=range.end.col {
            if c > range.start.col {
                out.push(',');
            }
            let display = sheet.value(CellRef::new(r, c)).display();
            out.push_str(&quote_field(&display));
        }
        out.push('\n');
    }
    out
}

fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn infer_value(field: &str) -> CellValue {
    if field.is_empty() {
        return CellValue::Empty;
    }
    if let Ok(n) = field.parse::<f64>() {
        if n.is_finite() {
            return CellValue::Number(n);
        }
    }
    match field {
        "TRUE" | "true" => CellValue::Bool(true),
        "FALSE" | "false" => CellValue::Bool(false),
        _ => CellValue::Text(field.to_string()),
    }
}

fn parse_rows(csv: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = csv.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                other => field.push(other),
            }
        } else {
            match ch {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut field)),
                '\r' => {}
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                other => field.push(other),
            }
        }
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn import_infers_types() {
        let s = sheet_from_csv("t", "Region,Units,Active\nNorth,120,TRUE\nSouth,80.5,false\n");
        assert_eq!(s.value("A1".parse().unwrap()), CellValue::text("Region"));
        assert_eq!(s.value("B2".parse().unwrap()), CellValue::Number(120.0));
        assert_eq!(s.value("B3".parse().unwrap()), CellValue::Number(80.5));
        assert_eq!(s.value("C2".parse().unwrap()), CellValue::Bool(true));
        assert_eq!(s.value("C3".parse().unwrap()), CellValue::Bool(false));
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let s = sheet_from_csv("t", "\"a,b\",\"say \"\"hi\"\"\"\nplain,2\n");
        assert_eq!(s.value("A1".parse().unwrap()), CellValue::text("a,b"));
        assert_eq!(s.value("B1".parse().unwrap()), CellValue::text("say \"hi\""));
    }

    #[test]
    fn round_trip_values() {
        let csv = "Name,Score\nAnn,10\nBo,20\n";
        let s = sheet_from_csv("t", csv);
        assert_eq!(sheet_to_csv(&s), csv);
    }

    #[test]
    fn export_quotes_when_needed() {
        let mut s = Sheet::new("t");
        s.set_a1("A1", Cell::new("has,comma"));
        s.set_a1("B1", Cell::new("has\"quote"));
        let out = sheet_to_csv(&s);
        assert_eq!(out, "\"has,comma\",\"has\"\"quote\"\n");
        // Round-trips back.
        let back = sheet_from_csv("t", &out);
        assert_eq!(back.value("A1".parse().unwrap()), CellValue::text("has,comma"));
        assert_eq!(back.value("B1".parse().unwrap()), CellValue::text("has\"quote"));
    }

    #[test]
    fn empty_cells_skipped() {
        let s = sheet_from_csv("t", "a,,c\n");
        assert_eq!(s.len(), 2);
        assert!(s.value("B1".parse().unwrap()).is_empty());
    }

    #[test]
    fn crlf_and_missing_trailing_newline() {
        let s = sheet_from_csv("t", "a,b\r\nc,d");
        assert_eq!(s.value("A2".parse().unwrap()), CellValue::text("c"));
        assert_eq!(s.value("B2".parse().unwrap()), CellValue::text("d"));
    }

    #[test]
    fn empty_sheet_exports_empty() {
        assert_eq!(sheet_to_csv(&Sheet::new("x")), "");
    }
}
