//! Layers with hand-written forward/backward passes.
//!
//! Every layer offers two entry points:
//! * [`Layer::forward`] — training-mode pass that caches activations for the
//!   matching [`Layer::backward`] call;
//! * [`Layer::infer`] — immutable inference pass (no caches), safe to call
//!   from many threads on a shared model.
//!
//! **Scratch-buffer story.** Training-mode layers own pool tensors for
//! their outputs and input-gradients. `forward` takes its output buffer
//! from the pool; `backward` recycles the incoming gradient tensor (shaped
//! like the next forward's output) and the cached input (shaped like the
//! next input-gradient) back into those pools. Buffers therefore circulate
//! through the network instead of being reallocated, and a steady-state
//! training step performs no heap allocation once every pool has reached
//! its high-water capacity. `infer` never touches the pools.

use crate::init::{he_uniform, xavier_uniform};
use crate::kernel::{axpy, dot, matmul_xwt, shifted_plane_axpy, shifted_plane_copy, sum};
use crate::tensor::{l2_normalize, Tensor};
use rand::rngs::StdRng;

/// A differentiable layer.
pub trait Layer: Send + Sync {
    /// Training forward pass (caches inputs for backprop).
    fn forward(&mut self, x: Tensor) -> Tensor;
    /// Backward pass; consumes the gradient w.r.t. the output, accumulates
    /// parameter gradients, and returns the gradient w.r.t. the input.
    fn backward(&mut self, grad: Tensor) -> Tensor;
    /// Inference pass, no caching.
    fn infer(&self, x: Tensor) -> Tensor;
    /// Visit `(param, grad)` slices in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));
    /// Visit parameter slices read-only, in the same stable order as
    /// [`Layer::visit_params`]. This is what snapshotting uses, so a live
    /// model can be serialized through `&self` while other threads keep
    /// running inference against it.
    fn visit_params_ref(&self, f: &mut dyn FnMut(&[f32]));
    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        let mut n = 0;
        // visit_params requires &mut self; count via a separate default is
        // overridden by layers with parameters.
        let _ = &mut n;
        0
    }

    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.iter_mut().for_each(|v| *v = 0.0));
    }
}

// ------------------------------------------------- flat parameter access

/// Append every parameter block of `layer` to `out` (stable visit order).
/// Returns the number of values appended.
pub fn export_params_into(layer: &mut dyn Layer, out: &mut Vec<f32>) -> usize {
    let before = out.len();
    layer.visit_params(&mut |p, _| out.extend_from_slice(p));
    out.len() - before
}

/// Overwrite parameters from a flat slice (stable visit order). Returns
/// the number of values consumed.
pub fn import_params_from(layer: &mut dyn Layer, src: &[f32]) -> usize {
    let mut off = 0usize;
    layer.visit_params(&mut |p, _| {
        p.copy_from_slice(&src[off..off + p.len()]);
        off += p.len();
    });
    off
}

/// Append every gradient block of `layer` to `out` (stable visit order).
/// Returns the number of values appended.
pub fn export_grads_into(layer: &mut dyn Layer, out: &mut Vec<f32>) -> usize {
    let before = out.len();
    layer.visit_params(&mut |_, g| out.extend_from_slice(g));
    out.len() - before
}

/// Add a flat gradient slice into the layer's gradients (stable visit
/// order) — the deterministic reduction step of data-parallel training.
/// Returns the number of values consumed.
pub fn accumulate_grads_from(layer: &mut dyn Layer, src: &[f32]) -> usize {
    let mut off = 0usize;
    layer.visit_params(&mut |_, g| {
        axpy(1.0, &src[off..off + g.len()], g);
        off += g.len();
    });
    off
}

// ---------------------------------------------------------------- Linear

/// Fully-connected layer `y = xWᵀ + b` with `w: [out, in]`.
pub struct Linear {
    pub in_dim: usize,
    pub out_dim: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    cache: Option<Tensor>,
    out_pool: Tensor,
    gx_pool: Tensor,
}

impl Linear {
    pub fn new(rng: &mut StdRng, in_dim: usize, out_dim: usize) -> Linear {
        Linear {
            in_dim,
            out_dim,
            w: xavier_uniform(rng, in_dim, out_dim, in_dim * out_dim),
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            cache: None,
            out_pool: Tensor::default(),
            gx_pool: Tensor::default(),
        }
    }

    fn run(&self, x: &Tensor) -> Tensor {
        let batch = x.batch();
        assert_eq!(x.features(), self.in_dim, "Linear input dim mismatch");
        let mut out = Tensor::zeros(vec![batch, self.out_dim]);
        matmul_xwt(&x.data, &self.w, &self.b, batch, self.in_dim, self.out_dim, &mut out.data);
        out
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let batch = x.batch();
        assert_eq!(x.features(), self.in_dim, "Linear input dim mismatch");
        let mut out = std::mem::take(&mut self.out_pool);
        out.reset_for_overwrite(&[batch, self.out_dim]);
        matmul_xwt(&x.data, &self.w, &self.b, batch, self.in_dim, self.out_dim, &mut out.data);
        self.cache = Some(x);
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let x = self.cache.take().expect("forward before backward");
        let batch = x.batch();
        let (ni, no) = (self.in_dim, self.out_dim);
        let mut gx = std::mem::take(&mut self.gx_pool);
        gx.reset_zeroed(&[batch, ni]);
        for b in 0..batch {
            let gr = &grad.data[b * no..(b + 1) * no];
            let xr = &x.data[b * ni..(b + 1) * ni];
            let gxr = &mut gx.data[b * ni..(b + 1) * ni];
            for (o, &g) in gr.iter().enumerate() {
                self.gb[o] += g;
                if g == 0.0 {
                    continue; // ReLU-sparse gradients: adding zero is a no-op
                }
                axpy(g, xr, &mut self.gw[o * ni..(o + 1) * ni]);
                axpy(g, &self.w[o * ni..(o + 1) * ni], gxr);
            }
        }
        self.out_pool = grad; // sized like the next forward's output
        self.gx_pool = x; // sized like the next input-gradient
        gx
    }

    fn infer(&self, x: Tensor) -> Tensor {
        self.run(&x)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&[f32])) {
        f(&self.w);
        f(&self.b);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

// ------------------------------------------------------------------ ReLU

/// Elementwise rectifier.
#[derive(Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    pub fn new() -> Relu {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, mut x: Tensor) -> Tensor {
        self.mask.clear();
        self.mask.reserve(x.data.len());
        for v in x.data.iter_mut() {
            self.mask.push(*v > 0.0);
            if *v <= 0.0 {
                *v = 0.0;
            }
        }
        x
    }

    fn backward(&mut self, mut grad: Tensor) -> Tensor {
        assert_eq!(grad.data.len(), self.mask.len(), "forward before backward");
        for (g, &m) in grad.data.iter_mut().zip(self.mask.iter()) {
            if !m {
                *g = 0.0;
            }
        }
        grad
    }

    fn infer(&self, mut x: Tensor) -> Tensor {
        for v in x.data.iter_mut() {
            if *v <= 0.0 {
                *v = 0.0;
            }
        }
        x
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&[f32])) {}
}

// ---------------------------------------------------------------- Conv2d

/// 2-D convolution with square kernel, stride 1 and "same" zero padding.
/// Input `[B, Cin, H, W]`, output `[B, Cout, H, W]`.
///
/// Both passes run over a **tap-major im2col matrix**: `cols[t]` (one row
/// per kernel tap `t = (ci, di, dj)`) is the whole input batch shifted by
/// the tap offset ([`shifted_plane_copy`]), so the forward pass is
/// `out[co] = bias[co] + Σ_t w[co, t] · cols[t]` — a handful of
/// `B·H·W`-long [`axpy`]/[`dot`] streams instead of millions of short
/// row segments. The sheet windows this workspace convolves are only 8–10
/// columns wide, which makes long streams the difference between scalar
/// and SIMD throughput. The col matrix is cached for the backward pass
/// (weight gradients are `dot(gradᵀ[co], cols[t])`; input gradients reuse
/// the col rows in place, then scatter back with [`shifted_plane_axpy`]).
pub struct Conv2d {
    pub in_ch: usize,
    pub out_ch: usize,
    pub kernel: usize,
    w: Vec<f32>, // [out_ch, in_ch, k, k]
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    cache: Option<Tensor>,
    out_pool: Tensor,
    gx_pool: Tensor,
    /// Tap-major im2col matrix `[cin·k², B·H·W]`, built in forward and
    /// consumed in backward.
    cols: Tensor,
    /// Channel-major staging `[max(out_ch, ...), B·H·W]`: output rows in
    /// forward, transposed upstream gradient in backward.
    chan: Tensor,
    wrap_scratch: Vec<f32>,
}

impl Conv2d {
    pub fn new(rng: &mut StdRng, in_ch: usize, out_ch: usize, kernel: usize) -> Conv2d {
        assert!(kernel % 2 == 1, "same-padding requires an odd kernel");
        let fan_in = in_ch * kernel * kernel;
        Conv2d {
            in_ch,
            out_ch,
            kernel,
            w: he_uniform(rng, fan_in, out_ch * fan_in),
            b: vec![0.0; out_ch],
            gw: vec![0.0; out_ch * fan_in],
            gb: vec![0.0; out_ch],
            cache: None,
            out_pool: Tensor::default(),
            gx_pool: Tensor::default(),
            cols: Tensor::default(),
            chan: Tensor::default(),
            wrap_scratch: Vec::new(),
        }
    }

    /// Tap offsets `(r, s)` of tap index `t` with padding `p`.
    #[inline]
    fn tap_shift(&self, t: usize) -> (isize, isize) {
        let k = self.kernel;
        let p = (k / 2) as isize;
        let di = (t / k) % k;
        let dj = t % k;
        (di as isize - p, dj as isize - p)
    }

    /// Build the tap-major im2col matrix for `x` into `cols`.
    fn im2col(&self, x: &Tensor, cols: &mut Tensor) {
        let [bsz, cin, h, w] = dims4(x);
        assert_eq!(cin, self.in_ch, "Conv2d channel mismatch");
        let k = self.kernel;
        let t_dim = cin * k * k;
        let n_px = bsz * h * w;
        cols.reset_for_overwrite(&[t_dim, n_px]);
        for t in 0..t_dim {
            let ci = t / (k * k);
            let (r, s) = self.tap_shift(t);
            for b in 0..bsz {
                let xplane = &x.data[((b * cin + ci) * h) * w..][..h * w];
                let dst = &mut cols.data[t * n_px + b * h * w..][..h * w];
                shifted_plane_copy(xplane, dst, h, w, r, s);
            }
        }
    }

    /// Forward from a built col matrix into `out` (`[bsz, out_ch, h, w]`),
    /// staging channel-major rows in `chan`.
    fn forward_from_cols(&self, cols: &Tensor, chan: &mut Tensor, out: &mut Tensor) {
        let [bsz, out_ch, h, w] = dims4(out);
        let n_px = bsz * h * w;
        let t_dim = self.in_ch * self.kernel * self.kernel;
        chan.reset_for_overwrite(&[out_ch, n_px]);
        for co in 0..out_ch {
            let arow = &mut chan.data[co * n_px..][..n_px];
            arow.fill(self.b[co]);
            for t in 0..t_dim {
                axpy(self.w[co * t_dim + t], &cols.data[t * n_px..][..n_px], arow);
            }
        }
        // Scatter channel-major rows into [b, co, h, w] planes.
        for b in 0..bsz {
            for co in 0..out_ch {
                out.data[((b * out_ch + co) * h) * w..][..h * w]
                    .copy_from_slice(&chan.data[co * n_px + b * h * w..][..h * w]);
            }
        }
    }

    fn run(&self, x: &Tensor) -> Tensor {
        let [bsz, _, h, w] = dims4(x);
        let mut out = Tensor::zeros(vec![bsz, self.out_ch, h, w]);
        let mut cols = Tensor::default();
        let mut chan = Tensor::default();
        self.im2col(x, &mut cols);
        self.forward_from_cols(&cols, &mut chan, &mut out);
        out
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let [bsz, _, h, w] = dims4(&x);
        let mut out = std::mem::take(&mut self.out_pool);
        out.reset_for_overwrite(&[bsz, self.out_ch, h, w]);
        let mut cols = std::mem::take(&mut self.cols);
        let mut chan = std::mem::take(&mut self.chan);
        self.im2col(&x, &mut cols);
        self.forward_from_cols(&cols, &mut chan, &mut out);
        self.cols = cols;
        self.chan = chan;
        self.cache = Some(x);
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let x = self.cache.take().expect("forward before backward");
        let [bsz, cin, h, w] = dims4(&x);
        let k = self.kernel;
        let t_dim = cin * k * k;
        let n_px = bsz * h * w;
        let out_ch = self.out_ch;
        let mut gx = std::mem::take(&mut self.gx_pool);
        gx.reset_zeroed(&[bsz, cin, h, w]);
        // Transpose the upstream gradient to channel-major rows.
        let mut gt = std::mem::take(&mut self.chan);
        gt.reset_for_overwrite(&[out_ch, n_px]);
        for b in 0..bsz {
            for co in 0..out_ch {
                gt.data[co * n_px + b * h * w..][..h * w]
                    .copy_from_slice(&grad.data[((b * out_ch + co) * h) * w..][..h * w]);
            }
        }
        for co in 0..out_ch {
            self.gb[co] += sum(&gt.data[co * n_px..][..n_px]);
        }
        // Per tap: weight gradients from the cached cols, then reuse the
        // col row in place as the col-space input gradient and scatter it.
        let mut cols = std::mem::take(&mut self.cols);
        for t in 0..t_dim {
            {
                let colrow = &cols.data[t * n_px..][..n_px];
                for co in 0..out_ch {
                    self.gw[co * t_dim + t] += dot(&gt.data[co * n_px..][..n_px], colrow);
                }
            }
            let colrow = &mut cols.data[t * n_px..][..n_px];
            colrow.fill(0.0);
            for co in 0..out_ch {
                axpy(self.w[co * t_dim + t], &gt.data[co * n_px..][..n_px], colrow);
            }
            // col2im: scatter through the transposed tap shift.
            let ci = t / (k * k);
            let (r, s) = self.tap_shift(t);
            for b in 0..bsz {
                let src = &cols.data[t * n_px + b * h * w..][..h * w];
                let gxplane = &mut gx.data[((b * cin + ci) * h) * w..][..h * w];
                shifted_plane_axpy(1.0, src, gxplane, h, w, -r, -s, &mut self.wrap_scratch);
            }
        }
        self.cols = cols;
        self.chan = gt;
        self.out_pool = grad;
        self.gx_pool = x;
        gx
    }

    fn infer(&self, x: Tensor) -> Tensor {
        self.run(&x)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&[f32])) {
        f(&self.w);
        f(&self.b);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

// ------------------------------------------------------------- MaxPool2d

/// Non-overlapping max pooling (`k × k` windows, stride `k`). Truncates
/// ragged borders like the usual floor-division convention.
pub struct MaxPool2d {
    pub k: usize,
    argmax: Vec<usize>,
    out_pool: Tensor,
    gx_pool: Tensor,
}

impl MaxPool2d {
    pub fn new(k: usize) -> MaxPool2d {
        assert!(k >= 1);
        MaxPool2d { k, argmax: Vec::new(), out_pool: Tensor::default(), gx_pool: Tensor::default() }
    }

    fn out_dims(&self, x: &Tensor) -> [usize; 4] {
        let [bsz, c, h, w] = dims4(x);
        let (oh, ow) = (h / self.k, w / self.k);
        assert!(oh > 0 && ow > 0, "pooling window larger than input");
        [bsz, c, oh, ow]
    }

    /// Pool into `out` (already shaped); optionally record argmax indices.
    fn run_into(&self, x: &Tensor, out: &mut Tensor, mut record: Option<&mut Vec<usize>>) {
        let [bsz, c, h, w] = dims4(x);
        let k = self.k;
        let [_, _, oh, ow] = self.out_dims(x);
        if let Some(r) = record.as_deref_mut() {
            r.clear();
            r.reserve(out.len());
        }
        for b in 0..bsz {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                for i in 0..oh {
                    for j in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for di in 0..k {
                            let row_start = base + (i * k + di) * w + j * k;
                            let row = &x.data[row_start..row_start + k];
                            for (dj, &v) in row.iter().enumerate() {
                                if v > best {
                                    best = v;
                                    best_idx = row_start + dj;
                                }
                            }
                        }
                        out.data[((b * c + ch) * oh + i) * ow + j] = best;
                        if let Some(r) = record.as_deref_mut() {
                            r.push(best_idx);
                        }
                    }
                }
            }
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let dims = self.out_dims(&x);
        let mut out = std::mem::take(&mut self.out_pool);
        out.reset_for_overwrite(&dims);
        let mut argmax = std::mem::take(&mut self.argmax);
        self.run_into(&x, &mut out, Some(&mut argmax));
        self.argmax = argmax;
        self.gx_pool = x; // keep the input buffer (and shape) for backward
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        // The pool holds the cached input, so its shape is already the
        // input shape; only the values need resetting.
        let mut gx = std::mem::take(&mut self.gx_pool);
        gx.data.iter_mut().for_each(|v| *v = 0.0);
        for (g, &idx) in grad.data.iter().zip(self.argmax.iter()) {
            gx.data[idx] += g;
        }
        self.out_pool = grad;
        gx
    }

    fn infer(&self, x: Tensor) -> Tensor {
        let dims = self.out_dims(&x);
        let mut out = Tensor::zeros(dims.to_vec());
        self.run_into(&x, &mut out, None);
        out
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&[f32])) {}
}

// -------------------------------------------------------- GlobalAvgPool

/// Mean over the spatial dimensions: `[B, C, H, W] → [B, C]`.
#[derive(Default)]
pub struct GlobalAvgPool {
    out_pool: Tensor,
    gx_pool: Tensor,
}

impl GlobalAvgPool {
    pub fn new() -> GlobalAvgPool {
        GlobalAvgPool::default()
    }

    fn run_into(x: &Tensor, out: &mut Tensor) {
        let [bsz, c, h, w] = dims4(x);
        let hw = (h * w) as f32;
        for b in 0..bsz {
            for ch in 0..c {
                let base = (b * c + ch) * h * w;
                out.data[b * c + ch] = sum(&x.data[base..base + h * w]) / hw;
            }
        }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let [bsz, c, _, _] = dims4(&x);
        let mut out = std::mem::take(&mut self.out_pool);
        out.reset_for_overwrite(&[bsz, c]);
        Self::run_into(&x, &mut out);
        self.gx_pool = x;
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let mut gx = std::mem::take(&mut self.gx_pool);
        let [bsz, c, h, w] = dims4(&gx);
        let hw = (h * w) as f32;
        for b in 0..bsz {
            for ch in 0..c {
                let g = grad.data[b * c + ch] / hw;
                let base = (b * c + ch) * h * w;
                gx.data[base..base + h * w].fill(g);
            }
        }
        self.out_pool = grad;
        gx
    }

    fn infer(&self, x: Tensor) -> Tensor {
        let [bsz, c, _, _] = dims4(&x);
        let mut out = Tensor::zeros(vec![bsz, c]);
        Self::run_into(&x, &mut out);
        out
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&[f32])) {}
}

// ---------------------------------------------------------- L2Normalize

/// Per-row L2 normalization (the output layer of both representation
/// models, §4.4.4). Rows with near-zero norm pass through unchanged.
#[derive(Default)]
pub struct L2Normalize {
    cache_y: Vec<f32>,
    cache_norm: Vec<f32>,
    features: usize,
}

impl L2Normalize {
    pub fn new() -> L2Normalize {
        L2Normalize::default()
    }
}

impl Layer for L2Normalize {
    fn forward(&mut self, mut x: Tensor) -> Tensor {
        let batch = x.batch();
        let f = x.features();
        self.features = f;
        self.cache_norm.clear();
        for b in 0..batch {
            let norm = l2_normalize(x.row_mut(b));
            self.cache_norm.push(norm);
        }
        self.cache_y.clear();
        self.cache_y.extend_from_slice(&x.data);
        x
    }

    fn backward(&mut self, mut grad: Tensor) -> Tensor {
        let batch = grad.batch();
        let f = self.features;
        for b in 0..batch {
            let norm = self.cache_norm[b];
            if norm <= 1e-12 {
                continue; // forward was identity
            }
            let y = &self.cache_y[b * f..(b + 1) * f];
            let g = grad.row_mut(b);
            let ydotg = dot(y, g);
            for i in 0..f {
                g[i] = (g[i] - y[i] * ydotg) / norm;
            }
        }
        grad
    }

    fn infer(&self, mut x: Tensor) -> Tensor {
        let batch = x.batch();
        for b in 0..batch {
            l2_normalize(x.row_mut(b));
        }
        x
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&[f32])) {}
}

// ------------------------------------------------------------ Sequential

/// A stack of layers applied in order.
#[derive(Default)]
pub struct Sequential {
    pub layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    pub fn new() -> Sequential {
        Sequential::default()
    }

    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }
}

impl Layer for Sequential {
    fn forward(&mut self, mut x: Tensor) -> Tensor {
        for l in self.layers.iter_mut() {
            x = l.forward(x);
        }
        x
    }

    fn backward(&mut self, mut grad: Tensor) -> Tensor {
        for l in self.layers.iter_mut().rev() {
            grad = l.backward(grad);
        }
        grad
    }

    fn infer(&self, mut x: Tensor) -> Tensor {
        for l in self.layers.iter() {
            x = l.infer(x);
        }
        x
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for l in self.layers.iter_mut() {
            l.visit_params(f);
        }
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&[f32])) {
        for l in self.layers.iter() {
            l.visit_params_ref(f);
        }
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }
}

fn dims4(x: &Tensor) -> [usize; 4] {
    assert_eq!(x.shape.len(), 4, "expected a 4-D tensor, got {:?}", x.shape);
    [x.shape[0], x.shape[1], x.shape[2], x.shape[3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use rand::SeedableRng;

    /// Scalar objective: weighted sum of the output with fixed weights.
    fn objective(out: &Tensor, weights: &[f32]) -> f32 {
        out.data.iter().zip(weights).map(|(a, b)| a * b).sum()
    }

    /// Central-difference gradient check of `layer` on input `x`.
    fn grad_check(layer: &mut dyn Layer, x: Tensor, tol: f32) {
        let mut rng = StdRng::seed_from_u64(99);
        let out = layer.infer(x.clone());
        let wts: Vec<f32> = (0..out.len()).map(|_| rng.random_range(-1.0..1.0f32)).collect();

        // Analytic input gradient.
        layer.zero_grad();
        let out = layer.forward(x.clone());
        let grad = Tensor::new(out.shape.clone(), wts.clone());
        let gx = layer.backward(grad);

        // Numeric input gradient.
        let eps = 1e-2f32;
        for i in 0..x.len().min(40) {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let fp = objective(&layer.infer(xp), &wts);
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let fm = objective(&layer.infer(xm), &wts);
            let num = (fp - fm) / (2.0 * eps);
            let ana = gx.data[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                "input grad mismatch at {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    /// Gradient check for parameters of `layer`.
    fn param_grad_check(layer: &mut dyn Layer, x: Tensor, tol: f32) {
        let mut rng = StdRng::seed_from_u64(5);
        let out = layer.infer(x.clone());
        let wts: Vec<f32> = (0..out.len()).map(|_| rng.random_range(-1.0..1.0f32)).collect();

        layer.zero_grad();
        let out = layer.forward(x.clone());
        let _ = layer.backward(Tensor::new(out.shape.clone(), wts.clone()));

        // Collect analytic parameter grads.
        let mut analytic: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |_, g| analytic.push(g.to_vec()));

        fn nudge(layer: &mut dyn Layer, block: usize, i: usize, delta: f32) {
            let mut b = 0usize;
            layer.visit_params(&mut |p, _| {
                if b == block {
                    p[i] += delta;
                }
                b += 1;
            });
        }

        let eps = 1e-2f32;
        // Numerically perturb the first few entries of each param block.
        for (block, ana_block) in analytic.iter().enumerate() {
            for (i, &ana) in ana_block.iter().enumerate().take(12) {
                nudge(layer, block, i, eps);
                let fp = objective(&layer.infer(x.clone()), &wts);
                nudge(layer, block, i, -2.0 * eps);
                let fm = objective(&layer.infer(x.clone()), &wts);
                nudge(layer, block, i, eps); // restore
                let num = (fp - fm) / (2.0 * eps);
                assert!(
                    (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                    "param grad mismatch block {block} idx {i}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    fn random_tensor(rng: &mut StdRng, shape: Vec<usize>) -> Tensor {
        let n = shape.iter().product();
        Tensor::new(shape, (0..n).map(|_| rng.random_range(-1.0..1.0f32)).collect())
    }

    #[test]
    fn linear_gradients() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(&mut rng, 5, 3);
        let x = random_tensor(&mut rng, vec![4, 5]);
        grad_check(&mut l, x.clone(), 2e-2);
        param_grad_check(&mut l, x, 2e-2);
    }

    #[test]
    fn relu_gradients() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Relu::new();
        // Keep inputs away from the kink at zero so the finite-difference
        // probe does not straddle the non-differentiable point.
        let mut x = random_tensor(&mut rng, vec![3, 7]);
        for v in x.data.iter_mut() {
            if v.abs() < 0.05 {
                *v = 0.05_f32.copysign(*v);
            }
        }
        grad_check(&mut l, x, 2e-2);
    }

    #[test]
    fn conv_gradients() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Conv2d::new(&mut rng, 2, 3, 3);
        let x = random_tensor(&mut rng, vec![2, 2, 5, 4]);
        grad_check(&mut l, x.clone(), 3e-2);
        param_grad_check(&mut l, x, 3e-2);
    }

    #[test]
    fn maxpool_gradients() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut l = MaxPool2d::new(2);
        let x = random_tensor(&mut rng, vec![2, 2, 6, 4]);
        grad_check(&mut l, x, 2e-2);
    }

    #[test]
    fn gap_gradients() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut l = GlobalAvgPool::new();
        let x = random_tensor(&mut rng, vec![2, 3, 4, 4]);
        grad_check(&mut l, x, 2e-2);
    }

    #[test]
    fn l2norm_gradients() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut l = L2Normalize::new();
        let x = random_tensor(&mut rng, vec![3, 6]);
        grad_check(&mut l, x, 2e-2);
    }

    #[test]
    fn l2norm_output_has_unit_norm() {
        let mut rng = StdRng::seed_from_u64(7);
        let l = L2Normalize::new();
        let x = random_tensor(&mut rng, vec![4, 9]);
        let y = l.infer(x);
        for b in 0..4 {
            let n: f32 = y.row(b).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn sequential_mlp_gradients() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 6, 8));
        net.push(Relu::new());
        net.push(Linear::new(&mut rng, 8, 4));
        net.push(L2Normalize::new());
        let x = random_tensor(&mut rng, vec![3, 6]);
        grad_check(&mut net, x.clone(), 3e-2);
        param_grad_check(&mut net, x, 3e-2);
        assert_eq!(net.param_count(), 6 * 8 + 8 + 8 * 4 + 4);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Sequential::new();
        net.push(Conv2d::new(&mut rng, 1, 2, 3));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2));
        net.push(GlobalAvgPool::new());
        let x = random_tensor(&mut rng, vec![2, 1, 8, 6]);
        let a = net.infer(x.clone());
        let b = net.forward(x);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_steps_reuse_pools() {
        // After the first forward/backward pair, the pools hold buffers of
        // the right size; later steps must not grow them.
        let mut rng = StdRng::seed_from_u64(10);
        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 6, 8));
        net.push(Relu::new());
        net.push(Linear::new(&mut rng, 8, 4));
        net.push(L2Normalize::new());
        let x = random_tensor(&mut rng, vec![5, 6]);
        let mut outs = Vec::new();
        for _ in 0..3 {
            let out = net.forward(x.clone());
            outs.push(out.data.clone());
            net.backward(Tensor::zeros(out.shape.clone()));
        }
        // Zero upstream grad ⇒ no weight change ⇒ identical outputs; the
        // point is that pooled buffers start zeroed/overwritten each step.
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
    }

    #[test]
    fn maxpool_truncates_ragged_edges() {
        let l = MaxPool2d::new(2);
        let x = Tensor::new(vec![1, 1, 3, 5], (0..15).map(|v| v as f32).collect());
        let y = l.infer(x);
        assert_eq!(y.shape, vec![1, 1, 1, 2]);
        assert_eq!(y.data, vec![6.0, 8.0]);
    }

    #[test]
    fn flat_param_round_trip() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut a = Linear::new(&mut rng, 3, 2);
        let mut b = Linear::new(&mut rng, 3, 2);
        let mut flat = Vec::new();
        let n = export_params_into(&mut a, &mut flat);
        assert_eq!(n, a.param_count());
        assert_eq!(import_params_from(&mut b, &flat), n);
        let (xa, xb) = (a.infer(Tensor::zeros(vec![1, 3])), b.infer(Tensor::zeros(vec![1, 3])));
        assert_eq!(xa.data, xb.data);
        // Gradient export/accumulate round trip: accumulate twice = 2×.
        let out = a.forward(Tensor::new(vec![1, 3], vec![1.0, 2.0, 3.0]));
        a.backward(Tensor::new(out.shape.clone(), vec![1.0, -1.0]));
        let mut g = Vec::new();
        export_grads_into(&mut a, &mut g);
        let mut c = Linear::new(&mut rng, 3, 2);
        c.zero_grad();
        accumulate_grads_from(&mut c, &g);
        accumulate_grads_from(&mut c, &g);
        let mut g2 = Vec::new();
        export_grads_into(&mut c, &mut g2);
        for (x, y) in g.iter().zip(&g2) {
            assert!((2.0 * x - y).abs() < 1e-6);
        }
    }
}
