//! Quantized scan paths across all three backends: re-encoding an index
//! into `f16`/`int8` must keep serving (high recall against the exact
//! scan, incremental `add` still works), `f32` must stay bit-identical,
//! and the legacy (v1) wire layout must keep decoding.

use af_ann::test_util::lcg_vectors;
use af_ann::{
    load_index, save_index, save_index_with, FlatIndex, HnswIndex, HnswParams, IvfFlatIndex,
    IvfParams, VectorIndex,
};
use af_store::Codec;
use bytes::{Buf, BufMut, BytesMut};

fn backends(data: &[f32], dim: usize) -> Vec<(&'static str, Box<dyn VectorIndex>)> {
    vec![
        ("flat", Box::new(FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec())))),
        ("hnsw", Box::new(HnswIndex::build(data, dim, HnswParams::default()))),
        (
            "ivf",
            Box::new(IvfFlatIndex::build(
                data,
                dim,
                IvfParams { n_lists: 8, n_probe: usize::MAX, ..Default::default() },
            )),
        ),
    ]
}

fn recall_at_k(
    truth: &dyn VectorIndex,
    probe: &dyn VectorIndex,
    queries: &[f32],
    dim: usize,
    k: usize,
) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for q in queries.chunks(dim) {
        let exact: Vec<usize> = truth.search(q, k).iter().map(|n| n.id).collect();
        let approx: Vec<usize> = probe.search(q, k).iter().map(|n| n.id).collect();
        total += exact.len();
        hits += exact.iter().filter(|id| approx.contains(id)).count();
    }
    hits as f64 / total as f64
}

#[test]
fn quantized_round_trip_serves_with_high_recall_on_every_backend() {
    let dim = 16;
    let data = lcg_vectors(600, dim, 41);
    let queries = lcg_vectors(40, dim, 42);
    for (name, idx) in backends(&data, dim) {
        // PQ gets an explicit 2-dim subspace split here: this corpus is
        // uniform random (no cell structure to exploit), so the auto
        // split's 8-dim subspaces would be a recall test of the corpus,
        // not of the scan path. Real-corpus recall for the auto split is
        // gated in `af-bench` (BENCH_store.json).
        for codec in [Codec::F16, Codec::Int8, Codec::Pq { m: 8 }] {
            let mut bytes = save_index_with(idx.as_ref(), codec);
            let loaded = load_index(&mut bytes).expect("quantized round trip");
            assert_eq!(bytes.remaining(), 0, "{name}/{codec:?}");
            // PQ resolves its auto subspace count at encode time, so
            // compare tags rather than the full codec value.
            assert_eq!(loaded.codec().tag(), codec.tag(), "{name}");
            assert_eq!(loaded.len(), idx.len(), "{name}");
            let r = recall_at_k(idx.as_ref(), loaded.as_ref(), &queries, dim, 10);
            assert!(r >= 0.9, "{name}/{codec:?}: recall@10 {r}");
        }
    }
}

#[test]
fn f32_encode_with_is_bit_identical_on_every_backend() {
    let dim = 12;
    let data = lcg_vectors(300, dim, 43);
    let queries = lcg_vectors(20, dim, 44);
    for (name, idx) in backends(&data, dim) {
        let mut bytes = save_index_with(idx.as_ref(), Codec::F32);
        let loaded = load_index(&mut bytes).unwrap();
        assert_eq!(loaded.codec(), Codec::F32);
        for q in queries.chunks(dim) {
            let (a, b) = (idx.search(q, 7), loaded.search(q, 7));
            assert_eq!(a.len(), b.len(), "{name}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "{name}");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "{name}");
            }
        }
    }
}

#[test]
fn add_after_quantized_load_keeps_serving() {
    // The production path: a corpus keeps growing after a compressed
    // artifact was loaded. New vectors are quantized on insert and must be
    // findable.
    let dim = 8;
    let data = lcg_vectors(200, dim, 45);
    let extra = lcg_vectors(30, dim, 46);
    for (name, idx) in backends(&data, dim) {
        for codec in [Codec::F16, Codec::Int8, Codec::Pq { m: 0 }] {
            let mut bytes = save_index_with(idx.as_ref(), codec);
            let mut loaded = load_index(&mut bytes).unwrap();
            for (i, v) in extra.chunks(dim).enumerate() {
                assert_eq!(loaded.add(v), 200 + i, "{name}/{codec:?}");
            }
            // Self-query each appended vector: its quantized image must be
            // its own nearest neighbor (the quantization error is far
            // smaller than the inter-point distances of this corpus).
            for (i, v) in extra.chunks(dim).enumerate() {
                let hit = &loaded.search(v, 1)[0];
                assert_eq!(hit.id, 200 + i, "{name}/{codec:?}");
                assert!(hit.dist < 1e-3, "{name}/{codec:?}: {}", hit.dist);
            }
        }
    }
}

#[test]
fn quantized_truncation_errors_never_panics() {
    let dim = 6;
    let data = lcg_vectors(50, dim, 47);
    for (name, idx) in backends(&data, dim) {
        for codec in [Codec::F16, Codec::Int8, Codec::Pq { m: 0 }] {
            let bytes = save_index_with(idx.as_ref(), codec);
            for cut in 0..bytes.len() {
                let mut head = bytes.slice(0..cut);
                assert!(
                    load_index(&mut head).is_err(),
                    "{name}/{codec:?}: truncation to {cut}/{} must fail cleanly",
                    bytes.len()
                );
            }
        }
    }
}

#[test]
fn default_encode_preserves_the_index_codec() {
    let dim = 8;
    let data = lcg_vectors(100, dim, 48);
    let flat = FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()));
    let int8 = flat.to_codec(Codec::Int8);
    // encode() (no codec argument) must round-trip the quantized state
    // losslessly: same codes, bit-identical searches.
    let mut bytes = save_index(&int8);
    let loaded = load_index(&mut bytes).unwrap();
    assert_eq!(loaded.codec(), Codec::Int8);
    let q = lcg_vectors(1, dim, 49);
    let (a, b) = (int8.search(&q, 5), loaded.search(&q, 5));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.dist.to_bits(), y.dist.to_bits());
    }
}

#[test]
fn empty_ivf_round_trip_preserves_its_codec() {
    // Regression: an empty index has no list stores to carry the codec
    // tag, so a round trip silently downgraded a cold-start int8 index
    // to f32 — every later `add` stored 4x the requested bytes.
    let dim = 6;
    let ivf = IvfFlatIndex::build_with_codec(&[], dim, Codec::Int8, IvfParams::default());
    assert_eq!(ivf.codec(), Codec::Int8);
    let mut bytes = save_index(&ivf);
    let mut loaded = load_index(&mut bytes).expect("empty ivf round trip");
    assert_eq!(loaded.codec(), Codec::Int8, "codec must survive an empty round trip");
    // Cold-start growth after the round trip still quantizes.
    let grow = lcg_vectors(40, dim, 52);
    for v in grow.chunks(dim) {
        loaded.add(v);
    }
    assert_eq!(loaded.codec(), Codec::Int8);
    assert_eq!(loaded.search(&grow[..dim], 1)[0].id, 0);
}

#[test]
fn legacy_v1_flat_layout_still_decodes() {
    // Hand-rolled v1 wire image (tag 1): dim, parallel knobs, then a raw
    // length-prefixed little-endian f32 block. Old artifacts carry exactly
    // this; it must keep decoding bit-for-bit.
    let dim = 4usize;
    let data = lcg_vectors(25, dim, 50);
    let mut buf = BytesMut::new();
    buf.put_u8(1); // TAG_FLAT (legacy)
    buf.put_u32(dim as u32);
    buf.put_u64(0); // parallel_threshold
    buf.put_u64(0); // max_scan_threads
    buf.put_u64(data.len() as u64);
    for v in &data {
        buf.put_slice(&v.to_le_bytes());
    }
    let mut bytes = buf.freeze();
    let loaded = load_index(&mut bytes).expect("legacy layout decodes");
    assert_eq!(bytes.remaining(), 0);
    assert_eq!(loaded.len(), 25);
    assert_eq!(loaded.codec(), Codec::F32);
    let fresh = FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()));
    let q = lcg_vectors(1, dim, 51);
    assert_eq!(loaded.search(&q, 5), fresh.search(&q, 5));
}
