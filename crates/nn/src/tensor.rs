//! Row-major `f32` tensors with explicit shapes.
//!
//! The numeric kernels (`dot`, `l2_sq`, `matmul_xwt`) live in
//! [`crate::kernel`] and are re-exported here so existing call sites keep
//! working; this module only owns the [`Tensor`] container.

use std::fmt;

pub use crate::kernel::{dot, l2_sq, matmul_xwt};

/// A dense row-major tensor. Shapes follow the usual conventions:
/// `[batch, features]` for dense layers and `[batch, channels, height,
/// width]` for convolutional layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    pub shape: Vec<usize>,
    pub data: Vec<f32>,
}

impl Tensor {
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not match data length {}",
            data.len()
        );
        Tensor { shape, data }
    }

    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let n = shape.iter().product();
        Tensor { shape, data: vec![0.0; n] }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// First shape dimension (batch size by convention).
    pub fn batch(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Product of all dimensions after the first.
    pub fn features(&self) -> usize {
        self.shape.iter().skip(1).product()
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(mut self, shape: Vec<usize>) -> Tensor {
        assert_eq!(shape.iter().product::<usize>(), self.data.len());
        self.shape = shape;
        self
    }

    /// Like [`Tensor::reshape`] but reuses the existing shape vector's
    /// capacity instead of taking a freshly allocated one — the hot-path
    /// variant used by the training loop.
    pub fn reshape_to(mut self, dims: &[usize]) -> Tensor {
        assert_eq!(dims.iter().product::<usize>(), self.data.len());
        self.shape.clear();
        self.shape.extend_from_slice(dims);
        self
    }

    /// Re-dimension this tensor in place to `dims`, zero-filled, reusing
    /// both the data and shape buffer capacity. This is the scratch-arena
    /// primitive: layers keep pool tensors and `reset_zeroed` them each
    /// step, so steady-state training performs no heap allocation once
    /// every pool has grown to its high-water mark.
    pub fn reset_zeroed(&mut self, dims: &[usize]) {
        self.shape.clear();
        self.shape.extend_from_slice(dims);
        let n: usize = dims.iter().product();
        self.data.clear();
        self.data.resize(n, 0.0);
    }

    /// Like [`Tensor::reset_zeroed`] but without clearing existing
    /// contents — for pool buffers whose every element the caller fully
    /// overwrites (matmul outputs, im2col rows, featurized batch rows).
    /// Skipping the memset saves a full pass over the largest arenas each
    /// step; only newly grown capacity is zero-filled. Do NOT use for
    /// buffers that are accumulated into (`+=`) — those need
    /// [`Tensor::reset_zeroed`].
    pub fn reset_for_overwrite(&mut self, dims: &[usize]) {
        self.shape.clear();
        self.shape.extend_from_slice(dims);
        let n: usize = dims.iter().product();
        self.data.resize(n, 0.0);
    }

    /// Borrow row `i` of a 2-D view `[batch, features]`.
    pub fn row(&self, i: usize) -> &[f32] {
        let f = self.features();
        &self.data[i * f..(i + 1) * f]
    }

    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let f = self.features();
        &mut self.data[i * f..(i + 1) * f]
    }
}

impl Default for Tensor {
    /// An empty `[0]` tensor — the idle state of a scratch pool.
    fn default() -> Tensor {
        Tensor { shape: vec![0], data: Vec::new() }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

/// In-place L2 normalization; returns the original norm. Vectors with norm
/// below `eps` are left unchanged (and the norm returned is the true norm).
pub fn l2_normalize(v: &mut [f32]) -> f32 {
    const EPS: f32 = 1e-12;
    let norm = dot(v, v).sqrt();
    if norm > EPS {
        let inv = 1.0 / norm;
        for x in v.iter_mut() {
            *x *= inv;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks() {
        let t = Tensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.batch(), 2);
        assert_eq!(t.features(), 3);
        assert_eq!(t.row(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic]
    fn bad_shape_panics() {
        Tensor::new(vec![2, 2], vec![1.0; 5]);
    }

    #[test]
    fn matmul_small() {
        // x = [[1,2]], w = [[1,0],[0,1],[1,1]], b = [10,20,30]
        let x = [1.0, 2.0];
        let w = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let b = [10.0, 20.0, 30.0];
        let mut out = [0.0; 3];
        matmul_xwt(&x, &w, &b, 1, 2, 3, &mut out);
        assert_eq!(out, [11.0, 22.0, 33.0]);
    }

    #[test]
    fn l2_helpers() {
        assert_eq!(l2_sq(&[0.0, 3.0], &[4.0, 0.0]), 25.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut v = vec![3.0, 4.0];
        let n = l2_normalize(&mut v);
        assert_eq!(n, 5.0);
        assert!((v[0] - 0.6).abs() < 1e-6 && (v[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut v = vec![0.0, 0.0];
        let n = l2_normalize(&mut v);
        assert_eq!(n, 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::new(vec![2, 2], vec![1., 2., 3., 4.]).reshape(vec![4]);
        assert_eq!(t.shape, vec![4]);
        assert_eq!(t.data, vec![1., 2., 3., 4.]);
        let t = t.reshape_to(&[1, 4]);
        assert_eq!(t.shape, vec![1, 4]);
        assert_eq!(t.data, vec![1., 2., 3., 4.]);
    }

    #[test]
    fn reset_zeroed_reuses_capacity() {
        let mut t = Tensor::new(vec![2, 3], vec![1.0; 6]);
        let cap = t.data.capacity();
        t.reset_zeroed(&[3, 2]);
        assert_eq!(t.shape, vec![3, 2]);
        assert_eq!(t.data, vec![0.0; 6]);
        assert_eq!(t.data.capacity(), cap, "shrinking must not reallocate");
        t.reset_zeroed(&[1, 2]);
        assert_eq!(t.len(), 2);
    }
}
