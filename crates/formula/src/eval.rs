//! Formula evaluation against a sheet.
//!
//! The corpus generator uses this interpreter to populate *evaluated* values
//! for every generated formula, so featurization sees what a user would see
//! in the grid. References read the referenced cell's cached value (standard
//! spreadsheet semantics); [`recalculate`] runs a fixpoint pass to settle
//! formula chains.

use crate::ast::{BinOp, Expr, UnOp};
use crate::functions;
use af_grid::{CellError, CellValue, RangeRef, Sheet};
use std::cmp::Ordering;

/// Evaluation failure — a spreadsheet error value.
pub type EvalError = CellError;

/// A rectangular array of values produced by evaluating a range.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayValue {
    pub rows: u32,
    pub cols: u32,
    pub data: Vec<CellValue>,
}

impl ArrayValue {
    pub fn get(&self, row: u32, col: u32) -> &CellValue {
        &self.data[(row * self.cols + col) as usize]
    }
}

/// An evaluated operand: a scalar or an array (range).
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    Scalar(CellValue),
    Array(ArrayValue),
}

impl Operand {
    /// Collapse to a scalar; 1×1 arrays collapse, larger arrays are a
    /// `#VALUE!` error.
    pub fn into_scalar(self) -> Result<CellValue, EvalError> {
        match self {
            Operand::Scalar(v) => Ok(v),
            Operand::Array(a) if a.data.len() == 1 => {
                Ok(a.data.into_iter().next().expect("len checked"))
            }
            Operand::Array(_) => Err(CellError::Value),
        }
    }

    /// Iterate every value (a scalar yields itself once).
    pub fn values(&self) -> impl Iterator<Item = &CellValue> {
        match self {
            Operand::Scalar(v) => std::slice::from_ref(v).iter(),
            Operand::Array(a) => a.data.iter(),
        }
    }

    /// Collect the numeric values following aggregate semantics: scalar
    /// arguments must coerce to numbers (error otherwise, except `Empty`
    /// which is skipped); array elements silently skip non-numeric entries.
    pub fn collect_numbers(&self, out: &mut Vec<f64>) -> Result<(), EvalError> {
        match self {
            Operand::Scalar(CellValue::Empty) => Ok(()),
            Operand::Scalar(CellValue::Error(e)) => Err(*e),
            Operand::Scalar(v) => {
                out.push(v.as_number().ok_or(CellError::Value)?);
                Ok(())
            }
            Operand::Array(a) => {
                for v in &a.data {
                    if let CellValue::Error(e) = v {
                        return Err(*e);
                    }
                    match v {
                        CellValue::Number(n) => out.push(*n),
                        CellValue::Bool(_) | CellValue::Text(_) | CellValue::Empty => {}
                        CellValue::Date(d) => out.push(*d as f64),
                        CellValue::Error(_) => unreachable!("handled above"),
                    }
                }
                Ok(())
            }
        }
    }
}

/// Evaluate a formula AST in the context of `sheet`, producing a scalar.
pub fn evaluate(expr: &Expr, sheet: &Sheet) -> Result<CellValue, EvalError> {
    eval_operand(expr, sheet)?.into_scalar()
}

/// Evaluate to an operand (scalar or array).
pub fn eval_operand(expr: &Expr, sheet: &Sheet) -> Result<Operand, EvalError> {
    match expr {
        Expr::Number(n) => Ok(Operand::Scalar(CellValue::Number(*n))),
        Expr::Text(s) => Ok(Operand::Scalar(CellValue::Text(s.clone()))),
        Expr::Bool(b) => Ok(Operand::Scalar(CellValue::Bool(*b))),
        Expr::Ref(r) => Ok(Operand::Scalar(sheet.value(r.cell))),
        Expr::Range(a, b) => {
            let range = RangeRef::new(a.cell, b.cell);
            if range.len() > 1_000_000 {
                return Err(CellError::Ref);
            }
            let data: Vec<CellValue> = range.cells().map(|c| sheet.value(c)).collect();
            Ok(Operand::Array(ArrayValue { rows: range.rows(), cols: range.cols(), data }))
        }
        Expr::Call(name, args) => {
            let mut ops = Vec::with_capacity(args.len());
            for a in args {
                ops.push(eval_operand(a, sheet)?);
            }
            functions::call(name, &ops).map(Operand::Scalar)
        }
        Expr::Binary(op, l, r) => {
            let lv = eval_operand(l, sheet)?.into_scalar()?;
            let rv = eval_operand(r, sheet)?.into_scalar()?;
            eval_binary(*op, &lv, &rv).map(Operand::Scalar)
        }
        Expr::Unary(op, e) => {
            let v = eval_operand(e, sheet)?.into_scalar()?;
            let out = match op {
                UnOp::Neg => CellValue::Number(-coerce_number(&v)?),
                UnOp::Plus => CellValue::Number(coerce_number(&v)?),
                UnOp::Percent => CellValue::Number(coerce_number(&v)? / 100.0),
            };
            Ok(Operand::Scalar(out))
        }
    }
}

/// Numeric coercion for arithmetic: `Empty` counts as 0 (spreadsheet
/// convention inside arithmetic), errors propagate.
fn coerce_number(v: &CellValue) -> Result<f64, EvalError> {
    match v {
        CellValue::Empty => Ok(0.0),
        CellValue::Error(e) => Err(*e),
        other => other.as_number().ok_or(CellError::Value),
    }
}

fn eval_binary(op: BinOp, l: &CellValue, r: &CellValue) -> Result<CellValue, EvalError> {
    if let CellValue::Error(e) = l {
        return Err(*e);
    }
    if let CellValue::Error(e) = r {
        return Err(*e);
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow => {
            let a = coerce_number(l)?;
            let b = coerce_number(r)?;
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(CellError::Div0);
                    }
                    a / b
                }
                BinOp::Pow => {
                    let p = a.powf(b);
                    if !p.is_finite() {
                        return Err(CellError::Num);
                    }
                    p
                }
                _ => unreachable!(),
            };
            Ok(CellValue::Number(out))
        }
        BinOp::Concat => Ok(CellValue::Text(format!("{}{}", l.display(), r.display()))),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = compare_values(l, r);
            let out = match (op, ord) {
                (BinOp::Eq, o) => o == Ordering::Equal,
                (BinOp::Ne, o) => o != Ordering::Equal,
                (BinOp::Lt, o) => o == Ordering::Less,
                (BinOp::Le, o) => o != Ordering::Greater,
                (BinOp::Gt, o) => o == Ordering::Greater,
                (BinOp::Ge, o) => o != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(CellValue::Bool(out))
        }
    }
}

/// Excel's total order across types: Number < Text < Bool. Text compares
/// case-insensitively. `Empty` coerces to the other side's zero value.
pub fn compare_values(l: &CellValue, r: &CellValue) -> Ordering {
    use CellValue::*;
    fn rank(v: &CellValue) -> u8 {
        match v {
            Empty => 0,
            Number(_) | Date(_) => 1,
            Text(_) => 2,
            Bool(_) => 3,
            Error(_) => 4,
        }
    }
    match (l, r) {
        (Number(a), Number(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
        (Date(a), Date(b)) => a.cmp(b),
        (Number(a), Date(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
        (Date(a), Number(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
        (Text(a), Text(b)) => a.to_lowercase().cmp(&b.to_lowercase()),
        (Bool(a), Bool(b)) => a.cmp(b),
        (Empty, Empty) => Ordering::Equal,
        (Empty, Number(b)) => 0.0f64.partial_cmp(b).unwrap_or(Ordering::Equal),
        (Number(a), Empty) => a.partial_cmp(&0.0).unwrap_or(Ordering::Equal),
        (Empty, Text(b)) => {
            if b.is_empty() {
                Ordering::Equal
            } else {
                Ordering::Less
            }
        }
        (Text(a), Empty) => {
            if a.is_empty() {
                Ordering::Equal
            } else {
                Ordering::Greater
            }
        }
        (Empty, Bool(b)) => false.cmp(b),
        (Bool(a), Empty) => a.cmp(&false),
        _ => rank(l).cmp(&rank(r)),
    }
}

/// Re-evaluate every formula cell in the sheet, writing results back as
/// cached values. Runs fixpoint rounds (formula chains settle in dependency
/// depth many rounds); returns the number of rounds used. Unparseable
/// formulas leave a `#NAME?` value.
pub fn recalculate(sheet: &mut Sheet) -> usize {
    const MAX_ROUNDS: usize = 16;
    let locations: Vec<_> = sheet.formulas().map(|(at, f)| (at, f.to_string())).collect();
    let mut parsed = Vec::with_capacity(locations.len());
    for (at, src) in &locations {
        parsed.push((*at, crate::parse_formula(src).ok()));
    }
    for round in 1..=MAX_ROUNDS {
        let mut changed = false;
        for (at, expr) in &parsed {
            let new_value = match expr {
                Some(e) => evaluate(e, sheet).unwrap_or_else(CellValue::Error),
                None => CellValue::Error(CellError::Name),
            };
            if let Some(cell) = sheet.get_mut(*at) {
                if cell.value != new_value {
                    cell.value = new_value;
                    changed = true;
                }
            }
        }
        if !changed {
            return round;
        }
    }
    MAX_ROUNDS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_formula;
    use af_grid::Cell;

    fn sheet() -> Sheet {
        let mut s = Sheet::new("t");
        s.set_a1("A1", Cell::new(10.0));
        s.set_a1("A2", Cell::new(20.0));
        s.set_a1("A3", Cell::new(30.0));
        s.set_a1("B1", Cell::new("Brown"));
        s.set_a1("B2", Cell::new("Green"));
        s.set_a1("B3", Cell::new("Brown"));
        s
    }

    fn eval(src: &str, s: &Sheet) -> CellValue {
        evaluate(&parse_formula(src).unwrap(), s).unwrap()
    }

    #[test]
    fn arithmetic() {
        let s = sheet();
        assert_eq!(eval("=1+2*3", &s), CellValue::Number(7.0));
        assert_eq!(eval("=A1+A2", &s), CellValue::Number(30.0));
        assert_eq!(eval("=A1/4", &s), CellValue::Number(2.5));
        assert_eq!(eval("=-A1", &s), CellValue::Number(-10.0));
        assert_eq!(eval("=50%", &s), CellValue::Number(0.5));
        assert_eq!(eval("=2^10", &s), CellValue::Number(1024.0));
    }

    #[test]
    fn division_by_zero() {
        let s = sheet();
        let e = evaluate(&parse_formula("=1/0").unwrap(), &s).unwrap_err();
        assert_eq!(e, CellError::Div0);
        // Empty coerces to zero.
        let e = evaluate(&parse_formula("=1/Z99").unwrap(), &s).unwrap_err();
        assert_eq!(e, CellError::Div0);
    }

    #[test]
    fn concatenation_and_comparison() {
        let s = sheet();
        assert_eq!(eval("=B1&\"!\"", &s), CellValue::text("Brown!"));
        assert_eq!(eval("=A1&A2", &s), CellValue::text("1020"));
        assert_eq!(eval("=A1<A2", &s), CellValue::Bool(true));
        assert_eq!(eval("=B1=\"brown\"", &s), CellValue::Bool(true), "case-insensitive");
        assert_eq!(eval("=B1<>B2", &s), CellValue::Bool(true));
    }

    #[test]
    fn ranges_feed_aggregates() {
        let s = sheet();
        assert_eq!(eval("=SUM(A1:A3)", &s), CellValue::Number(60.0));
        // Text cells in the range are skipped.
        assert_eq!(eval("=SUM(A1:B3)", &s), CellValue::Number(60.0));
    }

    #[test]
    fn multi_cell_range_as_scalar_errors() {
        let s = sheet();
        let e = evaluate(&parse_formula("=A1:A3+1").unwrap(), &s).unwrap_err();
        assert_eq!(e, CellError::Value);
    }

    #[test]
    fn error_propagates_through_ops() {
        let mut s = sheet();
        s.set_a1("C1", Cell::new(CellValue::Error(CellError::Na)));
        let e = evaluate(&parse_formula("=C1+1").unwrap(), &s).unwrap_err();
        assert_eq!(e, CellError::Na);
    }

    #[test]
    fn recalculate_settles_chains() {
        let mut s = Sheet::new("t");
        s.set_a1("A1", Cell::new(5.0));
        s.set_a1("A2", Cell::new(0.0).with_formula("A1*2"));
        s.set_a1("A3", Cell::new(0.0).with_formula("A2+1"));
        let rounds = recalculate(&mut s);
        assert!(rounds <= 3);
        assert_eq!(s.value("A2".parse().unwrap()), CellValue::Number(10.0));
        assert_eq!(s.value("A3".parse().unwrap()), CellValue::Number(11.0));
    }

    #[test]
    fn recalculate_marks_bad_formulas() {
        let mut s = Sheet::new("t");
        s.set_a1("A1", Cell::new(0.0).with_formula("NOT A FORMULA ((("));
        recalculate(&mut s);
        assert_eq!(s.value("A1".parse().unwrap()), CellValue::Error(CellError::Name));
    }
}
