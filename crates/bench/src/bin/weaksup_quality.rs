//! Regenerates weaksup_quality (see DESIGN.md's per-experiment index).
fn main() {
    af_bench::experiments::weaksup_quality();
}
