//! Vendored stand-in for `criterion`: the `criterion_group!` /
//! `criterion_main!` macros, [`Criterion`] builder, and
//! [`Bencher::iter`] — enough to compile and run the workspace's
//! micro-benchmarks without registry access.
//!
//! Measurement model: each `bench_function` runs its closure repeatedly
//! until the configured measurement time elapses (at least once, at most
//! `sample_size * 10_000` iterations) and reports mean wall-clock time per
//! iteration. No statistics, plots, or baselines — this is a smoke-and-order
//! -of-magnitude harness, not a rigorous one.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver/configuration (builder-style, like upstream).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            max_iters: self.sample_size as u64 * 10_000,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 { b.elapsed / b.iters as u32 } else { Duration::ZERO };
        println!("{name:<40} {per_iter:>12.2?}/iter ({} iters)", b.iters);
        self
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    max_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let start = Instant::now();
        let mut n = 0u64;
        while n == 0 || (start.elapsed() < self.budget && n < self.max_iters) {
            black_box(f());
            n += 1;
        }
        self.iters = n;
        self.elapsed = start.elapsed();
    }
}

/// Both upstream forms: `criterion_group!(name, target, ...)` and the
/// `name = ..; config = ..; targets = ..` block form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        c.bench_function("probe", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = group_under_test;
        config = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        targets = target
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        group_under_test();
    }
}
