//! Binary snapshotting of model parameters.
//!
//! A deliberately small format on top of `bytes`: magic, version, then a
//! sequence of length-prefixed `f32` blocks in `visit_params` order. Used by
//! the bench harness to train once and reuse the model across experiment
//! binaries.

use crate::layers::Layer;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: u32 = 0x4146_4e4e; // "AFNN"
const VERSION: u16 = 1;

/// Snapshot error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    BadMagic,
    BadVersion(u16),
    Truncated,
    /// Parameter block count or sizes do not match the target model.
    ShapeMismatch {
        block: usize,
        expected: usize,
        got: usize,
    },
    BlockCountMismatch {
        expected: usize,
        got: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => f.write_str("not an af-nn snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => f.write_str("snapshot truncated"),
            SnapshotError::ShapeMismatch { block, expected, got } => {
                write!(f, "block {block}: expected {expected} values, got {got}")
            }
            SnapshotError::BlockCountMismatch { expected, got } => {
                write!(f, "expected {expected} parameter blocks, got {got}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialize all parameters of `layer` into a byte buffer. Read-only
/// (via [`Layer::visit_params_ref`]), so a shared model can be snapshotted
/// while other threads run inference against it.
pub fn save_params(layer: &dyn Layer) -> Bytes {
    let mut n_blocks = 0usize;
    let mut total = 0usize;
    layer.visit_params_ref(&mut |p| {
        n_blocks += 1;
        total += 8 + p.len() * 4;
    });
    let mut buf = BytesMut::with_capacity(16 + total);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u16(0); // reserved
    buf.put_u32(n_blocks as u32);
    layer.visit_params_ref(&mut |p| {
        buf.put_u64(p.len() as u64);
        for &v in p {
            buf.put_f32(v);
        }
    });
    buf.freeze()
}

/// Restore parameters into `layer` (whose architecture must match).
pub fn load_params(layer: &mut dyn Layer, mut data: Bytes) -> Result<(), SnapshotError> {
    if data.remaining() < 12 {
        return Err(SnapshotError::Truncated);
    }
    if data.get_u32() != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = data.get_u16();
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let _reserved = data.get_u16();
    let n_blocks = data.get_u32() as usize;
    // Every block needs at least its 8-byte length prefix, so a count
    // larger than that bound is corrupt — reject before reserving memory
    // for it.
    if n_blocks > data.remaining() / 8 {
        return Err(SnapshotError::Truncated);
    }
    let mut blocks: Vec<Vec<f32>> = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        if data.remaining() < 8 {
            return Err(SnapshotError::Truncated);
        }
        let len = data.get_u64() as usize;
        let need = len.checked_mul(4).ok_or(SnapshotError::Truncated)?;
        if data.remaining() < need {
            return Err(SnapshotError::Truncated);
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(data.get_f32());
        }
        blocks.push(v);
    }
    // Apply.
    let mut idx = 0usize;
    let mut err: Option<SnapshotError> = None;
    layer.visit_params(&mut |p, _| {
        if err.is_some() {
            return;
        }
        match blocks.get(idx) {
            Some(b) if b.len() == p.len() => p.copy_from_slice(b),
            Some(b) => {
                err = Some(SnapshotError::ShapeMismatch {
                    block: idx,
                    expected: p.len(),
                    got: b.len(),
                })
            }
            None => {
                err =
                    Some(SnapshotError::BlockCountMismatch { expected: idx + 1, got: blocks.len() })
            }
        }
        idx += 1;
    });
    if let Some(e) = err {
        return Err(e);
    }
    if idx != blocks.len() {
        return Err(SnapshotError::BlockCountMismatch { expected: idx, got: blocks.len() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu, Sequential};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Sequential::new();
        s.push(Linear::new(&mut rng, 4, 8));
        s.push(Relu::new());
        s.push(Linear::new(&mut rng, 8, 2));
        s
    }

    #[test]
    fn save_load_round_trip() {
        let a = net(1);
        let mut b = net(2);
        let x = Tensor::new(vec![1, 4], vec![0.5, -0.5, 1.0, 0.25]);
        assert_ne!(a.infer(x.clone()).data, b.infer(x.clone()).data);
        let snap = save_params(&a);
        load_params(&mut b, snap).unwrap();
        assert_eq!(a.infer(x.clone()).data, b.infer(x).data);
    }

    #[test]
    fn mismatched_architecture_rejected() {
        let a = net(1);
        let snap = save_params(&a);
        let mut rng = StdRng::seed_from_u64(3);
        let mut tiny = Sequential::new();
        tiny.push(Linear::new(&mut rng, 4, 4));
        let err = load_params(&mut tiny, snap).unwrap_err();
        assert!(matches!(err, SnapshotError::ShapeMismatch { .. }));
    }

    #[test]
    fn corrupt_data_rejected() {
        let mut a = net(1);
        assert_eq!(
            load_params(&mut a, Bytes::from_static(b"garbage, not a snapshot")).unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            load_params(&mut a, Bytes::from_static(b"tiny")).unwrap_err(),
            SnapshotError::Truncated
        );
        let snap = save_params(&a);
        let truncated = snap.slice(0..snap.len() - 7);
        assert_eq!(load_params(&mut a, truncated).unwrap_err(), SnapshotError::Truncated);
    }
}
