//! Thin CLI wrapper: regenerates fig13 (see DESIGN.md's per-experiment
//! index). `AF_SCALE={tiny,small,full}` scales the synthetic corpora.

fn main() {
    af_bench::report::run_experiment(
        "fig13",
        "Fig. 13: feature-group ablation (content / style / syntactic masks)",
        af_bench::experiments::fig13,
    );
}
