//! `cargo run --release -p af-bench --bin store` — measure the vector-
//! storage subsystem at the current `AF_SCALE`: artifact size, load time,
//! flat-backend recall, and end-to-end prediction agreement for every
//! codec × layout variant, plus the mmap cold start. Results land in
//! `BENCH_store.json` (pass an output path as the first argument to write
//! elsewhere).

use af_bench::report::{print_table, run_experiment};
use af_bench::store_bench;

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_store.json".to_string());
    run_experiment("store", "BENCH_store.json (codec size/recall/latency)", || {
        let r = store_bench::measure();
        println!(
            "\nindex: {} sheets, {} regions; recall k={} over {} queries; \
             {} prediction queries; mmap cold start {:.2} ms",
            r.n_sheets, r.n_regions, r.k, r.recall_queries, r.prediction_queries, r.mmap_load_ms
        );
        println!(
            "compact reconstruction: {:.2} ms serial -> {:.2} ms across all cores",
            r.compact_reconstruct_serial_ms, r.compact_reconstruct_parallel_ms
        );
        print_table(
            "storage variants",
            &["codec", "layout", "MiB", "vs f32", "load (ms)", "recall@10", "pred agree"],
            &r.variants
                .iter()
                .map(|v| {
                    vec![
                        v.codec.to_string(),
                        if v.compact { "compact".into() } else { "fat".into() },
                        format!("{:.2}", v.artifact_bytes as f64 / (1024.0 * 1024.0)),
                        format!("{:.3}", v.ratio_vs_f32),
                        format!("{:.2}", v.load_ms),
                        format!("{:.4}", v.flat_recall_at_k),
                        format!("{:.4}", v.prediction_agreement),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        store_bench::write_json(&r, std::path::Path::new(&out));
        println!("\nwrote {out}");

        // Committed fidelity floors for the PQ codec: the smoke job runs
        // this binary, so a regression in PQ recall or end-to-end
        // prediction agreement fails CI loudly instead of silently
        // shipping a worse artifact format. The fat fine tables train
        // even on the tiny corpus (one row per region/parameter), so fat
        // PQ is lossy at every scale; with only ~17 prediction queries at
        // tiny each S2 near-tie flip costs ~6% agreement, so the full
        // floor only applies once the query set is large enough to make
        // it meaningful.
        const PQ_RECALL_FLOOR: f64 = 0.95;
        let pq_agreement_floor: f64 = if r.prediction_queries >= 50 { 0.90 } else { 0.75 };
        for v in r.variants.iter().filter(|v| v.codec == "pq") {
            assert!(
                v.flat_recall_at_k >= PQ_RECALL_FLOOR,
                "pq ({}) recall@10 {:.4} fell below the committed floor {PQ_RECALL_FLOOR}",
                if v.compact { "compact" } else { "fat" },
                v.flat_recall_at_k,
            );
            assert!(
                v.prediction_agreement >= pq_agreement_floor,
                "pq ({}) prediction agreement {:.4} fell below the committed floor \
                 {pq_agreement_floor}",
                if v.compact { "compact" } else { "fat" },
                v.prediction_agreement,
            );
        }
    });
}
