//! Thin CLI wrapper: regenerates fig7 (see DESIGN.md's per-experiment
//! index). `AF_SCALE={tiny,small,full}` scales the synthetic corpora.

fn main() {
    af_bench::report::run_experiment(
        "fig7",
        "Fig. 7: precision-recall curves per corpus (AF sweep; baseline points)",
        af_bench::experiments::fig7,
    );
}
