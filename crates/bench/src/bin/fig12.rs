//! Thin CLI wrapper: regenerates fig12 (see DESIGN.md's per-experiment
//! index). `AF_SCALE={tiny,small,full}` scales the synthetic corpora.

fn main() {
    af_bench::report::run_experiment(
        "fig12",
        "Fig. 12: embedding ablation (GloVe vs SBERT-style content features)",
        af_bench::experiments::fig12,
    );
}
