//! `af-baselines` — every comparison method from §5: Mondrian,
//! SpreadsheetCoder, GPT with 24 prompt variants, and weak-supervision-only.
//!
//! SpreadsheetCoder and GPT are *simulated* (the paper itself could not run
//! SpreadsheetCoder's code and probed it manually through Google Sheets;
//! GPT is a remote service). See DESIGN.md for the substitution arguments:
//! each stand-in reproduces the mechanism that limits the original — NL
//! context cannot pin down multi-parameter formulas, and GPT only succeeds
//! when RAG surfaces a similar sheet.

pub mod adapt;
pub mod gpt;
pub mod mondrian;
pub mod ssc;
pub mod weak_sup;

pub use gpt::{GptSim, PromptConfig};
pub use mondrian::MondrianBaseline;
pub use ssc::SpreadsheetCoderSim;
pub use weak_sup::WeakSupBaseline;

use af_grid::{CellRef, Sheet, Workbook};

/// Everything a baseline may look at when predicting: the full workbook
/// collection, which workbooks are references, where the target cell is,
/// and the masked target sheet (the formula being predicted is hidden).
pub struct PredictionContext<'a> {
    pub workbooks: &'a [Workbook],
    pub reference: &'a [usize],
    pub target_workbook: usize,
    pub target_sheet: usize,
    pub masked: &'a Sheet,
    pub target: CellRef,
}

/// A baseline's answer.
#[derive(Debug, Clone)]
pub struct BaselinePrediction {
    /// Canonical formula text (no `=`).
    pub formula: String,
    /// Higher is more confident (method-specific scale).
    pub confidence: f32,
}

/// Common predictor interface for the evaluation harness.
pub trait Baseline {
    fn name(&self) -> &'static str;
    fn predict(&self, ctx: &PredictionContext<'_>) -> Option<BaselinePrediction>;
}
