//! Value-generation strategies: numeric ranges, tuples, `prop_map`, and a
//! small regex subset for string literals.

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform};

/// A recipe for generating values of one type from a seeded RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

impl<T: SampleUniform + Clone> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleUniform + Clone> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// String literals act as regex strategies (subset: literal characters and
/// `[..]` classes with `a-z` ranges, each optionally followed by `{n}` or
/// `{m,n}`), which covers the patterns used in this workspace's tests.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        regex_sample(self, rng)
    }
}

/// One repeatable unit of the pattern: a character alphabet and a count.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(it: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = it.next() {
        match c {
            ']' => return out,
            '-' if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                let lo = prev.take().unwrap();
                let hi = it.next().unwrap();
                for ch in lo..=hi {
                    out.push(ch);
                }
            }
            _ => {
                if let Some(p) = prev.replace(c) {
                    out.push(p);
                }
            }
        }
    }
    panic!("unterminated character class in regex strategy");
}

fn parse_repeat(it: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if it.peek() != Some(&'{') {
        return (1, 1);
    }
    it.next();
    let mut spec = String::new();
    for c in it.by_ref() {
        if c == '}' {
            let (lo, hi) = match spec.split_once(',') {
                Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                None => {
                    let n = spec.trim().parse().unwrap();
                    (n, n)
                }
            };
            assert!(lo <= hi, "bad repetition {{{spec}}}");
            return (lo, hi);
        }
        spec.push(c);
    }
    panic!("unterminated repetition in regex strategy");
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => parse_class(&mut it),
            '\\' => vec![it.next().expect("dangling escape in regex strategy")],
            _ => vec![c],
        };
        assert!(!chars.is_empty(), "empty character class in regex strategy");
        let (min, max) = parse_repeat(&mut it);
        atoms.push(Atom { chars, min, max });
    }
    atoms
}

/// Sample one string matching `pattern` (see the [`Strategy`] impl for the
/// supported subset).
pub fn regex_sample(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for atom in parse_pattern(pattern) {
        let n = rng.random_range(atom.min..=atom.max);
        for _ in 0..n {
            out.push(atom.chars[rng.random_range(0..atom.chars.len())]);
        }
    }
    out
}
