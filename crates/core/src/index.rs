//! Offline reference indexing (§4.6): `Idx_c` — coarse sheet embeddings in
//! an ANN index — and `Idx_f` — fine region embeddings for every formula
//! cell in the reference corpus.

use crate::config::{AnnBackend, AutoFormulaConfig};
use crate::embedder::{SheetEmbedder, SheetEmbedding};
use crate::features::WindowOrigin;
use af_ann::{FlatIndex, HnswIndex, IvfFlatIndex, VectorIndex};
use af_grid::{CellRef, Sheet, Workbook};
use af_nn::Tensor;
use std::time::Instant;

/// Build a sheet-level ANN index over row-major `data` using the backend
/// selected in the config. Every backend supports incremental
/// [`VectorIndex::add`] afterwards, so `ReferenceIndex::add_workbook`
/// works identically regardless of this choice.
fn build_ann_index(cfg: &AutoFormulaConfig, dim: usize, data: &[f32]) -> Box<dyn VectorIndex> {
    match cfg.ann_backend {
        AnnBackend::Flat => {
            let mut idx = FlatIndex::new(dim)
                .with_parallelism(cfg.search_parallel_threshold, cfg.search_threads);
            for v in data.chunks_exact(dim) {
                idx.add(v);
            }
            Box::new(idx)
        }
        AnnBackend::Hnsw(params) => Box::new(HnswIndex::build(data, dim, params)),
        AnnBackend::Ivf(params) => Box::new(IvfFlatIndex::build(data, dim, params)),
    }
}

/// Identifies a sheet in the reference workbook collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SheetKey {
    pub workbook: usize,
    pub sheet: usize,
}

/// A reference formula region.
#[derive(Debug, Clone)]
pub struct RegionEntry {
    /// Index into [`ReferenceIndex::keys`].
    pub sheet_idx: usize,
    pub cell: CellRef,
    pub formula: String,
}

/// What to precompute at build time.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexOptions {
    /// Also index fine top-left signatures per sheet (fine-only ablation).
    pub fine_sheet_signatures: bool,
    /// Also embed each formula region through the coarse branch
    /// (coarse-only ablation).
    pub coarse_regions: bool,
}

/// The built reference index.
pub struct ReferenceIndex {
    pub keys: Vec<SheetKey>,
    pub embeddings: Vec<SheetEmbedding>,
    /// Coarse sheet-embedding index (`Idx_c`), on the backend selected by
    /// [`AutoFormulaConfig::ann_backend`]. Flat (exact scan) is the
    /// default — corpus-scale sheet counts (hundreds to tens of thousands
    /// of 64-d vectors) scan in well under a millisecond, matching Faiss
    /// `IndexFlat` — while HNSW/IVF serve SpreadsheetCoder-scale corpora
    /// (millions of sheets) where a scan stops being viable; measured
    /// recall/latency per backend lives in `BENCH_ann.json`.
    coarse: Box<dyn VectorIndex>,
    /// Fine top-left-signature index (fine-only ablation), same backend.
    fine_sheets: Option<Box<dyn VectorIndex>>,
    pub regions: Vec<RegionEntry>,
    region_vecs: Vec<Vec<f32>>,
    coarse_region_vecs: Option<Vec<Vec<f32>>>,
    regions_by_sheet: Vec<Vec<usize>>,
    pub build_seconds: f64,
}

impl ReferenceIndex {
    /// Embed and index the sheets of `members` (workbook indices).
    pub fn build(
        embedder: &SheetEmbedder<'_>,
        workbooks: &[Workbook],
        members: &[usize],
        opts: IndexOptions,
    ) -> ReferenceIndex {
        let started = Instant::now();
        let mut keys = Vec::new();
        for &wi in members {
            for si in 0..workbooks[wi].sheets.len() {
                keys.push(SheetKey { workbook: wi, sheet: si });
            }
        }
        // Parallel embedding across sheets; width follows the config knob
        // (0 = every available core) instead of a hard-coded cap.
        let n_threads = crate::config::resolve_threads(embedder.cfg().embed_threads);
        let chunk = keys.len().div_ceil(n_threads.max(1)).max(1);
        let mut embeddings: Vec<SheetEmbedding> = Vec::with_capacity(keys.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = keys
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        part.iter()
                            .map(|k| {
                                let sheet = &workbooks[k.workbook].sheets[k.sheet];
                                embedder.embed_sheet(sheet, opts.fine_sheet_signatures)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                embeddings.extend(h.join().expect("embedding worker"));
            }
        });

        // Coarse sheet index on the configured backend (batch build: IVF
        // trains its quantizer here; Flat/HNSW append).
        let cfg = embedder.cfg();
        let coarse_dim = cfg.coarse_dim;
        let mut coarse_data = Vec::with_capacity(embeddings.len() * coarse_dim);
        for e in &embeddings {
            coarse_data.extend_from_slice(&e.coarse);
        }
        let coarse = build_ann_index(cfg, coarse_dim, &coarse_data);
        let fine_sheets = opts.fine_sheet_signatures.then(|| {
            let fine_dim = cfg.fine_dim();
            let mut sig_data = Vec::with_capacity(embeddings.len() * fine_dim);
            for e in &embeddings {
                sig_data.extend_from_slice(e.fine_topleft.as_ref().expect("signatures requested"));
            }
            build_ann_index(cfg, fine_dim, &sig_data)
        });

        // Region index: every formula cell.
        let mut regions = Vec::new();
        let mut region_vecs = Vec::new();
        let mut coarse_region_vecs = opts.coarse_regions.then(Vec::new);
        let mut regions_by_sheet = vec![Vec::new(); keys.len()];
        for (si, key) in keys.iter().enumerate() {
            let sheet = &workbooks[key.workbook].sheets[key.sheet];
            let mut locs: Vec<(CellRef, String)> =
                sheet.formulas().map(|(at, f)| (at, f.to_string())).collect();
            locs.sort_by_key(|(at, _)| *at);
            for (cell, formula) in locs {
                let vec =
                    embedder.fine_window(&embeddings[si], sheet, WindowOrigin::Centered(cell));
                regions_by_sheet[si].push(regions.len());
                regions.push(RegionEntry { sheet_idx: si, cell, formula });
                region_vecs.push(vec);
                if let Some(cvecs) = coarse_region_vecs.as_mut() {
                    cvecs.push(coarse_window(embedder, sheet, cell));
                }
            }
        }

        ReferenceIndex {
            keys,
            embeddings,
            coarse,
            fine_sheets,
            regions,
            region_vecs,
            coarse_region_vecs,
            regions_by_sheet,
            build_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Incrementally index one more workbook (the production path when a
    /// user saves a new spreadsheet: no rebuild of the whole org index).
    ///
    /// The options in force are derived from the structures actually
    /// present on `self`, not taken from the caller: trusting a caller-
    /// supplied `IndexOptions` that disagreed with the build-time options
    /// used to silently desync the optional indexes — `fine_sheets`
    /// skipped the add (shifting every later id returned by
    /// [`ReferenceIndex::similar_sheets_fine`]) and `coarse_region_vecs`
    /// stopped growing while `regions` grew (out-of-bounds panic in
    /// [`ReferenceIndex::coarse_region_vec`] for new regions).
    pub fn add_workbook(
        &mut self,
        embedder: &SheetEmbedder<'_>,
        workbooks: &[Workbook],
        workbook: usize,
    ) {
        let fine_signatures = self.fine_sheets.is_some();
        for (si, sheet) in workbooks[workbook].sheets.iter().enumerate() {
            let sheet_idx = self.keys.len();
            self.keys.push(SheetKey { workbook, sheet: si });
            let emb = embedder.embed_sheet(sheet, fine_signatures);
            self.coarse.add(&emb.coarse);
            if let Some(idx) = self.fine_sheets.as_mut() {
                idx.add(emb.fine_topleft.as_ref().expect("signature computed"));
            }
            self.regions_by_sheet.push(Vec::new());
            let mut locs: Vec<(CellRef, String)> =
                sheet.formulas().map(|(at, f)| (at, f.to_string())).collect();
            locs.sort_by_key(|(at, _)| *at);
            for (cell, formula) in locs {
                let vec = embedder.fine_window(&emb, sheet, WindowOrigin::Centered(cell));
                self.regions_by_sheet[sheet_idx].push(self.regions.len());
                self.regions.push(RegionEntry { sheet_idx, cell, formula });
                self.region_vecs.push(vec);
                if let Some(cvecs) = self.coarse_region_vecs.as_mut() {
                    cvecs.push(coarse_window(embedder, sheet, cell));
                }
            }
            self.embeddings.push(emb);
        }
    }

    pub fn n_sheets(&self) -> usize {
        self.keys.len()
    }

    pub fn n_regions(&self) -> usize {
        self.regions.len()
    }

    /// S1: top-K similar sheets by coarse embedding.
    pub fn similar_sheets(&self, coarse_query: &[f32], k: usize) -> Vec<af_ann::Neighbor> {
        self.coarse.search(coarse_query, k)
    }

    /// S1 under the fine-only ablation: top-K by fine top-left signature.
    pub fn similar_sheets_fine(&self, sig: &[f32], k: usize) -> Option<Vec<af_ann::Neighbor>> {
        self.fine_sheets.as_ref().map(|idx| idx.search(sig, k))
    }

    pub fn regions_of_sheet(&self, sheet_idx: usize) -> &[usize] {
        &self.regions_by_sheet[sheet_idx]
    }

    pub fn region_vec(&self, region_id: usize) -> &[f32] {
        &self.region_vecs[region_id]
    }

    pub fn coarse_region_vec(&self, region_id: usize) -> Option<&[f32]> {
        self.coarse_region_vecs.as_ref().map(|v| v[region_id].as_slice())
    }
}

/// Coarse embedding of the window centered at a cell (uncached path; used
/// for the coarse-only ablation).
pub fn coarse_window(embedder: &SheetEmbedder<'_>, sheet: &Sheet, center: CellRef) -> Vec<f32> {
    let cfg = embedder.cfg();
    let raw = crate::features::raw_window(
        embedder.featurizer,
        sheet,
        cfg.window,
        WindowOrigin::Centered(center),
    );
    let n = cfg.n_cells();
    let fd = embedder.featurizer.dim();
    let reduced = embedder.model.reduce_cells(Tensor::new(vec![n, fd], raw));
    embedder.model.coarse_from_reduced(reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AutoFormulaConfig;
    use crate::model::RepresentationModel;
    use af_corpus::organization::{OrgSpec, Scale};
    use af_embed::{CellFeaturizer, FeatureMask, SbertSim};
    use std::sync::Arc;

    fn setup() -> (RepresentationModel, CellFeaturizer, af_corpus::OrgCorpus) {
        let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
        let cfg = AutoFormulaConfig::test_tiny();
        let model = RepresentationModel::new(featurizer.dim(), cfg);
        let corpus = OrgSpec::pge(Scale::Tiny).generate();
        (model, featurizer, corpus)
    }

    #[test]
    fn build_indexes_all_member_sheets_and_formulas() {
        let (model, feat, corpus) = setup();
        let embedder = SheetEmbedder::new(&model, &feat);
        let members: Vec<usize> = (0..6.min(corpus.workbooks.len())).collect();
        let idx =
            ReferenceIndex::build(&embedder, &corpus.workbooks, &members, IndexOptions::default());
        let expected_sheets: usize = members.iter().map(|&w| corpus.workbooks[w].n_sheets()).sum();
        assert_eq!(idx.n_sheets(), expected_sheets);
        let expected_regions: usize =
            members.iter().map(|&w| corpus.workbooks[w].formula_count()).sum();
        assert_eq!(idx.n_regions(), expected_regions);
        assert!(idx.build_seconds >= 0.0);
    }

    #[test]
    fn self_query_returns_self_sheet() {
        let (model, feat, corpus) = setup();
        let embedder = SheetEmbedder::new(&model, &feat);
        let members: Vec<usize> = (0..5).collect();
        let idx =
            ReferenceIndex::build(&embedder, &corpus.workbooks, &members, IndexOptions::default());
        let emb = embedder.embed_sheet(&corpus.workbooks[2].sheets[0], false);
        let hits = idx.similar_sheets(&emb.coarse, 1);
        let key = idx.keys[hits[0].id];
        // The same sheet was indexed; its distance must be ~0.
        assert_eq!(key.workbook, 2);
        assert!(hits[0].dist < 1e-6);
    }

    #[test]
    fn optional_structures_built_on_request() {
        let (model, feat, corpus) = setup();
        let embedder = SheetEmbedder::new(&model, &feat);
        let members: Vec<usize> = (0..3).collect();
        let idx = ReferenceIndex::build(
            &embedder,
            &corpus.workbooks,
            &members,
            IndexOptions { fine_sheet_signatures: true, coarse_regions: true },
        );
        let emb = embedder.embed_sheet(&corpus.workbooks[0].sheets[0], true);
        assert!(idx.similar_sheets_fine(emb.fine_topleft.as_ref().unwrap(), 2).is_some());
        assert!(idx.coarse_region_vec(0).is_some());
        let plain =
            ReferenceIndex::build(&embedder, &corpus.workbooks, &members, IndexOptions::default());
        assert!(plain.coarse_region_vec(0).is_none());
    }

    /// The three backends the parity tests sweep. IVF probes every list so
    /// rankings are exhaustive and independent of where the quantizer was
    /// trained (incremental and full builds see different corpora).
    fn backends() -> [AnnBackend; 3] {
        [
            AnnBackend::Flat,
            AnnBackend::Hnsw(af_ann::HnswParams::default()),
            AnnBackend::Ivf(af_ann::IvfParams {
                n_lists: 4,
                n_probe: usize::MAX,
                ..Default::default()
            }),
        ]
    }

    fn setup_with_backend(
        backend: AnnBackend,
    ) -> (RepresentationModel, CellFeaturizer, af_corpus::OrgCorpus) {
        let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
        let cfg = AutoFormulaConfig { ann_backend: backend, ..AutoFormulaConfig::test_tiny() };
        let model = RepresentationModel::new(featurizer.dim(), cfg);
        let corpus = OrgSpec::pge(Scale::Tiny).generate();
        (model, featurizer, corpus)
    }

    #[test]
    fn incremental_add_matches_full_build() {
        // Runs over all three backends and both option sets: incremental
        // growth must serve exactly like a from-scratch rebuild.
        for backend in backends() {
            for opts in [
                IndexOptions::default(),
                IndexOptions { fine_sheet_signatures: true, coarse_regions: true },
            ] {
                let (model, feat, corpus) = setup_with_backend(backend);
                let embedder = SheetEmbedder::new(&model, &feat);
                let members: Vec<usize> = (0..5).collect();
                let full = ReferenceIndex::build(&embedder, &corpus.workbooks, &members, opts);
                let mut incremental =
                    ReferenceIndex::build(&embedder, &corpus.workbooks, &members[..3], opts);
                incremental.add_workbook(&embedder, &corpus.workbooks, 3);
                incremental.add_workbook(&embedder, &corpus.workbooks, 4);
                let tag = format!("{backend:?} fine={}", opts.fine_sheet_signatures);
                assert_eq!(incremental.n_sheets(), full.n_sheets(), "{tag}");
                assert_eq!(incremental.n_regions(), full.n_regions(), "{tag}");
                // Coarse queries agree.
                let emb = embedder
                    .embed_sheet(&corpus.workbooks[4].sheets[0], opts.fine_sheet_signatures);
                let a: Vec<usize> =
                    full.similar_sheets(&emb.coarse, 3).iter().map(|n| n.id).collect();
                let b: Vec<usize> =
                    incremental.similar_sheets(&emb.coarse, 3).iter().map(|n| n.id).collect();
                assert_eq!(a, b, "{tag}");
                // Fine-signature queries agree too (when built).
                if opts.fine_sheet_signatures {
                    let sig = emb.fine_topleft.as_ref().unwrap();
                    let a: Vec<usize> = full
                        .similar_sheets_fine(sig, 3)
                        .expect("built with signatures")
                        .iter()
                        .map(|n| n.id)
                        .collect();
                    let b: Vec<usize> = incremental
                        .similar_sheets_fine(sig, 3)
                        .expect("grown with signatures")
                        .iter()
                        .map(|n| n.id)
                        .collect();
                    assert_eq!(a, b, "{tag}");
                }
                // Per-region lookups stay in bounds and consistent.
                for rid in 0..incremental.n_regions() {
                    assert_eq!(
                        incremental.region_vec(rid),
                        full.region_vec(rid),
                        "{tag} region {rid}"
                    );
                    assert_eq!(
                        incremental.coarse_region_vec(rid).is_some(),
                        opts.coarse_regions,
                        "{tag} region {rid}"
                    );
                }
            }
        }
    }

    #[test]
    fn add_workbook_keeps_optional_indexes_in_sync() {
        // Regression: `add_workbook` used to trust a caller-supplied
        // `IndexOptions`. A caller passing the (former) default options to
        // an index *built* with signatures+coarse-regions silently skipped
        // the fine-sheet add — every id returned by `similar_sheets_fine`
        // for later sheets was off by the number of skipped adds — and the
        // analogous desync made `coarse_region_vec` panic out of bounds.
        // Options are now derived from `self`, so the incremental path
        // cannot diverge from the build-time structures.
        let (model, feat, corpus) = setup();
        let embedder = SheetEmbedder::new(&model, &feat);
        let members: Vec<usize> = (0..3).collect();
        let opts = IndexOptions { fine_sheet_signatures: true, coarse_regions: true };
        let mut idx = ReferenceIndex::build(&embedder, &corpus.workbooks, &members, opts);
        idx.add_workbook(&embedder, &corpus.workbooks, 3);

        // Self-query through the fine-signature index must return the new
        // sheet's id (pre-fix: the signature was never indexed, so the id
        // either pointed at an old sheet or was absent entirely).
        let new_sheet_idx = idx.keys.iter().position(|k| k.workbook == 3).unwrap();
        let emb = embedder.embed_sheet(&corpus.workbooks[3].sheets[0], true);
        let hits = idx.similar_sheets_fine(emb.fine_topleft.as_ref().unwrap(), 1).unwrap();
        assert_eq!(hits[0].id, new_sheet_idx);
        assert!(hits[0].dist < 1e-6);

        // Every region added incrementally must have a coarse region vector
        // (pre-fix shape: `regions` grew while `coarse_region_vecs` could
        // not, panicking here).
        for &rid in idx.regions_of_sheet(new_sheet_idx) {
            assert!(idx.coarse_region_vec(rid).is_some());
        }
    }

    #[test]
    fn regions_grouped_by_sheet() {
        let (model, feat, corpus) = setup();
        let embedder = SheetEmbedder::new(&model, &feat);
        let members: Vec<usize> = (0..4).collect();
        let idx =
            ReferenceIndex::build(&embedder, &corpus.workbooks, &members, IndexOptions::default());
        for si in 0..idx.n_sheets() {
            for &rid in idx.regions_of_sheet(si) {
                assert_eq!(idx.regions[rid].sheet_idx, si);
            }
        }
    }
}
