//! Syntactic content features (§4.4.1): data-type one-hot plus a hashed
//! value-shape pattern.

use crate::hashing::{add_hashed, fnv1a};
use af_grid::pattern::syntactic_pattern;
use af_grid::value::ValueType;
use af_grid::CellValue;

/// Syntactic feature width: 6 type bits + 8 pattern-hash buckets + 2 scalar
/// shape features (log-length, digit fraction).
pub const SYNTACTIC_DIM: usize = ValueType::COUNT + 8 + 2;

/// Write the syntactic features of `value` into `out[..SYNTACTIC_DIM]`.
pub fn syntactic_features(value: &CellValue, out: &mut [f32]) {
    debug_assert!(out.len() >= SYNTACTIC_DIM);
    out[..SYNTACTIC_DIM].iter_mut().for_each(|v| *v = 0.0);
    out[value.type_tag().index()] = 1.0;
    let display = value.display();
    if display.is_empty() {
        return;
    }
    let pattern = syntactic_pattern(&display);
    let pat_slice = &mut out[ValueType::COUNT..ValueType::COUNT + 8];
    add_hashed(pat_slice, fnv1a(pattern.as_bytes()), 1.0);
    let len = display.chars().count() as f32;
    let digits = display.chars().filter(char::is_ascii_digit).count() as f32;
    out[ValueType::COUNT + 8] = (1.0 + len).ln() / 4.0;
    out[ValueType::COUNT + 9] = digits / len;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_one_hot_set() {
        let mut out = vec![0.0; SYNTACTIC_DIM];
        syntactic_features(&CellValue::Number(5.0), &mut out);
        assert_eq!(out[ValueType::Number.index()], 1.0);
        assert_eq!(out[ValueType::Text.index()], 0.0);
    }

    #[test]
    fn same_shape_same_pattern_bucket() {
        let mut a = vec![0.0; SYNTACTIC_DIM];
        let mut b = vec![0.0; SYNTACTIC_DIM];
        syntactic_features(&CellValue::text("2020-01-01"), &mut a);
        syntactic_features(&CellValue::text("1999-12-31"), &mut b);
        assert_eq!(&a[6..14], &b[6..14], "date-shaped strings share the pattern bucket");
    }

    #[test]
    fn different_shapes_differ() {
        let mut a = vec![0.0; SYNTACTIC_DIM];
        let mut b = vec![0.0; SYNTACTIC_DIM];
        syntactic_features(&CellValue::text("abc"), &mut a);
        syntactic_features(&CellValue::text("12345678"), &mut b);
        assert_ne!(a, b);
        // Digit fraction feature.
        assert_eq!(a[SYNTACTIC_DIM - 1], 0.0);
        assert_eq!(b[SYNTACTIC_DIM - 1], 1.0);
    }

    #[test]
    fn empty_value_features() {
        let mut out = vec![1.0; SYNTACTIC_DIM];
        syntactic_features(&CellValue::Empty, &mut out);
        assert_eq!(out[ValueType::Empty.index()], 1.0);
        assert!(out[1..].iter().all(|&v| v == 0.0));
    }
}
