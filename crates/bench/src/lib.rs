//! `af-bench` — the evaluation harness that regenerates every table and
//! figure of the paper's §5 (see DESIGN.md's per-experiment index).
//!
//! Each experiment is a library function in [`experiments`]; the `bin/`
//! targets are thin wrappers so `cargo run -p af-bench --bin table2`
//! regenerates Table 2 and `--bin run_all` regenerates everything.
//! `AF_SCALE={tiny,small,full}` scales corpus sizes.

pub mod ann_bench;
pub mod experiments;
pub mod metrics;
#[cfg(feature = "obs")]
pub mod obs_bench;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod serve_bench;
pub mod store_bench;
pub mod throughput;

pub use metrics::{pr_curve, quality, PrPoint, Quality};
pub use runner::{evaluate_autoformula, evaluate_baseline, CaseResult};
pub use scenario::{EmbedderKind, Scenario, SystemSpec};
