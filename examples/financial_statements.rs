//! Domain scenario: income statements for different fiscal periods (the
//! paper's other motivating workload — "financial statements for different
//! time periods"). Demonstrates the three online stages S1/S2/S3 with
//! diagnostics, and the confidence threshold θ in action.
//!
//! Run with: `cargo run --release --example financial_statements`

use auto_formula::core::features::WindowOrigin;
use auto_formula::core::index::IndexOptions;
use auto_formula::core::pipeline::{AutoFormula, PipelineVariant};
use auto_formula::core::{AutoFormulaConfig, TrainingOptions};
use auto_formula::corpus::organization::{OrgSpec, Scale};
use auto_formula::corpus::split::{split, SplitKind};
use auto_formula::corpus::testcase::{masked_sheet, sample_test_cases};
use auto_formula::embed::{CellFeaturizer, FeatureMask, SbertSim};
use std::sync::Arc;

fn main() {
    // The TI-sim org carries FinancialStatement families among others.
    let universe = OrgSpec::web_crawl(Scale::Tiny).generate();
    let org = OrgSpec::ti(Scale::Tiny).generate();

    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(64)), FeatureMask::FULL);
    let cfg = AutoFormulaConfig { episodes: 60, ..AutoFormulaConfig::default() };
    let (af, _) =
        AutoFormula::train(&universe.workbooks, featurizer, cfg, TrainingOptions::default());

    let sp = split(&org, SplitKind::Timestamp, 0.1, 3);
    let index = af.build_index(&org.workbooks, &sp.reference, IndexOptions::default());
    let cases = sample_test_cases(&org, &sp, 4, 9);
    let embedder = af.embedder();

    println!("=== S1/S2/S3 walkthrough on {} test cases ===", cases.len().min(5));
    for tc in cases.iter().take(5) {
        let sheet = &org.workbooks[tc.workbook].sheets[tc.sheet];
        let masked = masked_sheet(sheet, tc.target);
        println!("\ntarget: workbook {} sheet {:?} cell {}", tc.workbook, sheet.name(), tc.target);

        // S1 diagnostics: which sheets look similar?
        let emb = embedder.embed_sheet(&masked, false);
        let hits = index.similar_sheets(&emb.coarse, 3);
        for (rank, h) in hits.iter().enumerate() {
            let key = index.keys[h.id];
            println!(
                "  S1 #{rank}: sheet {:?} of workbook {} (coarse d={:.3})",
                org.workbooks[key.workbook].sheets[key.sheet].name(),
                key.workbook,
                h.dist
            );
        }
        // S2 diagnostics: target region embedding exists for any cell.
        let _region = embedder.fine_window(&emb, &masked, WindowOrigin::Centered(tc.target));

        // Full prediction with threshold (production behavior).
        match af.predict(&index, &masked, tc.target) {
            Some(p) => {
                let gt = auto_formula::formula::parse_formula(&tc.ground_truth)
                    .map(|e| e.to_string())
                    .unwrap_or_default();
                println!(
                    "  S2 picked {} at {} (d={:.3}); S3 adapted to: ={}",
                    p.template_signature, p.reference_cell, p.s2_distance, p.formula
                );
                println!(
                    "  ground truth: ={gt}  → {}",
                    if p.formula == gt { "MATCH" } else { "differ" }
                );
            }
            None => {
                // Either no candidate or suppressed by θ — show the
                // unthresholded answer for contrast.
                match af.predict_with(&index, &masked, tc.target, PipelineVariant::Full) {
                    Some(p) => println!(
                        "  suppressed by θ={} (best candidate d={:.3}: ={})",
                        af.cfg().theta_region,
                        p.s2_distance,
                        p.formula
                    ),
                    None => println!("  no candidate regions at all"),
                }
            }
        }
    }
}
