//! Organization presets and corpus generation.
//!
//! Four test organizations mirror the paper's holdout corpora (§5.1). The
//! lever that drives cross-corpus recall differences (§5.2) is the
//! *singleton rate*: "for certain test corpus (e.g., Cisco), many of the
//! underlying spreadsheets are singletons, with a unique design pattern and
//! no similar-sheets … which limits the best possible recall of any
//! similar-sheet-based method". Each preset calibrates that rate.

use crate::archetype::Archetype;
use crate::family::{Family, NameStyle};
use af_grid::Workbook;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Corpus scale knob, read from `AF_SCALE` (`tiny` / `small` / `full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Tiny,
    Small,
    Full,
}

impl Scale {
    pub fn from_env() -> Scale {
        match std::env::var("AF_SCALE").unwrap_or_default().to_ascii_lowercase().as_str() {
            "tiny" => Scale::Tiny,
            "full" => Scale::Full,
            _ => Scale::Small,
        }
    }

    /// Multiplier applied to family/singleton counts.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.35,
            Scale::Small => 1.0,
            Scale::Full => 3.0,
        }
    }
}

/// Ground truth the paper's authors never had: which family produced each
/// workbook (`None` family id means singleton).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    pub family: Option<usize>,
    pub archetype: Archetype,
}

/// Specification of a synthetic organization.
#[derive(Debug, Clone)]
pub struct OrgSpec {
    pub name: &'static str,
    pub n_families: usize,
    pub instances_min: usize,
    pub instances_max: usize,
    pub n_singletons: usize,
    /// Fraction of families whose sheets use generic names ("Sheet1") —
    /// invisible to weak supervision, visible to learned models.
    pub generic_name_rate: f64,
    /// Probability that a singleton uses a string-heavy archetype (drives
    /// the "string" recall dip of Fig. 11).
    pub string_singleton_bias: f64,
    pub seed: u64,
}

impl OrgSpec {
    /// Cisco-sim: mostly singletons → low best-possible recall (paper R≈0.36).
    pub fn cisco(scale: Scale) -> OrgSpec {
        OrgSpec {
            name: "Cisco",
            n_families: sc(10, scale),
            instances_min: 2,
            instances_max: 4,
            n_singletons: sc(48, scale),
            generic_name_rate: 0.5,
            string_singleton_bias: 0.5,
            seed: 0xC15C0,
        }
    }

    /// PGE-sim: few singletons, deep families → high recall (paper R≈0.94).
    pub fn pge(scale: Scale) -> OrgSpec {
        OrgSpec {
            name: "PGE",
            n_families: sc(12, scale),
            instances_min: 6,
            instances_max: 12,
            n_singletons: sc(4, scale),
            generic_name_rate: 0.25,
            string_singleton_bias: 0.3,
            seed: 0x9_6E,
        }
    }

    /// TI-sim: middle ground (paper R≈0.54).
    pub fn ti(scale: Scale) -> OrgSpec {
        OrgSpec {
            name: "TI",
            n_families: sc(12, scale),
            instances_min: 3,
            instances_max: 7,
            n_singletons: sc(26, scale),
            generic_name_rate: 0.35,
            string_singleton_bias: 0.4,
            seed: 0x71,
        }
    }

    /// Enron-sim: largest and most heterogeneous (paper R≈0.34).
    pub fn enron(scale: Scale) -> OrgSpec {
        OrgSpec {
            name: "Enron",
            n_families: sc(16, scale),
            instances_min: 2,
            instances_max: 6,
            n_singletons: sc(55, scale),
            generic_name_rate: 0.55,
            string_singleton_bias: 0.45,
            seed: 0xE9905,
        }
    }

    /// All four test presets, in the paper's column order.
    pub fn test_orgs(scale: Scale) -> Vec<OrgSpec> {
        vec![Self::pge(scale), Self::cisco(scale), Self::ti(scale), Self::enron(scale)]
    }

    /// The web-crawl training corpus stand-in (the paper's `U`, 160K
    /// sheets; here scaled down but structurally identical: many unrelated
    /// organizations' worth of families).
    pub fn web_crawl(scale: Scale) -> OrgSpec {
        OrgSpec {
            name: "WebCrawl",
            n_families: sc(36, scale),
            instances_min: 3,
            instances_max: 6,
            n_singletons: sc(30, scale),
            generic_name_rate: 0.35,
            string_singleton_bias: 0.4,
            seed: 0x3EB,
        }
    }

    /// Generate the corpus.
    pub fn generate(&self) -> OrgCorpus {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut workbooks = Vec::new();
        let mut provenance = Vec::new();
        let mut families = Vec::new();

        // Families: spread archetypes round-robin with per-org offsets, so
        // each org has its own mix; string-heavy archetypes are allowed but
        // not over-represented.
        let non_string: Vec<Archetype> =
            Archetype::ALL.iter().copied().filter(|a| !a.is_string_heavy()).collect();
        for f in 0..self.n_families {
            let archetype = if rng.random_bool(0.18) {
                let pool = [Archetype::NetworkInventory, Archetype::ProjectTracker];
                pool[rng.random_range(0..pool.len())]
            } else {
                non_string[(f + self.seed as usize) % non_string.len()]
            };
            let name_style = if rng.random_bool(self.generic_name_rate) {
                NameStyle::Generic
            } else {
                NameStyle::Distinct
            };
            let fam = Family::new(f, archetype, name_style, self.seed ^ ((f as u64 + 1) << 17));
            let n_inst = rng.random_range(self.instances_min..=self.instances_max);
            // Timestamps: instances spread over the org's history so the
            // newest instance of a family lands in the timestamp-split test
            // set while older siblings remain as references.
            let t0: i64 = rng.random_range(0..2_000_000);
            let step: i64 = rng.random_range(50_000..400_000);
            for i in 0..n_inst {
                let jitter: i64 = rng.random_range(0..25_000);
                let wb = fam.instantiate(i, t0 + step * i as i64 + jitter);
                workbooks.push(wb);
                provenance.push(Provenance { family: Some(f), archetype });
            }
            families.push(fam);
        }

        // Singletons: one-off designs with no similar-sheet counterpart.
        for sgl in 0..self.n_singletons {
            let archetype = if rng.random_bool(self.string_singleton_bias) {
                let pool = [Archetype::NetworkInventory, Archetype::ProjectTracker];
                pool[rng.random_range(0..pool.len())]
            } else {
                Archetype::ALL[rng.random_range(0..Archetype::ALL.len())]
            };
            let name_style =
                if rng.random_bool(0.5) { NameStyle::Generic } else { NameStyle::Distinct };
            let fam = Family::new(
                self.n_families + sgl,
                archetype,
                name_style,
                self.seed ^ 0xDEAD ^ ((sgl as u64 + 1) << 23),
            );
            let ts: i64 = rng.random_range(0..4_000_000);
            workbooks.push(fam.instantiate(0, ts));
            provenance.push(Provenance { family: None, archetype });
        }

        OrgCorpus { name: self.name.to_string(), workbooks, provenance }
    }
}

fn sc(base: usize, scale: Scale) -> usize {
    ((base as f64 * scale.factor()).round() as usize).max(1)
}

/// A generated corpus with ground-truth provenance.
#[derive(Debug, Clone)]
pub struct OrgCorpus {
    pub name: String,
    pub workbooks: Vec<Workbook>,
    pub provenance: Vec<Provenance>,
}

/// Corpus statistics for Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusStats {
    pub workbooks: usize,
    pub sheets: usize,
    pub formulas: usize,
}

impl OrgCorpus {
    pub fn stats(&self) -> CorpusStats {
        CorpusStats {
            workbooks: self.workbooks.len(),
            sheets: self.workbooks.iter().map(|w| w.n_sheets()).sum(),
            formulas: self.workbooks.iter().map(|w| w.formula_count()).sum(),
        }
    }

    /// Do two workbooks come from the same family (ground truth)?
    pub fn same_family(&self, a: usize, b: usize) -> bool {
        match (self.provenance[a].family, self.provenance[b].family) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Fraction of workbooks that have at least one same-family
    /// counterpart — the paper's "40–90% of spreadsheets have similar-sheet
    /// counterparts" measurement, and the recall ceiling of any
    /// similar-sheet method.
    pub fn similar_sheet_rate(&self) -> f64 {
        let mut counts = std::collections::HashMap::new();
        for p in &self.provenance {
            if let Some(f) = p.family {
                *counts.entry(f).or_insert(0usize) += 1;
            }
        }
        let with = self
            .provenance
            .iter()
            .filter(|p| p.family.map(|f| counts[&f] > 1).unwrap_or(false))
            .count();
        with as f64 / self.provenance.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = OrgSpec::pge(Scale::Tiny).generate();
        let b = OrgSpec::pge(Scale::Tiny).generate();
        assert_eq!(a.workbooks.len(), b.workbooks.len());
        assert_eq!(a.stats().formulas, b.stats().formulas);
    }

    #[test]
    fn singleton_rates_ordered_like_paper() {
        let pge = OrgSpec::pge(Scale::Tiny).generate();
        let cisco = OrgSpec::cisco(Scale::Tiny).generate();
        let rate_pge = pge.similar_sheet_rate();
        let rate_cisco = cisco.similar_sheet_rate();
        assert!(rate_pge > 0.85, "PGE-sim should be dominated by similar-sheets ({rate_pge})");
        assert!(rate_cisco < 0.6, "Cisco-sim should be singleton-heavy ({rate_cisco})");
        // Paper §3.1: 40–90% of sheets have similar counterparts.
        for c in [&pge, &cisco] {
            let r = c.similar_sheet_rate();
            assert!((0.2..=1.0).contains(&r), "{}: {r}", c.name);
        }
    }

    #[test]
    fn corpora_carry_formulas_and_sheets() {
        for spec in OrgSpec::test_orgs(Scale::Tiny) {
            let c = spec.generate();
            let st = c.stats();
            assert!(st.workbooks > 10, "{}: {st:?}", c.name);
            assert!(st.sheets >= st.workbooks);
            assert!(st.formulas > 100, "{}: {st:?}", c.name);
            assert_eq!(c.provenance.len(), c.workbooks.len());
        }
    }

    #[test]
    fn family_instances_share_sheet_name_sequences() {
        let c = OrgSpec::pge(Scale::Tiny).generate();
        // Find two workbooks of the same family and compare names.
        'outer: for i in 0..c.workbooks.len() {
            for j in i + 1..c.workbooks.len() {
                if c.same_family(i, j) {
                    assert_eq!(c.workbooks[i].sheet_names(), c.workbooks[j].sheet_names());
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn timestamps_spread_within_families() {
        let c = OrgSpec::ti(Scale::Tiny).generate();
        let mut any_ordered = false;
        for i in 0..c.workbooks.len() {
            for j in i + 1..c.workbooks.len() {
                if c.same_family(i, j) && c.workbooks[i].timestamp != c.workbooks[j].timestamp {
                    any_ordered = true;
                }
            }
        }
        assert!(any_ordered);
    }
}
