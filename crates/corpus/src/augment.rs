//! Training-data augmentation (§4.3): "for a pair of similar sheets or
//! regions … randomly remove some fraction of rows and columns from one
//! sheet/region in the pair, and continue to use the resulting pair as
//! positive examples".

use af_grid::{CellRef, Sheet};
use rand::rngs::StdRng;
use rand::RngExt;

/// Sheet-level augmentation for the coarse model: remove each row/column
/// independently with probability `p` (the paper randomizes `p ∈ [0, 10%]`
/// per sheet). Removal positions are arbitrary.
pub fn augment_sheet(sheet: &Sheet, p: f64, rng: &mut StdRng) -> Sheet {
    let mut out = sheet.clone();
    let (rows, cols) = out.dims();
    // Collect first, then delete from the bottom/right so indices stay
    // valid during the pass.
    let kill_rows: Vec<u32> = (0..rows).filter(|_| rng.random_bool(p)).collect();
    for &r in kill_rows.iter().rev() {
        out.remove_row(r);
    }
    let kill_cols: Vec<u32> = (0..cols).filter(|_| rng.random_bool(p)).collect();
    for &c in kill_cols.iter().rev() {
        out.remove_col(c);
    }
    out
}

/// Region-level augmentation for the fine model: remove only rows just
/// above the region center (bottom-most *data* rows when the formula sits
/// under its table, keeping headers intact) and columns to the right of the
/// center. Returns the augmented sheet plus the corrected center location.
pub fn augment_region(
    sheet: &Sheet,
    center: CellRef,
    p: f64,
    reach: u32,
    rng: &mut StdRng,
) -> (Sheet, CellRef) {
    let mut out = sheet.clone();
    let mut new_center = center;
    // Rows in (center-reach, center): removing them shifts the center up.
    let lo = center.row.saturating_sub(reach);
    let kill_rows: Vec<u32> = (lo..center.row).filter(|_| rng.random_bool(p)).collect();
    for &r in kill_rows.iter().rev() {
        out.remove_row(r);
        new_center.row -= 1;
    }
    // Columns strictly right of the center: no shift of the center.
    let (_, cols) = out.dims();
    let kill_cols: Vec<u32> =
        (center.col + 1..cols.min(center.col + 1 + reach)).filter(|_| rng.random_bool(p)).collect();
    for &c in kill_cols.iter().rev() {
        out.remove_col(c);
    }
    (out, new_center)
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_grid::Cell;
    use rand::SeedableRng;

    fn grid(rows: u32, cols: u32) -> Sheet {
        let mut s = Sheet::new("g");
        for r in 0..rows {
            for c in 0..cols {
                s.set(CellRef::new(r, c), Cell::new(format!("r{r}c{c}")));
            }
        }
        s
    }

    #[test]
    fn zero_probability_is_identity() {
        let s = grid(10, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let out = augment_sheet(&s, 0.0, &mut rng);
        assert_eq!(out.len(), s.len());
        let (s2, c2) = augment_region(&s, CellRef::new(8, 2), 0.0, 6, &mut rng);
        assert_eq!(s2.len(), s.len());
        assert_eq!(c2, CellRef::new(8, 2));
    }

    #[test]
    fn sheet_augmentation_removes_some_rows() {
        let s = grid(30, 6);
        let mut rng = StdRng::seed_from_u64(2);
        let out = augment_sheet(&s, 0.2, &mut rng);
        assert!(out.len() < s.len());
        let (rows, cols) = out.dims();
        assert!(rows <= 30 && cols <= 6);
    }

    #[test]
    fn region_augmentation_tracks_center_content() {
        let s = grid(20, 4);
        let center = CellRef::new(15, 1);
        let original = s.value(center);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let (out, nc) = augment_region(&s, center, 0.3, 8, &mut rng);
            assert_eq!(out.value(nc), original, "center must track its cell");
            assert!(nc.row <= center.row);
            assert_eq!(nc.col, center.col, "column of center never shifts");
        }
    }

    #[test]
    fn region_augmentation_preserves_top_structure() {
        let s = grid(20, 4);
        let center = CellRef::new(15, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let (out, _) = augment_region(&s, center, 0.5, 5, &mut rng);
        // Rows above center-reach (headers) are untouched.
        for r in 0..10 {
            for c in 0..2 {
                assert_eq!(out.value(CellRef::new(r, c)), s.value(CellRef::new(r, c)));
            }
        }
    }

    #[test]
    fn augmentation_is_deterministic_per_seed() {
        let s = grid(25, 5);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let outa = augment_sheet(&s, 0.1, &mut a);
        let outb = augment_sheet(&s, 0.1, &mut b);
        assert_eq!(outa.len(), outb.len());
        assert_eq!(outa.dims(), outb.dims());
    }
}
