//! Binary (de)serialization of the index backends.
//!
//! Every [`VectorIndex`] implementation can encode its complete state —
//! vectors, graph adjacency (HNSW), inverted lists and centroids (IVF) —
//! into a tagged, length-prefixed byte stream, and [`load_index`] rebuilds
//! the matching concrete type behind a fresh `Box<dyn VectorIndex>`. This
//! is what lets a built reference index be shipped to a serving process
//! instead of being re-embedded and re-built from the raw corpus.
//!
//! Decoding is hardened: every length is validated against the remaining
//! buffer and every stored id is bounds-checked, so truncated or bit-
//! flipped input yields a [`CodecError`], never a panic. (The HNSW RNG is
//! not stored; it is replayed from the seed so post-load `add`s behave
//! exactly like adds to the never-serialized index.)

use crate::VectorIndex;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Backend tags (one byte on the wire). The `*2` tags carry their vector
/// payloads as `af_store` blocks (any codec, aligned, zero-copy-adoptable);
/// the original tags are the legacy raw-f32 layout, still decoded so v1
/// artifacts keep loading.
pub(crate) const TAG_FLAT: u8 = 1;
pub(crate) const TAG_HNSW: u8 = 2;
pub(crate) const TAG_IVF: u8 = 3;
pub(crate) const TAG_FLAT2: u8 = 4;
pub(crate) const TAG_HNSW2: u8 = 5;
pub(crate) const TAG_IVF2: u8 = 6;

/// Decoding failure. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the structure did.
    Truncated,
    /// Unknown backend tag byte.
    BadTag(u8),
    /// A structural invariant does not hold (out-of-range id, mismatched
    /// lengths, zero dimension, …).
    Invalid(&'static str),
    /// A vector-store payload failed to decode (bad codec tag, truncated
    /// quantized block, non-finite scale/offset, …).
    Store(af_store::StoreError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("index data truncated"),
            CodecError::BadTag(t) => write!(f, "unknown index backend tag {t}"),
            CodecError::Invalid(what) => write!(f, "invalid index data: {what}"),
            CodecError::Store(_) => f.write_str("index vector store failed to decode"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<af_store::StoreError> for CodecError {
    fn from(e: af_store::StoreError) -> Self {
        CodecError::Store(e)
    }
}

// ----------------------------------------------------- encoding helpers

/// Length-prefixed `f32` block. The payload is **little-endian** raw bytes
/// (unlike the big-endian scalar fields): embedding blocks dominate an
/// artifact by orders of magnitude, and LE decodes on the serving fleet's
/// little-endian hardware as a straight vectorized copy instead of a
/// per-element byte swap — this is what makes cold-start load fast.
pub(crate) fn put_f32s(buf: &mut BytesMut, values: &[f32]) {
    buf.put_u64(values.len() as u64);
    let mut raw = vec![0u8; values.len() * 4];
    for (chunk, v) in raw.chunks_exact_mut(4).zip(values) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
    buf.put_slice(&raw);
}

pub(crate) fn put_u64s(buf: &mut BytesMut, values: impl ExactSizeIterator<Item = u64>) {
    buf.put_u64(values.len() as u64);
    for v in values {
        buf.put_u64(v);
    }
}

// ----------------------------------------------------- decoding helpers

pub(crate) fn get_u8(data: &mut Bytes) -> Result<u8, CodecError> {
    data.try_get_u8().ok_or(CodecError::Truncated)
}

pub(crate) fn get_u32(data: &mut Bytes) -> Result<u32, CodecError> {
    data.try_get_u32().ok_or(CodecError::Truncated)
}

pub(crate) fn get_u64(data: &mut Bytes) -> Result<u64, CodecError> {
    data.try_get_u64().ok_or(CodecError::Truncated)
}

/// Read a `u64` count that prefixes `elem_bytes`-sized elements, rejecting
/// counts the remaining buffer cannot possibly hold (so corrupt lengths
/// can never drive huge allocations or wrapped multiplications).
pub(crate) fn get_count(data: &mut Bytes, elem_bytes: usize) -> Result<usize, CodecError> {
    let n = get_u64(data)? as usize;
    let need = n.checked_mul(elem_bytes).ok_or(CodecError::Truncated)?;
    if data.remaining() < need {
        return Err(CodecError::Truncated);
    }
    Ok(n)
}

/// Read a length-prefixed `f32` vector (little-endian payload; see
/// [`put_f32s`]).
pub(crate) fn get_f32s(data: &mut Bytes) -> Result<Vec<f32>, CodecError> {
    let n = get_count(data, 4)?;
    let raw = data.split_to(n * 4);
    let mut out = vec![0f32; n];
    for (o, chunk) in out.iter_mut().zip(raw.chunks_exact(4)) {
        *o = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    Ok(out)
}

/// Read a length-prefixed `f32` vector whose length must be exactly `n`.
pub(crate) fn get_f32s_exact(data: &mut Bytes, n: usize) -> Result<Vec<f32>, CodecError> {
    let v = get_f32s(data)?;
    if v.len() != n {
        return Err(CodecError::Invalid("f32 block has the wrong length"));
    }
    Ok(v)
}

/// Read a length-prefixed `u64` vector as `usize`s.
pub(crate) fn get_u64s(data: &mut Bytes) -> Result<Vec<usize>, CodecError> {
    let n = get_count(data, 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(data.get_u64() as usize);
    }
    Ok(out)
}

// ------------------------------------------------------------ public API

/// Append `idx` (tag + full state) to `buf`.
pub fn append_index(buf: &mut BytesMut, idx: &dyn VectorIndex) {
    idx.encode(buf);
}

/// Serialize an index into a standalone buffer.
pub fn save_index(idx: &dyn VectorIndex) -> Bytes {
    let mut buf = BytesMut::new();
    append_index(&mut buf, idx);
    buf.freeze()
}

/// Decode one index from the front of `data` (the cursor advances past
/// it), rebuilding the concrete backend named by the tag byte. Both wire
/// generations decode: the legacy raw-f32 tags and the store-backed tags
/// that [`VectorIndex::encode_with`] writes.
pub fn load_index(data: &mut Bytes) -> Result<Box<dyn VectorIndex>, CodecError> {
    match get_u8(data)? {
        TAG_FLAT => Ok(Box::new(crate::flat::FlatIndex::decode_state_v1(data)?)),
        TAG_HNSW => Ok(Box::new(crate::hnsw::HnswIndex::decode_state_v1(data)?)),
        TAG_IVF => Ok(Box::new(crate::ivf::IvfFlatIndex::decode_state(data, false)?)),
        TAG_FLAT2 => Ok(Box::new(crate::flat::FlatIndex::decode_state(data)?)),
        TAG_HNSW2 => Ok(Box::new(crate::hnsw::HnswIndex::decode_state(data)?)),
        TAG_IVF2 => Ok(Box::new(crate::ivf::IvfFlatIndex::decode_state(data, true)?)),
        other => Err(CodecError::BadTag(other)),
    }
}

/// Serialize an index into a standalone buffer with its vector payload
/// re-encoded into `codec`.
pub fn save_index_with(idx: &dyn VectorIndex, codec: af_store::Codec) -> Bytes {
    let mut buf = BytesMut::new();
    idx.encode_with(&mut buf, codec);
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::lcg_vectors;
    use crate::{FlatIndex, HnswIndex, HnswParams, IvfFlatIndex, IvfParams};

    fn backends(data: &[f32], dim: usize) -> Vec<Box<dyn VectorIndex>> {
        vec![
            Box::new(FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()))),
            Box::new(HnswIndex::build(data, dim, HnswParams::default())),
            Box::new(IvfFlatIndex::build(
                data,
                dim,
                IvfParams { n_lists: 6, ..Default::default() },
            )),
        ]
    }

    #[test]
    fn round_trip_preserves_search_results() {
        let dim = 12;
        let data = lcg_vectors(250, dim, 9);
        let queries = lcg_vectors(20, dim, 10);
        for idx in backends(&data, dim) {
            let mut bytes = save_index(idx.as_ref());
            let loaded = load_index(&mut bytes).expect("round trip");
            assert_eq!(bytes.remaining(), 0, "decode must consume exactly what encode wrote");
            assert_eq!(loaded.len(), idx.len());
            assert_eq!(loaded.dim(), idx.dim());
            for q in queries.chunks(dim) {
                assert_eq!(loaded.search(q, 7), idx.search(q, 7));
            }
        }
    }

    #[test]
    fn add_after_load_matches_add_without_serialization() {
        // The codec must also preserve *growth* behavior: an index that
        // went through save/load and one that never did must serve
        // identical results after the same incremental adds (this is what
        // pins the HNSW RNG replay).
        let dim = 8;
        let data = lcg_vectors(120, dim, 11);
        let extra = lcg_vectors(40, dim, 12);
        let queries = lcg_vectors(10, dim, 13);
        for (live, reloaded) in backends(&data, dim).into_iter().zip(backends(&data, dim)) {
            let mut live = live;
            let mut bytes = save_index(reloaded.as_ref());
            let mut reloaded = load_index(&mut bytes).unwrap();
            for v in extra.chunks(dim) {
                assert_eq!(live.add(v), reloaded.add(v));
            }
            for q in queries.chunks(dim) {
                assert_eq!(live.search(q, 5), reloaded.search(q, 5));
            }
        }
    }

    #[test]
    fn empty_indexes_round_trip() {
        let dim = 5;
        for idx in backends(&[], dim) {
            let mut bytes = save_index(idx.as_ref());
            let mut loaded = load_index(&mut bytes).unwrap();
            assert_eq!(loaded.len(), 0);
            assert_eq!(loaded.dim(), dim);
            assert!(loaded.search(&[0.0; 5], 3).is_empty());
            // And stay usable: cold-start growth after load.
            let grow = lcg_vectors(40, dim, 14);
            for v in grow.chunks(dim) {
                loaded.add(v);
            }
            assert_eq!(loaded.search(&grow[..dim], 1)[0].id, 0);
        }
    }

    #[test]
    fn truncation_at_every_offset_errors_never_panics() {
        let dim = 6;
        let data = lcg_vectors(40, dim, 15);
        for idx in backends(&data, dim) {
            let bytes = save_index(idx.as_ref());
            for cut in 0..bytes.len() {
                let mut head = bytes.slice(0..cut);
                assert!(
                    load_index(&mut head).is_err(),
                    "truncation to {cut}/{} bytes must fail cleanly",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut data = Bytes::from(vec![99u8, 0, 0, 0]);
        assert_eq!(load_index(&mut data).err(), Some(CodecError::BadTag(99)));
        let mut empty = Bytes::from(Vec::new());
        assert_eq!(load_index(&mut empty).err(), Some(CodecError::Truncated));
    }

    #[test]
    fn clone_box_produces_independent_equal_indexes() {
        let dim = 7;
        let data = lcg_vectors(90, dim, 16);
        let q = lcg_vectors(1, dim, 17);
        for idx in backends(&data, dim) {
            let mut a = idx.clone_box();
            assert_eq!(a.search(&q, 5), idx.search(&q, 5));
            // Growing the clone must not disturb the original.
            let before = idx.len();
            a.add(&q);
            assert_eq!(a.len(), before + 1);
            assert_eq!(idx.len(), before);
        }
    }
}
