//! # af-obs — hand-rolled telemetry for the Auto-Formula pipeline
//!
//! Three pieces, all vendored-deps-only, in the style of
//! `af_core::failpoint`:
//!
//! 1. **Scoped tracing spans** — [`span!`] opens a timed scope tied to a
//!    static site name; dropping the guard records the elapsed time into
//!    that site's histogram and a thread-local span stack tracks nesting
//!    (see [`current_span`]).
//! 2. **Lock-free log-bucketed histograms** — [`hist::Histogram`] is an
//!    array of relaxed atomic buckets at ~2 buckets/octave from 1 µs to
//!    60 s; recording is wait-free and histograms live in a
//!    process-global registry keyed by site name.
//! 3. **Exporters** — [`MetricsSnapshot::capture`] copies every site's
//!    stats and renders them as JSON or a text table; structured
//!    [`Event`]s (quarantines, deadline trips) land in a bounded ring
//!    buffer readable via [`events_since`].
//!
//! ## Zero-cost by default
//!
//! Everything the macros expand to is compiled out unless the `obs`
//! cargo feature is enabled: [`SiteHandle`] and [`SpanGuard`] become
//! zero-sized types, the free functions become empty `#[inline(always)]`
//! bodies, and no histogram is ever registered (so snapshots are empty).
//! The serve bench's overhead gate in CI pins this. With the feature on,
//! a runtime kill-switch ([`set_enabled`]) additionally lets one process
//! compare instrumented vs. uninstrumented runs.
//!
//! ```
//! let guard = af_obs::span!("doc::stage", shard = 3);
//! af_obs::observe!("doc::batch_size", 42);
//! af_obs::event!("doc::fault", "injected", 7);
//! guard.end();
//! let snapshot = af_obs::MetricsSnapshot::capture();
//! println!("{}", snapshot.to_text_table());
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod percentile;
mod registry;

pub use export::{MetricsSnapshot, SiteMetrics};
pub use hist::{Histogram, HistogramSnapshot, Unit};
pub use percentile::{p50_p99, percentile};
pub use registry::histogram;

/// A structured telemetry event (quarantine imposed, deadline tripped).
/// Events carry static strings and one numeric payload so emitting never
/// allocates; they land in a bounded process-global ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Site name, e.g. `serve::quarantine`.
    pub site: &'static str,
    /// What happened at the site, e.g. `imposed` or the tripped stage.
    pub detail: &'static str,
    /// Numeric payload (shard id, epoch, ...).
    pub value: u64,
    /// Monotonic sequence number, 0-based across the process lifetime.
    pub seq: u64,
    /// Nanoseconds since the first event-related call in this process.
    pub at_ns: u64,
}

/// Open a timed span for a static site name; returns a [`SpanGuard`]
/// that records the elapsed time when dropped (or via
/// [`SpanGuard::end`]). The optional `key = value` argument attaches a
/// numeric label (e.g. a shard id) visible through [`current_span`].
///
/// ```
/// let _span = af_obs::span!("doc::scan", shard = 2);
/// ```
#[macro_export]
macro_rules! span {
    ($site:literal) => {{
        static __OBS_SITE: $crate::SiteHandle = $crate::SiteHandle::new($site, $crate::Unit::Nanos);
        $crate::SpanGuard::enter(&__OBS_SITE, 0)
    }};
    ($site:literal, $key:ident = $val:expr) => {{
        static __OBS_SITE: $crate::SiteHandle = $crate::SiteHandle::new($site, $crate::Unit::Nanos);
        $crate::SpanGuard::enter(&__OBS_SITE, ($val) as u64)
    }};
}

/// Record one value into a count-unit histogram site (batch sizes,
/// backlog depths).
///
/// ```
/// af_obs::observe!("doc::backlog", 3);
/// ```
#[macro_export]
macro_rules! observe {
    ($site:literal, $val:expr) => {{
        static __OBS_SITE: $crate::SiteHandle = $crate::SiteHandle::new($site, $crate::Unit::Count);
        $crate::record_site(&__OBS_SITE, ($val) as u64);
    }};
}

/// Emit a structured [`Event`] into the process-global ring buffer.
///
/// ```
/// af_obs::event!("doc::quarantine", "imposed", 1);
/// ```
#[macro_export]
macro_rules! event {
    ($site:literal, $detail:expr, $val:expr) => {
        $crate::emit_event($site, $detail, ($val) as u64);
    };
}

/// Zero every registered histogram and drop all buffered events (the
/// sequence counter keeps advancing so old watermarks stay valid).
pub fn reset() {
    registry::reset_all();
    imp::clear_events();
}

#[cfg(feature = "obs")]
mod imp {
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::Instant;

    use crate::hist::{Histogram, Unit};
    use crate::Event;

    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Runtime kill-switch: with `false`, spans/observations/events
    /// become cheap branches instead of records. Lets an `obs` build
    /// self-measure its own overhead in-process (the serve bench gate).
    pub fn set_enabled(on: bool) {
        // ordering: Relaxed — a stand-alone flag; instrumentation that
        // races the flip lands on either side, which is fine for a
        // measurement toggle.
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether instrumentation currently records (`obs` builds start
    /// enabled; no-op builds always report `false`).
    #[inline]
    pub fn enabled() -> bool {
        // ordering: Relaxed — see `set_enabled`.
        ENABLED.load(Ordering::Relaxed)
    }

    /// A static instrumentation site: a name plus a lazily-registered
    /// pointer to its process-global histogram. Created by the macros
    /// via `static` items so each call site pays registration once.
    pub struct SiteHandle {
        name: &'static str,
        unit: Unit,
        slot: OnceLock<&'static Histogram>,
    }

    impl SiteHandle {
        /// A handle for `name` with the given histogram unit.
        pub const fn new(name: &'static str, unit: Unit) -> SiteHandle {
            SiteHandle { name, unit, slot: OnceLock::new() }
        }

        #[inline]
        fn histogram(&self) -> &'static Histogram {
            self.slot.get_or_init(|| crate::registry::histogram(self.name, self.unit))
        }
    }

    struct Frame {
        site: &'static str,
        arg: u64,
    }

    thread_local! {
        static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    }

    /// Times a scope for one site. Dropping (or [`SpanGuard::end`])
    /// records the elapsed nanoseconds into the site's histogram and
    /// pops the thread-local span stack. Unwind-safe: a panic inside the
    /// span runs this Drop during unwinding, and the stack is truncated
    /// to this guard's depth so inner guards leaked by the panic cannot
    /// leave stale frames behind.
    #[must_use = "dropping immediately times nothing; bind it with `let`"]
    pub struct SpanGuard {
        inner: Option<(&'static SiteHandle, Instant, usize)>,
    }

    impl SpanGuard {
        /// Open a span (push a stack frame, start the clock). Inert when
        /// [`enabled`] is off.
        pub fn enter(site: &'static SiteHandle, arg: u64) -> SpanGuard {
            if !enabled() {
                return SpanGuard { inner: None };
            }
            // try_with: recording during thread-local teardown (e.g. a
            // span in a Drop of another TLS value) silently skips the
            // stack rather than aborting.
            let depth = STACK
                .try_with(|s| {
                    let mut s = s.borrow_mut();
                    s.push(Frame { site: site.name, arg });
                    s.len()
                })
                .unwrap_or(0);
            SpanGuard { inner: Some((site, Instant::now(), depth)) }
        }

        /// Close the span now (equivalent to dropping it; reads better
        /// than `drop(guard)` and stays warning-free when the guard is a
        /// no-op ZST).
        pub fn end(self) {}
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some((site, start, depth)) = self.inner.take() {
                site.histogram().record_duration(start.elapsed());
                if depth > 0 {
                    let _ = STACK.try_with(|s| s.borrow_mut().truncate(depth - 1));
                }
            }
        }
    }

    /// The innermost open span on this thread: `(site, arg)`.
    pub fn current_span() -> Option<(&'static str, u64)> {
        STACK.try_with(|s| s.borrow().last().map(|f| (f.site, f.arg))).ok().flatten()
    }

    /// Record a value into a site's histogram (the `observe!` back-end).
    #[inline]
    pub fn record_site(site: &'static SiteHandle, v: u64) {
        if enabled() {
            site.histogram().record(v);
        }
    }

    const RING_CAP: usize = 1024;

    struct RingState {
        buf: Vec<Event>,
        next_seq: u64,
    }

    static RING: OnceLock<Mutex<RingState>> = OnceLock::new();
    static ANCHOR: OnceLock<Instant> = OnceLock::new();

    fn ring() -> MutexGuard<'static, RingState> {
        RING.get_or_init(|| Mutex::new(RingState { buf: Vec::new(), next_seq: 0 }))
            .lock()
            // Push/drain never panic mid-update, so a poisoned ring is
            // still structurally sound.
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Append an event to the ring buffer (the `event!` back-end). The
    /// ring holds the most recent 1024 events; older ones are dropped.
    pub fn emit_event(site: &'static str, detail: &'static str, value: u64) {
        if !enabled() {
            return;
        }
        let at_ns = u64::try_from(ANCHOR.get_or_init(Instant::now).elapsed().as_nanos())
            .unwrap_or(u64::MAX);
        let mut r = ring();
        let seq = r.next_seq;
        r.next_seq += 1;
        r.buf.push(Event { site, detail, value, seq, at_ns });
        if r.buf.len() > RING_CAP {
            r.buf.remove(0);
        }
    }

    /// Events with `seq >= since` still held in the ring, oldest first.
    /// Pair with [`event_watermark`] to read only what happened after a
    /// known point.
    pub fn events_since(since: u64) -> Vec<Event> {
        ring().buf.iter().filter(|e| e.seq >= since).copied().collect()
    }

    /// The sequence number the next emitted event will get.
    pub fn event_watermark() -> u64 {
        ring().next_seq
    }

    pub(crate) fn clear_events() {
        ring().buf.clear();
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    //! No-op fallback: every item below is a zero-sized type or an empty
    //! `#[inline(always)]` body, so instrumented code compiles to
    //! exactly what it would without the macros. Argument expressions
    //! are still evaluated (they must stay cheap at call sites).

    use crate::hist::Unit;
    use crate::Event;

    /// No-op build: the runtime switch does not exist.
    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    /// No-op build: never recording.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// Zero-sized stand-in for the real site handle.
    pub struct SiteHandle;

    impl SiteHandle {
        /// Accepts and discards the site name and unit.
        #[inline(always)]
        pub const fn new(_name: &'static str, _unit: Unit) -> SiteHandle {
            SiteHandle
        }
    }

    /// Zero-sized stand-in for the real span guard; carries no timer and
    /// has no `Drop`.
    #[must_use = "dropping immediately times nothing; bind it with `let`"]
    pub struct SpanGuard;

    impl SpanGuard {
        /// No-op: returns the zero-sized guard.
        #[inline(always)]
        pub fn enter(_site: &'static SiteHandle, _arg: u64) -> SpanGuard {
            SpanGuard
        }

        /// No-op: consumes the zero-sized guard.
        #[inline(always)]
        pub fn end(self) {}
    }

    /// No-op build: there is never an open span.
    #[inline(always)]
    pub fn current_span() -> Option<(&'static str, u64)> {
        None
    }

    /// No-op: discards the value.
    #[inline(always)]
    pub fn record_site(_site: &'static SiteHandle, _v: u64) {}

    /// No-op: discards the event.
    #[inline(always)]
    pub fn emit_event(_site: &'static str, _detail: &'static str, _value: u64) {}

    /// No-op build: the ring is always empty.
    #[inline(always)]
    pub fn events_since(_since: u64) -> Vec<Event> {
        Vec::new()
    }

    /// No-op build: the sequence counter never advances.
    #[inline(always)]
    pub fn event_watermark() -> u64 {
        0
    }

    #[inline(always)]
    pub(crate) fn clear_events() {}
}

pub use imp::{
    current_span, emit_event, enabled, event_watermark, events_since, record_site, set_enabled,
    SiteHandle, SpanGuard,
};

// Pin the zero-cost contract: without the feature the macro-facing types
// are zero-sized and nothing ever registers or buffers.
#[cfg(all(test, not(feature = "obs")))]
mod noop_tests {
    #[test]
    fn noop_types_are_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<crate::SiteHandle>(), 0);
        assert_eq!(std::mem::size_of::<crate::SpanGuard>(), 0);
        assert!(!crate::enabled());
        crate::set_enabled(true);
        assert!(!crate::enabled(), "no-op build has no runtime switch");

        let guard = crate::span!("noop::span", shard = 9);
        crate::observe!("noop::count", 5);
        crate::event!("noop::event", "detail", 1);
        guard.end();
        assert!(crate::current_span().is_none());
        assert_eq!(crate::event_watermark(), 0);
        assert!(crate::events_since(0).is_empty());
        assert!(crate::MetricsSnapshot::capture().sites.is_empty());
        crate::reset();
    }
}
