//! Integration of the comparison methods against generated corpora:
//! ordering sanity (Auto-Formula's ingredients vs baselines) and failure
//! injection.

use auto_formula::baselines::gpt::{GptSim, PromptConfig};
use auto_formula::baselines::{
    Baseline, MondrianBaseline, PredictionContext, SpreadsheetCoderSim, WeakSupBaseline,
};
use auto_formula::corpus::organization::{OrgSpec, Scale};
use auto_formula::corpus::split::{split, SplitKind};
use auto_formula::corpus::testcase::{masked_sheet, sample_test_cases, TestCase};
use auto_formula::corpus::OrgCorpus;
use auto_formula::grid::CellRef;
use std::time::Duration;

fn eval(
    baseline: &dyn Baseline,
    corpus: &OrgCorpus,
    reference: &[usize],
    cases: &[TestCase],
) -> (usize, usize) {
    let mut preds = 0;
    let mut hits = 0;
    for tc in cases {
        let sheet = &corpus.workbooks[tc.workbook].sheets[tc.sheet];
        let masked = masked_sheet(sheet, tc.target);
        let ctx = PredictionContext {
            workbooks: &corpus.workbooks,
            reference,
            target_workbook: tc.workbook,
            target_sheet: tc.sheet,
            masked: &masked,
            target: tc.target,
        };
        if let Some(p) = baseline.predict(&ctx) {
            preds += 1;
            let gt = auto_formula::formula::parse_formula(&tc.ground_truth).unwrap().to_string();
            if p.formula == gt {
                hits += 1;
            }
        }
    }
    (preds, hits)
}

#[test]
fn baselines_produce_sane_results_on_pge() {
    let corpus = OrgSpec::pge(Scale::Tiny).generate();
    let sp = split(&corpus, SplitKind::Random, 0.1, 3);
    let cases = sample_test_cases(&corpus, &sp, 5, 7);
    assert!(!cases.is_empty());

    let ws = WeakSupBaseline::build(&corpus.workbooks, 0.05);
    let (ws_preds, ws_hits) = eval(&ws, &corpus, &sp.reference, &cases);
    // Weak supervision abstains on some cases (limited recall).
    assert!(ws_preds < cases.len());
    // When it predicts, it is precise more often than not on PGE-sim.
    if ws_preds > 0 {
        assert!(ws_hits * 2 >= ws_preds, "{ws_hits}/{ws_preds}");
    }

    let m = MondrianBaseline::build(&corpus.workbooks, &sp.reference, Duration::from_secs(60))
        .expect("tiny corpus fits the budget");
    let (m_preds, _m_hits) = eval(&m, &corpus, &sp.reference, &cases);
    assert!(m_preds > 0, "Mondrian predicts eagerly");

    let (ssc_preds, ssc_hits) = eval(&SpreadsheetCoderSim, &corpus, &sp.reference, &cases);
    // SSC only handles simple aggregates: strictly fewer hits than cases.
    assert!(ssc_hits < cases.len());
    assert!(ssc_preds <= cases.len());
}

#[test]
fn gpt_union_dominates_single_variants() {
    let corpus = OrgSpec::pge(Scale::Tiny).generate();
    let sp = split(&corpus, SplitKind::Random, 0.1, 3);
    let cases = sample_test_cases(&corpus, &sp, 5, 7);
    let gpt = GptSim::build(&corpus.workbooks, &sp.reference);
    let variants = PromptConfig::all();
    let mut per_variant_hits = vec![0usize; variants.len()];
    let mut union_hits = 0usize;
    for tc in &cases {
        let sheet = &corpus.workbooks[tc.workbook].sheets[tc.sheet];
        let masked = masked_sheet(sheet, tc.target);
        let gt = auto_formula::formula::parse_formula(&tc.ground_truth).unwrap().to_string();
        let ctx = PredictionContext {
            workbooks: &corpus.workbooks,
            reference: &sp.reference,
            target_workbook: tc.workbook,
            target_sheet: tc.sheet,
            masked: &masked,
            target: tc.target,
        };
        let mut any = false;
        for (vi, (_, p)) in gpt.predict_all(&ctx).into_iter().enumerate() {
            if p.map(|x| x.formula == gt).unwrap_or(false) {
                per_variant_hits[vi] += 1;
                any = true;
            }
        }
        if any {
            union_hits += 1;
        }
    }
    let best_single = per_variant_hits.iter().max().copied().unwrap_or(0);
    assert!(union_hits >= best_single, "union must dominate each variant");
}

#[test]
fn baselines_survive_degenerate_inputs() {
    // An org of empty workbooks and a target on an empty sheet.
    let mut corpus = OrgSpec::cisco(Scale::Tiny).generate();
    corpus.workbooks.truncate(3);
    for wb in corpus.workbooks.iter_mut() {
        for sheet in wb.sheets.iter_mut() {
            let cells: Vec<CellRef> = sheet.iter().map(|(at, _)| at).collect();
            for at in cells {
                sheet.remove(at);
            }
        }
    }
    let reference = [1usize, 2];
    let empty = &corpus.workbooks[0].sheets[0];
    let ctx = PredictionContext {
        workbooks: &corpus.workbooks,
        reference: &reference,
        target_workbook: 0,
        target_sheet: 0,
        masked: empty,
        target: CellRef::new(5, 5),
    };
    assert!(SpreadsheetCoderSim.predict(&ctx).is_none());
    let ws = WeakSupBaseline::build(&corpus.workbooks, 0.05);
    // Name-matched empty sheets have no formulas to copy.
    assert!(ws.predict(&ctx).is_none());
    let gpt = GptSim::build(&corpus.workbooks, &reference);
    assert!(gpt.predict(&ctx).is_none());
}
