//! Optimizers operating over [`Layer::visit_params`] in stable order.

use crate::layers::Layer;

/// A gradient-descent optimizer.
pub trait Optimizer {
    /// Apply one update step using the gradients currently accumulated in
    /// the layer, then zero them.
    fn step(&mut self, layer: &mut dyn Layer);
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Sgd {
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, layer: &mut dyn Layer) {
        let mut idx = 0usize;
        let (lr, mu) = (self.lr, self.momentum);
        let velocity = &mut self.velocity;
        layer.visit_params(&mut |p, g| {
            if velocity.len() <= idx {
                velocity.push(vec![0.0; p.len()]);
            }
            let v = &mut velocity[idx];
            debug_assert_eq!(v.len(), p.len(), "parameter block size changed");
            for i in 0..p.len() {
                v[i] = mu * v[i] - lr * g[i];
                p[i] += v[i];
                g[i] = 0.0;
            }
            idx += 1;
        });
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    pub fn new(lr: f32) -> Adam {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, layer: &mut dyn Layer) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t);
        let bc2 = 1.0 - b2.powi(t);
        let mut idx = 0usize;
        let (ms, vs) = (&mut self.m, &mut self.v);
        layer.visit_params(&mut |p, g| {
            if ms.len() <= idx {
                ms.push(vec![0.0; p.len()]);
                vs.push(vec![0.0; p.len()]);
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for i in 0..p.len() {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] -= lr * mhat / (vhat.sqrt() + eps);
                g[i] = 0.0;
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Sequential};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Train y = 2x + 1 with one linear neuron; both optimizers must
    /// converge.
    fn fit_line(optim: &mut dyn Optimizer) -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 1, 1));
        let xs: Vec<f32> = (0..16).map(|i| i as f32 / 8.0 - 1.0).collect();
        for _ in 0..600 {
            let x = Tensor::new(vec![16, 1], xs.clone());
            let out = net.forward(x);
            // dL/dy for L = mean (y - t)^2 is 2 (y - t) / n.
            let mut grad = Tensor::zeros(vec![16, 1]);
            for (i, &x) in xs.iter().enumerate() {
                let target = 2.0 * x + 1.0;
                grad.data[i] = 2.0 * (out.data[i] - target) / 16.0;
            }
            net.backward(grad);
            optim.step(&mut net);
        }
        let probe = net.infer(Tensor::new(vec![2, 1], vec![0.0, 1.0]));
        (probe.data[0], probe.data[1])
    }

    #[test]
    fn sgd_converges() {
        let (b, sum) = fit_line(&mut Sgd::new(0.1, 0.9));
        assert!((b - 1.0).abs() < 1e-2, "intercept {b}");
        assert!((sum - 3.0).abs() < 1e-2, "slope+intercept {sum}");
    }

    #[test]
    fn adam_converges() {
        let (b, sum) = fit_line(&mut Adam::new(0.05));
        assert!((b - 1.0).abs() < 1e-2, "intercept {b}");
        assert!((sum - 3.0).abs() < 1e-2, "slope+intercept {sum}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new();
        net.push(Linear::new(&mut rng, 2, 2));
        let out = net.forward(Tensor::new(vec![1, 2], vec![1.0, -1.0]));
        net.backward(Tensor::new(out.shape.clone(), vec![1.0, 1.0]));
        let mut adam = Adam::new(0.01);
        adam.step(&mut net);
        net.visit_params(&mut |_, g| assert!(g.iter().all(|&v| v == 0.0)));
    }
}
