//! Cross-backend parity suite: the three `VectorIndex` backends must agree
//! on edge-case semantics — empty indexes, `k > len`, `k = 0`,
//! `search_within` thresholds — and incremental `add`-after-build must
//! serve the same results as a from-scratch rebuild, so swapping the
//! backend under `ReferenceIndex` can never change observable behavior on
//! the paths the serving layer exercises.

use af_ann::test_util::lcg_vectors as dataset;
use af_ann::{FlatIndex, HnswIndex, HnswParams, IvfFlatIndex, IvfParams, VectorIndex};

const BACKENDS: [&str; 3] = ["flat", "hnsw", "ivf"];

/// IVF with every list probed: rankings are exhaustive, so results are
/// centroid-independent and comparable across build/add histories.
fn full_probe_ivf() -> IvfParams {
    IvfParams { n_lists: 8, n_probe: usize::MAX, ..Default::default() }
}

fn build(backend: &str, data: &[f32], dim: usize) -> Box<dyn VectorIndex> {
    match backend {
        "flat" => Box::new(FlatIndex::from_vectors(dim, data.chunks(dim).map(|c| c.to_vec()))),
        "hnsw" => Box::new(HnswIndex::build(data, dim, HnswParams::default())),
        "ivf" => Box::new(IvfFlatIndex::build(data, dim, full_probe_ivf())),
        other => panic!("unknown backend {other}"),
    }
}

fn ids(out: &[af_ann::Neighbor]) -> Vec<usize> {
    out.iter().map(|n| n.id).collect()
}

#[test]
fn empty_index_queries_return_nothing() {
    for backend in BACKENDS {
        let idx = build(backend, &[], 6);
        assert_eq!(idx.len(), 0, "{backend}");
        assert!(idx.is_empty(), "{backend}");
        assert!(idx.search(&[0.0; 6], 5).is_empty(), "{backend}");
        assert!(idx.search_within(&[0.0; 6], 5, 1.0).is_empty(), "{backend}");
    }
}

#[test]
fn k_larger_than_len_returns_everything() {
    let dim = 6;
    let data = dataset(7, dim, 41);
    let query = dataset(1, dim, 42);
    for backend in BACKENDS {
        let idx = build(backend, &data, dim);
        let out = idx.search(&query, 50);
        assert_eq!(out.len(), 7, "{backend}");
        assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist), "{backend}");
    }
}

#[test]
fn k_zero_returns_nothing() {
    let dim = 6;
    let data = dataset(30, dim, 43);
    for backend in BACKENDS {
        let idx = build(backend, &data, dim);
        assert!(idx.search(&data[..dim], 0).is_empty(), "{backend}");
    }
}

#[test]
fn search_within_is_search_filtered_by_threshold() {
    let dim = 8;
    let data = dataset(200, dim, 44);
    let query = dataset(1, dim, 45);
    for backend in BACKENDS {
        let idx = build(backend, &data, dim);
        for max_dist in [0.0f32, 0.5, 2.0, f32::INFINITY] {
            let within = idx.search_within(&query, 20, max_dist);
            let mut expect = idx.search(&query, 20);
            expect.retain(|n| n.dist <= max_dist);
            assert_eq!(ids(&within), ids(&expect), "{backend} θ={max_dist}");
            assert!(within.iter().all(|n| n.dist <= max_dist), "{backend}");
        }
    }
}

#[test]
fn add_after_build_matches_from_scratch_rebuild() {
    let dim = 8;
    let n_initial = 120;
    let n_extra = 60;
    let all = dataset(n_initial + n_extra, dim, 46);
    let initial = &all[..n_initial * dim];
    let queries = dataset(10, dim, 47);
    for backend in BACKENDS {
        let mut grown = build(backend, initial, dim);
        for (i, v) in all[n_initial * dim..].chunks(dim).enumerate() {
            assert_eq!(grown.add(v), n_initial + i, "{backend}: ids stay dense");
        }
        let rebuilt = build(backend, &all, dim);
        assert_eq!(grown.len(), rebuilt.len(), "{backend}");
        for q in queries.chunks(dim) {
            assert_eq!(
                ids(&grown.search(q, 10)),
                ids(&rebuilt.search(q, 10)),
                "{backend}: incremental add must serve like a rebuild"
            );
        }
    }
}

#[test]
fn save_load_round_trip_preserves_every_backend() {
    // The artifact path: encode → decode must reproduce search results
    // exactly, and an index grown *after* a round trip must serve exactly
    // like one that was never serialized (HNSW replays its level RNG from
    // the stored seed; IVF rebuilds assignments from its lists).
    let dim = 10;
    let data = dataset(150, dim, 50);
    let extra = dataset(30, dim, 51);
    let queries = dataset(12, dim, 52);
    for backend in BACKENDS {
        let mut live = build(backend, &data, dim);
        let mut bytes = af_ann::save_index(live.as_ref());
        let mut loaded = af_ann::load_index(&mut bytes).expect("round trip");
        assert_eq!(loaded.len(), live.len(), "{backend}");
        assert_eq!(loaded.dim(), live.dim(), "{backend}");
        for q in queries.chunks(dim) {
            assert_eq!(loaded.search(q, 8), live.search(q, 8), "{backend}");
        }
        for v in extra.chunks(dim) {
            assert_eq!(live.add(v), loaded.add(v), "{backend}: ids stay dense");
        }
        for q in queries.chunks(dim) {
            assert_eq!(
                loaded.search(q, 8),
                live.search(q, 8),
                "{backend}: growth after load must match growth without serialization"
            );
        }
    }
}

#[test]
fn truncated_index_bytes_error_on_every_backend() {
    let dim = 7;
    let data = dataset(60, dim, 53);
    for backend in BACKENDS {
        let idx = build(backend, &data, dim);
        let bytes = af_ann::save_index(idx.as_ref());
        for cut in 0..bytes.len() {
            let mut head = bytes.slice(0..cut);
            assert!(af_ann::load_index(&mut head).is_err(), "{backend} cut at {cut}");
        }
    }
}

#[test]
fn add_into_empty_matches_batch_build() {
    let dim = 6;
    let data = dataset(80, dim, 48);
    let queries = dataset(5, dim, 49);
    for backend in BACKENDS {
        let mut grown = build(backend, &[], dim);
        for (i, v) in data.chunks(dim).enumerate() {
            assert_eq!(grown.add(v), i, "{backend}");
        }
        let batch = build(backend, &data, dim);
        for q in queries.chunks(dim) {
            let a = ids(&grown.search(q, 5));
            if backend == "ivf" {
                // A cold-started IVF has a single lazily-seeded list (no
                // corpus existed to train a quantizer), so compare against
                // exact ground truth rather than the batch-built lists.
                let flat = build("flat", &data, dim);
                assert_eq!(a, ids(&flat.search(q, 5)), "{backend}");
            } else {
                assert_eq!(a, ids(&batch.search(q, 5)), "{backend}");
            }
        }
    }
}
