//! Domain word pools for realistic cell content.

/// Person surnames (includes the paper's running "Brown" example).
pub const SURNAMES: &[&str] = &[
    "Brown", "Green", "Smith", "Johnson", "Lee", "Garcia", "Miller", "Davis", "Wilson", "Moore",
    "Taylor", "Clark", "Hall", "Young", "King", "Wright", "Scott", "Baker", "Adams", "Nelson",
];

pub const FIRST_NAMES: &[&str] = &[
    "Ann", "Bo", "Carla", "Deepak", "Elena", "Farid", "Grace", "Hui", "Ivan", "Jia", "Kofi",
    "Lena", "Marco", "Nadia", "Omar", "Priya", "Quinn", "Rosa", "Sam", "Tara",
];

pub const REGIONS: &[&str] = &[
    "North",
    "South",
    "East",
    "West",
    "Central",
    "Northeast",
    "Northwest",
    "Southeast",
    "Southwest",
    "EMEA",
    "APAC",
    "LATAM",
    "Midwest",
    "Pacific",
];

pub const PRODUCTS: &[&str] = &[
    "Router",
    "Switch",
    "Firewall",
    "Gateway",
    "Sensor",
    "Amplifier",
    "Controller",
    "Converter",
    "Regulator",
    "Transceiver",
    "Modem",
    "Repeater",
    "Adapter",
    "Bridge",
    "Hub",
];

pub const DEPARTMENTS: &[&str] = &[
    "Finance",
    "Engineering",
    "Sales",
    "Marketing",
    "Operations",
    "Legal",
    "Support",
    "Research",
    "Procurement",
    "Logistics",
    "Facilities",
    "Security",
];

pub const LINE_ITEMS: &[&str] = &[
    "Revenue",
    "Cost of Goods Sold",
    "Gross Profit",
    "Operating Expenses",
    "R&D",
    "SG&A",
    "Depreciation",
    "Interest Expense",
    "Tax",
    "Net Income",
    "EBITDA",
    "Capex",
];

pub const MONTHS: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

pub const QUARTERS: &[&str] = &["Q1", "Q2", "Q3", "Q4"];

pub const SITES: &[&str] = &[
    "Austin", "Boston", "Chicago", "Dallas", "Denver", "Fresno", "Houston", "Memphis", "Oakland",
    "Phoenix", "Raleigh", "Seattle", "Tucson", "Omaha",
];

pub const TASKS: &[&str] = &[
    "Design review",
    "Prototype build",
    "Vendor audit",
    "Site survey",
    "Data migration",
    "Budget approval",
    "Safety training",
    "Compliance check",
    "Load testing",
    "Rollout plan",
    "Kickoff meeting",
    "Postmortem",
];

pub const CATEGORIES: &[&str] = &[
    "Travel",
    "Equipment",
    "Software",
    "Training",
    "Consulting",
    "Utilities",
    "Rent",
    "Supplies",
    "Maintenance",
    "Insurance",
];

pub const STATUS_WORDS: &[&str] = &["Open", "Closed", "Blocked", "Pending", "Done"];

/// Common generic sheet names (high corpus frequency → the hypothesis test
/// refuses to treat matches on these as evidence, Fig. 3b).
pub const GENERIC_SHEET_NAMES: &[&str] =
    &["Sheet1", "Sheet2", "Data", "Summary", "Report", "Notes"];

/// Distinctive sheet-name stems (low corpus frequency → strong evidence).
pub const DISTINCT_SHEET_STEMS: &[&str] = &[
    "Instructions",
    "WorkshopDetails",
    "RateCard",
    "Forecast",
    "Reconciliation",
    "Headcount",
    "Pipeline",
    "Utilization",
    "Maintenance",
    "FieldAudit",
    "Allocations",
    "Milestones",
    "Variance",
    "Backlog",
    "Capacity",
    "Benchmarks",
    "Provisioning",
    "Compliance",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_unique() {
        for pool in [
            SURNAMES,
            FIRST_NAMES,
            REGIONS,
            PRODUCTS,
            DEPARTMENTS,
            LINE_ITEMS,
            MONTHS,
            QUARTERS,
            SITES,
            TASKS,
            CATEGORIES,
            STATUS_WORDS,
            GENERIC_SHEET_NAMES,
            DISTINCT_SHEET_STEMS,
        ] {
            assert!(!pool.is_empty());
            let mut sorted: Vec<_> = pool.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), pool.len(), "duplicate entries in pool");
        }
    }

    #[test]
    fn brown_present_for_paper_example() {
        assert!(SURNAMES.contains(&"Brown"));
    }
}
