//! Serving quickstart: train once, save a self-contained artifact, serve
//! it concurrently, and grow the index without blocking readers.
//!
//! ```text
//! cargo run --release --example serve_artifact
//! ```

use auto_formula::core::index::IndexOptions;
use auto_formula::core::pipeline::AutoFormula;
use auto_formula::core::{AutoFormulaConfig, TrainingOptions};
use auto_formula::corpus::organization::{OrgSpec, Scale};
use auto_formula::embed::{CellFeaturizer, FeatureMask, SbertSim};
use auto_formula::serve::ServeHandle;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // ---- offline: train + index + save (happens once, anywhere) ----
    let universe = OrgSpec::web_crawl(Scale::Tiny).generate();
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
    let cfg = AutoFormulaConfig { episodes: 40, ..AutoFormulaConfig::test_tiny() };
    let (af, _) =
        AutoFormula::train(&universe.workbooks, featurizer, cfg, TrainingOptions::default());

    let org = OrgSpec::pge(Scale::Tiny).generate();
    let members: Vec<usize> = (0..org.workbooks.len() - 1).collect();
    let index = af.build_index(&org.workbooks, &members, IndexOptions::default());
    let artifact = af.save(&index);
    println!(
        "artifact: {} sheets, {} regions → {:.1} KiB",
        index.n_sheets(),
        index.n_regions(),
        artifact.len() as f64 / 1024.0
    );
    // In production this is a file or object-store blob:
    //   std::fs::write("model.afar", &artifact)?;
    //   let artifact = std::fs::read("model.afar")?;

    // ---- online: cold-start a server from bytes (no workbooks needed) ----
    let t = Instant::now();
    let handle = ServeHandle::from_artifact(&artifact).expect("artifact loads");
    println!("cold start from artifact: {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    // Lock-free predictions, from any number of threads.
    let query_wb = &org.workbooks[org.workbooks.len() - 1];
    let mut queries = Vec::new();
    for sheet in &query_wb.sheets {
        for (target, _) in sheet.formulas().take(2) {
            queries.push((sheet, target));
        }
    }
    let snap = handle.snapshot();
    for &(sheet, target) in queries.iter().take(3) {
        match snap.predict(sheet, target) {
            Some(p) => println!(
                "  {}!{target} → ={}  (d={:.3}, ref {}!{})",
                sheet.name(),
                p.formula,
                p.s2_distance,
                snap.sheet_meta(p.reference_sheet_idx).map_or("?", |m| m.name.as_str()),
                p.reference_cell
            ),
            None => println!("  {}!{target} → no confident prediction", sheet.name()),
        }
    }
    drop(snap);

    // A burst of concurrent queries embeds as ONE tensor pass (micro-batch).
    let t = Instant::now();
    let batch = handle.predict_batch(&queries);
    println!(
        "micro-batched {} queries in {:.1} ms ({} answered)",
        queries.len(),
        t.elapsed().as_secs_f64() * 1e3,
        batch.iter().flatten().count()
    );

    // ---- growth: index a new workbook; readers never block ----
    let epoch = handle.add_workbook(query_wb);
    println!(
        "added workbook → epoch {epoch}, index now {} sheets / {} regions",
        handle.n_sheets(),
        handle.n_regions()
    );

    // The *current* state (including the new workbook) ships as an artifact.
    let grown = handle.to_artifact();
    println!("re-exported artifact: {:.1} KiB", grown.len() as f64 / 1024.0);
}
