//! Property-based tests over the public API: invariants that must hold for
//! arbitrary inputs.

use auto_formula::formula::{parse, parse_formula, Template};
use auto_formula::grid::{A1Ref, Cell, CellRef, RangeRef, Sheet};
use proptest::prelude::*;

fn arb_cellref() -> impl Strategy<Value = CellRef> {
    (0u32..5000, 0u32..200).prop_map(|(r, c)| CellRef::new(r, c))
}

proptest! {
    #[test]
    fn a1_round_trip(cell in arb_cellref(), abs_col: bool, abs_row: bool) {
        let a1 = A1Ref { cell, abs_col, abs_row };
        let text = a1.to_string();
        let back: A1Ref = text.parse().unwrap();
        prop_assert_eq!(back, a1);
    }

    #[test]
    fn range_normalization(a in arb_cellref(), b in arb_cellref()) {
        let r = RangeRef::new(a, b);
        prop_assert!(r.start.row <= r.end.row);
        prop_assert!(r.start.col <= r.end.col);
        prop_assert!(r.contains(a));
        prop_assert!(r.contains(b));
        let text = r.to_string();
        let back: RangeRef = text.parse().unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn formula_print_parse_round_trip(
        n in -1000i64..1000,
        r1 in arb_cellref(),
        r2 in arb_cellref(),
        name in "[A-Z]{3,8}",
    ) {
        // Build a formula, print it, re-parse it: canonical fixed point.
        let src = format!("{name}({r1}:{r2},{n})+IF({r1}>0,1,{r2})");
        let e = parse(&src).unwrap();
        let printed = e.to_string();
        let e2 = parse(&printed).unwrap();
        prop_assert_eq!(&e2.to_string(), &printed, "printing is a fixed point");
    }

    #[test]
    fn template_extract_instantiate_identity(
        r1 in arb_cellref(),
        r2 in arb_cellref(),
        r3 in arb_cellref(),
    ) {
        let src = format!("COUNTIF({r1}:{r2},{r3})");
        let e = parse(&src).unwrap();
        let (t, params) = Template::extract(&e);
        prop_assert_eq!(t.n_holes, 3);
        let back = t.instantiate(&params).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn template_instantiate_with_shifted_params(
        r1 in arb_cellref(),
        dr in 0i64..50,
    ) {
        let src = format!("SUM({r1}:{r1})*2");
        let e = parse(&src).unwrap();
        let (t, params) = Template::extract(&e);
        let shifted: Vec<CellRef> =
            params.iter().map(|c| c.offset(dr, 0).unwrap()).collect();
        let out = t.instantiate(&shifted).unwrap();
        // The adapted formula parses and has the same template.
        let (t2, p2) = Template::extract(&parse_formula(&out.to_string()).unwrap());
        prop_assert_eq!(t2.signature(), t.signature());
        prop_assert_eq!(p2, shifted);
    }

    #[test]
    fn sheet_edits_preserve_cell_count(
        rows in 1u32..30,
        cols in 1u32..8,
        kill_row in 0u32..30,
    ) {
        let mut s = Sheet::new("p");
        for r in 0..rows {
            for c in 0..cols {
                s.set(CellRef::new(r, c), Cell::new((r * cols + c) as f64));
            }
        }
        let before = s.len() as i64;
        s.remove_row(kill_row.min(rows - 1));
        let after = s.len() as i64;
        prop_assert_eq!(after, before - cols as i64);
        // Remaining values are a subset of the originals.
        let (nr, _) = s.dims();
        prop_assert!(nr <= rows);
    }

    #[test]
    fn window_slot_count_invariant(
        rows in 1u32..40,
        cols in 1u32..12,
        cr in arb_cellref(),
    ) {
        let s = Sheet::new("w");
        let w = auto_formula::grid::ViewWindow::new(rows, cols);
        let n = w.centered(&s, cr).count();
        prop_assert_eq!(n, (rows * cols) as usize);
    }
}
