//! Cell values: the paper's "content" channel.

use std::fmt;

/// Spreadsheet error values (a formula can evaluate to these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellError {
    /// `#DIV/0!`
    Div0,
    /// `#VALUE!` — wrong operand type.
    Value,
    /// `#REF!` — dangling reference.
    Ref,
    /// `#NAME?` — unknown function.
    Name,
    /// `#N/A` — lookup miss.
    Na,
    /// `#NUM!` — numeric domain error.
    Num,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellError::Div0 => "#DIV/0!",
            CellError::Value => "#VALUE!",
            CellError::Ref => "#REF!",
            CellError::Name => "#NAME?",
            CellError::Na => "#N/A",
            CellError::Num => "#NUM!",
        };
        f.write_str(s)
    }
}

/// The content of a cell. Dates are stored as serial day numbers (days since
/// 1900-01-01, Excel convention) so they sort and subtract naturally.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum CellValue {
    #[default]
    Empty,
    Number(f64),
    Text(String),
    Bool(bool),
    /// Serial day number.
    Date(i64),
    Error(CellError),
}

impl CellValue {
    pub fn text(s: impl Into<String>) -> Self {
        CellValue::Text(s.into())
    }

    pub fn is_empty(&self) -> bool {
        matches!(self, CellValue::Empty)
    }

    pub fn is_number(&self) -> bool {
        matches!(self, CellValue::Number(_))
    }

    pub fn is_text(&self) -> bool {
        matches!(self, CellValue::Text(_))
    }

    /// Numeric coercion following spreadsheet semantics: numbers pass
    /// through, booleans become 0/1, dates their serial number, numeric text
    /// parses; everything else is `None`.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            CellValue::Number(n) => Some(*n),
            CellValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            CellValue::Date(d) => Some(*d as f64),
            CellValue::Text(s) => s.trim().parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The display string of the value (what a user sees in the grid).
    pub fn display(&self) -> String {
        match self {
            CellValue::Empty => String::new(),
            CellValue::Number(n) => format_number(*n),
            CellValue::Text(s) => s.clone(),
            CellValue::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            CellValue::Date(d) => format_serial_date(*d),
            CellValue::Error(e) => e.to_string(),
        }
    }

    /// Coarse data-type tag used as a syntactic feature (§4.4.1).
    pub fn type_tag(&self) -> ValueType {
        match self {
            CellValue::Empty => ValueType::Empty,
            CellValue::Number(_) => ValueType::Number,
            CellValue::Text(_) => ValueType::Text,
            CellValue::Bool(_) => ValueType::Bool,
            CellValue::Date(_) => ValueType::Date,
            CellValue::Error(_) => ValueType::Error,
        }
    }
}

impl From<f64> for CellValue {
    fn from(n: f64) -> Self {
        CellValue::Number(n)
    }
}

impl From<&str> for CellValue {
    fn from(s: &str) -> Self {
        CellValue::Text(s.to_string())
    }
}

impl From<String> for CellValue {
    fn from(s: String) -> Self {
        CellValue::Text(s)
    }
}

impl From<bool> for CellValue {
    fn from(b: bool) -> Self {
        CellValue::Bool(b)
    }
}

/// Data-type categories, one-hot encoded into the syntactic feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ValueType {
    Empty = 0,
    Number = 1,
    Text = 2,
    Bool = 3,
    Date = 4,
    Error = 5,
}

impl ValueType {
    pub const COUNT: usize = 6;

    pub fn index(self) -> usize {
        self as usize
    }
}

fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

const DAYS_IN_MONTH: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Convert (year, month 1-12, day 1-31) to a serial day number with day 1 =
/// 1900-01-01 (the Excel epoch, without reproducing Excel's 1900 leap-year
/// bug).
pub fn date_to_serial(year: i64, month: u32, day: u32) -> i64 {
    let mut days: i64 = 0;
    if year >= 1900 {
        for y in 1900..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
    } else {
        for y in year..1900 {
            days -= if is_leap(y) { 366 } else { 365 };
        }
    }
    for (m, &month_days) in DAYS_IN_MONTH.iter().enumerate().take(month as usize - 1) {
        days += month_days;
        if m == 1 && is_leap(year) {
            days += 1;
        }
    }
    days + day as i64
}

/// Inverse of [`date_to_serial`].
pub fn serial_to_date(serial: i64) -> (i64, u32, u32) {
    let mut days = serial - 1; // zero-based day offset from 1900-01-01
    let mut year = 1900i64;
    loop {
        let len = if is_leap(year) { 366 } else { 365 };
        if days >= len {
            days -= len;
            year += 1;
        } else if days < 0 {
            year -= 1;
            days += if is_leap(year) { 366 } else { 365 };
        } else {
            break;
        }
    }
    let mut month = 0usize;
    loop {
        let mut len = DAYS_IN_MONTH[month];
        if month == 1 && is_leap(year) {
            len += 1;
        }
        if days >= len {
            days -= len;
            month += 1;
        } else {
            break;
        }
    }
    (year, month as u32 + 1, days as u32 + 1)
}

fn format_serial_date(serial: i64) -> String {
    let (y, m, d) = serial_to_date(serial);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercion_rules() {
        assert_eq!(CellValue::Number(2.5).as_number(), Some(2.5));
        assert_eq!(CellValue::Bool(true).as_number(), Some(1.0));
        assert_eq!(CellValue::text(" 42 ").as_number(), Some(42.0));
        assert_eq!(CellValue::text("Brown").as_number(), None);
        assert_eq!(CellValue::Empty.as_number(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CellValue::Number(3.0).display(), "3");
        assert_eq!(CellValue::Number(3.25).display(), "3.25");
        assert_eq!(CellValue::Bool(false).display(), "FALSE");
        assert_eq!(CellValue::Error(CellError::Div0).display(), "#DIV/0!");
    }

    #[test]
    fn date_round_trip() {
        for &(y, m, d) in &[
            (1900, 1, 1),
            (1999, 12, 31),
            (2000, 2, 29),
            (2020, 1, 1),
            (2023, 6, 15),
            (2100, 3, 1),
        ] {
            let s = date_to_serial(y, m, d);
            assert_eq!(serial_to_date(s), (y, m, d), "date {y}-{m}-{d} serial {s}");
        }
        assert_eq!(date_to_serial(1900, 1, 1), 1);
    }

    #[test]
    fn dates_order_correctly() {
        assert!(date_to_serial(2020, 1, 1) < date_to_serial(2020, 1, 2));
        assert!(date_to_serial(2019, 12, 31) < date_to_serial(2020, 1, 1));
        assert_eq!(
            date_to_serial(2020, 3, 1) - date_to_serial(2020, 2, 28),
            2,
            "2020 is a leap year"
        );
    }

    #[test]
    fn date_display() {
        let s = date_to_serial(2020, 1, 1);
        assert_eq!(CellValue::Date(s).display(), "2020-01-01");
    }

    #[test]
    fn type_tags_are_stable() {
        assert_eq!(CellValue::Empty.type_tag().index(), 0);
        assert_eq!(CellValue::Number(1.0).type_tag().index(), 1);
        assert_eq!(CellValue::text("x").type_tag().index(), 2);
        assert_eq!(ValueType::COUNT, 6);
    }
}
