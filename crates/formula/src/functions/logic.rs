//! Conditional and boolean functions.

use super::{arity, bool_arg, scalar_arg, truthy};
use crate::eval::Operand;
use af_grid::{CellError, CellValue};

pub(super) fn call(name: &str, args: &[Operand]) -> Result<CellValue, CellError> {
    match name {
        "IF" => {
            arity(args, 2, 3)?;
            let cond = bool_arg(args, 0)?;
            if cond {
                scalar_arg(args, 1)
            } else if args.len() == 3 {
                scalar_arg(args, 2)
            } else {
                Ok(CellValue::Bool(false))
            }
        }
        "IFERROR" => {
            arity(args, 2, 2)?;
            match scalar_arg(args, 0) {
                Ok(CellValue::Error(_)) | Err(_) => scalar_arg(args, 1),
                Ok(v) => Ok(v),
            }
        }
        "AND" | "OR" | "XOR" => {
            if args.is_empty() {
                return Err(CellError::Value);
            }
            let mut acc = name == "AND";
            let mut saw = false;
            for a in args {
                for v in a.values() {
                    if v.is_empty() {
                        continue;
                    }
                    let b = truthy(v)?;
                    saw = true;
                    acc = match name {
                        "AND" => acc && b,
                        "OR" => acc || b,
                        _ => acc ^ b,
                    };
                }
            }
            if !saw {
                return Err(CellError::Value);
            }
            Ok(CellValue::Bool(acc))
        }
        "NOT" => {
            arity(args, 1, 1)?;
            Ok(CellValue::Bool(!bool_arg(args, 0)?))
        }
        "ISBLANK" => {
            arity(args, 1, 1)?;
            Ok(CellValue::Bool(scalar_arg(args, 0)?.is_empty()))
        }
        "ISNUMBER" => {
            arity(args, 1, 1)?;
            Ok(CellValue::Bool(matches!(
                scalar_arg(args, 0)?,
                CellValue::Number(_) | CellValue::Date(_)
            )))
        }
        "ISTEXT" => {
            arity(args, 1, 1)?;
            Ok(CellValue::Bool(scalar_arg(args, 0)?.is_text()))
        }
        _ => Err(CellError::Name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: CellValue) -> Operand {
        Operand::Scalar(v)
    }

    #[test]
    fn if_branches() {
        let t = s(CellValue::Bool(true));
        let f = s(CellValue::Bool(false));
        let yes = s(CellValue::text("yes"));
        let no = s(CellValue::text("no"));
        assert_eq!(call("IF", &[t, yes.clone(), no.clone()]), Ok(CellValue::text("yes")));
        assert_eq!(call("IF", &[f.clone(), yes.clone(), no]), Ok(CellValue::text("no")));
        assert_eq!(call("IF", &[f, yes]), Ok(CellValue::Bool(false)));
    }

    #[test]
    fn iferror_catches() {
        let err = s(CellValue::Error(CellError::Div0));
        let fallback = s(CellValue::Number(0.0));
        assert_eq!(call("IFERROR", &[err, fallback.clone()]), Ok(CellValue::Number(0.0)));
        assert_eq!(
            call("IFERROR", &[s(CellValue::Number(7.0)), fallback]),
            Ok(CellValue::Number(7.0))
        );
    }

    #[test]
    fn boolean_aggregates() {
        let t = s(CellValue::Bool(true));
        let f = s(CellValue::Bool(false));
        assert_eq!(call("AND", &[t.clone(), t.clone()]), Ok(CellValue::Bool(true)));
        assert_eq!(call("AND", &[t.clone(), f.clone()]), Ok(CellValue::Bool(false)));
        assert_eq!(call("OR", &[f.clone(), t.clone()]), Ok(CellValue::Bool(true)));
        assert_eq!(call("XOR", &[t.clone(), t.clone()]), Ok(CellValue::Bool(false)));
        assert_eq!(call("XOR", &[t.clone(), f]), Ok(CellValue::Bool(true)));
        assert_eq!(call("NOT", &[t]), Ok(CellValue::Bool(false)));
    }

    #[test]
    fn type_predicates() {
        assert_eq!(call("ISBLANK", &[s(CellValue::Empty)]), Ok(CellValue::Bool(true)));
        assert_eq!(call("ISNUMBER", &[s(CellValue::Number(1.0))]), Ok(CellValue::Bool(true)));
        assert_eq!(call("ISTEXT", &[s(CellValue::text("x"))]), Ok(CellValue::Bool(true)));
        assert_eq!(call("ISTEXT", &[s(CellValue::Number(1.0))]), Ok(CellValue::Bool(false)));
    }

    #[test]
    fn empty_and_errors() {
        assert_eq!(call("AND", &[]), Err(CellError::Value));
        assert_eq!(call("NOT", &[s(CellValue::text("banana"))]), Err(CellError::Value));
    }
}
