//! Quickstart: train Auto-Formula on a small spreadsheet universe, index
//! an organization's existing spreadsheets, and predict the formula a user
//! is about to type.
//!
//! Run with: `cargo run --release --example quickstart`

use auto_formula::core::index::IndexOptions;
use auto_formula::core::pipeline::{AutoFormula, PipelineVariant};
use auto_formula::core::{AutoFormulaConfig, TrainingOptions};
use auto_formula::corpus::organization::{OrgSpec, Scale};
use auto_formula::corpus::split::{split, SplitKind};
use auto_formula::corpus::testcase::{masked_sheet, sample_test_cases};
use auto_formula::embed::{CellFeaturizer, FeatureMask, SbertSim};
use std::sync::Arc;

fn main() {
    // 1. A training universe (the paper's 160K web-crawl stand-in) and an
    //    organization whose users we want to help.
    let universe = OrgSpec::web_crawl(Scale::Tiny).generate();
    let org = OrgSpec::pge(Scale::Tiny).generate();
    println!(
        "universe: {} workbooks / org {}: {} workbooks, {} formulas",
        universe.workbooks.len(),
        org.name,
        org.workbooks.len(),
        org.stats().formulas
    );

    // 2. Offline: train the two representation models once (weak
    //    supervision → augmentation → semi-hard triplet learning).
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(64)), FeatureMask::FULL);
    let cfg = AutoFormulaConfig { episodes: 60, ..AutoFormulaConfig::default() };
    let (af, report) =
        AutoFormula::train(&universe.workbooks, featurizer, cfg, TrainingOptions::default());
    println!(
        "trained in {:.1}s on {} sheet pairs / {} region pairs",
        report.seconds, report.coarse_pairs, report.fine_pairs
    );

    // 3. Index the organization's existing spreadsheets (all but the
    //    newest 10%, which play the role of "sheets being edited now").
    let sp = split(&org, SplitKind::Timestamp, 0.1, 7);
    let index = af.build_index(&org.workbooks, &sp.reference, IndexOptions::default());
    println!("indexed {} sheets / {} formula regions", index.n_sheets(), index.n_regions());

    // 4. Online: the user selects a cell — recommend a formula.
    let cases = sample_test_cases(&org, &sp, 3, 1);
    for tc in cases.iter().take(8) {
        let sheet = &org.workbooks[tc.workbook].sheets[tc.sheet];
        let masked = masked_sheet(sheet, tc.target); // user hasn't typed it yet
        match af.predict_with(&index, &masked, tc.target, PipelineVariant::Full) {
            Some(pred) => {
                let gt = auto_formula::formula::parse_formula(&tc.ground_truth)
                    .map(|e| e.to_string())
                    .unwrap_or_default();
                let verdict = if pred.formula == gt { "HIT " } else { "MISS" };
                println!(
                    "[{verdict}] {}!{}: suggested ={}  (truth ={gt}, confidence d={:.3})",
                    sheet.name(),
                    tc.target,
                    pred.formula,
                    pred.s2_distance
                );
            }
            None => println!("[----] {}!{}: no recommendation", sheet.name(), tc.target),
        }
    }
}
