//! Mondrian (Vitagliano et al., SIGMOD'22 demo) reimplemented as a
//! formula-prediction baseline, as the paper does (§5.1).
//!
//! Mondrian models a sheet as a set of rectangular *regions* (connected
//! components of non-empty cells), compares sheets with a hand-crafted
//! region-matching similarity, and clusters sheets agglomeratively —
//! which is cubic in the number of sheets and cannot be ANN-indexed, the
//! two properties behind its Table 2 timeouts and the Fig. 8 latency gap.

use crate::adapt::offset_rewrite;
use crate::{Baseline, BaselinePrediction, PredictionContext};
use af_grid::{CellRef, FxHashMap, Sheet, Workbook};
use std::time::{Duration, Instant};

/// A rectangular region of non-empty cells.
///
/// Faithful to Mondrian's information diet: the original operates on
/// layout and content *types* (it was built for CSV-era spreadsheets) and
/// never sees styles or colors — one reason its hand-crafted similarity
/// confuses same-layout sheets from different families.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    pub min: CellRef,
    pub max: CellRef,
    pub n_cells: usize,
    /// Fractions of [numeric, text, formula] cells.
    pub profile: [f32; 3],
}

impl Region {
    pub fn rows(&self) -> f32 {
        (self.max.row - self.min.row + 1) as f32
    }

    pub fn cols(&self) -> f32 {
        (self.max.col - self.min.col + 1) as f32
    }
}

/// Detect regions: connected components (4-connectivity) of stored cells.
pub fn detect_regions(sheet: &Sheet) -> Vec<Region> {
    let mut visited: FxHashMap<CellRef, bool> = FxHashMap::default();
    let mut out = Vec::new();
    let cells: Vec<CellRef> = {
        let mut v: Vec<CellRef> = sheet.iter().map(|(at, _)| at).collect();
        v.sort_unstable();
        v
    };
    for &start in &cells {
        if visited.get(&start).copied().unwrap_or(false) {
            continue;
        }
        // BFS flood fill.
        let mut queue = vec![start];
        visited.insert(start, true);
        let mut min = start;
        let mut max = start;
        let mut n = 0usize;
        let mut counts = [0usize; 3];
        while let Some(at) = queue.pop() {
            let cell = sheet.get(at).expect("visited only stored cells");
            n += 1;
            min.row = min.row.min(at.row);
            min.col = min.col.min(at.col);
            max.row = max.row.max(at.row);
            max.col = max.col.max(at.col);
            if cell.value.is_number() {
                counts[0] += 1;
            }
            if cell.value.is_text() {
                counts[1] += 1;
            }
            if cell.formula.is_some() {
                counts[2] += 1;
            }
            for (dr, dc) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
                if let Some(nb) = at.offset(dr, dc) {
                    if sheet.get(nb).is_some() && !visited.get(&nb).copied().unwrap_or(false) {
                        visited.insert(nb, true);
                        queue.push(nb);
                    }
                }
            }
        }
        let nf = n as f32;
        out.push(Region {
            min,
            max,
            n_cells: n,
            profile: [counts[0] as f32 / nf, counts[1] as f32 / nf, counts[2] as f32 / nf],
        });
    }
    out
}

/// Hand-crafted region dissimilarity.
fn region_cost(a: &Region, b: &Region) -> f32 {
    let pos = (a.min.row as f32 - b.min.row as f32).abs() / 20.0
        + (a.min.col as f32 - b.min.col as f32).abs() / 8.0;
    let size = ((a.rows() - b.rows()).abs() / a.rows().max(b.rows()))
        + ((a.cols() - b.cols()).abs() / a.cols().max(b.cols()));
    let profile: f32 = a.profile.iter().zip(&b.profile).map(|(x, y)| (x - y).abs()).sum();
    pos.min(2.0) + size + profile
}

/// Greedy node matching between two region sets; returns a dissimilarity
/// (lower = more similar).
pub fn sheet_distance(a: &[Region], b: &[Region]) -> f32 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return f32::INFINITY;
    }
    let mut used = vec![false; b.len()];
    let mut total = 0.0f32;
    for ra in a {
        let mut best: Option<(usize, f32)> = None;
        for (j, rb) in b.iter().enumerate() {
            if used[j] {
                continue;
            }
            let c = region_cost(ra, rb);
            if best.is_none_or(|(_, bc)| c < bc) {
                best = Some((j, c));
            }
        }
        match best {
            Some((j, c)) => {
                used[j] = true;
                total += c;
            }
            None => total += 3.0, // unmatched penalty
        }
    }
    total += 3.0 * used.iter().filter(|u| !**u).count() as f32;
    total / a.len().max(b.len()) as f32
}

/// Built Mondrian state: region graphs for every reference sheet plus an
/// agglomerative clustering.
pub struct MondrianBaseline {
    keys: Vec<(usize, usize)>,
    graphs: Vec<Vec<Region>>,
    /// Cluster label per reference sheet.
    pub clusters: Vec<usize>,
    pub build_seconds: f64,
}

/// Build failure: the clustering exceeded its wall-clock budget (the
/// paper's `[Time Out]` cells in Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut;

impl MondrianBaseline {
    /// Build over the reference workbooks, giving up after `budget`
    /// (agglomerative clustering is O(n³): the budget is the honest way to
    /// reproduce the paper's one-week timeouts at laptop scale).
    pub fn build(
        workbooks: &[Workbook],
        members: &[usize],
        budget: Duration,
    ) -> Result<MondrianBaseline, TimedOut> {
        let started = Instant::now();
        let mut keys = Vec::new();
        let mut graphs = Vec::new();
        for &wi in members {
            for (si, sheet) in workbooks[wi].sheets.iter().enumerate() {
                keys.push((wi, si));
                graphs.push(detect_regions(sheet));
            }
        }
        let n = graphs.len();
        // Pairwise distance matrix (O(n²) matchings).
        let mut dist = vec![0.0f32; n * n];
        for i in 0..n {
            if started.elapsed() > budget {
                return Err(TimedOut);
            }
            for j in (i + 1)..n {
                let d = sheet_distance(&graphs[i], &graphs[j]);
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        // Agglomerative single-linkage clustering until a distance cutoff.
        const CUTOFF: f32 = 0.8;
        let mut clusters: Vec<usize> = (0..n).collect();
        loop {
            if started.elapsed() > budget {
                return Err(TimedOut);
            }
            // O(n²) scan per merge, O(n) merges → O(n³).
            let mut best: Option<(usize, usize, f32)> = None;
            for i in 0..n {
                for j in (i + 1)..n {
                    if clusters[i] == clusters[j] {
                        continue;
                    }
                    let d = dist[i * n + j];
                    if d < CUTOFF && best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((i, j, d));
                    }
                }
            }
            match best {
                Some((i, j, _)) => {
                    let (from, to) = (clusters[j], clusters[i]);
                    for c in clusters.iter_mut() {
                        if *c == from {
                            *c = to;
                        }
                    }
                }
                None => break,
            }
        }
        Ok(MondrianBaseline {
            keys,
            graphs,
            clusters,
            build_seconds: started.elapsed().as_secs_f64(),
        })
    }

    pub fn n_sheets(&self) -> usize {
        self.keys.len()
    }

    /// Number of distinct clusters.
    pub fn n_clusters(&self) -> usize {
        let mut labels: Vec<usize> = self.clusters.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }
}

impl Baseline for MondrianBaseline {
    fn name(&self) -> &'static str {
        "Mondrian"
    }

    fn predict(&self, ctx: &PredictionContext<'_>) -> Option<BaselinePrediction> {
        let target_graph = detect_regions(ctx.masked);
        // Nearest reference sheet by the hand-crafted similarity.
        let mut best: Option<(usize, f32)> = None;
        for (i, g) in self.graphs.iter().enumerate() {
            let d = sheet_distance(&target_graph, g);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        let (si, d) = best?;
        if !d.is_finite() || d > 1.2 {
            return None; // no plausible similar sheet
        }
        let (wi, ssi) = self.keys[si];
        let ref_sheet = &ctx.workbooks[wi].sheets[ssi];
        // Formula closest to the target location, offset-rewritten (no
        // learned alignment — Mondrian's weakness on shifted sheets).
        let nearest = ref_sheet.formulas().min_by_key(|(at, _)| {
            let dr = (at.row as i64 - ctx.target.row as i64).abs();
            let dc = (at.col as i64 - ctx.target.col as i64).abs();
            dr + 4 * dc
        })?;
        let formula = offset_rewrite(nearest.1, nearest.0, ctx.target)?;
        Some(BaselinePrediction { formula, confidence: 1.0 / (1.0 + d) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_corpus::organization::{OrgSpec, Scale};
    use af_grid::Cell;

    #[test]
    fn region_detection_finds_separate_blocks() {
        let mut s = Sheet::new("t");
        // Block 1: 2×2 at A1; Block 2: 1×3 at E10 (disconnected).
        for (r, c) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            s.set(CellRef::new(r, c), Cell::new(1.0));
        }
        for c in 4..7 {
            s.set(CellRef::new(9, c), Cell::new("x"));
        }
        let regions = detect_regions(&s);
        assert_eq!(regions.len(), 2);
        let sizes: Vec<usize> = regions.iter().map(|r| r.n_cells).collect();
        assert!(sizes.contains(&4) && sizes.contains(&3));
    }

    #[test]
    fn same_family_sheets_are_close() {
        let corpus = OrgSpec::pge(Scale::Tiny).generate();
        let mut same = None;
        let mut cross = None;
        'outer: for i in 0..corpus.workbooks.len() {
            for j in i + 1..corpus.workbooks.len() {
                if corpus.same_family(i, j) && same.is_none() {
                    same = Some((i, j));
                }
                if cross.is_none()
                    && !corpus.same_family(i, j)
                    && corpus.provenance[i].archetype != corpus.provenance[j].archetype
                {
                    cross = Some((i, j));
                }
                if same.is_some() && cross.is_some() {
                    break 'outer;
                }
            }
        }
        let g = |w: usize| detect_regions(&corpus.workbooks[w].sheets[0]);
        let (si, sj) = same.unwrap();
        let (ci, cj) = cross.unwrap();
        assert!(sheet_distance(&g(si), &g(sj)) < sheet_distance(&g(ci), &g(cj)));
    }

    #[test]
    fn build_and_cluster_small_corpus() {
        let corpus = OrgSpec::pge(Scale::Tiny).generate();
        let members: Vec<usize> = (0..corpus.workbooks.len().min(14)).collect();
        let m =
            MondrianBaseline::build(&corpus.workbooks, &members, Duration::from_secs(30)).unwrap();
        assert!(m.n_sheets() >= members.len());
        assert!(m.n_clusters() < m.n_sheets(), "some sheets should cluster together");
    }

    #[test]
    fn budget_exceeded_times_out() {
        let corpus = OrgSpec::pge(Scale::Tiny).generate();
        let members: Vec<usize> = (0..corpus.workbooks.len()).collect();
        let out = MondrianBaseline::build(&corpus.workbooks, &members, Duration::from_nanos(1));
        assert_eq!(out.err(), Some(TimedOut));
    }
}
