//! Quality metrics (§5.1): recall = hits/n, precision = hits/predictions,
//! F1, and PR curves swept over the confidence threshold θ.

/// Precision/recall/F1 at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    pub recall: f64,
    pub precision: f64,
    pub f1: f64,
    pub n: usize,
    pub n_pred: usize,
    pub n_hit: usize,
}

/// Compute the paper's metrics from raw counts.
pub fn quality(n: usize, n_pred: usize, n_hit: usize) -> Quality {
    let recall = if n == 0 { 0.0 } else { n_hit as f64 / n as f64 };
    let precision = if n_pred == 0 { 0.0 } else { n_hit as f64 / n_pred as f64 };
    let f1 = if recall + precision == 0.0 {
        0.0
    } else {
        2.0 * recall * precision / (recall + precision)
    };
    Quality { recall, precision, f1, n, n_pred, n_hit }
}

/// One PR-curve point, tagged with the θ that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    pub theta: f32,
    pub recall: f64,
    pub precision: f64,
}

/// Sweep the confidence threshold over per-case results.
///
/// `results[i] = (distance, correct)` for cases where a candidate existed
/// (lower distance = more confident); `n` is the total number of test
/// cases. For each candidate θ (each distinct distance), predictions are
/// the results with `distance ≤ θ`.
pub fn pr_curve(results: &[(f32, bool)], n: usize) -> Vec<PrPoint> {
    let mut sorted: Vec<(f32, bool)> = results.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out = Vec::with_capacity(sorted.len().min(64) + 1);
    let mut hits = 0usize;
    for (i, &(dist, correct)) in sorted.iter().enumerate() {
        if correct {
            hits += 1;
        }
        let preds = i + 1;
        // Only emit at distance boundaries (last of a tie group).
        if i + 1 < sorted.len() && sorted[i + 1].0 == dist {
            continue;
        }
        let q = quality(n, preds, hits);
        out.push(PrPoint { theta: dist, recall: q.recall, precision: q.precision });
    }
    // Thin to at most 40 points for readable output.
    if out.len() > 40 {
        let step = out.len() as f64 / 40.0;
        let mut thinned = Vec::with_capacity(40);
        let mut next = 0.0f64;
        for (i, p) in out.iter().enumerate() {
            if i as f64 >= next || i == out.len() - 1 {
                thinned.push(*p);
                next += step;
            }
        }
        out = thinned;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_formulas() {
        let q = quality(100, 50, 45);
        assert!((q.recall - 0.45).abs() < 1e-12);
        assert!((q.precision - 0.9).abs() < 1e-12);
        assert!((q.f1 - 2.0 * 0.45 * 0.9 / 1.35).abs() < 1e-12);
    }

    #[test]
    fn zero_cases_are_safe() {
        let q = quality(0, 0, 0);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn pr_curve_monotone_recall() {
        let results = vec![(0.1, true), (0.2, true), (0.3, false), (0.4, true), (0.5, false)];
        let curve = pr_curve(&results, 10);
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall, "recall grows with θ");
            assert!(w[1].theta >= w[0].theta);
        }
        // Tightest threshold: 1 prediction, 1 hit → precision 1.
        assert_eq!(curve[0].precision, 1.0);
        assert!((curve[0].recall - 0.1).abs() < 1e-12);
        // Loosest: 5 predictions, 3 hits.
        let last = curve.last().unwrap();
        assert!((last.precision - 0.6).abs() < 1e-12);
        assert!((last.recall - 0.3).abs() < 1e-12);
    }

    #[test]
    fn tied_distances_merge() {
        let results = vec![(0.5, true), (0.5, false)];
        let curve = pr_curve(&results, 4);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].precision, 0.5);
    }
}
