//! Shared experiment environment: corpora, featurizers, and trained
//! systems with a disk cache so `run_all` and individual binaries train
//! each configuration once.

use af_core::index::IndexOptions;
use af_core::pipeline::AutoFormula;
use af_core::{AutoFormulaConfig, RepresentationModel, TrainingOptions};
use af_corpus::organization::{OrgCorpus, OrgSpec, Scale};
use af_embed::{CellFeaturizer, FeatureMask, GloveSim, SbertSim, TextEmbedder};
use std::sync::Arc;

/// Which content embedder backs the featurizer (Fig. 8 / Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbedderKind {
    /// Corpus-trained word embeddings, 32-d, fast.
    Glove,
    /// Char-n-gram hashing, 128-d, slower (the Sentence-BERT stand-in).
    Sbert,
}

impl EmbedderKind {
    pub fn label(self) -> &'static str {
        match self {
            EmbedderKind::Glove => "GloVe",
            EmbedderKind::Sbert => "Sentence-BERT",
        }
    }
}

/// A full system specification (cache key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemSpec {
    pub embedder: EmbedderKind,
    pub mask: FeatureMask,
    pub coarse_da: bool,
    pub fine_da: bool,
}

impl SystemSpec {
    pub fn full(embedder: EmbedderKind) -> SystemSpec {
        SystemSpec { embedder, mask: FeatureMask::FULL, coarse_da: true, fine_da: true }
    }

    fn cache_key(&self, scale: Scale, cfg: &AutoFormulaConfig) -> String {
        format!(
            "model_{:?}_{}{}_{}{}_{}x{}_e{}_s{:x}",
            self.embedder,
            self.mask.content as u8,
            self.mask.style as u8,
            self.coarse_da as u8,
            self.fine_da as u8,
            cfg.window.rows,
            cfg.window.cols,
            cfg.episodes,
            cfg.seed ^ (scale.factor() * 1000.0) as u64,
        )
    }
}

/// The standard evaluation environment.
pub struct Scenario {
    pub scale: Scale,
    /// The training universe (160K-crawl stand-in).
    pub universe: OrgCorpus,
    /// The four holdout test organizations, in the paper's order
    /// (PGE, Cisco, TI, Enron).
    pub orgs: Vec<OrgCorpus>,
}

impl Scenario {
    /// Build the standard scenario at the `AF_SCALE` scale.
    pub fn standard() -> Scenario {
        let scale = Scale::from_env();
        Scenario {
            scale,
            universe: OrgSpec::web_crawl(scale).generate(),
            orgs: OrgSpec::test_orgs(scale).into_iter().map(|s| s.generate()).collect(),
        }
    }

    /// The default experiment config (scaled; see DESIGN.md).
    pub fn default_cfg(&self) -> AutoFormulaConfig {
        AutoFormulaConfig::default()
    }

    /// Build a featurizer for one spec (GloVe trains on universe text).
    pub fn featurizer(&self, spec: SystemSpec) -> CellFeaturizer {
        let embedder: Arc<dyn TextEmbedder> = match spec.embedder {
            EmbedderKind::Sbert => Arc::new(SbertSim::new(128)),
            EmbedderKind::Glove => {
                let mut texts: Vec<String> = Vec::new();
                for wb in &self.universe.workbooks {
                    for sheet in &wb.sheets {
                        texts.push(sheet.name().to_string());
                        for (_, cell) in sheet.iter() {
                            let d = cell.value.display();
                            if !d.is_empty() {
                                texts.push(d);
                            }
                        }
                    }
                }
                Arc::new(GloveSim::train(
                    texts.iter().map(|s| s.as_str()),
                    af_embed::glove_sim::GloveParams::default(),
                ))
            }
        };
        CellFeaturizer::new(embedder, spec.mask)
    }

    /// Train (or load from the disk cache) a system for `spec`.
    pub fn system(&self, spec: SystemSpec, cfg: AutoFormulaConfig) -> AutoFormula {
        let cfg = AutoFormulaConfig {
            coarse_augmentation: spec.coarse_da,
            fine_augmentation: spec.fine_da,
            ..cfg
        };
        let featurizer = self.featurizer(spec);
        let cache_dir = std::path::Path::new("target").join("af_cache");
        let path = cache_dir.join(format!("{}.bin", spec.cache_key(self.scale, &cfg)));
        if let Ok(bytes) = std::fs::read(&path) {
            let mut model = RepresentationModel::new(featurizer.dim(), cfg);
            if model.load_bytes(bytes::Bytes::from(bytes)).is_ok() {
                eprintln!("[scenario] loaded cached model {}", path.display());
                return AutoFormula::from_model(model, featurizer);
            }
        }
        eprintln!("[scenario] training system {:?} …", spec);
        let (af, report) = AutoFormula::train(
            &self.universe.workbooks,
            featurizer,
            cfg,
            TrainingOptions::default(),
        );
        eprintln!(
            "[scenario] trained in {:.1}s ({} coarse pairs, {} fine pairs, loss c {:.3}->{:.3} f {:.3}->{:.3})",
            report.seconds,
            report.coarse_pairs,
            report.fine_pairs,
            report.first_coarse_loss,
            report.final_coarse_loss,
            report.first_fine_loss,
            report.final_fine_loss,
        );
        let _ = std::fs::create_dir_all(&cache_dir);
        let _ = std::fs::write(&path, af.model.to_bytes());
        af
    }

    /// Default index options (plain: coarse sheets + fine regions).
    pub fn index_opts(&self) -> IndexOptions {
        IndexOptions::default()
    }
}
