//! `af-serve` — concurrent serving of self-contained recommendation
//! artifacts.
//!
//! The paper's online pipeline (Algorithm 2) is train-once / predict-many;
//! this crate is the predict-many half as a production component:
//!
//! * **Immutable snapshots.** A [`Snapshot`] bundles the trained system
//!   and a self-contained [`ReferenceIndex`] (which, since the provenance
//!   refactor, answers queries without any borrow of the reference
//!   workbooks). Snapshots are shared behind `Arc` and never mutated.
//! * **Lock-free readers, epoch-style writers.** [`ServeHandle`] keeps the
//!   current snapshot in a two-slot left-right structure: readers acquire
//!   it with two atomic counter operations and *never block* — not on
//!   other readers, not on writers. [`ServeHandle::add_workbook`] builds a
//!   grown copy of the index off to the side, then atomically swaps it in;
//!   the writer waits for stragglers, readers never wait for the writer.
//!   Readers holding an old epoch keep serving from it until they drop it.
//! * **Micro-batched embedding.** [`ServeHandle::predict_batch`] embeds a
//!   burst of concurrent query sheets through the representation model in
//!   one tensor pass (`SheetEmbedder::embed_sheets`) and then runs S1–S3
//!   per query — bit-identical to issuing the queries one at a time.
//! * **Artifacts in, artifacts out.** [`ServeHandle::from_artifact`] cold-
//!   starts a server from bytes produced by `AutoFormula::save`;
//!   [`ServeHandle::to_artifact`] snapshots the *current* serving state
//!   (including workbooks added since load) back into bytes.

use af_core::artifact::ArtifactError;
use af_core::index::ReferenceIndex;
use af_core::pipeline::{AutoFormula, PipelineVariant, Prediction};
use af_grid::{CellRef, Sheet, Workbook};
use bytes::Bytes;
use parking_lot::Mutex;
use std::path::Path;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One immutable serving state: everything needed to answer predictions.
pub struct Snapshot {
    /// The trained system (model + featurizer), shared across epochs —
    /// incremental indexing never retrains.
    pub system: Arc<AutoFormula>,
    /// The self-contained reference index this epoch serves from.
    pub index: ReferenceIndex,
    /// Monotonic epoch counter; bumped by every successful
    /// [`ServeHandle::add_workbook`].
    pub epoch: u64,
    /// Provenance id the next added workbook will receive in
    /// [`af_core::SheetKey::workbook`].
    next_workbook_id: usize,
    /// When this snapshot became the active epoch (drives
    /// [`ServeStats::snapshot_age`]).
    published_at: Instant,
}

impl Snapshot {
    /// Predict with the confidence threshold applied, against this epoch.
    pub fn predict(&self, sheet: &Sheet, target: CellRef) -> Option<Prediction> {
        self.system.predict(&self.index, sheet, target)
    }

    /// Predict without thresholding, any pipeline variant.
    pub fn predict_with(
        &self,
        sheet: &Sheet,
        target: CellRef,
        variant: PipelineVariant,
    ) -> Option<Prediction> {
        self.system.predict_with(&self.index, sheet, target, variant)
    }

    /// Answer a burst of queries against this epoch with one micro-batched
    /// embedding pass: distinct query sheets (deduplicated by identity —
    /// a burst is naturally many targets on few sheets) go through the
    /// representation model in a single tensor, then S1–S3 run per query.
    /// Bit-identical to calling [`Snapshot::predict_with`] per query.
    pub fn predict_batch_with(
        &self,
        queries: &[(&Sheet, CellRef)],
        variant: PipelineVariant,
    ) -> Vec<Option<Prediction>> {
        let mut unique: Vec<&Sheet> = Vec::new();
        let mut slot: Vec<usize> = Vec::with_capacity(queries.len());
        for &(sheet, _) in queries {
            match unique.iter().position(|&s| std::ptr::eq(s, sheet)) {
                Some(i) => slot.push(i),
                None => {
                    slot.push(unique.len());
                    unique.push(sheet);
                }
            }
        }
        let embedder = self.system.embedder();
        let embs = embedder.embed_sheets(&unique, variant == PipelineVariant::FineOnly);
        queries
            .iter()
            .enumerate()
            .map(|(qi, &(sheet, target))| {
                self.system.predict_prepared(&self.index, &embs[slot[qi]], sheet, target, variant)
            })
            .collect()
    }
}

/// One slot of the left-right pair: a raw `Arc<Snapshot>` pointer plus the
/// count of readers currently dereferencing it.
struct Slot {
    ptr: AtomicPtr<Snapshot>,
    readers: AtomicUsize,
}

impl Slot {
    fn holding(snap: Arc<Snapshot>) -> Slot {
        Slot {
            ptr: AtomicPtr::new(Arc::into_raw(snap) as *mut Snapshot),
            readers: AtomicUsize::new(0),
        }
    }
}

/// Monotonic serving counters, all updated with relaxed atomics — they
/// are observability, not synchronization.
#[derive(Default)]
struct Counters {
    /// Queries answered through any `predict*` entry point.
    queries: AtomicU64,
    /// Snapshot acquisitions (one per `snapshot()` — every predict call
    /// and every explicit reader pin).
    snapshots: AtomicU64,
    /// Successful `add_workbook` publishes.
    adds: AtomicU64,
}

/// A point-in-time view of a [`ServeHandle`]'s health: which epoch is
/// serving, how stale it is, and how much traffic the handle has seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Epoch of the currently-active snapshot.
    pub epoch: u64,
    /// Time since that snapshot was published (a freshly-swapped epoch
    /// resets this; a long age on a write-heavy deployment means the
    /// writer is starving).
    pub snapshot_age: Duration,
    /// Queries served since startup, across every `predict*` entry point
    /// (batch calls count each query).
    pub queries_served: u64,
    /// Reader snapshot acquisitions since startup (includes the one this
    /// `stats()` call performed).
    pub snapshots_acquired: u64,
    /// Workbooks incrementally indexed since startup.
    pub workbooks_added: u64,
}

struct Shared {
    slots: [Slot; 2],
    counters: Counters,
    /// Which slot readers should use. The invariant that makes reads safe:
    /// a slot's pointer is only ever replaced while `active` names the
    /// *other* slot **and** the slot's reader count has been observed at
    /// zero after that — so a reader that announced itself and then
    /// confirmed the slot is still active holds a pinned pointer.
    active: AtomicUsize,
    /// Serializes writers (snapshot builds + publishes). Readers never
    /// touch it.
    writer: Mutex<()>,
}

// All snapshot swaps and reader announcements use `SeqCst`: the proof that
// a writer never frees a snapshot a reader is acquiring needs the writer's
// `active` store, the reader's counter increment, and both re-checks to sit
// in one total order. The cost is nanoseconds against a prediction that
// runs embedding kernels for microseconds to milliseconds.
const ORD: Ordering = Ordering::SeqCst;

impl Shared {
    /// Spin until no reader holds `slot`. Only the writer calls this, and
    /// only for the slot `active` does not name — readers drain quickly
    /// (their critical section is two loads and an `Arc` count bump) and
    /// new readers cannot enter a non-active slot.
    fn drain(slot: &Slot) {
        let mut spins = 0u32;
        while slot.readers.load(ORD) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Replace both slots with `new`. Caller must hold the writer lock.
    fn publish(&self, new: Arc<Snapshot>) {
        let a = self.active.load(ORD);
        let b = 1 - a;
        // Slot b is inactive: wait out stragglers, install the new
        // snapshot, then direct readers at it.
        Self::drain(&self.slots[b]);
        let old = self.slots[b].ptr.swap(Arc::into_raw(Arc::clone(&new)) as *mut Snapshot, ORD);
        unsafe { drop(Arc::from_raw(old)) };
        self.active.store(b, ORD);
        // Now slot a is inactive; once its readers drain, bring it to the
        // same epoch so the next publish has a clean inactive slot.
        Self::drain(&self.slots[a]);
        let old = self.slots[a].ptr.swap(Arc::into_raw(new) as *mut Snapshot, ORD);
        unsafe { drop(Arc::from_raw(old)) };
    }
}

impl Drop for Shared {
    fn drop(&mut self) {
        for slot in &self.slots {
            let p = slot.ptr.load(ORD);
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}

/// A cloneable handle to a concurrently-served recommendation artifact.
///
/// Cheap to clone (an `Arc`); hand one to every worker thread. All methods
/// take `&self`.
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Serve an in-memory system and its built index.
    pub fn new(system: AutoFormula, index: ReferenceIndex) -> ServeHandle {
        let next_workbook_id = index.keys.iter().map(|k| k.workbook + 1).max().unwrap_or(0);
        let snap = Arc::new(Snapshot {
            system: Arc::new(system),
            index,
            epoch: 0,
            next_workbook_id,
            published_at: Instant::now(),
        });
        ServeHandle {
            shared: Arc::new(Shared {
                slots: [Slot::holding(Arc::clone(&snap)), Slot::holding(snap)],
                counters: Counters::default(),
                active: AtomicUsize::new(0),
                writer: Mutex::new(()),
            }),
        }
    }

    /// Cold-start a server from artifact bytes (`AutoFormula::save`).
    pub fn from_artifact(data: &[u8]) -> Result<ServeHandle, ArtifactError> {
        let (system, index) = AutoFormula::load(data)?;
        Ok(ServeHandle::new(system, index))
    }

    /// Cold-start a server straight from an artifact file via `mmap(2)`
    /// (`AutoFormula::load_mmap`): embedding tables serve page-on-demand
    /// from the page cache, so artifacts larger than RAM are servable.
    /// The mapping lives as long as any snapshot still views it.
    pub fn from_artifact_path(path: &Path) -> Result<ServeHandle, ArtifactError> {
        let (system, index) = AutoFormula::load_mmap(path)?;
        Ok(ServeHandle::new(system, index))
    }

    /// Serialize the *current* serving state — including workbooks added
    /// since startup — into a self-contained artifact.
    pub fn to_artifact(&self) -> Bytes {
        let snap = self.snapshot();
        snap.system.save(&snap.index)
    }

    /// Acquire the current snapshot. Lock-free and wait-free in the
    /// absence of a concurrent publish; at most a couple of retries when
    /// one races past. The returned `Arc` pins the epoch for as long as
    /// the caller holds it — an unbounded read, safely.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.counters.snapshots.fetch_add(1, Ordering::Relaxed);
        loop {
            let a = self.shared.active.load(ORD);
            let slot = &self.shared.slots[a];
            // Announce, then confirm the slot is still the active one. If
            // it is, the writer cannot replace this slot's pointer until
            // our count drops (it drains inactive slots only, and `active`
            // can't return to this slot without a full publish that drains
            // it first).
            slot.readers.fetch_add(1, ORD);
            if self.shared.active.load(ORD) == a {
                let p = slot.ptr.load(ORD);
                let snap = unsafe {
                    Arc::increment_strong_count(p);
                    Arc::from_raw(p)
                };
                slot.readers.fetch_sub(1, ORD);
                return snap;
            }
            // A publish moved `active` between our two loads; retry on the
            // new slot.
            slot.readers.fetch_sub(1, ORD);
        }
    }

    /// Current epoch (0 until the first [`ServeHandle::add_workbook`]).
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Serving counters and snapshot age — the numbers an operator (or a
    /// metrics scraper) wants on one line. Cheap: one snapshot
    /// acquisition plus relaxed counter loads.
    pub fn stats(&self) -> ServeStats {
        let snap = self.snapshot();
        ServeStats {
            epoch: snap.epoch,
            snapshot_age: snap.published_at.elapsed(),
            queries_served: self.shared.counters.queries.load(Ordering::Relaxed),
            snapshots_acquired: self.shared.counters.snapshots.load(Ordering::Relaxed),
            workbooks_added: self.shared.counters.adds.load(Ordering::Relaxed),
        }
    }

    /// Sheets currently indexed.
    pub fn n_sheets(&self) -> usize {
        self.snapshot().index.n_sheets()
    }

    /// Formula regions currently indexed.
    pub fn n_regions(&self) -> usize {
        self.snapshot().index.n_regions()
    }

    /// Predict with the confidence threshold applied (the serving
    /// entry point). Lock-free: runs entirely against one snapshot.
    pub fn predict(&self, sheet: &Sheet, target: CellRef) -> Option<Prediction> {
        self.shared.counters.queries.fetch_add(1, Ordering::Relaxed);
        self.snapshot().predict(sheet, target)
    }

    /// Predict without thresholding, any pipeline variant.
    pub fn predict_with(
        &self,
        sheet: &Sheet,
        target: CellRef,
        variant: PipelineVariant,
    ) -> Option<Prediction> {
        self.shared.counters.queries.fetch_add(1, Ordering::Relaxed);
        self.snapshot().predict_with(sheet, target, variant)
    }

    /// Answer a burst of queries with one micro-batched embedding pass
    /// against one consistent snapshot (see
    /// [`Snapshot::predict_batch_with`]). Results are bit-identical to
    /// calling [`ServeHandle::predict_with`] per query on the same epoch,
    /// just cheaper.
    pub fn predict_batch_with(
        &self,
        queries: &[(&Sheet, CellRef)],
        variant: PipelineVariant,
    ) -> Vec<Option<Prediction>> {
        self.shared.counters.queries.fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.snapshot().predict_batch_with(queries, variant)
    }

    /// [`ServeHandle::predict_batch_with`] on the full pipeline, with the
    /// confidence threshold applied per query. One snapshot serves the
    /// whole call, so the threshold and the predictions always come from
    /// the same epoch.
    pub fn predict_batch(&self, queries: &[(&Sheet, CellRef)]) -> Vec<Option<Prediction>> {
        self.shared.counters.queries.fetch_add(queries.len() as u64, Ordering::Relaxed);
        let snap = self.snapshot();
        let theta = snap.system.cfg().theta_region;
        snap.predict_batch_with(queries, PipelineVariant::Full)
            .into_iter()
            .map(|p| p.filter(|p| p.s2_distance <= theta))
            .collect()
    }

    /// Incrementally index one more workbook and atomically swap the grown
    /// index in. Writers are serialized; readers never block — queries in
    /// flight keep their epoch, new queries see the new one. Returns the
    /// new epoch.
    pub fn add_workbook(&self, workbook: &Workbook) -> u64 {
        let guard = self.shared.writer.lock();
        let cur = self.snapshot();
        let mut index = cur.index.clone();
        let id = cur.next_workbook_id;
        index.add_workbook(&cur.system.embedder(), workbook, id);
        let epoch = cur.epoch + 1;
        let new = Arc::new(Snapshot {
            system: Arc::clone(&cur.system),
            index,
            epoch,
            next_workbook_id: id + 1,
            published_at: Instant::now(),
        });
        self.shared.publish(new);
        self.shared.counters.adds.fetch_add(1, Ordering::Relaxed);
        drop(guard);
        epoch
    }
}

// The handle is shared across worker threads by design.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServeHandle>();
    assert_send_sync::<Snapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use af_core::config::AutoFormulaConfig;
    use af_core::index::IndexOptions;
    use af_core::model::RepresentationModel;
    use af_corpus::organization::{OrgSpec, Scale};
    use af_embed::{CellFeaturizer, FeatureMask, SbertSim};

    fn system_and_corpus() -> (AutoFormula, af_corpus::OrgCorpus) {
        let corpus = OrgSpec::pge(Scale::Tiny).generate();
        let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
        let cfg = AutoFormulaConfig::test_tiny();
        let af =
            AutoFormula::from_model(RepresentationModel::new(featurizer.dim(), cfg), featurizer);
        (af, corpus)
    }

    fn handle_over(n_workbooks: usize) -> (ServeHandle, af_corpus::OrgCorpus) {
        let (af, corpus) = system_and_corpus();
        let members: Vec<usize> = (0..n_workbooks).collect();
        let index = af.build_index(&corpus.workbooks, &members, IndexOptions::default());
        (ServeHandle::new(af, index), corpus)
    }

    fn query_targets(corpus: &af_corpus::OrgCorpus, wb: usize) -> Vec<(&Sheet, CellRef)> {
        corpus.workbooks[wb]
            .sheets
            .iter()
            .flat_map(|s| s.formulas().map(move |(at, _)| (s, at)))
            .collect()
    }

    #[test]
    fn serves_predictions_matching_the_direct_pipeline() {
        let (af, corpus) = system_and_corpus();
        let members: Vec<usize> = (0..4).collect();
        let index = af.build_index(&corpus.workbooks, &members, IndexOptions::default());
        let handle = ServeHandle::new(
            AutoFormula::from_model(
                {
                    // Same weights: rebuild from the snapshot bytes.
                    let mut m = RepresentationModel::new(af.model.feat_dim, af.model.cfg);
                    m.load_bytes(af.model.to_bytes()).unwrap();
                    m
                },
                CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL),
            ),
            index.clone(),
        );
        for (sheet, target) in query_targets(&corpus, 0).into_iter().take(10) {
            let direct = af.predict_with(&index, sheet, target, PipelineVariant::Full);
            let served = handle.predict_with(sheet, target, PipelineVariant::Full);
            assert_eq!(direct.map(|p| p.formula), served.map(|p| p.formula));
        }
    }

    #[test]
    fn batch_prediction_is_bit_identical_to_sequential() {
        let (handle, corpus) = handle_over(4);
        let queries = query_targets(&corpus, 0);
        assert!(!queries.is_empty());
        for variant in
            [PipelineVariant::Full, PipelineVariant::CoarseOnly, PipelineVariant::FineOnly]
        {
            let batched = handle.predict_batch_with(&queries, variant);
            for (&(sheet, target), b) in queries.iter().zip(&batched) {
                let solo = handle.predict_with(sheet, target, variant);
                match (solo, b) {
                    (Some(x), Some(y)) => {
                        assert_eq!(x.formula, y.formula, "{variant:?}");
                        assert_eq!(x.s2_distance.to_bits(), y.s2_distance.to_bits(), "{variant:?}");
                    }
                    (None, None) => {}
                    (x, y) => panic!("{variant:?}: {x:?} vs {y:?}"),
                }
            }
        }
        // Thresholded batch applies θ.
        let theta = handle.snapshot().system.cfg().theta_region;
        for p in handle.predict_batch(&queries).into_iter().flatten() {
            assert!(p.s2_distance <= theta);
        }
    }

    #[test]
    fn add_workbook_swaps_epochs_without_disturbing_held_snapshots() {
        let (handle, corpus) = handle_over(3);
        let before = handle.snapshot();
        assert_eq!(before.epoch, 0);
        let n_before = before.index.n_sheets();

        let epoch = handle.add_workbook(&corpus.workbooks[3]);
        assert_eq!(epoch, 1);
        assert_eq!(handle.epoch(), 1);
        assert!(handle.n_sheets() > n_before);
        // The held snapshot still serves its old epoch, untouched.
        assert_eq!(before.epoch, 0);
        assert_eq!(before.index.n_sheets(), n_before);

        // The new epoch finds the new workbook's sheets as references.
        let after = handle.snapshot();
        let sheet = &corpus.workbooks[3].sheets[0];
        let emb = after.system.embedder().embed_sheet(sheet, false);
        let hit = after.index.similar_sheets(&emb.coarse, 1)[0];
        assert!(hit.dist < 1e-6, "new sheet must be indexed in the new epoch");
        // Provenance ids keep growing.
        assert_eq!(handle.add_workbook(&corpus.workbooks[4]), 2);
        let keys = &handle.snapshot().index.keys;
        assert!(keys.iter().any(|k| k.workbook == 4));
    }

    #[test]
    fn artifact_round_trip_through_the_server() {
        let (handle, corpus) = handle_over(3);
        handle.add_workbook(&corpus.workbooks[3]);
        let bytes = handle.to_artifact();
        let reloaded = ServeHandle::from_artifact(&bytes).expect("artifact loads");
        assert_eq!(reloaded.n_sheets(), handle.n_sheets());
        assert_eq!(reloaded.n_regions(), handle.n_regions());
        for (sheet, target) in query_targets(&corpus, 0).into_iter().take(8) {
            let a = handle.predict_with(sheet, target, PipelineVariant::Full);
            let b = reloaded.predict_with(sheet, target, PipelineVariant::Full);
            assert_eq!(a.map(|p| p.formula), b.map(|p| p.formula));
        }
        assert!(ServeHandle::from_artifact(b"garbage").is_err());
    }

    #[test]
    fn stats_expose_epoch_age_and_traffic_counters() {
        let (handle, corpus) = handle_over(3);
        let s0 = handle.stats();
        assert_eq!(s0.epoch, 0);
        assert_eq!(s0.queries_served, 0);
        assert_eq!(s0.workbooks_added, 0);
        assert!(s0.snapshots_acquired >= 1, "stats itself pins a snapshot");

        // Serve some traffic: singles and a batch, each counted per query.
        let queries = query_targets(&corpus, 0);
        assert!(queries.len() >= 2);
        for &(sheet, at) in queries.iter().take(2) {
            let _ = handle.predict(sheet, at);
            let _ = handle.predict_with(sheet, at, PipelineVariant::Full);
        }
        let _ = handle.predict_batch(&queries);
        let s1 = handle.stats();
        assert_eq!(s1.queries_served, 4 + queries.len() as u64);
        assert!(s1.snapshots_acquired > s0.snapshots_acquired);
        assert!(s1.snapshot_age >= s0.snapshot_age, "same epoch only ages");

        // A publish bumps the epoch, the add counter, and resets the age.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let aged = handle.stats().snapshot_age;
        assert!(aged.as_millis() >= 20);
        handle.add_workbook(&corpus.workbooks[3]);
        let s2 = handle.stats();
        assert_eq!(s2.epoch, 1);
        assert_eq!(s2.workbooks_added, 1);
        assert!(s2.snapshot_age < aged, "new epoch must be younger than the old one");
        // Queries served is monotone across the swap.
        assert!(s2.queries_served >= s1.queries_served);
    }

    #[test]
    fn serves_from_an_artifact_file_via_mmap() {
        let (handle, corpus) = handle_over(3);
        let bytes = handle.to_artifact();
        let mut path = std::env::temp_dir();
        path.push(format!("af_serve_mmap_{}.afar", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let mapped = ServeHandle::from_artifact_path(&path).expect("mmap serve");
        assert_eq!(mapped.n_sheets(), handle.n_sheets());
        for (sheet, target) in query_targets(&corpus, 0).into_iter().take(6) {
            let a = handle.predict_with(sheet, target, PipelineVariant::Full);
            let b = mapped.predict_with(sheet, target, PipelineVariant::Full);
            assert_eq!(a.map(|p| p.formula), b.map(|p| p.formula));
        }
        // The mapped handle can still grow (tables convert to owned on
        // write) and re-serialize.
        mapped.add_workbook(&corpus.workbooks[3]);
        assert!(mapped.n_sheets() > handle.n_sheets());
        drop(mapped);
        std::fs::remove_file(&path).unwrap();
        assert!(ServeHandle::from_artifact_path(Path::new("/no/such.afar")).is_err());
    }

    #[test]
    fn concurrent_readers_and_writer_stress() {
        let (handle, corpus) = handle_over(2);
        let queries: Vec<(usize, usize, CellRef)> = corpus.workbooks[0]
            .sheets
            .iter()
            .enumerate()
            .flat_map(|(si, s)| s.formulas().map(move |(at, _)| (0usize, si, at)))
            .collect();
        assert!(!queries.is_empty());
        let stop = std::sync::atomic::AtomicBool::new(false);

        std::thread::scope(|scope| {
            // Readers hammer predict + snapshot invariants.
            for t in 0..3 {
                let handle = handle.clone();
                let corpus = &corpus;
                let queries = &queries;
                let stop = &stop;
                scope.spawn(move || {
                    let mut served = 0usize;
                    let mut last_epoch = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = handle.snapshot();
                        // Epochs are monotone per reader.
                        assert!(snap.epoch >= last_epoch, "epoch went backwards");
                        last_epoch = snap.epoch;
                        // Internal consistency of whatever epoch we got.
                        assert_eq!(snap.index.n_sheets(), snap.index.keys.len());
                        let (wb, si, at) = queries[(served + t) % queries.len()];
                        let sheet = &corpus.workbooks[wb].sheets[si];
                        let _ = snap.predict_with(sheet, at, PipelineVariant::Full);
                        served += 1;
                    }
                    assert!(served > 0);
                });
            }
            // One writer keeps publishing new epochs.
            let writer = handle.clone();
            let corpus_ref = &corpus;
            let stop_ref = &stop;
            scope.spawn(move || {
                for round in 0..6 {
                    let wb = &corpus_ref.workbooks[2 + (round % 3)];
                    writer.add_workbook(wb);
                }
                stop_ref.store(true, Ordering::Relaxed);
            });
        });
        assert_eq!(handle.epoch(), 6);
    }
}
