//! Fuzz-style hardening of the artifact loader: truncated and bit-flipped
//! artifacts must come back as `Err(ArtifactError)` — never a panic, never
//! a runaway allocation — at every section boundary and throughout the
//! header, table, and payload.

use af_core::config::AutoFormulaConfig;
use af_core::index::IndexOptions;
use af_core::model::RepresentationModel;
use af_core::pipeline::AutoFormula;
use af_corpus::organization::{OrgSpec, Scale};
use af_embed::{CellFeaturizer, FeatureMask, SbertSim};
use std::sync::Arc;

/// A small but fully-populated artifact (real regions, params, metadata).
fn small_artifact() -> Vec<u8> {
    let corpus = OrgSpec::pge(Scale::Tiny).generate();
    let featurizer = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
    let cfg = AutoFormulaConfig::test_tiny();
    let af = AutoFormula::from_model(RepresentationModel::new(featurizer.dim(), cfg), featurizer);
    // One workbook keeps the artifact small enough to corrupt exhaustively
    // around every interesting offset, with optional structures enabled so
    // every section feature is on the wire.
    let index = af.build_index(
        &corpus.workbooks,
        &[0],
        IndexOptions { fine_sheet_signatures: true, coarse_regions: true },
    );
    assert!(index.n_regions() > 0, "artifact must contain regions");
    af.save(&index).to_vec()
}

/// Parse the header the same way the loader lays it out and return every
/// structurally-interesting absolute offset: header fields, each table
/// entry, and each section's start/end in the payload.
fn interesting_offsets(artifact: &[u8]) -> Vec<usize> {
    let mut offsets: Vec<usize> = (0..12.min(artifact.len())).collect(); // magic/version/flags/count
    let n_sections = u32::from_be_bytes(artifact[8..12].try_into().unwrap()) as usize;
    let table_start = 12;
    let payload_start = table_start + n_sections * 18;
    for i in 0..n_sections {
        let entry = table_start + i * 18;
        offsets.extend([entry, entry + 2, entry + 10]); // id, offset, len fields
        let off = u64::from_be_bytes(artifact[entry + 2..entry + 10].try_into().unwrap()) as usize;
        let len = u64::from_be_bytes(artifact[entry + 10..entry + 18].try_into().unwrap()) as usize;
        // Section boundaries, and a few bytes around them.
        for d in 0..4 {
            offsets.push(payload_start + off + d);
            offsets.push((payload_start + off + len).saturating_sub(d + 1));
        }
    }
    offsets.push(artifact.len() - 1);
    offsets.retain(|&o| o < artifact.len());
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

#[test]
fn truncation_never_panics() {
    let artifact = small_artifact();
    // Every interesting boundary, plus an even sweep across the payload.
    let mut cuts = interesting_offsets(&artifact);
    let step = (artifact.len() / 97).max(1);
    cuts.extend((0..artifact.len()).step_by(step));
    cuts.sort_unstable();
    cuts.dedup();
    for &cut in &cuts {
        assert!(
            AutoFormula::load(&artifact[..cut]).is_err(),
            "truncation to {cut}/{} bytes must be an error, not a panic",
            artifact.len()
        );
    }
    // The untouched artifact still loads (the corpus above is valid).
    assert!(AutoFormula::load(&artifact).is_ok());
}

#[test]
fn bit_flips_never_panic() {
    let artifact = small_artifact();
    let mut positions = interesting_offsets(&artifact);
    let step = (artifact.len() / 61).max(1);
    positions.extend((0..artifact.len()).step_by(step));
    positions.sort_unstable();
    positions.dedup();
    for &pos in &positions {
        for bit in [0u8, 3, 7] {
            let mut corrupt = artifact.clone();
            corrupt[pos] ^= 1 << bit;
            // A flip in raw f32 payload can still load (values differ);
            // flips in lengths, ids, tags, or dims must error. Either way:
            // no panic, and anything that loads stays internally usable.
            if let Ok((af, index)) = AutoFormula::load(&corrupt) {
                assert_eq!(index.n_sheets(), index.keys.len());
                let _ = af.cfg();
            }
        }
    }
}

#[test]
fn tail_garbage_and_swapped_sections_fail_cleanly() {
    let artifact = small_artifact();
    // Garbage appended after the payload is ignored (sections are offset
    // addressed), so this must still load.
    let mut padded = artifact.clone();
    padded.extend_from_slice(b"trailing junk");
    assert!(AutoFormula::load(&padded).is_ok());

    // Unknown section id in the table → the real section goes missing.
    let mut missing = artifact.clone();
    // First table entry id at offset 12 (big-endian u16).
    missing[12] = 0xFF;
    missing[13] = 0xFF;
    assert!(AutoFormula::load(&missing).is_err());

    // Zero everything after the header: lengths in the table now point at
    // zeroed payload.
    let mut zeroed = artifact.clone();
    for b in zeroed.iter_mut().skip(12) {
        *b = 0;
    }
    assert!(AutoFormula::load(&zeroed).is_err());
}
