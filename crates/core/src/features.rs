//! Raw window featurization: turn a view window over a sheet into the
//! stacked per-cell input features the models consume.

use af_embed::CellFeaturizer;
use af_grid::{CellRef, Sheet, ViewWindow, WindowSlot};

/// Where a window is anchored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowOrigin {
    /// Top-left corner of the sheet — represents the whole sheet (S1).
    TopLeft,
    /// Centered on a cell — represents the region around it (S2/S3).
    Centered(CellRef),
}

/// Featurize a window into a flat `n_cells × feat_dim` buffer (row-major
/// over window slots).
pub fn raw_window(
    featurizer: &CellFeaturizer,
    sheet: &Sheet,
    window: ViewWindow,
    origin: WindowOrigin,
) -> Vec<f32> {
    let mut out = vec![0.0f32; window.n_cells() * featurizer.dim()];
    raw_window_into(featurizer, sheet, window, origin, &mut out);
    out
}

/// Allocation-free variant of [`raw_window`]: featurize the window
/// directly into `out` (length `n_cells × feat_dim`, fully overwritten).
/// This is what the training loop uses to fill batch rows in place.
pub fn raw_window_into(
    featurizer: &CellFeaturizer,
    sheet: &Sheet,
    window: ViewWindow,
    origin: WindowOrigin,
    out: &mut [f32],
) {
    let fd = featurizer.dim();
    debug_assert_eq!(out.len(), window.n_cells() * fd);
    let empty = featurizer.empty_cell_ref();
    // Invalid slots become all-zero (featurizer.invalid_cell()).
    let mut fill = |slots: &mut dyn Iterator<Item = WindowSlot<'_>>| {
        for (i, slot) in slots.enumerate() {
            let dst = &mut out[i * fd..(i + 1) * fd];
            match slot {
                WindowSlot::Cell(_, cell) => featurizer.cell(cell, dst),
                WindowSlot::EmptyCell(_) => dst.copy_from_slice(empty),
                WindowSlot::Invalid => dst.iter_mut().for_each(|v| *v = 0.0),
            }
        }
    };
    match origin {
        WindowOrigin::TopLeft => fill(&mut window.top_left(sheet)),
        WindowOrigin::Centered(c) => fill(&mut window.centered(sheet, c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_embed::{FeatureMask, SbertSim};
    use af_grid::Cell;
    use std::sync::Arc;

    fn setup() -> (CellFeaturizer, Sheet) {
        let f = CellFeaturizer::new(Arc::new(SbertSim::new(16)), FeatureMask::FULL);
        let mut s = Sheet::new("t");
        s.set_a1("A1", Cell::new("Header"));
        s.set_a1("A2", Cell::new(5.0));
        s.set_a1("B2", Cell::new(7.0));
        (f, s)
    }

    #[test]
    fn raw_window_has_expected_shape() {
        let (f, s) = setup();
        let w = ViewWindow::new(4, 3);
        let raw = raw_window(&f, &s, w, WindowOrigin::TopLeft);
        assert_eq!(raw.len(), 12 * f.dim());
        // Slot 0 = A1 ("Header") must be non-zero; its validity flag set.
        assert_eq!(raw[f.dim() - 1], 1.0);
    }

    #[test]
    fn centered_window_marks_invalid_slots_zero() {
        let (f, s) = setup();
        let w = ViewWindow::new(4, 3);
        let raw = raw_window(&f, &s, w, WindowOrigin::Centered(CellRef::new(0, 0)));
        // First slot is out of bounds (above-left of A1) → all zeros
        // including validity.
        assert!(raw[..f.dim()].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn same_content_same_features() {
        let (f, s) = setup();
        let w = ViewWindow::new(4, 3);
        let a = raw_window(&f, &s, w, WindowOrigin::TopLeft);
        let b = raw_window(&f, &s, w, WindowOrigin::TopLeft);
        assert_eq!(a, b);
    }

    #[test]
    fn shifted_center_changes_features() {
        let (f, s) = setup();
        let w = ViewWindow::new(4, 3);
        let a = raw_window(&f, &s, w, WindowOrigin::Centered(CellRef::new(1, 0)));
        let b = raw_window(&f, &s, w, WindowOrigin::Centered(CellRef::new(2, 0)));
        assert_ne!(a, b);
    }
}
