//! `af-grid` — the spreadsheet substrate for the Auto-Formula reproduction.
//!
//! Spreadsheets differ from relational tables in three ways the paper leans
//! on (§3.1): there is no explicit table boundary, data and formulas are
//! blended at cell granularity, and cells carry rich non-textual *style*.
//! This crate models exactly that: a sparse two-dimensional grid of [`Cell`]s
//! with values, styles and optional formula text, organized into [`Sheet`]s
//! and multi-sheet [`Workbook`]s, plus A1-notation references and the
//! fixed-size [`ViewWindow`] abstraction of Fig. 5.

pub mod cell;
pub mod cellref;
pub mod csv;
pub mod fxhash;
pub mod pattern;
pub mod render;
pub mod sheet;
pub mod style;
pub mod value;
pub mod window;
pub mod workbook;

pub use cell::Cell;
pub use cellref::{A1Ref, CellRef, RangeRef};
pub use fxhash::{FxHashMap, FxHashSet};
pub use sheet::Sheet;
pub use style::{BorderFlags, CellStyle, Color};
pub use value::{CellError, CellValue};
pub use window::{ViewWindow, WindowSlot};
pub use workbook::Workbook;
